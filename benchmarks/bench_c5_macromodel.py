"""C5 — Section II-C1: the macro-model accuracy ladder.

Paper: PFA (constant) < DBT (sign-aware) / bitwise < input-output /
3D-table in accuracy; cycle-accurate statistical models with ~8
selected variables reach 5-10% average-power error and 10-20%
cycle-power error ([44], [45]).

Shape: on correlated (speech-like) data the data-blind PFA model errs
worst; activity-sensitive models cut the error substantially; the
F-test cycle model selects few variables and lands in the paper's
error range on random data; cycle error exceeds average error.
"""

from conftest import shape

from repro.estimation.macromodel import (
    BitwiseModel,
    CycleAccurateModel,
    DualBitTypeModel,
    InputOutputModel,
    PfaModel,
    Table3DModel,
    characterization_streams,
    fit_macromodel,
)
from repro.rtl.components import make_component
from repro.rtl.streams import correlated_stream, random_stream


def _evaluation_suite(width):
    return {
        "random": [random_stream(width, 250, seed=91),
                   random_stream(width, 250, seed=92)],
        "correlated": [correlated_stream(width, 250, rho=0.95, seed=93),
                       correlated_stream(width, 250, rho=0.95, seed=94)],
        "biased": [random_stream(width, 250, seed=95, bit_prob=0.85),
                   random_stream(width, 250, seed=96, bit_prob=0.85)],
    }


def test_c5_macromodel_ladder(once):
    def experiment():
        width = 6
        component = make_component("mult", width)
        training = characterization_streams(component, runs=24,
                                            length=100, seed=29)
        models = {
            "pfa": fit_macromodel(PfaModel(), component, training),
            "dbt": fit_macromodel(DualBitTypeModel(), component,
                                  training),
            "bitwise": fit_macromodel(BitwiseModel(), component,
                                      training),
            "input-output": fit_macromodel(InputOutputModel(),
                                           component, training),
            "table3d": fit_macromodel(Table3DModel(bins=4), component,
                                      training),
        }
        suite = _evaluation_suite(width)
        errors = {name: {} for name in models}
        for sname, streams in suite.items():
            for mname, model in models.items():
                errors[mname][sname] = model.error(component, streams)
        return errors

    errors = once(experiment)
    print()
    print("C5 macro-model relative errors (6-bit multiplier):")
    streams = ["random", "correlated", "biased"]
    print(f"  {'model':14s}" + "".join(f" {s:>11s}" for s in streams)
          + f" {'mean':>8s}")
    means = {}
    for mname, per_stream in errors.items():
        mean = sum(per_stream.values()) / len(per_stream)
        means[mname] = mean
        print(f"  {mname:14s}"
              + "".join(f" {per_stream[s]:11.1%}" for s in streams)
              + f" {mean:8.1%}")

    shape("PFA is the worst model overall",
          means["pfa"] == max(means.values()))
    shape("an activity-sensitive model at least halves PFA's error",
          min(means["bitwise"], means["dbt"], means["input-output"],
              means["table3d"]) < 0.5 * means["pfa"])
    shape("PFA collapses on correlated data (its blind spot)",
          errors["pfa"]["correlated"] ==
          max(e["correlated"] for e in errors.values()))


def test_c5_cycle_accurate_model(once):
    def experiment():
        width = 5
        component = make_component("add", width)
        training = characterization_streams(component, runs=20,
                                            length=120, seed=31)
        model = CycleAccurateModel(max_variables=8)
        model.fit(component, training)
        streams = [random_stream(width, 300, seed=97),
                   random_stream(width, 300, seed=98)]
        return (model.selected,
                model.error(component, streams),
                model.cycle_error(component, streams))

    selected, avg_error, cyc_error = once(experiment)
    print()
    print(f"C5 cycle-accurate model: {len(selected)} variables "
          f"selected ({selected})")
    print(f"  average-power error : {avg_error:6.1%}  "
          f"(paper: 5-10%)")
    print(f"  cycle-power RMS err : {cyc_error:6.1%}  "
          f"(paper: 10-20%)")

    shape("few variables selected (<= 8)", len(selected) <= 8)
    shape("average error in/near the paper's band (< 15%)",
          avg_error < 0.15)
    shape("cycle error in a usable band (< 40%)", cyc_error < 0.40)
    shape("cycle error exceeds average error", cyc_error > avg_error)


def test_c5_ftest_threshold_ablation(once):
    """DESIGN.md ablation: the F-test threshold trades variables for
    accuracy."""

    def experiment():
        width = 5
        component = make_component("add", width)
        training = characterization_streams(component, runs=16,
                                            length=100, seed=37)
        rows = []
        for threshold in (2.0, 8.0, 64.0):
            model = CycleAccurateModel(max_variables=12,
                                       f_threshold=threshold)
            model.fit(component, training)
            streams = [random_stream(width, 200, seed=99),
                       random_stream(width, 200, seed=100)]
            rows.append((threshold, len(model.selected),
                         model.error(component, streams)))
        return rows

    rows = once(experiment)
    print()
    print("C5 ablation: F-test threshold vs selected variables:")
    for threshold, n_vars, err in rows:
        print(f"  F* = {threshold:5.1f}: {n_vars:2d} variables, "
              f"error {err:6.1%}")
    shape("stricter threshold selects fewer variables",
          rows[0][1] >= rows[-1][1])
