"""C7 — Section III-B: predictive shutdown.

Paper (Srivastava et al. [58], on an X-server workload): predictive
policies reach power improvements "as high as 38x, with a very
limited decrease in performance (around 3%)"; Hwang-Wu [59] improves
further with misprediction correction and pre-wakeup.

Shape: on a strongly idle-dominated workload, predictive policies
(regression, short-T_A heuristic, exponential average) beat the static
timeout; improvements reach tens of times; the latency penalty of the
pre-wakeup policy stays around the paper's few percent; Hwang-Wu's
pre-wakeup beats the same policy without it on latency.
"""

from conftest import shape

from repro.optimization.shutdown import (
    AlwaysOnPolicy,
    HwangWuPolicy,
    OraclePolicy,
    SrivastavaHeuristicPolicy,
    SrivastavaRegressionPolicy,
    StaticTimeoutPolicy,
    breakeven_time,
    generate_workload,
    simulate_policy,
)


def test_c7_predictive_shutdown(once):
    def experiment():
        # X-server-like: long quiescence between short bursts.
        workload = generate_workload(n_periods=500, seed=61,
                                     mean_active=4.0, mean_idle=400.0,
                                     idle_tail=1.8)
        be = breakeven_time()
        policies = {
            "always-on": AlwaysOnPolicy(),
            "static(2xBE)": StaticTimeoutPolicy(2 * be),
            "heuristic": SrivastavaHeuristicPolicy(),
            "regression": SrivastavaRegressionPolicy(be),
            "hwang-wu": HwangWuPolicy(be),
            "hwang-wu (no prewake)": HwangWuPolicy(be, prewakeup=False),
            "oracle": OraclePolicy(be),
        }
        reports = {name: simulate_policy(workload, p)
                   for name, p in policies.items()}
        return workload, reports

    workload, reports = once(experiment)
    print()
    bound = workload.shutdown_upper_bound()
    print(f"C7 predictive shutdown (T_I/T_A = "
          f"{workload.total_idle / workload.total_active:.0f}, "
          f"upper bound {bound:.0f}x):")
    print(f"  {'policy':22s} {'improvement':>11s} {'latency':>9s} "
          f"{'mispred':>8s}")
    for name, r in reports.items():
        print(f"  {name:22s} {r.improvement:10.1f}x "
              f"{r.latency_penalty:8.2%} {r.mispredictions:8d}")

    static = reports["static(2xBE)"]
    shape("regression beats static",
          reports["regression"].improvement > static.improvement)
    shape("hwang-wu beats static",
          reports["hwang-wu"].improvement > static.improvement)
    shape("predictive improvement reaches tens of times",
          reports["hwang-wu"].improvement > 10.0)
    shape("latency penalty limited (around the paper's ~3%)",
          reports["hwang-wu"].latency_penalty < 0.06)
    shape("pre-wakeup reduces the latency penalty",
          reports["hwang-wu"].latency_penalty
          <= reports["hwang-wu (no prewake)"].latency_penalty)
    shape("oracle bounds every policy",
          all(reports["oracle"].improvement >= r.improvement - 1e-9
              for r in reports.values()))
    shape("improvements respect the theoretical bound",
          all(r.improvement <= bound + 1e-9
              for r in reports.values()))
