"""F7 — Fig. 7: gated-clock architecture for reactive FSMs.

Paper: an activation function Fa stops the local clock whenever no
state or output transition takes place; reactive circuits with long
waits save significantly, and the Fa/filter-latch overhead must be
paid regardless.

Shape: on an idle-dominated workload the gated one-hot machine saves
power and the saving grows with idleness; on a busy workload gating
is near-neutral or a loss; a machine with too few flops cannot
amortize the overhead (the paper's "synthesize a simplified function"
caveat).
"""

from conftest import shape

from repro.fsm import benchmark as fsm_benchmark
from repro.fsm import one_hot_encoding
from repro.optimization.clock_gating import evaluate_clock_gating


def test_fig7_gated_clock(once):
    def experiment():
        stg = fsm_benchmark("waiter")
        onehot = one_hot_encoding(stg)
        idle = evaluate_clock_gating(stg, encoding=onehot, cycles=600,
                                     seed=31, bit_probs=[0.05, 0.5])
        medium = evaluate_clock_gating(stg, encoding=onehot, cycles=600,
                                       seed=31, bit_probs=[0.4, 0.5])
        busy = evaluate_clock_gating(stg, encoding=onehot, cycles=600,
                                     seed=31, bit_probs=[0.95, 0.5])
        tiny = evaluate_clock_gating(stg, cycles=600, seed=31,
                                     bit_probs=[0.05, 0.5])  # 2 flops
        return idle, medium, busy, tiny

    idle, medium, busy, tiny = once(experiment)

    print()
    print("Fig. 7 gated clock ('waiter' FSM, one-hot, 5 flops):")
    for name, r in [("idle workload", idle), ("medium", medium),
                    ("busy", busy)]:
        print(f"  {name:14s}: idle {r.idle_fraction:5.1%}, power "
              f"{r.original_power:6.2f} -> {r.gated_power:6.2f} "
              f"({r.saving:+.1%}), Fa = {r.fa_gates} gates")
    print(f"  binary (2 flops), idle workload: saving "
          f"{tiny.saving:+.1%} (overhead not amortized)")

    shape("gating saves on the idle workload", idle.saving > 0.0)
    shape("idle workload beats the busier ones",
          idle.saving > medium.saving and idle.saving > busy.saving)
    shape("idle fraction tracks the workload",
          idle.idle_fraction > medium.idle_fraction
          > busy.idle_fraction)
    shape("two flops cannot amortize the gating overhead",
          tiny.saving < idle.saving)
