"""C2 — Section II-B1: information-theoretic power models.

Paper: average line entropy propagated from I/O entropies bounds and
tracks switching activity (E <= h/2 under temporal independence);
Cheng-Agrawal's C_tot = (m/n) 2^n h_out is "too pessimistic when n is
large"; Ferrandi's BDD-node model fixes that via regression.

Shape: (a) measured average activity never exceeds half the average
line entropy; (b) both h_avg models track the reference power within a
small factor across a circuit population; (c) Cheng-Agrawal
overestimates real C_tot by an exploding factor as n grows while the
fitted Ferrandi model stays within a small factor.
"""

from conftest import shape

from repro.estimation.entropy import (
    cheng_agrawal_ctot,
    estimate_circuit_power_entropic,
    ferrandi_ctot,
    measured_io_entropies,
    sequence_bit_entropy,
)
from repro.logic.bdd_bridge import total_bdd_nodes
from repro.logic.generators import parity_tree, random_logic, \
    ripple_carry_adder
from repro.logic.simulate import collect_activity, output_trace, \
    random_vectors, simulate


def _population():
    circuits = [random_logic(5, 10 + 5 * k, 3, seed=k) for k in range(6)]
    circuits.append(ripple_carry_adder(3))
    circuits.append(parity_tree(6))
    return circuits


def test_c2_entropy_models(once):
    def experiment():
        rows = []
        for circuit in _population():
            vectors = random_vectors(circuit.inputs, 400, seed=13)
            reference = collect_activity(circuit, vectors).average_power()
            marc = estimate_circuit_power_entropic(circuit, vectors,
                                                   model="marculescu")
            nn = estimate_circuit_power_entropic(circuit, vectors,
                                                 model="nemani-najm")
            rows.append((circuit.name, reference, marc, nn))
        return rows

    rows = once(experiment)
    print()
    print("C2 entropic power estimates vs gate-level reference:")
    print(f"  {'circuit':22s} {'reference':>10s} {'marculescu':>11s} "
          f"{'nemani-najm':>12s}")
    for name, ref, marc, nn in rows:
        print(f"  {name:22s} {ref:10.2f} {marc:11.2f} {nn:12.2f}")

    for name, ref, marc, nn in rows:
        shape(f"{name}: Marculescu within 5x", 0.2 * ref < marc < 5 * ref)
        shape(f"{name}: Nemani-Najm within 5x", 0.2 * ref < nn < 5 * ref)


def test_c2_activity_entropy_bound(benchmark):
    """E <= h/2 per net, measured."""
    from repro.estimation.entropy import entropy_of_probability

    circuit = ripple_carry_adder(4)
    vectors = random_vectors(circuit.inputs, 1200, seed=17)

    def measure():
        report = collect_activity(circuit, vectors)
        trace = simulate(circuit, vectors)
        violations = 0
        for net in circuit.nets:
            p = sum(v[net] for v in trace) / len(trace)
            if report.activity(net) > 0.5 * entropy_of_probability(p) \
                    + 0.05:
                violations += 1
        return violations

    violations = benchmark(measure)
    shape("activity bounded by half the entropy on every net",
          violations == 0)


def test_c2_capacitance_models(once):
    def experiment():
        circuits = [random_logic(n, 6 * n, 3, seed=n)
                    for n in (4, 6, 8, 10, 12, 14)]
        model = ferrandi_ctot(circuits, training_vectors=100)
        rows = []
        for circuit in circuits:
            n, m = len(circuit.inputs), len(circuit.outputs)
            vectors = random_vectors(circuit.inputs, 100, seed=0)
            outs = output_trace(circuit, vectors)
            h_out = sequence_bit_entropy(outs, circuit.outputs)
            truth = circuit.total_capacitance()
            cheng = cheng_agrawal_ctot(n, m, h_out)
            ferr = model.predict(n, m, total_bdd_nodes(circuit), h_out)
            rows.append((n, truth, cheng, ferr))
        return rows

    rows = once(experiment)
    print()
    print("C2 total-capacitance models:")
    print(f"  {'n':>3s} {'true C_tot':>10s} {'Cheng-Agrawal':>13s} "
          f"{'Ferrandi':>9s}")
    for n, truth, cheng, ferr in rows:
        print(f"  {n:3d} {truth:10.1f} {cheng:13.1f} {ferr:9.1f}")

    small_ratio = rows[0][2] / rows[0][1]
    large_ratio = rows[-1][2] / rows[-1][1]
    shape("Cheng-Agrawal pessimism explodes with n",
          large_ratio > 10 * small_ratio)
    shape("Cheng-Agrawal overshoots the real capacitance at large n",
          rows[-1][2] > 2.0 * rows[-1][1])
    for n, truth, _cheng, ferr in rows:
        shape(f"Ferrandi stays within 2.5x at n={n}",
              0.4 * truth < ferr < 2.5 * truth)
