"""F9 — Fig. 9 / Section III-J: retiming for power.

Paper: a register at the output of a glitchy gate filters spurious
transitions (a flop output toggles at most once per cycle), so
register position changes power; the Monteiro heuristic places
registers at the outputs of gates with high glitching and high
downstream load.  Leiserson-Saxe retiming [110] fixes the period.

Shape: (a) event-driven power of the deep adder chain exceeds its
zero-delay power (glitches are real); (b) pipelining cuts total
glitching; (c) the glitch-aware cut is no worse than the naive
mid-depth cut; (d) classic min-period retiming shortens the
correlator's clock period.
"""

import networkx as nx
from conftest import shape

from repro.logic.eventsim import EventSimulator
from repro.logic.generators import chained_adder_tree
from repro.logic.simulate import collect_activity, random_vectors
from repro.optimization.retiming import (
    evaluate_power_retiming,
    is_legal_retiming,
    min_period_retiming,
    retimed_period,
)


def test_fig9_low_power_retiming(once):
    def experiment():
        circuit = chained_adder_tree(4, 4)
        vectors = random_vectors(circuit.inputs, 150, seed=51)
        timed = EventSimulator(circuit).run(vectors)
        functional = collect_activity(circuit, vectors)
        report = evaluate_power_retiming(circuit, vectors)
        return timed, functional, report

    timed, functional, report = once(experiment)

    print()
    print("Fig. 9 retiming for low power (4-bit, 4-stage adder chain):")
    glitch_ratio = timed.switched_capacitance \
        / functional.switched_capacitance
    print(f"  glitch factor (event/zero-delay)  : {glitch_ratio:5.2f}x")
    print(f"  combinational power               : "
          f"{report.combinational_power:8.2f}")
    print(f"  mid-depth cut (level "
          f"{report.depth_cut_level:2d}, {report.depth_cut_registers:2d}"
          f" regs)  : {report.depth_cut_power:8.2f}")
    print(f"  glitch-aware cut (level "
          f"{report.low_power_level:2d}, {report.low_power_registers:2d}"
          f" regs): {report.low_power_cut_power:8.2f}")

    shape("glitching inflates real power by > 20%", glitch_ratio > 1.2)
    shape("glitch-aware placement no worse than naive",
          report.low_power_cut_power <= report.depth_cut_power * 1.001)


def test_fig9_min_period_retiming(benchmark):
    """Leiserson-Saxe on the classic correlator."""

    def build():
        g = nx.DiGraph()
        g.add_node("host", delay=0.0)
        for name, delay in [("d1", 3.0), ("d2", 3.0), ("d3", 3.0),
                            ("p1", 7.0), ("p2", 7.0), ("p3", 7.0),
                            ("p0", 7.0)]:
            g.add_node(name, delay=delay)
        for u, v, w in [("host", "d1", 1), ("d1", "d2", 1),
                        ("d2", "d3", 1), ("d3", "p3", 0),
                        ("p3", "p2", 0), ("p2", "p1", 0),
                        ("p1", "p0", 0), ("p0", "host", 0),
                        ("d1", "p1", 0), ("d2", "p2", 0)]:
            g.add_edge(u, v, weight=w)
        return g

    def retime():
        g = build()
        base = retimed_period(g, {n: 0 for n in g.nodes})
        period, retiming = min_period_retiming(g)
        return g, base, period, retiming

    g, base, period, retiming = benchmark(retime)
    print()
    print(f"  correlator period: {base:.0f} -> {period:.0f} "
          f"(retiming {dict(sorted(retiming.items()))})")
    shape("retiming is legal", is_legal_retiming(g, retiming))
    shape("period improves", period < base)
    shape("achieved period matches claim",
          abs(retimed_period(g, retiming) - period) < 1e-9)
