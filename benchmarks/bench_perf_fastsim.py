"""Perf — bit-parallel compiled engine vs. scalar reference.

Not a paper figure: this bench guards the engineering claim that makes
the paper's experiments cheap to rerun.  The compiled bit-parallel
engine must (a) stay bit-identical to the scalar reference and (b) be
at least 5x faster on batches of >= 64 vectors — combinational and
sequential.  Measured speedups are recorded in ``BENCH_fastsim.json``
at the repo root.
"""

from _perf_common import REPO_ROOT, measure, record

from conftest import shape

from repro.logic import fastsim
from repro.logic.generators import counter, random_logic
from repro.logic.simulate import (
    _collect_activity_reference,
    random_vectors,
)

RESULTS_PATH = REPO_ROOT / "BENCH_fastsim.json"


def _measure(fn, min_repeat: int = 1) -> float:
    return measure(fn, repeats=min_repeat)


def _record(entry: dict) -> None:
    record(RESULTS_PATH, entry.pop("key"), entry)


def _compare(circuit, vectors, key, repeats=3):
    # Compile (and warm the plan cache) outside the timed region; the
    # scalar engine gets the same treatment for its topo/caps caches.
    fastsim.compile_circuit(circuit)
    fast_report = fastsim.collect_activity(circuit, vectors)
    ref_report = _collect_activity_reference(circuit, vectors)

    shape("engines bit-identical before timing",
          fast_report.toggles == ref_report.toggles
          and fast_report.ones == ref_report.ones
          and fast_report.switched_capacitance
          == ref_report.switched_capacitance
          and fast_report.clock_capacitance
          == ref_report.clock_capacitance)

    t_ref = _measure(lambda: _collect_activity_reference(circuit,
                                                         vectors))
    t_fast = _measure(lambda: fastsim.collect_activity(circuit, vectors),
                      min_repeat=repeats)
    speedup = t_ref / max(t_fast, 1e-9)
    _record({
        "key": key,
        "circuit": circuit.name,
        "gates": circuit.gate_count(),
        "vectors": len(vectors),
        "reference_s": round(t_ref, 6),
        "fast_s": round(t_fast, 6),
        "speedup": round(speedup, 2),
    })
    return t_ref, t_fast, speedup


def test_perf_combinational_batches(once):
    """>= 5x on 64-vector batches; larger batches amortize further."""
    circuit = random_logic(24, 600, 8, seed=3)

    def experiment():
        results = {}
        for n in (64, 256):
            vectors = random_vectors(circuit.inputs, n, seed=n)
            results[n] = _compare(circuit, vectors,
                                  key=f"combinational_{n}")
        return results

    results = once(experiment)
    print()
    print("Perf: compiled bit-parallel vs scalar reference "
          f"({circuit.gate_count()} gates):")
    for n, (t_ref, t_fast, speedup) in sorted(results.items()):
        print(f"  {n:4d} vectors: scalar {t_ref * 1e3:8.1f} ms, "
              f"fast {t_fast * 1e3:6.1f} ms  ->  {speedup:6.1f}x")

    for n, (_, _, speedup) in results.items():
        shape(f"fast engine >= 5x at {n}-vector batch (got "
              f"{speedup:.1f}x)", speedup >= 5.0)
    shape("bigger batches amortize at least as well",
          results[256][2] >= 0.8 * results[64][2])


def test_perf_sequential_feedback(once):
    """Feedback circuits bound the win (fixed-point iteration per
    chunk) but must still clear the 5x gate on long traces."""
    circuit = counter(16)

    def experiment():
        vectors = [{"en": 1}] * 2000
        return _compare(circuit, vectors, key="sequential_2000")

    t_ref, t_fast, speedup = once(experiment)
    print()
    print(f"Perf: sequential counter(16) x 2000 cycles: scalar "
          f"{t_ref * 1e3:.1f} ms, fast {t_fast * 1e3:.1f} ms  ->  "
          f"{speedup:.1f}x")
    shape(f"sequential >= 5x on long traces (got {speedup:.1f}x)",
          speedup >= 5.0)
