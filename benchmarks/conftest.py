"""Shared helpers for the experiment benches.

Every bench regenerates one of the paper's evaluation artifacts
(Table I, the behaviours of Figs. 2-9, or a quantitative claim from
the text) and asserts its *shape*: who wins, by roughly what factor,
where the crossovers fall.  Timings come from pytest-benchmark; the
reproduced numbers are printed (run with ``-s`` to see them) and
recorded in EXPERIMENTS.md.
"""

import pytest


def shape(msg: str, condition: bool) -> None:
    """Assert a paper-shape claim with a readable message."""
    assert condition, f"paper-shape violated: {msg}"


@pytest.fixture
def once(benchmark):
    """Run an expensive experiment exactly once under the timer."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1,
                                  warmup_rounds=0)

    return runner
