"""Perf — BDD engine: fused and_exists image, ordering, sifting.

Not a paper figure: this bench guards the engineering claims of the
BDD engine overhaul.  Three workloads, all recorded in
``BENCH_bdd.json`` at the repo root:

- symbolic reachability on counter/shift-register FSMs, fused
  ``and_exists`` image vs. the conjoin-then-quantify baseline it
  replaced — the fused path must be measurably faster and reach the
  same state sets,
- exact signal probabilities on generated datapath blocks
  (multiplier, magnitude comparator) under the DFS-fanin static order
  vs. declaration order — node counts and build time,
- sifting reordering on a deliberately bad (grouped) variable order —
  before/after node counts; sifting must find the interleaved order.

Manager telemetry (``stats()``) is recorded alongside the timings so
cache hit rates are visible in the JSON history.
"""

from _perf_common import REPO_ROOT, measure, record

from conftest import shape

from repro.bdd import BddManager
from repro.fsm.symbolic import reachable_states
from repro.logic.bdd_bridge import build_bdds
from repro.logic.generators import (
    array_multiplier,
    counter,
    equality_comparator,
    magnitude_comparator,
    shift_register,
)

RESULTS_PATH = REPO_ROOT / "BENCH_bdd.json"


def _trim_stats(stats: dict) -> dict:
    keep = ("nodes_live", "nodes_peak", "ite_cache_hits",
            "ite_cache_misses", "and_exists_cache_hits",
            "and_exists_cache_misses", "gc_runs", "reorders")
    return {k: stats[k] for k in keep}


def _compare_image(circuit, key, repeats=3):
    """Fused vs. conjoin-then-quantify reachability on one FSM."""
    mgr_base, reached_base, state_vars = reachable_states(circuit,
                                                          fused=False)
    mgr_fused, reached_fused, _ = reachable_states(circuit, fused=True)
    states_base = reached_base.sat_count(state_vars)
    states_fused = reached_fused.sat_count(state_vars)
    shape(f"{key}: fused image reaches the same state set",
          states_base == states_fused)

    t_base = measure(lambda: reachable_states(circuit, fused=False),
                     repeats=repeats)
    t_fused = measure(lambda: reachable_states(circuit, fused=True),
                      repeats=repeats)
    speedup = t_base / max(t_fused, 1e-9)
    record(RESULTS_PATH, key, {
        "circuit": circuit.name,
        "latches": len(circuit.latches),
        "reachable_states": states_fused,
        "conjoin_quantify_s": round(t_base, 6),
        "fused_s": round(t_fused, 6),
        "speedup": round(speedup, 2),
        "stats": _trim_stats(mgr_fused.stats()),
    })
    return t_base, t_fused, speedup


def test_perf_fused_image(once):
    """and_exists image must beat conjoin-then-quantify on every FSM
    and by a solid margin overall."""
    workloads = [
        (shift_register(20), "image_shift_register_20"),
        (counter(8), "image_counter_8"),
    ]

    def experiment():
        return {key: _compare_image(circuit, key)
                for circuit, key in workloads}

    results = once(experiment)
    print()
    print("Perf: fused and_exists image vs conjoin-then-quantify:")
    for key, (t_base, t_fused, speedup) in results.items():
        print(f"  {key:28s}: conjoin {t_base * 1e3:7.1f} ms, "
              f"fused {t_fused * 1e3:7.1f} ms  ->  {speedup:5.2f}x")

    product = 1.0
    for key, (_, _, speedup) in results.items():
        shape(f"fused image faster on {key} (got {speedup:.2f}x)",
              speedup >= 1.02)
        product *= speedup
    geomean = product ** (1.0 / len(results))
    shape(f"fused image measurably faster overall "
          f"(geomean {geomean:.2f}x >= 1.08x)", geomean >= 1.08)


def test_perf_exact_probability_ordering(once):
    """Exact probabilities on datapath blocks; the DFS-fanin static
    order must not blow up where declaration order does."""
    workloads = [
        (array_multiplier(4), "probability_multiplier_4"),
        (magnitude_comparator(12), "probability_magnitude_cmp_12"),
    ]

    def run(circuit, order):
        bdds = build_bdds(circuit, order=order)
        probs = {net: bdds[net].probability()
                 for net in circuit.outputs}
        mgr = bdds[circuit.outputs[0]].manager
        return probs, mgr.size()

    def experiment():
        results = {}
        for circuit, key in workloads:
            probs_dfs, nodes_dfs = run(circuit, "dfs")
            probs_decl, nodes_decl = run(circuit, "declare")
            shape(f"{key}: probabilities independent of the order",
                  probs_dfs == probs_decl)
            t_dfs = measure(lambda: run(circuit, "dfs"), repeats=3)
            record(RESULTS_PATH, key, {
                "circuit": circuit.name,
                "gates": circuit.gate_count(),
                "dfs_order_nodes": nodes_dfs,
                "declare_order_nodes": nodes_decl,
                "dfs_build_and_probability_s": round(t_dfs, 6),
            })
            results[key] = (nodes_dfs, nodes_decl, t_dfs)
        return results

    results = once(experiment)
    print()
    print("Perf: exact probabilities, DFS-fanin vs declaration order:")
    for key, (nodes_dfs, nodes_decl, t_dfs) in results.items():
        print(f"  {key:30s}: dfs {nodes_dfs:6d} nodes, "
              f"declare {nodes_decl:6d} nodes, "
              f"dfs build+prob {t_dfs * 1e3:6.1f} ms")

    nodes_dfs, nodes_decl, _ = results["probability_magnitude_cmp_12"]
    shape("DFS order avoids the comparator blow-up "
          f"({nodes_dfs} vs {nodes_decl} nodes)",
          nodes_dfs * 10 <= nodes_decl)


def test_perf_sifting_reorder(once):
    """Sifting must rescue a grouped (worst-case) comparator order."""
    width = 10

    def experiment():
        mgr = BddManager()
        # Deliberately bad: all a-bits before all b-bits.  The optimal
        # order interleaves them; sifting has to discover that.
        for i in range(width):
            mgr.var(f"a{i}")
        for i in range(width):
            mgr.var(f"b{i}")
        circuit = equality_comparator(width)
        outs = build_bdds(circuit, mgr, nets=circuit.outputs,
                          order="declare")
        eq = outs[circuit.outputs[0]]
        before = eq.node_count()
        t_reorder = measure(lambda: mgr.reorder(method="sifting"))
        after = eq.node_count()
        record(RESULTS_PATH, f"sifting_equality_cmp_{width}", {
            "circuit": circuit.name,
            "grouped_order_nodes": before,
            "sifted_nodes": after,
            "reduction": round(1.0 - after / before, 4),
            "reorder_s": round(t_reorder, 6),
            "stats": _trim_stats(mgr.stats()),
        })
        return before, after, t_reorder

    before, after, t_reorder = once(experiment)
    print()
    print(f"Perf: sifting on grouped equality_comparator({width}): "
          f"{before} -> {after} nodes in {t_reorder * 1e3:.0f} ms")
    shape(f"sifting reduces the grouped order at least 4x "
          f"({before} -> {after})", after * 4 <= before)
    # The interleaved optimum for equality is 3*width nodes; sifting
    # should land on it (or very near it).
    shape(f"sifting finds a near-optimal order ({after} nodes)",
          after <= 6 * width)
