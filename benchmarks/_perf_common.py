"""Shared plumbing for the perf benches.

Both perf benches (``bench_perf_fastsim.py``, ``bench_perf_bdd.py``)
record their measurements in a JSON file at the repo root with one
schema: a flat object keyed by experiment name, each entry carrying the
workload description plus timings/speedups.  Keeping the writer here
means the files stay diffable against each other and any future perf
bench inherits the format for free.
"""

import json
import time
from pathlib import Path
from typing import Callable, Dict

REPO_ROOT = Path(__file__).resolve().parent.parent


def measure(fn: Callable[[], object], repeats: int = 1) -> float:
    """Best-of-N wall time of ``fn`` in seconds."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def record(path: Path, key: str, entry: Dict) -> None:
    """Merge ``entry`` under ``key`` into the JSON results file."""
    data = {}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except ValueError:
            data = {}
    data[key] = entry
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
