"""Shared plumbing for the perf benches.

Both perf benches (``bench_perf_fastsim.py``, ``bench_perf_bdd.py``)
record their measurements in a JSON file at the repo root with one
schema: a flat object keyed by experiment name, each entry carrying the
workload description plus timings/speedups.  Keeping the writer here
means the files stay diffable against each other and any future perf
bench inherits the format for free.

The orchestrator (``python -m repro bench``) runs benches
concurrently, so :func:`record` must survive parallel writers to the
same file: merges are serialized through a sidecar lockfile
(``O_CREAT | O_EXCL``, the portable primitive) and the updated JSON is
published atomically via a temp file + ``os.replace`` — a reader never
sees a half-written file, and two writers never drop each other's
keys.
"""

import json
import os
import time
from pathlib import Path
from typing import Callable, Dict

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Give up on a stuck lock after this long; a crashed writer's stale
#: lockfile is broken rather than deadlocking every future bench.
_LOCK_TIMEOUT_S = 30.0


def measure(fn: Callable[[], object], repeats: int = 1) -> float:
    """Best-of-N wall time of ``fn`` in seconds."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


class _FileLock:
    """Minimal cross-process lockfile (create-exclusive + retry)."""

    def __init__(self, path: Path,
                 timeout: float = _LOCK_TIMEOUT_S) -> None:
        self.path = path
        self.timeout = timeout

    def __enter__(self) -> "_FileLock":
        deadline = time.monotonic() + self.timeout
        while True:
            try:
                fd = os.open(str(self.path),
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                os.write(fd, str(os.getpid()).encode())
                os.close(fd)
                return self
            except FileExistsError:
                if time.monotonic() >= deadline:
                    # Stale lock (crashed writer): break it and go on.
                    try:
                        os.unlink(str(self.path))
                    except FileNotFoundError:
                        pass
                    deadline = time.monotonic() + self.timeout
                time.sleep(0.05)

    def __exit__(self, exc_type, exc, tb) -> None:
        try:
            os.unlink(str(self.path))
        except FileNotFoundError:
            pass


def record(path: Path, key: str, entry: Dict) -> None:
    """Merge ``entry`` under ``key`` into the JSON results file.

    Safe against concurrent writers: the read-merge-write cycle runs
    under a lockfile and the result lands via ``os.replace``.
    """
    with _FileLock(path.with_name(path.name + ".lock")):
        data = {}
        if path.exists():
            try:
                data = json.loads(path.read_text())
            except ValueError:
                data = {}
        data[key] = entry
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        tmp.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, path)
