"""Perf — compiled tick-wheel timed engine vs. event-driven reference.

Not a paper figure: this bench guards the engineering claim that makes
the glitch-aware ground truth cheap.  Every relative claim in the
survey is judged against timed simulation (Section II "real delay",
the retiming study of Section III-J), so the fig9 circuits — the deep
adder chain and its glitch-aware pipelined cut — are the workload: the
tick-wheel engine must (a) stay bit-identical to the event-driven
reference, ``events`` and ``glitches`` tallies included, and (b) be at
least 10x faster at 4096 packed cycles.  Measured speedups are
recorded in ``BENCH_eventsim.json`` at the repo root.
"""

from _perf_common import REPO_ROOT, measure, record

from conftest import shape

from repro.logic import fasttimer
from repro.logic.eventsim import EventSimulator
from repro.logic.fastsim import random_packed_vectors
from repro.logic.generators import chained_adder_tree
from repro.optimization.retiming import pipeline_at_level

RESULTS_PATH = REPO_ROOT / "BENCH_eventsim.json"

N_CYCLES = 4096


def _compare(circuit, key, repeats=3):
    packed = random_packed_vectors(circuit.inputs, N_CYCLES, seed=51)
    # Warm the compiled plans (tick schedule + functional plan) and
    # the reference engine's topo/fanout caches outside timing.
    fasttimer.compile_timed(circuit)
    fast_report = EventSimulator(circuit, engine="fast").run(packed)
    ref_report = EventSimulator(circuit, engine="reference").run(packed)

    shape("engines bit-identical before timing (toggles/ones/"
          "glitches/events/switched/clock)", fast_report == ref_report)

    t_ref = measure(
        lambda: EventSimulator(circuit, engine="reference").run(packed))
    t_fast = measure(
        lambda: EventSimulator(circuit, engine="fast").run(packed),
        repeats=repeats)
    speedup = t_ref / max(t_fast, 1e-9)
    record(RESULTS_PATH, key, {
        "circuit": circuit.name,
        "gates": circuit.gate_count(),
        "registers": len(circuit.latches),
        "cycles": N_CYCLES,
        "glitches": ref_report.glitches,
        "reference_s": round(t_ref, 6),
        "fast_s": round(t_fast, 6),
        "speedup": round(speedup, 2),
    })
    return t_ref, t_fast, speedup


def test_perf_timed_fig9_circuits(once):
    """>= 10x on the fig9 adder chain, flat and pipelined."""
    flat = chained_adder_tree(4, 4)
    piped, _regs = pipeline_at_level(flat, max(1, flat.depth() // 2),
                                     name="addchain4x4_piped")

    def experiment():
        return {
            "combinational": _compare(flat, key="fig9_flat_4096"),
            "pipelined": _compare(piped, key="fig9_pipelined_4096"),
        }

    results = once(experiment)
    print()
    print(f"Perf: tick-wheel timed engine vs event-driven reference "
          f"({N_CYCLES} packed cycles):")
    for label, (t_ref, t_fast, speedup) in results.items():
        print(f"  {label:13s}: reference {t_ref * 1e3:8.1f} ms, "
              f"fast {t_fast * 1e3:6.1f} ms  ->  {speedup:6.1f}x")

    for label, (_, _, speedup) in results.items():
        shape(f"timed fast engine >= 10x on {label} fig9 circuit "
              f"(got {speedup:.1f}x)", speedup >= 10.0)
