"""Perf — plan store warm starts and the estimation service.

Not a paper figure: this bench guards the serving-layer claim behind
``python -m repro serve`` — that content-addressed plan caching turns
repeated estimation of the same structure from a recompile into a
rehydrate.  Two measurements land in ``BENCH_serve.json``:

- ``warm_vs_cold_sharded``: end-to-end sharded ``timed_activity``
  with every process forced to recompile (cold) vs. the same run
  rehydrating plans from a pre-seeded disk store (warm).  The warm
  path must win by >= 1.5x; the measured ratio is recorded under
  ``speedup`` so the orchestrator's regression gate tracks it against
  the committed baseline.
- ``loadgen``: a mixed batch of >= 1000 estimation jobs pushed
  through a live :class:`repro.serve.EstimationServer`, recording
  p50/p99 job latency, throughput, and the plan-store hit rate.
"""

import tempfile

from _perf_common import REPO_ROOT, measure, record

from conftest import shape

from repro import serve
from repro import store as artifact_store
from repro.logic import fastsim, fasttimer
from repro.logic.generators import random_logic
from repro.store import ArtifactStore

RESULTS_PATH = REPO_ROOT / "BENCH_serve.json"

#: The warm/cold workload: one structure, rebuilt fresh per round so
#: the only cross-round channel is the plan store under test.
_SEED = 7
_CYCLES = 512
_WORKERS = 2


def _circuit():
    return random_logic(20, 700, 8, seed=_SEED)


def _sharded_run(circuit, vectors):
    return fasttimer.timed_activity(circuit, vectors,
                                    workers=_WORKERS, engine="fast")


def test_perf_warm_vs_cold_sharded(once):
    """Warm-store sharded fasttimer >= 1.5x over cold recompile.

    Cold rounds run with a zero-capacity store, so the parent and
    every forked shard worker compiles its plans from scratch — the
    pre-store behavior.  Warm rounds install a fresh
    :class:`ArtifactStore` over a pre-seeded directory, so every
    process rehydrates instead (the mem layer starts empty: this is
    the disk-crossing path a new pool worker takes).
    """
    vectors = fastsim.random_packed_vectors(
        _circuit().inputs, _CYCLES, seed=3)

    def experiment():
        prev = artifact_store.get_store()
        with tempfile.TemporaryDirectory(
                prefix="repro-bench-store-") as tmp:
            try:
                # -- cold: nothing caches, everything recompiles ----
                artifact_store.set_store(
                    ArtifactStore(root=None, mem_entries=0))
                cold_report = _sharded_run(_circuit(), vectors)
                t_cold = measure(
                    lambda: _sharded_run(_circuit(), vectors),
                    repeats=3)

                # -- seed the disk store once ----------------------
                artifact_store.set_store(ArtifactStore(root=tmp))
                _sharded_run(_circuit(), vectors)

                # -- warm: fresh store instance, same directory ----
                def warm_run():
                    artifact_store.set_store(ArtifactStore(root=tmp))
                    return _sharded_run(_circuit(), vectors)

                warm_report = warm_run()
                t_warm = measure(warm_run, repeats=3)
            finally:
                artifact_store.set_store(prev)
        return cold_report, warm_report, t_cold, t_warm

    cold_report, warm_report, t_cold, t_warm = once(experiment)

    shape("warm rehydrate is bit-identical to cold compile",
          warm_report.toggles == cold_report.toggles
          and warm_report.events == cold_report.events
          and warm_report.glitches == cold_report.glitches)

    speedup = t_cold / max(t_warm, 1e-9)
    record(RESULTS_PATH, "warm_vs_cold_sharded", {
        "circuit": f"random_logic(20, 700, 8, seed={_SEED})",
        "cycles": _CYCLES,
        "workers": _WORKERS,
        "cold_s": round(t_cold, 6),
        "warm_s": round(t_warm, 6),
        "speedup": round(speedup, 2),
    })
    print()
    print(f"Perf: sharded fasttimer, cold {t_cold * 1e3:.1f} ms vs "
          f"warm store {t_warm * 1e3:.1f} ms  ->  {speedup:.1f}x")
    shape(f"warm store >= 1.5x over cold recompile (got "
          f"{speedup:.2f}x)", speedup >= 1.5)


def _loadgen_jobs(n_jobs: int):
    """A deterministic mix of >= n_jobs estimation jobs.

    A handful of distinct structures times many seeds: realistic
    serving traffic, where structure cardinality is far below request
    cardinality — the regime the plan store targets.
    """
    mix = [
        ({"generator": "ripple_carry_adder", "params": {"width": 8}},
         "simulation", 128, 1),
        ({"generator": "ripple_carry_adder", "params": {"width": 12}},
         "simulation", 128, 1),
        ({"generator": "counter", "params": {"width": 8}},
         "event-driven", 128, 1),
        ({"generator": "parity_tree", "params": {"width": 16}},
         "simulation", 128, 1),
        ({"generator": "parity_tree", "params": {"width": 8}},
         "probabilistic", 64, 1),
        ({"generator": "random_logic",
          "params": {"n_inputs": 12, "n_gates": 120, "n_outputs": 4,
                     "seed": 9}},
         "simulation", 256, 2),
    ]
    jobs = []
    k = 0
    while len(jobs) < n_jobs:
        circuit, technique, cycles, shards = mix[k % len(mix)]
        job = {"circuit": circuit, "technique": technique,
               "cycles": cycles, "seed": k, "id": k}
        if shards > 1:
            job["shards"] = shards
        jobs.append(job)
        k += 1
    return jobs


def test_perf_serve_loadgen(once):
    """>= 1000 mixed jobs through a live server; record the tail."""
    n_jobs = 1000
    batch_size = 250

    def experiment():
        jobs = _loadgen_jobs(n_jobs)
        summaries = []
        with serve.EstimationServer(workers=4) as server:
            client = serve.Client(*server.address, timeout=600.0)
            for lo in range(0, len(jobs), batch_size):
                out = client.estimate(jobs[lo:lo + batch_size])
                summaries.append(out["summary"])
            stats = client.stats()
        return summaries, stats

    summaries, stats = once(experiment)

    ok = sum(s["ok"] for s in summaries)
    failed = sum(s["failed"] for s in summaries)
    wall_s = sum(s["wall_ms"] for s in summaries) / 1e3
    hits = sum(s["store_hits"] for s in summaries)
    misses = sum(s["store_misses"] for s in summaries)
    hit_rate = hits / max(hits + misses, 1)
    throughput = ok / max(wall_s, 1e-9)

    record(RESULTS_PATH, "loadgen", {
        "jobs": n_jobs,
        "workers": 4,
        "batch_size": batch_size,
        "ok": ok,
        "failed": failed,
        "wall_s": round(wall_s, 3),
        "throughput_jobs_s": round(throughput, 1),
        "p50_ms": stats["latency"]["p50_ms"],
        "p99_ms": stats["latency"]["p99_ms"],
        "store_hit_rate": round(hit_rate, 4),
    })
    print()
    print(f"Perf: loadgen {n_jobs} jobs in {wall_s:.1f}s "
          f"({throughput:.0f} jobs/s), p50 "
          f"{stats['latency']['p50_ms']:.1f} ms, p99 "
          f"{stats['latency']['p99_ms']:.1f} ms, store hit rate "
          f"{hit_rate:.2%}")

    shape(f"all {n_jobs} jobs succeed ({failed} failed)", failed == 0)
    shape(f"plan store absorbs repeated structures (hit rate "
          f"{hit_rate:.2%} < 90%)", hit_rate >= 0.90)
    shape("latency percentiles recorded",
          stats["latency"]["p99_ms"] >= stats["latency"]["p50_ms"] > 0)
