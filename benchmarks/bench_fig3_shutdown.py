"""F3 — Fig. 3: the static shutdown strategy and its timeout tradeoff.

Paper: a device is powered down only T time units after entering the
Idle state; the achievable improvement is bounded by 1 + T_I/T_A, and
the static policy wastes the first T units of every idle period.

Shape: energy is monotone in T over the sweep (smaller timeout = less
idle-on waste on this heavy-tailed workload), every static point stays
below the oracle bound, and even the best static point loses to the
oracle because of the timeout waste.
"""

from conftest import shape

from repro.optimization.shutdown import (
    OraclePolicy,
    StaticTimeoutPolicy,
    breakeven_time,
    generate_workload,
    simulate_policy,
)


def _sweep():
    workload = generate_workload(n_periods=400, seed=11,
                                 mean_active=8.0, mean_idle=150.0)
    be = breakeven_time()
    timeouts = [0.25 * be, 0.5 * be, be, 2 * be, 4 * be, 8 * be]
    reports = [simulate_policy(workload, StaticTimeoutPolicy(t))
               for t in timeouts]
    oracle = simulate_policy(workload, OraclePolicy(be))
    return workload, timeouts, reports, oracle


def test_fig3_static_timeout_sweep(once):
    workload, timeouts, reports, oracle = once(_sweep)

    print()
    print(f"Fig. 3 static shutdown (T_I/T_A = "
          f"{workload.total_idle / workload.total_active:.1f}, "
          f"bound 1 + T_I/T_A = {workload.shutdown_upper_bound():.1f}x):")
    for timeout, report in zip(timeouts, reports):
        print(f"  T = {timeout:7.2f} : improvement "
              f"{report.improvement:6.2f}x, sleeps {report.sleeps}")
    print(f"  oracle      : improvement {oracle.improvement:6.2f}x")

    improvements = [r.improvement for r in reports]
    shape("all static points improve over always-on",
          all(i > 1.0 for i in improvements))
    shape("energy monotone in T on a heavy-tailed workload",
          all(a >= b for a, b in zip(improvements, improvements[1:])))
    shape("oracle dominates every static point",
          all(oracle.improvement >= i for i in improvements))
    shape("static timeout wastes the first T units (strict gap)",
          oracle.improvement > max(improvements) * 1.02)
