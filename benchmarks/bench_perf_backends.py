"""Perf — numpy uint64 lane backend vs. the native bignum engine.

Not a paper figure: this bench guards the backend seam introduced by
``repro.backend``.  The same exec-compiled plans run on two word
representations — arbitrary-precision integers ("bignum", the fast
engine's native form) and little-endian ``uint64`` lane arrays
("numpy") — and must stay bit-identical while the lane backend pays
off on long traces:

- combinational narrow traces (>= 1M cycles): numpy >= 2x over bignum,
- feed-forward sequential traces (>= 1M cycles): numpy >= 2x,
- tight-feedback circuits (a counter): the lane backend *declines*
  during settling (``BackendUnavailable``) and the dispatcher falls
  back to bignum, so ``engine="numpy"`` stays within noise of
  ``engine="fast"`` instead of degrading by orders of magnitude.

Measured speedups are recorded in ``BENCH_backends.json`` at the repo
root and ratio-gated against the committed baseline by the bench
orchestrator.
"""

import pytest

from _perf_common import REPO_ROOT, measure, record

from conftest import shape

from repro.backend.core import numpy_available
from repro.logic import fastsim
from repro.logic.generators import counter, random_logic, shift_register
from repro.logic.simulate import collect_activity

RESULTS_PATH = REPO_ROOT / "BENCH_backends.json"

CYCLES = 1 << 20


def _record(entry: dict) -> None:
    record(RESULTS_PATH, entry.pop("key"), entry)


def _require_numpy() -> None:
    if not numpy_available():
        pytest.skip("numpy unavailable (or REPRO_NO_NUMPY=1)")


def _compare_backends(circuit, vectors, key, repeats=3):
    # Compile (and warm the plan cache) outside the timed region.
    fastsim.compile_circuit(circuit)
    big_report = fastsim.collect_activity(circuit, vectors)
    np_report = fastsim.collect_activity_backend(circuit, vectors,
                                                 backend="numpy")

    shape("backends bit-identical before timing",
          big_report.toggles == np_report.toggles
          and big_report.ones == np_report.ones
          and big_report.switched_capacitance
          == np_report.switched_capacitance
          and big_report.clock_capacitance
          == np_report.clock_capacitance)

    t_big = measure(lambda: fastsim.collect_activity(circuit, vectors),
                    repeats=repeats)
    t_np = measure(lambda: fastsim.collect_activity_backend(
        circuit, vectors, backend="numpy"), repeats=repeats)
    speedup = t_big / max(t_np, 1e-9)
    _record({
        "key": key,
        "circuit": circuit.name,
        "gates": circuit.gate_count(),
        "cycles": len(vectors),
        "bignum_s": round(t_big, 6),
        "numpy_s": round(t_np, 6),
        "speedup": round(speedup, 2),
    })
    return t_big, t_np, speedup


def test_perf_combinational_lanes(once):
    """Narrow combinational batch, one lane pass: numpy >= 2x."""
    _require_numpy()
    circuit = random_logic(16, 200, 4, seed=7)
    vectors = fastsim.random_packed_vectors(
        list(circuit.inputs), CYCLES, seed=1)

    t_big, t_np, speedup = once(
        lambda: _compare_backends(circuit, vectors,
                                  key="combinational_narrow_1m",
                                  repeats=5))
    print()
    print(f"Perf: combinational {circuit.gate_count()} gates x "
          f"{CYCLES} cycles: bignum {t_big * 1e3:.1f} ms, numpy "
          f"{t_np * 1e3:.1f} ms  ->  {speedup:.2f}x")
    shape(f"numpy backend >= 2x on >=1M-cycle narrow combinational "
          f"traces (got {speedup:.2f}x)", speedup >= 2.0)


def test_perf_sequential_feedforward_lanes(once):
    """Feed-forward sequential trace (register pipeline): settling
    converges in the register depth, so lane chunks stay large and
    numpy must clear 2x here too."""
    _require_numpy()
    circuit = shift_register(16)
    vectors = fastsim.random_packed_vectors(
        list(circuit.inputs), CYCLES, seed=5)

    t_big, t_np, speedup = once(
        lambda: _compare_backends(circuit, vectors,
                                  key="sequential_feedforward_1m",
                                  repeats=3))
    print()
    print(f"Perf: shift_register(16) x {CYCLES} cycles: bignum "
          f"{t_big * 1e3:.1f} ms, numpy {t_np * 1e3:.1f} ms  ->  "
          f"{speedup:.2f}x")
    shape(f"numpy backend >= 2x on >=1M-cycle feed-forward sequential "
          f"traces (got {speedup:.2f}x)", speedup >= 2.0)


def test_perf_tight_feedback_fallback(once):
    """Tight feedback: the lane backend declines (settling passes
    scale with the trace) and the public dispatcher falls back to
    bignum, so ``engine="numpy"`` must stay within noise of
    ``engine="fast"`` rather than losing by orders of magnitude."""
    _require_numpy()
    circuit = counter(12)
    vectors = fastsim.random_packed_vectors(
        list(circuit.inputs), CYCLES, seed=3)

    def experiment():
        fastsim.compile_circuit(circuit)
        fast_report = collect_activity(circuit, vectors, engine="fast")
        np_report = collect_activity(circuit, vectors, engine="numpy")
        shape("fallback dispatch bit-identical",
              fast_report.toggles == np_report.toggles
              and fast_report.ones == np_report.ones)
        t_fast = measure(lambda: collect_activity(circuit, vectors,
                                                  engine="fast"))
        t_np = measure(lambda: collect_activity(circuit, vectors,
                                                engine="numpy"))
        ratio = t_fast / max(t_np, 1e-9)
        _record({
            "key": "sequential_tight_feedback_fallback_1m",
            "circuit": circuit.name,
            "gates": circuit.gate_count(),
            "cycles": len(vectors),
            "fast_s": round(t_fast, 6),
            "numpy_dispatch_s": round(t_np, 6),
            "speedup": round(ratio, 2),
        })
        return t_fast, t_np, ratio

    t_fast, t_np, ratio = once(experiment)
    print()
    print(f"Perf: counter(12) x {CYCLES} cycles: fast "
          f"{t_fast * 1e3:.1f} ms, numpy-dispatch (bails to bignum) "
          f"{t_np * 1e3:.1f} ms  ->  {ratio:.2f}x")
    shape(f"settle bail keeps numpy dispatch within noise of the fast "
          f"engine (got {ratio:.2f}x, need >= 0.7x)", ratio >= 0.7)
