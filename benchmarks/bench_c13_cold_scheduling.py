"""C13 — Section III-A: cold scheduling.

Paper (Su et al. [6]): selecting/ordering instructions by their
transition power cost reduces instruction-bus switching when the
processor changes state between instructions; it is a list scheduler
driven by power cost.

Shape: over a population of basic blocks, cold scheduling preserves
architectural semantics, never increases bus toggles, and cuts them by
a solid average fraction; total program energy also drops (bus energy
is only part of the budget, so the energy saving is smaller than the
toggle saving).
"""

from conftest import shape

from repro.optimization.software_opt import evaluate_cold_scheduling
from repro.software import random_program


def test_c13_cold_scheduling(once):
    def experiment():
        reports = []
        for seed in range(8):
            block = random_program(70, seed=seed)[:-1]   # drop HALT
            reports.append(evaluate_cold_scheduling(
                block, memory_init=list(range(64))))
        return reports

    reports = once(experiment)
    print()
    print("C13 cold scheduling over 8 random basic blocks:")
    print(f"  {'block':>5s} {'toggles':>15s} {'reduction':>10s} "
          f"{'energy':>19s}")
    for k, r in enumerate(reports):
        print(f"  {k:5d} {r.original_toggles:6d} -> "
              f"{r.scheduled_toggles:6d} {r.toggle_reduction:10.1%} "
              f"{r.original_energy:8.1f} -> {r.scheduled_energy:8.1f}")
    mean_reduction = sum(r.toggle_reduction for r in reports) \
        / len(reports)
    print(f"  mean toggle reduction: {mean_reduction:.1%}")

    shape("semantics preserved on every block",
          all(r.equivalent for r in reports))
    shape("toggles never increase",
          all(r.scheduled_toggles <= r.original_toggles
              for r in reports))
    shape("mean toggle reduction is solid (> 10%)",
          mean_reduction > 0.10)
    shape("total energy drops on average",
          sum(r.scheduled_energy for r in reports)
          < sum(r.original_energy for r in reports))
    shape("energy saving is smaller than toggle saving (bus is only "
          "part of the budget)",
          1 - sum(r.scheduled_energy for r in reports)
          / sum(r.original_energy for r in reports) < mean_reduction)
