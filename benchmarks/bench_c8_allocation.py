"""C8 — Section III-E: activity-aware allocation savings.

Paper (Raghunathan-Jha [65]): simultaneous allocation with edge
weights W = Wc (1 - Ws) reduces power "between 5 and 33%" versus
switching-blind binding, while staying near the minimum resource
count.

Shape: across a set of scheduled dataflow kernels driven by correlated
data, activity-aware register allocation and FU binding never switch
more than the blind baselines and save a measurable fraction on
average (within/near the paper's 5-33% band), at equal or nearly
equal resource counts.
"""

import random

from conftest import shape

from repro.cdfg.schedule import list_schedule
from repro.cdfg.transforms import direct_polynomial, fir_filter
from repro.optimization.allocation import (
    allocate_registers,
    bind_functional_units,
)
from repro.rtl.streams import correlated_stream


def _kernels():
    return {
        "fir4": (fir_filter([3, 5, 7, 9], width=10),
                 {"mult": 2, "add": 1}),
        "fir6": (fir_filter([1, 4, 6, 4, 1, 2], width=10),
                 {"mult": 2, "add": 2}),
        "poly3": (direct_polynomial([3, 5, 7], width=10),
                  {"mult": 2, "add": 1}),
    }


def _correlated_inputs(cdfg, seed):
    names = [n.name for n in cdfg.nodes if n.kind == "input"]
    base = correlated_stream(cdfg.width, 100 + len(names), rho=0.9,
                             seed=seed).words
    return {name: base[i:i + 100] for i, name in enumerate(names)}


def test_c8_allocation_savings(once):
    def experiment():
        rows = []
        for k, (name, (cdfg, resources)) in enumerate(
                _kernels().items()):
            schedule = list_schedule(cdfg, resources)
            streams = _correlated_inputs(cdfg, seed=101 + 37 * k)

            blind_reg = allocate_registers(cdfg, schedule, streams,
                                           activity_aware=False)
            smart_reg = allocate_registers(cdfg, schedule, streams,
                                           activity_aware=True)
            blind_fu = bind_functional_units(cdfg, schedule, streams,
                                             activity_aware=False)
            smart_fu = bind_functional_units(cdfg, schedule, streams,
                                             activity_aware=True)
            blind_cost = blind_reg.switching_cost + sum(
                r.switching_cost for r in blind_fu.values())
            smart_cost = smart_reg.switching_cost + sum(
                r.switching_cost for r in smart_fu.values())
            rows.append((name, blind_cost, smart_cost,
                         blind_reg.n_resources, smart_reg.n_resources))
        return rows

    rows = once(experiment)
    print()
    print("C8 activity-aware allocation (bits switched/iteration):")
    print(f"  {'kernel':8s} {'blind':>8s} {'W=Wc(1-Ws)':>11s} "
          f"{'saving':>7s} {'regs':>9s}")
    savings = []
    for name, blind, smart, blind_regs, smart_regs in rows:
        saving = 1.0 - smart / blind if blind > 0 else 0.0
        savings.append(saving)
        print(f"  {name:8s} {blind:8.1f} {smart:11.1f} {saving:7.1%} "
              f"{blind_regs:4d}/{smart_regs:<4d}")
    mean_saving = sum(savings) / len(savings)
    print(f"  mean saving: {mean_saving:.1%}   [paper: 5-33%]")

    for (name, blind, smart, blind_regs, smart_regs), saving in zip(
            rows, savings):
        shape(f"{name}: activity-aware never worse",
              smart <= blind + 1e-9)
        shape(f"{name}: register count stays near minimal "
              "(within +2 of blind)",
              smart_regs <= blind_regs + 2)
    shape("mean saving in/near the paper's band (>= 3%)",
          mean_saving >= 0.03)


def test_c8_measured_on_synthesized_netlist(once):
    """Upgrade the proxy metric to implemented gates: the same
    schedule with activity-aware vs blind register allocation is
    synthesized to a real datapath and measured.  The proxy's ranking
    must carry over to the implemented design's measured energy."""

    def experiment():
        from repro.cdfg.datapath import synthesize_datapath
        from repro.optimization.lp_scheduling import greedy_binding

        cases = [
            ("poly3", direct_polynomial([3, 5, 7], width=6),
             {"mult": 2, "add": 1}, ["x"], 97),
            ("fir5", fir_filter([3, 5, 7, 9, 11], width=6),
             {"mult": 2, "add": 1}, [f"x{i}" for i in range(5)], 11),
        ]
        rows = []
        for name, cdfg, resources, names, seed in cases:
            schedule = list_schedule(cdfg, resources)
            binding = greedy_binding(cdfg, schedule, resources)
            base = correlated_stream(6, 24 + len(names), rho=0.9,
                                     seed=seed).words
            streams = {n: base[i:i + 24]
                       for i, n in enumerate(names)}
            result = {}
            for label, aware in [("blind", False), ("aware", True)]:
                allocation = allocate_registers(
                    cdfg, schedule, streams, activity_aware=aware)
                design = synthesize_datapath(
                    cdfg, schedule, binding, allocation.assignment,
                    width=6)
                outputs, energy = design.evaluate_stream(streams)
                for t in range(24):
                    words = {k: s[t] for k, s in streams.items()}
                    assert outputs[t]["y"] == cdfg.evaluate(words)["y"]
                result[label] = (allocation.switching_cost, energy / 24)
            rows.append((name, result))
        return rows

    rows = once(experiment)
    print()
    print("C8 measured on synthesized netlists (proxy | energy/iter):")
    for name, result in rows:
        b_proxy, b_energy = result["blind"]
        a_proxy, a_energy = result["aware"]
        print(f"  {name:6s} blind {b_proxy:6.2f} | {b_energy:8.2f}"
              f"   aware {a_proxy:6.2f} | {a_energy:8.2f}"
              f"   ({1 - a_energy / b_energy:+.1%} measured)")

    for name, result in rows:
        b_proxy, b_energy = result["blind"]
        a_proxy, a_energy = result["aware"]
        shape(f"{name}: proxy improves", a_proxy < b_proxy - 1e-9)
        shape(f"{name}: measured energy improves with the proxy",
              a_energy < b_energy)
