"""Perf — parallel candidate search vs the serial estimation walk.

Guards :mod:`repro.optimization.search`, the shared process-pool
executor every candidate-driven optimization loop now fans out
through.  The gated comparison is *architecture vs the paper-era
walk*: the serial leg runs one full :func:`collect_activity` per
candidate (what the passes did before the incremental engine), the
parallel leg runs the pooled executor — persistent workers, stimulus
shipped once per worker, per-worker cone caches warm-started from the
sweep's shared disk store, candidates spliced instead of resimulated.
On a box with real cores the pool adds concurrency on top; on a
single-core runner the win is the warm-start architecture alone, so
the gate holds either way.

The candidate population is the combined multi-pass sweep of
``bench_perf_incremental``: a guarded-evaluation bank, a clock-gating
``simplify_fraction`` sweep and a precomputation ``subset_size``
sweep — 24 candidate evaluations across three different stimuli.
Before any timing, the parallel results are asserted bit-identical to
both the serial executor walk (``workers=1``) and the raw
full-resimulation walk.  The serial *incremental* walk (PR 9's
engine, no pool) is recorded as an ungated reference ratio so the
entry shows how much of the win is splicing vs pooling.

A second, ungated entry exercises the annealing-restart fan-out of
:func:`low_power_encoding` and asserts the chosen encoding is
identical for any worker count.

Results land in ``BENCH_search.json`` at the repo root; the
``optimization_sweep`` entry's ``speedup`` is ratio-gated against the
committed baseline by the bench orchestrator.
"""

import random

from _perf_common import REPO_ROOT, measure, record

from conftest import shape

from repro.fsm import benchmark as fsm_benchmark
from repro.fsm.encoding import low_power_encoding
from repro.fsm.synthesis import synthesize_fsm
from repro.logic import incremental as inc
from repro.logic.fastsim import random_packed_vectors
from repro.logic.generators import magnitude_comparator
from repro.logic.netlist import Circuit
from repro.logic.simulate import collect_activity
from repro.optimization import search
from repro.optimization.clock_gating import build_gated_fsm
from repro.optimization.guarded_eval import (
    GuardCandidate,
    apply_guarded_evaluation,
)
from repro.optimization.precompute import (
    best_subset,
    build_precomputed_circuit,
    registered_baseline,
)

RESULTS_PATH = REPO_ROOT / "BENCH_search.json"

WORKERS = 4


def _record(entry: dict) -> None:
    record(RESULTS_PATH, entry.pop("key"), entry)


# ----------------------------------------------------------------------
# Workload builders (all outside the timed regions)
# ----------------------------------------------------------------------

def guarded_bank(blocks: int = 16, gates_per_block: int = 150,
                 ins_per_block: int = 8, seed: int = 11) -> Circuit:
    """A bank of independent guardable cones (see
    ``bench_perf_incremental``): blocks share no nets, so each guarded
    variant dirties ~1/blocks of the circuit."""
    rng = random.Random(seed)
    c = Circuit(f"bank{blocks}x{gates_per_block}")
    for b in range(blocks):
        ins = c.add_inputs([f"b{b}_i{j}" for j in range(ins_per_block)])
        c.add_input(f"b{b}_g")
        nets = list(ins)
        last = ins[0]
        for _ in range(gates_per_block):
            a, d = rng.choice(nets), rng.choice(nets)
            last = c.add_gate(
                rng.choice(["AND2", "OR2", "XOR2", "NAND2", "NOR2"]),
                [a, d])
            nets.append(last)
        z = c.add_gate("BUF", [last], output=f"b{b}_z")
        c.add_gate("MUX2", [z, f"b{b}_g", f"b{b}_g"], output=f"b{b}_y")
        c.add_output(f"b{b}_y")
    return c


def sweep_population():
    """(candidates, stimuli) for the combined multi-pass sweep.

    Candidates are ``(circuit, stimulus_key)`` pairs in the executor's
    native form; three passes contribute, each with its own stimulus.
    """
    candidates = []
    stimuli = {}

    # Guarded evaluation: base + one variant per candidate block.
    blocks = 16
    bank = guarded_bank(blocks=blocks)
    stimuli["bank"] = random_packed_vectors(list(bank.inputs), 65536,
                                            seed=1)
    candidates.append((bank, "bank"))
    for b in range(blocks):
        cand = GuardCandidate(guard=f"b{b}_g", guarded=f"b{b}_z",
                              cone_gates=1, guard_probability=0.5)
        candidates.append((apply_guarded_evaluation(bank, cand), "bank"))

    # Clock gating: plain machine + a simplify_fraction sweep.
    stg = fsm_benchmark("waiter")
    plain = synthesize_fsm(stg)
    stimuli["fsm"] = random_packed_vectors(list(plain.inputs), 8192,
                                           seed=2)
    candidates.append((plain, "fsm"))
    for fraction in (1.0, 0.6, 0.3):
        gated, _fa = build_gated_fsm(stg, simplify_fraction=fraction)
        candidates.append((gated, "fsm"))

    # Precomputation: registered baseline + a subset_size sweep.
    comp = magnitude_comparator(5)
    stimuli["comp"] = random_packed_vectors(list(comp.inputs), 8192,
                                            seed=3)
    candidates.append((registered_baseline(comp, "gt"), "comp"))
    for size in (1, 2):
        predictors = best_subset(comp, "gt", size)
        candidates.append(
            (build_precomputed_circuit(comp, "gt", predictors), "comp"))
    return candidates, stimuli


# ----------------------------------------------------------------------
# Benches
# ----------------------------------------------------------------------

def test_perf_parallel_candidate_sweep(once):
    """Pooled executor >= 2x over the serial full-resim walk."""
    candidates, stimuli = sweep_population()
    shape(f"population holds >= 24 candidates "
          f"(got {len(candidates)})", len(candidates) >= 24)

    def serial_full():
        return [collect_activity(c, stimuli[key])
                for c, key in candidates]

    def serial_incremental():
        cache = inc.ConeCache()
        return [inc.collect_activity_incremental(c, stimuli[key],
                                                 cache=cache)
                for c, key in candidates]

    def parallel():
        return search.evaluate_candidates(
            search.activity_job, candidates, stimuli=stimuli,
            extras={"incremental": True}, workers=WORKERS,
            label="bench_sweep")

    def run():
        full = serial_full()
        par = parallel()
        ser1 = search.evaluate_candidates(
            search.activity_job, candidates, stimuli=stimuli,
            extras={"incremental": True}, workers=1,
            label="bench_sweep_serial")
        for (c, _key), a, b, d in zip(candidates, full, par, ser1):
            shape(f"parallel report for {c.name} bit-identical to "
                  f"full resim", inc.reports_equal(a, b))
            shape(f"workers=1 report for {c.name} bit-identical to "
                  f"parallel", inc.reports_equal(b, d))

        t_full = measure(serial_full, repeats=3)
        t_par = measure(parallel, repeats=3)
        t_incr = measure(serial_incremental, repeats=3)
        return t_full, t_par, t_incr

    try:
        t_full, t_par, t_incr = once(run)
    finally:
        search.shutdown_pool()
    speedup = t_full / max(t_par, 1e-9)
    vs_incremental = t_incr / max(t_par, 1e-9)
    _record({
        "key": "optimization_sweep",
        "candidates": len(candidates),
        "workers": WORKERS,
        "cpus": __import__("os").cpu_count(),
        "serial_full_s": round(t_full, 6),
        "parallel_s": round(t_par, 6),
        "incremental_serial_s": round(t_incr, 6),
        "parallel_vs_incremental": round(vs_incremental, 3),
        "speedup": round(speedup, 2),
    })
    print()
    print(f"Perf: candidate sweep, {len(candidates)} candidates x "
          f"{WORKERS} workers: serial full {t_full * 1e3:.1f} ms, "
          f"parallel {t_par * 1e3:.1f} ms, incremental serial "
          f"{t_incr * 1e3:.1f} ms  ->  {speedup:.2f}x")
    shape(f"parallel candidate sweep >= 2x over the serial walk "
          f"(got {speedup:.2f}x)", speedup >= 2.0)


def test_perf_annealing_restarts(once):
    """Restart fan-out: identical winner for any worker count."""
    stg = fsm_benchmark("bbsse_like")

    def serial():
        return low_power_encoding(stg, seed=5, anneal_steps=2000,
                                  restarts=6, workers=1)

    def parallel():
        return low_power_encoding(stg, seed=5, anneal_steps=2000,
                                  restarts=6, workers=WORKERS)

    def run():
        e_ser = serial()
        e_par = parallel()
        shape("restart fan-out picks the identical encoding",
              e_ser.codes == e_par.codes)
        t_ser = measure(serial, repeats=2)
        t_par = measure(parallel, repeats=2)
        return t_ser, t_par

    try:
        t_ser, t_par = once(run)
    finally:
        search.shutdown_pool()
    _record({
        "key": "annealing_restarts",
        "restarts": 6,
        "workers": WORKERS,
        "serial_s": round(t_ser, 6),
        "parallel_s": round(t_par, 6),
        "ratio": round(t_ser / max(t_par, 1e-9), 3),
    })
    print()
    print(f"Perf: annealing restarts, 6 chains: serial "
          f"{t_ser * 1e3:.1f} ms, parallel {t_par * 1e3:.1f} ms")
