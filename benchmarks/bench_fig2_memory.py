"""F2 — Fig. 2: memory-access minimization by scalarizing an
intermediate array.

Paper: keeping b[i] in a register removes the 2n read/write accesses
of the intermediate array, cutting memory traffic and its energy.

Shape: same results, memory accesses drop from 4n to 2n (the b-array
round trip disappears), and total energy drops substantially because
memory/cache energy dominates this kernel.
"""

from conftest import shape

from repro.software import Machine, memory_optimized, memory_unoptimized


def _run_both(n):
    data = [k * 7 % 101 for k in range(n)]
    m1 = Machine()
    m1.load_memory(0, data)
    s1 = m1.run(memory_unoptimized(n))
    m2 = Machine()
    m2.load_memory(0, data)
    s2 = m2.run(memory_optimized(n))
    return m1, s1, m2, s2


def test_fig2_memory_optimization(benchmark):
    n = 128
    m1, s1, m2, s2 = benchmark(_run_both, n)

    print()
    print(f"Fig. 2 (n = {n}):")
    print(f"  b[] through memory : {s1.cache_accesses:5d} accesses, "
          f"{s1.cache_misses:3d} misses, energy {s1.energy:9.1f}")
    print(f"  b in a register    : {s2.cache_accesses:5d} accesses, "
          f"{s2.cache_misses:3d} misses, energy {s2.energy:9.1f}  "
          f"({1 - s2.energy / s1.energy:.1%} saved)")

    shape("results identical",
          m1.memory[2048:2048 + n] == m2.memory[2048:2048 + n])
    shape("unoptimized does 4n accesses", s1.cache_accesses == 4 * n)
    shape("optimized does 2n accesses", s2.cache_accesses == 2 * n)
    shape("optimized saves energy", s2.energy < s1.energy)
    shape("saving is substantial (> 25%)",
          s2.energy < 0.75 * s1.energy)
