"""Perf — incremental cone-of-influence re-estimation vs full resim.

Not a paper figure: this bench guards :mod:`repro.logic.incremental`,
the delta re-estimation engine the optimization passes run on.  Two
workload shapes, both gated:

- **Single-gate edit.**  A large combinational block is simulated
  once (priming the cone cache), then one gate deep in the netlist is
  retyped.  Re-estimating the edit resimulates only the dirty cone —
  the edited gate plus transitive fanout — and splices every other
  net's cached counts.  The report must be bit-identical to a full
  resimulation and land an order of magnitude faster.

- **Optimization sweep.**  The exact estimation workload the rewired
  passes issue: a clock-gating ``simplify_fraction`` sweep, a
  precomputation ``subset_size`` sweep, and a guarded-evaluation
  candidate sweep over a bank of independent guardable cones.  The
  circuit populations are built by the passes' own constructors
  (``build_gated_fsm``, ``build_precomputed_circuit``,
  ``apply_guarded_evaluation``); the BDD/synthesis discovery work is
  deliberately outside the timed region — this bench measures the
  *estimation core* those passes now share, full
  :func:`collect_activity` per candidate vs the cone cache.

Bit-identity is asserted with ``shape`` before any timing; measured
speedups are recorded in ``BENCH_incremental.json`` at the repo root
and ratio-gated against the committed baseline by the bench
orchestrator.  The incremental legs always run on a *fresh*
:class:`ConeCache` and (for the single-edit case) with
``populate=False`` on repeats, so no leg ever times a warm cache it
did not itself pay to fill.
"""

import random

from _perf_common import REPO_ROOT, measure, record

from conftest import shape

from repro.fsm import benchmark as fsm_benchmark
from repro.logic import incremental as inc
from repro.logic.fastsim import PackedVectors, random_packed_vectors
from repro.logic.netlist import Circuit
from repro.logic.simulate import collect_activity
from repro.optimization.clock_gating import build_gated_fsm
from repro.optimization.guarded_eval import (
    GuardCandidate,
    apply_guarded_evaluation,
)
from repro.optimization.precompute import (
    best_subset,
    build_precomputed_circuit,
)
from repro.fsm.synthesis import synthesize_fsm
from repro.logic.generators import magnitude_comparator, random_logic

RESULTS_PATH = REPO_ROOT / "BENCH_incremental.json"


def _record(entry: dict) -> None:
    record(RESULTS_PATH, entry.pop("key"), entry)


# ----------------------------------------------------------------------
# Workload builders (all outside the timed regions)
# ----------------------------------------------------------------------

def guarded_bank(blocks: int = 14, gates_per_block: int = 150,
                 ins_per_block: int = 8, seed: int = 11) -> Circuit:
    """A bank of independent guardable cones.

    Each block is a random gate cone over its own inputs, steered to
    an output by a per-block guard input — the mux-dominated shape
    guarded evaluation targets.  Blocks share no nets, so guarding
    block *b* dirties ~1/blocks of the circuit.
    """
    rng = random.Random(seed)
    c = Circuit(f"bank{blocks}x{gates_per_block}")
    for b in range(blocks):
        ins = c.add_inputs([f"b{b}_i{j}" for j in range(ins_per_block)])
        c.add_input(f"b{b}_g")
        nets = list(ins)
        last = ins[0]
        for _ in range(gates_per_block):
            a, d = rng.choice(nets), rng.choice(nets)
            last = c.add_gate(
                rng.choice(["AND2", "OR2", "XOR2", "NAND2", "NOR2"]),
                [a, d])
            nets.append(last)
        z = c.add_gate("BUF", [last], output=f"b{b}_z")
        c.add_gate("MUX2", [z, f"b{b}_g", f"b{b}_g"], output=f"b{b}_y")
        c.add_output(f"b{b}_y")
    return c


def bank_candidates(circuit: Circuit, blocks: int):
    """One guard candidate per bank block, constructed directly.

    ``find_guard_candidates`` would rediscover these with BDDs; the
    bench hands them over so the timed region holds estimation only.
    """
    return [GuardCandidate(guard=f"b{b}_g", guarded=f"b{b}_z",
                           cone_gates=1, guard_probability=0.5)
            for b in range(blocks)]


def sweep_population():
    """(circuit, packed stimulus) pairs for the combined sweep."""
    pairs = []

    # Guarded evaluation: base + one variant per candidate block.
    blocks = 20
    bank = guarded_bank(blocks=blocks)
    bank_vecs = random_packed_vectors(list(bank.inputs), 32768, seed=1)
    pairs.append((bank, bank_vecs))
    for cand in bank_candidates(bank, blocks):
        variant = apply_guarded_evaluation(bank, cand)
        pairs.append((variant, bank_vecs))

    # Clock gating: a simplify_fraction sweep re-measures the plain
    # machine alongside each gated variant (as evaluate_clock_gating
    # does per call).
    stg = fsm_benchmark("waiter")
    plain = synthesize_fsm(stg)
    fsm_vecs = random_packed_vectors(list(plain.inputs), 2048, seed=2)
    for fraction in (1.0, 0.6, 0.3):
        gated, _fa = build_gated_fsm(stg, simplify_fraction=fraction)
        pairs.append((plain, fsm_vecs))
        pairs.append((gated, fsm_vecs))

    # Precomputation: a subset_size sweep re-measures the registered
    # baseline alongside each precomputed variant.
    comp = magnitude_comparator(5)
    comp_vecs = random_packed_vectors(list(comp.inputs), 2048, seed=3)
    base = Circuit(f"{comp.name}_registered")
    base.add_inputs(comp.inputs)
    rename = {}
    for i, net in enumerate(comp.inputs):
        rename[net] = base.add_latch(net, output=f"r{i}_q")
    for gate in comp.topological_gates():
        rename[gate.output] = base.add_gate(
            gate.gate_type, [rename[n] for n in gate.inputs])
    base.add_gate("BUF", [rename["gt"]], output="f")
    base.add_output("f")
    for size in (1, 2):
        predictors = best_subset(comp, "gt", size)
        pre = build_precomputed_circuit(comp, "gt", predictors)
        pairs.append((base, comp_vecs))
        pairs.append((pre, comp_vecs))
    return pairs


# ----------------------------------------------------------------------
# Benches
# ----------------------------------------------------------------------

def test_perf_single_gate_edit(once):
    """One retyped gate in a large block: dirty cone only, >= 5x."""
    circuit = random_logic(32, 3000, 16, seed=3)
    vectors = random_packed_vectors(list(circuit.inputs), 1 << 17,
                                    seed=4)

    # Retype a gate near the outputs so the edit's fanout (and hence
    # the honest dirty region) stays a small fraction of the netlist.
    variant = circuit.clone("edited")
    gate = next(g for g in reversed(variant.gates[:-20])
                if len(g.inputs) == 2)
    gate.gate_type = "XNOR2" if gate.gate_type != "XNOR2" else "XOR2"
    variant.invalidate()

    def run():
        cache = inc.ConeCache()
        inc.prime(circuit, vectors, cache=cache)
        full = collect_activity(variant, vectors)
        delta, stats = inc.delta_activity(variant, vectors, cache=cache,
                                          populate=False)
        shape("single-edit delta bit-identical to full resim",
              inc.reports_equal(full, delta))
        shape("single-edit took the delta path",
              stats.source == "delta")

        t_full = measure(lambda: collect_activity(variant, vectors),
                         repeats=3)
        t_delta = measure(lambda: inc.delta_activity(
            variant, vectors, cache=cache, populate=False), repeats=3)
        return t_full, t_delta, stats

    t_full, t_delta, stats = once(run)
    speedup = t_full / max(t_delta, 1e-9)
    _record({
        "key": "single_gate_edit",
        "gates": circuit.gate_count(),
        "cycles": vectors.n,
        "dirty_nets": stats.dirty_nets,
        "reused_nets": stats.reused_nets,
        "full_s": round(t_full, 6),
        "delta_s": round(t_delta, 6),
        "speedup": round(speedup, 2),
    })
    print()
    print(f"Perf: single-gate edit, {circuit.gate_count()} gates x "
          f"{vectors.n} cycles, dirty {stats.dirty_nets}/"
          f"{stats.total_nets} nets: full {t_full * 1e3:.1f} ms, "
          f"delta {t_delta * 1e3:.1f} ms  ->  {speedup:.2f}x")
    shape(f"single-gate delta re-estimation >= 5x over full resim "
          f"(got {speedup:.2f}x)", speedup >= 5.0)


def test_perf_optimization_sweep(once):
    """Gating + precompute + guarded-eval sweep estimation >= 5x."""
    pairs = sweep_population()

    def full_sweep():
        return [collect_activity(c, v) for c, v in pairs]

    def incremental_sweep():
        cache = inc.ConeCache()
        return [inc.collect_activity_incremental(c, v, cache=cache)
                for c, v in pairs]

    def run():
        full = full_sweep()
        incr = incremental_sweep()
        for (c, _v), a, b in zip(pairs, full, incr):
            shape(f"sweep report for {c.name} bit-identical",
                  inc.reports_equal(a, b))
        t_full = measure(full_sweep, repeats=3)
        t_incr = measure(incremental_sweep, repeats=3)
        return t_full, t_incr

    t_full, t_incr = once(run)
    speedup = t_full / max(t_incr, 1e-9)
    _record({
        "key": "optimization_sweep",
        "candidates": len(pairs),
        "full_s": round(t_full, 6),
        "incremental_s": round(t_incr, 6),
        "speedup": round(speedup, 2),
    })
    print()
    print(f"Perf: optimization sweep, {len(pairs)} candidate "
          f"evaluations: full {t_full * 1e3:.1f} ms, incremental "
          f"{t_incr * 1e3:.1f} ms  ->  {speedup:.2f}x")
    shape(f"incremental sweep estimation >= 5x over full resim "
          f"(got {speedup:.2f}x)", speedup >= 5.0)
