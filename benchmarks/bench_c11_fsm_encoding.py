"""C11 — Section III-H: low-power state encoding.

Paper: encoding for low power embeds the STG in a hypercube so that
high-probability transitions sit at small Hamming distance; the cost
function is the probability-weighted switching, and the effect is
measured on the synthesized netlist.

Shape: across the FSM suite, the annealed low-power encoding achieves
the smallest (or tied-smallest) expected state-line switching; the
ranking carries over to synthesized-netlist power on average; and the
annealing phase improves on greedy-only construction (the DESIGN.md
ablation).
"""

import random

from conftest import shape

from repro.fsm import (
    benchmark as fsm_benchmark,
    binary_encoding,
    encoding_switching_cost,
    gray_encoding,
    low_power_encoding,
    one_hot_encoding,
    random_encoding,
    synthesize_fsm,
)
from repro.logic.simulate import collect_activity


def _netlist_power(stg, encoding, cycles=400, seed=81):
    circuit = synthesize_fsm(stg, encoding)
    rng = random.Random(seed)
    vectors = [{f"in{i}": rng.randrange(2) for i in range(stg.n_inputs)}
               for _ in range(cycles)]
    return collect_activity(circuit, vectors).average_power()


def test_c11_low_power_encoding(once):
    names = ["traffic", "handshake", "waiter", "dk_like", "bbsse_like"]

    def experiment():
        rows = []
        for name in names:
            stg = fsm_benchmark(name)
            encodings = {
                "binary": binary_encoding(stg),
                "gray": gray_encoding(stg),
                "random": random_encoding(stg, seed=2),
                "low-power": low_power_encoding(stg, seed=3),
            }
            switching = {k: encoding_switching_cost(stg, e)
                         for k, e in encodings.items()}
            power = {k: _netlist_power(stg, e)
                     for k, e in encodings.items()}
            rows.append((name, switching, power))
        return rows

    rows = once(experiment)
    print()
    print("C11 state encodings (switching bits/cycle | netlist power):")
    kinds = ["binary", "gray", "random", "low-power"]
    print(f"  {'fsm':12s}" + "".join(f" {k:>18s}" for k in kinds))
    for name, switching, power in rows:
        print(f"  {name:12s}" + "".join(
            f" {switching[k]:8.3f}|{power[k]:8.2f}" for k in kinds))

    for name, switching, _power in rows:
        shape(f"{name}: low-power encoding minimizes switching",
              switching["low-power"] <= min(switching.values()) + 1e-9)
    mean_lp = sum(p["low-power"] for _n, _s, p in rows) / len(rows)
    mean_rand = sum(p["random"] for _n, _s, p in rows) / len(rows)
    shape("low-power encoding beats random on synthesized power "
          "(suite average)", mean_lp < mean_rand)


def test_c11_annealing_ablation(once):
    def experiment():
        from repro.fsm.kiss import random_stg

        deltas = []
        for seed in range(5):
            stg = random_stg(10, 2, 1, seed=seed, self_loop_bias=0.3)
            greedy = low_power_encoding(stg, use_annealing=False)
            annealed = low_power_encoding(stg, seed=seed)
            deltas.append(
                (encoding_switching_cost(stg, greedy),
                 encoding_switching_cost(stg, annealed)))
        return deltas

    deltas = once(experiment)
    print()
    print("C11 ablation greedy vs annealed (switching bits/cycle):")
    for g, a in deltas:
        print(f"  greedy {g:7.4f}  ->  annealed {a:7.4f}")
    shape("annealing never hurts",
          all(a <= g + 1e-9 for g, a in deltas))
    shape("annealing strictly improves at least one machine",
          any(a < g - 1e-6 for g, a in deltas))
