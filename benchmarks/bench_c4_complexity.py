"""C4 — Section II-B2: complexity-based area/power models.

Paper: (a) Nemani-Najm's linear measure over essential prime sizes
predicts optimized area through an exponential regression; (b) the
Landman-Rabaey controller model
P = 0.5 V^2 f (N_I C_I E_I + N_O C_O E_O) N_M fits measured
controller power once C_I/C_O are calibrated on a design population.

Shape: the area regression has positive exponent (more complex
functions synthesize bigger) and usable accuracy on its own
population; the fitted FSM model tracks measured controller power
within tens of percent on average.
"""

import random

from conftest import shape

from repro.estimation.complexity import (
    area_complexity,
    fit_landman_rabaey,
    landman_rabaey_features,
    nemani_najm_area_model,
)
from repro.fsm import benchmark_names, benchmark as fsm_benchmark, \
    binary_encoding
from repro.logic.synthesis import synthesize_function


def test_c4_area_complexity_regression(once):
    def experiment():
        rng = random.Random(23)
        samples = []
        for _k in range(14):
            density = rng.choice([0.15, 0.3, 0.45, 0.6, 0.75])
            onset = [m for m in range(16) if rng.random() < density]
            if not onset or len(onset) == 16:
                continue
            complexity = area_complexity(4, onset)
            area = synthesize_function(4, onset).area()
            samples.append((complexity, area))
        model = nemani_najm_area_model(samples)
        ratios = [model.predict(c) / a for c, a in samples]
        return samples, model, ratios

    samples, model, ratios = once(experiment)
    print()
    print(f"C4 Nemani-Najm area model: area = {model.a:.2f} * "
          f"exp({model.b:.2f} * C(f))  over {len(samples)} functions")
    mean_ratio = sum(ratios) / len(ratios)
    print(f"  mean predicted/actual ratio: {mean_ratio:.2f}")

    shape("area grows with the linear measure (b > 0)", model.b > 0)
    shape("regression centered (mean ratio within [0.5, 2])",
          0.5 < mean_ratio < 2.0)
    shape("complexity orders area: most complex > least complex",
          max(samples)[1] >= min(samples)[1])


def test_c4_landman_rabaey_controller_model(once):
    def experiment():
        names = [n for n in benchmark_names()]
        samples = []
        for name in names:
            stg = fsm_benchmark(name)
            samples.append(landman_rabaey_features(
                stg, binary_encoding(stg), cycles=200))
        model = fit_landman_rabaey(samples)
        errors = []
        for s in samples:
            predicted = model.predict(s["n_in"], s["n_out"], s["e_in"],
                                      s["e_out"], s["n_minterms"])
            errors.append(abs(predicted - s["measured_power"])
                          / s["measured_power"])
        return names, samples, model, errors

    names, samples, model, errors = once(experiment)
    print()
    print(f"C4 Landman-Rabaey controller fit: C_I = {model.c_in:.3f}, "
          f"C_O = {model.c_out:.3f}")
    print(f"  {'fsm':12s} {'N_M':>4s} {'measured':>9s} {'error':>7s}")
    for name, s, err in zip(names, samples, errors):
        print(f"  {name:12s} {s['n_minterms']:4.0f} "
              f"{s['measured_power']:9.3f} {err:7.1%}")
    print(f"  mean error: {sum(errors) / len(errors):.1%}")

    shape("fit is usable (mean error < 50%)",
          sum(errors) / len(errors) < 0.5)
    shape("capacitance coefficients positive",
          model.c_in > 0 or model.c_out > 0)
