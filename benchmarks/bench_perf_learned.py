"""Perf — learned macromodels: accuracy-vs-speed Pareto.

Not a paper figure: this bench guards the learned-macromodel claim of
``repro.estimation.learned`` — that a per-design model characterized
through the fast engines beats the fixed Section II-C macromodels on
*per-window* accuracy while staying in the same evaluation-cost class.
Two measurements land in ``BENCH_learned.json``:

- ``accuracy_pareto``: for every member of the characterization
  population, fit the learned model and the fixed ladder (DBT /
  bitwise / PFA) on the shared training mix, then score per-window
  MAPE on held-out *phased* stimulus (style changes mid-stream — the
  workload windowed models exist for).  Gates: the learned model must
  win on a majority of the population and its per-window evaluation
  must cost <= 5x the parametric (DBT) prediction path.  The median
  accuracy ratio (best fixed MAPE / learned MAPE) is recorded as
  ``speedup`` so the orchestrator's ratio gate tracks it against the
  committed baseline.
- ``store_roundtrip``: fit-once-predict-anywhere — a model fitted and
  persisted through a disk ArtifactStore is rehydrated by a fresh
  store instance (the cross-process path) and must predict
  bit-identically; the rehydrate must be far cheaper than the fit.
"""

import statistics
import tempfile

from _perf_common import REPO_ROOT, measure, record

from conftest import shape

from repro import store as artifact_store
from repro.estimation.learned import (
    FeatureConfig,
    evaluate_component,
    load_model,
    model_for,
)
from repro.logic import fastsim
from repro.logic.generators import ripple_carry_adder
from repro.rtl.components import make_component
from repro.store import ArtifactStore

RESULTS_PATH = REPO_ROOT / "BENCH_learned.json"

_SEED = 0
_TRAIN_CYCLES = 1024
_TRAIN_RUNS = 10
_HOLDOUT_RUNS = 6
_COST_LIMIT = 5.0        # learned predict <= 5x the parametric path


def test_perf_learned_accuracy_pareto(once):
    """Learned beats the fixed ladder on most of the population."""
    from repro.estimation.learned.characterize import POPULATION

    config = FeatureConfig()

    def experiment():
        rows = []
        for spec in POPULATION:
            component = make_component(spec["component"],
                                       spec["width"])
            rows.append(evaluate_component(
                component, config, runs=_HOLDOUT_RUNS, seed=_SEED,
                train_cycles=_TRAIN_CYCLES, train_runs=_TRAIN_RUNS))
        return rows

    rows = once(experiment)

    wins = sum(1 for r in rows if r["learned_wins"])
    ratios = [r["best_fixed_mape"] / max(r["techniques"]["learned"]
                                         ["mape"], 1e-9)
              for r in rows]
    cost_ratios = [r["techniques"]["learned"]["predict_s"]
                   / max(r["techniques"]["dbt"]["predict_s"], 1e-9)
                   for r in rows]
    accuracy_ratio = statistics.median(ratios)
    cost_ratio = statistics.median(cost_ratios)

    record(RESULTS_PATH, "accuracy_pareto", {
        "population": [r["component"] for r in rows],
        "train_cycles": _TRAIN_CYCLES,
        "train_runs": _TRAIN_RUNS,
        "holdout_runs": _HOLDOUT_RUNS,
        "seed": _SEED,
        "per_component": {
            r["component"]: {
                "learned_mape": round(r["techniques"]["learned"]
                                      ["mape"], 4),
                "best_fixed_mape": round(r["best_fixed_mape"], 4),
                "learned_wins": r["learned_wins"],
                "fit_s": round(r["techniques"]["learned"]["fit_s"], 4),
                "predict_s": round(r["techniques"]["learned"]
                                   ["predict_s"], 6),
                "dbt_predict_s": round(r["techniques"]["dbt"]
                                       ["predict_s"], 6),
            } for r in rows
        },
        "wins": wins,
        "cost_ratio_vs_parametric": round(cost_ratio, 3),
        "speedup": round(accuracy_ratio, 3),
    })
    print()
    for r in rows:
        learned = r["techniques"]["learned"]["mape"]
        print(f"Perf: {r['component']:10s} learned {learned:6.3f} vs "
              f"best fixed {r['best_fixed_mape']:6.3f}  "
              f"({'learned' if r['learned_wins'] else 'fixed'} wins)")
    print(f"Perf: learned wins {wins}/{len(rows)}, median accuracy "
          f"ratio {accuracy_ratio:.2f}x, predict cost "
          f"{cost_ratio:.2f}x parametric")

    shape(f"learned wins the per-window MAPE contest on a majority "
          f"of the population ({wins}/{len(rows)})",
          wins * 2 > len(rows))
    shape(f"learned evaluation within {_COST_LIMIT:.0f}x of the "
          f"parametric path (got {cost_ratio:.2f}x)",
          cost_ratio <= _COST_LIMIT)


def test_perf_learned_store_roundtrip(once):
    """Fit once, rehydrate anywhere, predict bit-identically."""
    config = FeatureConfig()
    circuit = ripple_carry_adder(8)
    vectors = fastsim.random_packed_vectors(circuit.inputs, 2048,
                                            seed=123)

    def experiment():
        prev = artifact_store.get_store()
        with tempfile.TemporaryDirectory(
                prefix="repro-bench-learned-") as tmp:
            try:
                artifact_store.set_store(ArtifactStore(root=tmp))
                t_fit = measure(lambda: model_for(
                    ripple_carry_adder(8), config, seed=_SEED))
                fitted = model_for(circuit, config, seed=_SEED)
                p_fit = fitted.predict_power(vectors)

                # Fresh store instance over the same directory: the
                # cross-process rehydrate path (mem layer starts
                # cold, payload comes off disk).
                def rehydrate():
                    artifact_store.set_store(ArtifactStore(root=tmp))
                    return load_model(circuit.fingerprint(), config)

                t_load = measure(rehydrate, repeats=3)
                loaded = rehydrate()
                p_load = loaded.predict_power(vectors)
            finally:
                artifact_store.set_store(prev)
        return fitted, loaded, p_fit, p_load, t_fit, t_load

    fitted, loaded, p_fit, p_load, t_fit, t_load = once(experiment)

    record(RESULTS_PATH, "store_roundtrip", {
        "circuit": "ripple_carry_adder(8)",
        "cycles": 2048,
        "fit_s": round(t_fit, 4),
        "rehydrate_s": round(t_load, 6),
        "fit_over_rehydrate": round(t_fit / max(t_load, 1e-9), 1),
        "bit_identical": p_fit == p_load,
    })
    print()
    print(f"Perf: learned model fit {t_fit * 1e3:.0f} ms vs store "
          f"rehydrate {t_load * 1e3:.2f} ms "
          f"({t_fit / max(t_load, 1e-9):.0f}x); prediction "
          f"{'bit-identical' if p_fit == p_load else 'DIVERGED'}")

    shape("rehydrated model predicts bit-identically to the fitted "
          "one", p_fit == p_load)
    shape("rehydrated model carries its provenance (coeffs, signals, "
          "CV report)",
          loaded.coeffs == fitted.coeffs
          and loaded.signals == fitted.signals
          and loaded.report is not None)
    shape(f"store rehydrate is >= 10x cheaper than refit (got "
          f"{t_fit / max(t_load, 1e-9):.1f}x)",
          t_fit >= 10.0 * t_load)
