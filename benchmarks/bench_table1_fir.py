"""T1 — Table I: FIR filter capacitance before/after constant-mult
conversion.

Paper's table (pF):
    Execution units   739.65 (64.8%)  ->   93.07 (21.6%)   ~7.9x down
    Registers/clock   179.57 (15.7%)  ->  161.40 (37.5%)   slightly down
    Control logic      65.45  (5.7%)  ->   83.79 (19.5%)   UP (penalty)
    Interconnect      156.69 (13.7%)  ->   92.10 (21.4%)   down
    Total            1141.36          ->  430.36           ~2.65x down

Shape asserted here: execution units provide the dominant absolute
saving, registers/clock and interconnect shrink, control logic pays a
small penalty, and the total drops by well over 1.5x.
"""

from conftest import shape

from repro.core.fir_study import table1_experiment


def test_table1_fir_breakdown(once):
    result = once(table1_experiment)

    print()
    print("Table I reproduction (switched capacitance per sample):")
    print(result.format())
    print(f"total reduction: {result.total_reduction:.2f}x "
          f"(paper: 2.65x); execution-unit reduction: "
          f"{result.execution_reduction:.2f}x (paper: 7.9x)")

    before, after = result.before, result.after
    shape("execution units shrink",
          after.execution_units < before.execution_units)
    savings = {
        "exec": before.execution_units - after.execution_units,
        "regs": before.registers_clock - after.registers_clock,
        "ctrl": before.control_logic - after.control_logic,
        "wire": before.interconnect - after.interconnect,
    }
    shape("execution units dominate the saving",
          savings["exec"] == max(savings.values()))
    shape("registers/clock shrink",
          after.registers_clock < before.registers_clock)
    shape("control logic pays a penalty",
          after.control_logic > before.control_logic)
    shape("interconnect shrinks",
          after.interconnect < before.interconnect)
    shape("total drops by > 1.5x", result.total_reduction > 1.5)
    shape("execution units drop by > 1.5x",
          result.execution_reduction > 1.5)
