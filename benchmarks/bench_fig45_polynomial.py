"""F45 — Figs. 4-5: polynomial-evaluation restructuring.

Paper:
  second order:  2 add / 2 mult / cp 3   ->  2 add / 1 mult / cp 3
                 (pure win: fewer operations, same speed)
  third order:   3 add / 4 mult / cp 4   ->  3 add / 2 mult / cp 5
                 (fewer operations but longer critical path ->
                  less headroom for voltage downscaling)

Shape asserted: the exact operation counts and critical paths above,
functional equivalence, and the voltage-scaling consequence — at the
relaxed latency both allow, the third-order direct form reaches lower
energy through voltage scaling than the serial Horner form.
"""

from conftest import shape

from repro.cdfg import ModuleLibrary
from repro.cdfg.transforms import direct_polynomial, horner_polynomial
from repro.optimization.multivoltage import MultiVoltageScheduler


def _build_all():
    return {
        "deg2_direct": direct_polynomial([7, 3], width=12),
        "deg2_horner": horner_polynomial([7, 3], width=12),
        "deg3_direct": direct_polynomial([7, 3, 5], width=12),
        "deg3_horner": horner_polynomial([7, 3, 5], width=12),
    }


def test_fig45_operation_tradeoffs(benchmark):
    graphs = benchmark(_build_all)

    print()
    print("Figs. 4-5 (monic polynomials):")
    for name, cdfg in graphs.items():
        print(f"  {name:12s}: ops = {cdfg.operation_counts()}, "
              f"critical path = {cdfg.critical_path()}")

    d2, h2 = graphs["deg2_direct"], graphs["deg2_horner"]
    d3, h3 = graphs["deg3_direct"], graphs["deg3_horner"]

    shape("deg2 direct: 2 add, 2 mult, cp 3",
          d2.operation_counts() == {"add": 2, "mult": 2}
          and d2.critical_path() == 3)
    shape("deg2 factored: 2 add, 1 mult, cp 3",
          h2.operation_counts() == {"add": 2, "mult": 1}
          and h2.critical_path() == 3)
    shape("deg3 direct: 3 add, 4 mult, cp 4",
          d3.operation_counts() == {"add": 3, "mult": 4}
          and d3.critical_path() == 4)
    shape("deg3 Horner: 3 add, 2 mult, cp 5",
          h3.operation_counts() == {"add": 3, "mult": 2}
          and h3.critical_path() == 5)
    for x in range(64):
        shape("deg2 equivalent",
              d2.evaluate({"x": x}) == h2.evaluate({"x": x}))
        shape("deg3 equivalent",
              d3.evaluate({"x": x}) == h3.evaluate({"x": x}))


def test_fig5_voltage_scaling_consequence(once):
    """The deg-3 tradeoff the paper explains: the shorter critical
    path of the direct form buys voltage headroom."""

    def experiment():
        from repro.cdfg import Cdfg

        library = ModuleLibrary(width=4, characterization_cycles=80)
        scheduler = MultiVoltageScheduler(library)
        # Tree view of the deg-3 direct form (the shared x^2 subtree
        # duplicated, as the DP's tree restriction requires).
        d3 = Cdfg("d3_tree", 12)
        x = d3.add_input("x")
        c0, c1, c2 = (d3.add_const(7), d3.add_const(3), d3.add_const(5))
        sq_a = d3.add_op("mult", x, x)
        cube = d3.add_op("mult", sq_a, x)
        sq_b = d3.add_op("mult", x, x)
        t2 = d3.add_op("mult", c2, sq_b)
        t1 = d3.add_op("mult", c1, x)
        a1 = d3.add_op("add", cube, t2)
        a2 = d3.add_op("add", t1, c0)
        d3.set_output("y", d3.add_op("add", a1, a2))
        h3 = horner_polynomial([7, 3, 5], width=12)
        # Latency budget: what Horner needs at full speed.
        h_curve = scheduler.power_delay_curve(h3)
        budget = min(p.delay for p in h_curve)
        direct = scheduler.schedule(d3, latency=budget)
        horner = scheduler.schedule(h3, latency=budget)
        return budget, direct, horner

    budget, direct, horner = once(experiment)
    print()
    print(f"Fig. 5 voltage consequence (latency budget {budget:.1f}):")
    print(f"  direct form : energy {direct.energy:8.3f} "
          f"(voltages used: {sorted(set(direct.voltages.values()))})")
    print(f"  Horner form : energy {horner.energy:8.3f} "
          f"(voltages used: {sorted(set(horner.voltages.values()))})")
    shape("direct form can downscale some operations",
          len(set(direct.voltages.values())) > 1
          or direct.energy < horner.energy)
