"""C6 — Section II-C2: sampling-based cosimulation claims.

Paper: (a) sampler macro-modeling is ~50x cheaper than census with
~1% average error; (b) census macro-modeling on biased models shows
large error (~30% average) while the adaptive ratio-regression
estimator cuts it to ~5% using a few gate-level-simulated cycles.

Shape: the sampler's evaluation count is >= 30x below census with a
few-percent deviation; the adaptive estimator removes most of a biased
model's error at a tiny fraction of full gate-level cost; the
multi-sample (>= 30 units each) design is enforced.
"""

from conftest import shape

from repro.estimation.macromodel import (
    BitwiseModel,
    PfaModel,
    fit_macromodel,
)
from repro.estimation.sampling import (
    adaptive_power,
    census_power,
    gate_reference_power,
    sampler_power,
)
from repro.rtl.components import make_component
from repro.rtl.streams import correlated_stream, random_stream


def test_c6_sampler_efficiency(once):
    def experiment():
        component = make_component("add", 5)
        model = fit_macromodel(BitwiseModel(), component, seed=41)
        streams = [random_stream(5, 6000, seed=101),
                   random_stream(5, 6000, seed=102)]
        census = census_power(model, streams)
        sampled = sampler_power(model, streams, n_samples=4,
                                sample_size=30, seed=5)
        return census, sampled

    census, sampled = once(experiment)
    speedup = census.model_evaluations / sampled.model_evaluations
    deviation = abs(sampled.estimate - census.estimate) \
        / census.estimate
    print()
    print("C6 sampler vs census macro-modeling (6000-cycle run):")
    print(f"  census : {census.model_evaluations} evaluations, "
          f"estimate {census.estimate:.4f}")
    print(f"  sampler: {sampled.model_evaluations} evaluations "
          f"({speedup:.0f}x fewer), estimate {sampled.estimate:.4f} "
          f"({deviation:.1%} off census)   [paper: ~50x at ~1%]")

    shape("sampler is tens of times cheaper (>= 30x)", speedup >= 30)
    shape("sampler deviation small (< 8%)", deviation < 0.08)


def test_c6_adaptive_debiasing(once):
    def experiment():
        component = make_component("mult", 6)
        # Bias the model deliberately: train PFA on random data only.
        biased_training = [
            [random_stream(6, 80, seed=k),
             random_stream(6, 80, seed=k + 60)]
            for k in range(10)
        ]
        model = fit_macromodel(PfaModel(), component, biased_training)
        streams = [correlated_stream(6, 2500, rho=0.97, seed=103),
                   correlated_stream(6, 2500, rho=0.97, seed=104)]
        truth = gate_reference_power(component, streams)
        census = census_power(model, streams)
        adaptive = adaptive_power(model, component, streams,
                                  gate_sample_size=40, seed=7)
        return truth, census, adaptive, len(streams[0])

    truth, census, adaptive, cycles = once(experiment)
    census_err = abs(census.estimate - truth.estimate) / truth.estimate
    adaptive_err = abs(adaptive.estimate - truth.estimate) \
        / truth.estimate
    print()
    print("C6 adaptive (ratio) macro-modeling on out-of-class data:")
    print(f"  gate-level truth : {truth.estimate:.4f} "
          f"({cycles} simulated cycles)")
    print(f"  census (biased)  : {census.estimate:.4f} "
          f"({census_err:.1%} error)   [paper: ~30%]")
    print(f"  adaptive         : {adaptive.estimate:.4f} "
          f"({adaptive_err:.1%} error, {adaptive.gate_cycles} "
          f"gate cycles)   [paper: ~5%]")

    shape("biased census error is large (> 15%)", census_err > 0.15)
    shape("adaptive cuts the error by > 2x",
          adaptive_err < 0.5 * census_err)
    shape("adaptive error small (< 15%)", adaptive_err < 0.15)
    shape("adaptive uses a tiny fraction of gate-level cycles (< 5%)",
          adaptive.gate_cycles < 0.05 * cycles)


def test_c6_multisample_ablation(once):
    """DESIGN.md ablation: one big sample vs >= 30-unit multi-samples.

    Both estimators are unbiased; the multi-sample design exists so the
    sample-mean distribution is near normal (confidence statements),
    which shows as comparable accuracy at equal budget.
    """

    def experiment():
        component = make_component("add", 5)
        model = fit_macromodel(BitwiseModel(), component, seed=43)
        streams = [random_stream(5, 6000, seed=105),
                   random_stream(5, 6000, seed=106)]
        census = census_power(model, streams)
        single = sampler_power(model, streams, n_samples=1,
                               sample_size=120, seed=9)
        multi = sampler_power(model, streams, n_samples=4,
                              sample_size=30, seed=9)
        return census, single, multi

    census, single, multi = once(experiment)
    single_err = abs(single.estimate - census.estimate) / census.estimate
    multi_err = abs(multi.estimate - census.estimate) / census.estimate
    print()
    print("C6 ablation (budget = 120 evaluations):")
    print(f"  one sample of 120   : {single_err:.2%} off census")
    print(f"  four samples of 30  : {multi_err:.2%} off census")
    shape("equal budgets give comparable accuracy",
          abs(single_err - multi_err) < 0.08)
