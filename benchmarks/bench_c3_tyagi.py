"""C3 — Section II-B1: Tyagi's entropic bound on FSM switching.

Paper ([13]): for a sparse FSM, the expected Hamming switching of the
state lines under *any* encoding is lower bounded by
h(p_ij) - 1.52 log T - 2.16 + 0.5 log log T.

Shape: the bound (clamped at 0, since it is asymptotic and can go
negative for small machines) never exceeds the measured switching of
any encoding — binary, Gray, one-hot, random, or the annealed
low-power assignment — across the whole benchmark suite and random
machines.
"""

from conftest import shape

from repro.estimation.tyagi import (
    expected_hamming_switching,
    is_sparse,
    tyagi_lower_bound,
)
from repro.fsm import (
    benchmark_names,
    benchmark as fsm_benchmark,
    binary_encoding,
    gray_encoding,
    low_power_encoding,
    one_hot_encoding,
    random_encoding,
)
from repro.fsm.kiss import random_stg


def test_c3_tyagi_bound(once):
    def experiment():
        machines = [fsm_benchmark(n) for n in benchmark_names()]
        machines += [random_stg(8, 2, 1, seed=s) for s in range(3)]
        rows = []
        for stg in machines:
            bound = max(0.0, tyagi_lower_bound(stg))
            encodings = [binary_encoding(stg), gray_encoding(stg),
                         one_hot_encoding(stg),
                         low_power_encoding(stg, seed=1,
                                            anneal_steps=1500)]
            encodings += [random_encoding(stg, seed=s,
                                          n_bits=stg.n_states)
                          for s in range(3)]
            measured = [expected_hamming_switching(stg, e)
                        for e in encodings]
            rows.append((stg.name, stg.n_states, is_sparse(stg), bound,
                         min(measured), max(measured)))
        return rows

    rows = once(experiment)
    print()
    print("C3 Tyagi bound vs measured switching (bits/cycle):")
    print(f"  {'fsm':12s} {'T':>3s} {'sparse':>6s} {'bound':>7s} "
          f"{'best enc':>9s} {'worst enc':>9s}")
    for name, t, sparse, bound, lo, hi in rows:
        print(f"  {name:12s} {t:3d} {str(sparse):>6s} {bound:7.3f} "
              f"{lo:9.3f} {hi:9.3f}")

    for name, _t, _sparse, bound, lo, _hi in rows:
        shape(f"{name}: bound below every encoding's switching",
              lo >= bound - 1e-9)
