"""C10 — Section III-G: bus encoding.

Paper claims, per code:
- Bus-Invert guarantees at most N/2 transitions per cycle (plus the
  INV line) and wins on random data [77],
- Gray reaches its asymptotic best of one transition per emitted
  address on consecutive streams and is optimal among irredundant
  codes there [78], [79],
- T0 reaches zero transitions on in-sequence addresses (the frozen
  bus) [80],
- the working-zone code restores the sequentiality that interleaved
  array accesses destroy [82],
- the Beach code beats general-purpose codes on streams with block
  correlations, being trained on the trace [83].

Each claim is asserted on the stream class it targets, with every
encoder verified to decode losslessly.
"""

from conftest import shape

from repro.optimization.bus_encoding import (
    BeachCode,
    BinaryCode,
    BusInvertCode,
    GrayCode,
    T0BusInvertCode,
    T0Code,
    WorkingZoneCode,
    correlated_block_addresses,
    count_transitions,
    hamming,
    interleaved_array_addresses,
    random_addresses,
    sequential_addresses,
)
from repro.rtl.streams import WordStream

WIDTH = 12


def _codes(beach_training=None):
    beach = BeachCode(WIDTH)
    if beach_training:
        beach.train(beach_training)
    return {
        "binary": BinaryCode(WIDTH),
        "bus-invert": BusInvertCode(WIDTH),
        "gray": GrayCode(WIDTH),
        "t0": T0Code(WIDTH),
        "t0-bi": T0BusInvertCode(WIDTH),
        "working-zone": WorkingZoneCode(WIDTH, n_zones=4,
                                        offset_bits=4),
        "beach": beach,
    }


def test_c10_bus_code_matrix(once):
    def experiment():
        block = correlated_block_addresses(WIDTH, 1600, seed=71)
        streams = {
            "sequential": sequential_addresses(WIDTH, 800),
            "interleaved": interleaved_array_addresses(
                WIDTH, 800, n_arrays=3, seed=72, base_stride=256),
            "block-corr": WordStream(block.words[800:], WIDTH),
            "random": random_addresses(WIDTH, 800, seed=73),
        }
        results = {}
        for sname, stream in streams.items():
            codes = _codes(beach_training=block.words[:800])
            results[sname] = {
                cname: count_transitions(code, stream).per_cycle
                for cname, code in codes.items()
            }
        return results

    results = once(experiment)
    print()
    print("C10 bus codes (transitions/cycle; lower is better):")
    code_names = list(next(iter(results.values())))
    print(f"  {'stream':12s}" + "".join(f" {c:>13s}" for c in code_names))
    for sname, row in results.items():
        print(f"  {sname:12s}"
              + "".join(f" {row[c]:13.3f}" for c in code_names))

    seq, inter = results["sequential"], results["interleaved"]
    corr, rand = results["block-corr"], results["random"]
    shape("Gray: exactly 1 transition/address on sequential",
          abs(seq["gray"] - 1.0) < 1e-6)
    shape("Gray beats binary on sequential",
          seq["gray"] < seq["binary"])
    shape("T0: (asymptotically) zero transitions on sequential",
          seq["t0"] < 0.01)
    shape("bus-invert beats binary on random data",
          rand["bus-invert"] < rand["binary"])
    shape("working-zone wins on interleaved arrays",
          inter["working-zone"] == min(inter.values()))
    shape("Gray/T0 lose their edge on interleaved arrays",
          inter["gray"] > 0.9 * inter["binary"]
          and inter["t0"] > 0.9 * inter["binary"])
    shape("Beach beats binary on block-correlated streams",
          corr["beach"] < corr["binary"])
    shape("Beach beats Gray and T0 on block-correlated streams",
          corr["beach"] < corr["gray"] and corr["beach"] < corr["t0"])


def test_c10_bus_invert_guarantee(benchmark):
    """Worst-case transitions per cycle <= N/2 + 1 (INV included)."""

    def worst_case():
        stream = random_addresses(WIDTH, 3000, seed=74)
        code = BusInvertCode(WIDTH)
        code.reset()
        prev = None
        worst = 0
        for word in stream.words:
            value = code.encode(word)
            if prev is not None:
                worst = max(worst, hamming(prev, value))
            prev = value
        return worst

    worst = benchmark(worst_case)
    print()
    print(f"  bus-invert worst case: {worst} transitions "
          f"(bound {WIDTH // 2 + 1})")
    shape("bus-invert worst case within the guarantee",
          worst <= WIDTH // 2 + 1)
