"""Perf — bit-plane word-stream engine vs. scalar references.

Not a paper figure: this bench guards the packed-statistics claim of
the word-stream engine (:mod:`repro.rtl.faststreams`).  The packed
kernels must (a) stay numerically identical to the scalar references
and (b) be at least 20x faster on the workloads the word-level stack
actually runs: per-bit stream statistics and the O(n^2 * T) pairwise
toggle matrices of activity-aware allocation, both at width 32 over
16384-cycle traces.  Measured speedups are recorded in
``BENCH_streams.json`` at the repo root.
"""

import random

from _perf_common import REPO_ROOT, measure, record

from conftest import shape

from repro.optimization import allocation
from repro.rtl import faststreams
from repro.rtl import streams as rtl_streams
from repro.rtl.streams import WordStream
from repro.util.bits import hamming

RESULTS_PATH = REPO_ROOT / "BENCH_streams.json"

WIDTH = 32
CYCLES = 16384


def _record(entry: dict) -> None:
    record(RESULTS_PATH, entry.pop("key"), entry)


def _random_words(length, seed):
    rng = random.Random(seed)
    return [rng.randrange(1 << WIDTH) for _ in range(length)]


def _stats_bundle(stream, engine):
    return (rtl_streams.bit_activities(stream, engine=engine),
            rtl_streams.bit_probabilities(stream, engine=engine),
            rtl_streams.sign_transition_counts(stream, engine=engine))


def test_perf_stream_statistics(once):
    """>= 20x on per-bit statistics of a 32 x 16384 stream."""
    stream = WordStream(_random_words(CYCLES, seed=7), WIDTH)

    def experiment():
        # Warm the bit-plane cache outside the timed region (the
        # consumers reuse it across every statistic of a stream).
        stream.bit_planes()
        shape("packed statistics identical to scalar",
              _stats_bundle(stream, "fast")
              == _stats_bundle(stream, "reference"))
        t_ref = measure(lambda: _stats_bundle(stream, "reference"))
        t_fast = measure(lambda: _stats_bundle(stream, "fast"),
                         repeats=5)
        return t_ref, t_fast, t_ref / max(t_fast, 1e-9)

    t_ref, t_fast, speedup = once(experiment)
    _record({
        "key": f"stream_stats_{WIDTH}x{CYCLES}",
        "width": WIDTH,
        "cycles": CYCLES,
        "reference_s": round(t_ref, 6),
        "fast_s": round(t_fast, 6),
        "speedup": round(speedup, 2),
    })
    print()
    print(f"Perf: stream statistics ({WIDTH} bits x {CYCLES} cycles): "
          f"scalar {t_ref * 1e3:.1f} ms, packed {t_fast * 1e3:.2f} ms "
          f"->  {speedup:.1f}x")
    shape(f"packed statistics >= 20x (got {speedup:.1f}x)",
          speedup >= 20.0)


def test_perf_pairwise_toggle_matrix(once):
    """>= 20x on the allocation pairwise switch-fraction matrix."""
    n_traces = 32
    traces = {uid: _random_words(CYCLES, seed=uid)
              for uid in range(n_traces)}
    uids = sorted(traces)

    def reference_fractions():
        return {(a, b): allocation.average_switch_fraction(
                    traces[a], traces[b], WIDTH, engine="reference")
                for i, a in enumerate(uids) for b in uids[i + 1:]}

    def experiment():
        fast = allocation.pairwise_switch_fractions(uids, traces,
                                                    WIDTH)
        shape("packed pairwise fractions identical to scalar",
              fast == reference_fractions())
        t_ref = measure(reference_fractions)
        t_fast = measure(
            lambda: allocation.pairwise_switch_fractions(
                uids, traces, WIDTH),
            repeats=3)
        return t_ref, t_fast, t_ref / max(t_fast, 1e-9)

    t_ref, t_fast, speedup = once(experiment)
    _record({
        "key": f"pairwise_matrix_{n_traces}x{WIDTH}x{CYCLES}",
        "traces": n_traces,
        "width": WIDTH,
        "cycles": CYCLES,
        "pairs": n_traces * (n_traces - 1) // 2,
        "reference_s": round(t_ref, 6),
        "fast_s": round(t_fast, 6),
        "speedup": round(speedup, 2),
    })
    print()
    print(f"Perf: pairwise toggle matrix ({n_traces} traces x "
          f"{CYCLES} cycles): scalar {t_ref * 1e3:.1f} ms, packed "
          f"{t_fast * 1e3:.2f} ms  ->  {speedup:.1f}x")
    shape(f"packed pairwise matrix >= 20x (got {speedup:.1f}x)",
          speedup >= 20.0)


def test_perf_cross_stream_hamming(once):
    """Packed cross-stream Hamming (binding cost inner loop)."""
    a = _random_words(CYCLES, seed=1)
    b = _random_words(CYCLES, seed=2)

    def experiment():
        pa = faststreams.pack_words(a, WIDTH)
        pb = faststreams.pack_words(b, WIDTH)
        ref = sum(hamming(x, y) for x, y in zip(a, b))
        shape("packed cross-Hamming identical to scalar",
              faststreams.cross_hamming(a, b, WIDTH, pa, pb) == ref)
        t_ref = measure(
            lambda: sum(hamming(x, y) for x, y in zip(a, b)))
        t_fast = measure(
            lambda: faststreams.cross_hamming(a, b, WIDTH, pa, pb),
            repeats=5)
        return t_ref, t_fast, t_ref / max(t_fast, 1e-9)

    t_ref, t_fast, speedup = once(experiment)
    _record({
        "key": f"cross_hamming_{WIDTH}x{CYCLES}",
        "width": WIDTH,
        "cycles": CYCLES,
        "reference_s": round(t_ref, 6),
        "fast_s": round(t_fast, 6),
        "speedup": round(speedup, 2),
    })
    print()
    print(f"Perf: cross-stream Hamming ({WIDTH} bits x {CYCLES} "
          f"cycles): scalar {t_ref * 1e3:.1f} ms, packed "
          f"{t_fast * 1e3:.3f} ms  ->  {speedup:.1f}x")
    shape(f"packed cross-Hamming >= 20x (got {speedup:.1f}x)",
          speedup >= 20.0)
