"""F6 — Fig. 6: precomputation architecture.

Paper: predictor functions g1/g0 over a subset of inputs hold the
input registers of block A whenever they decide the output, removing
all switching inside A for those cycles; the comparator-with-MSB
predictors is the classic instance (coverage 1/2 from two bits).

Shape: the two MSBs of a magnitude comparator yield exactly 0.5
coverage; the precomputed circuit is functionally exact (one-cycle
latency); power drops; and coverage grows with the predictor subset
while the returns diminish (the paper's partial-shutdown discussion).
"""

from conftest import shape

from repro.logic.generators import magnitude_comparator
from repro.logic.simulate import random_vectors
from repro.optimization.precompute import (
    best_subset,
    evaluate_precomputation,
)


def test_fig6_comparator_precomputation(once):
    def experiment():
        circuit = magnitude_comparator(6)
        vectors = random_vectors(circuit.inputs, 400, seed=21)
        report2 = evaluate_precomputation(circuit, "gt", 2, vectors)
        report4 = evaluate_precomputation(circuit, "gt", 4, vectors)
        return report2, report4

    report2, report4 = once(experiment)

    print()
    print("Fig. 6 precomputation on a 6-bit magnitude comparator:")
    for bits, report in [(2, report2), (4, report4)]:
        print(f"  {bits}-input predictors: coverage "
              f"{report.coverage:5.1%}, power "
              f"{report.original_power:7.2f} -> "
              f"{report.precomputed_power:7.2f} "
              f"({report.saving:+.1%})")

    shape("MSB pair decides half the comparisons",
          abs(report2.coverage - 0.5) < 1e-9)
    shape("precomputation saves power at 2 predictor inputs",
          report2.saving > 0.0)
    shape("coverage grows with subset size",
          report4.coverage > report2.coverage)
    shape("larger predictors burn more overhead per covered cycle "
          "(diminishing returns)",
          (report4.saving - report2.saving)
          < (report4.coverage - report2.coverage))


def test_fig6_subset_search(benchmark):
    circuit = magnitude_comparator(5)
    pair = benchmark(best_subset, circuit, "gt", 2)
    print()
    print(f"  best 2-input subset: {sorted(pair.subset)} "
          f"(coverage {pair.coverage:.1%})")
    shape("search finds the MSB pair",
          set(pair.subset) == {"a4", "b4"})
