"""F8 — Fig. 8: guarded evaluation.

Paper: an existing signal s that implies the observability don't-care
set of an internal signal z can drive transparent latches freezing the
cone F that computes z — no new shutdown logic is synthesized, and
the condition t_l(s) < t_e(Y) keeps the guard race-free.

Shape: in a mux-dominated circuit the select is discovered as a guard
for the unselected cone, the guarded circuit stays functionally
equivalent, and the switching inside the guarded cone collapses by
roughly the guard probability.
"""

from conftest import shape

from repro.logic import Circuit
from repro.logic.simulate import collect_activity, random_vectors
from repro.optimization.guarded_eval import (
    apply_guarded_evaluation,
    evaluate_guarded,
    find_guard_candidates,
)


def _mux_heavy_circuit():
    """out = sel ? small(Y) : big(X): a fat guardable cone.

    The X cone is a deep XOR-rich block (high per-gate activity and
    capacitance), the kind of unit guarded evaluation pays off on.
    """
    c = Circuit("f8")
    xs = c.add_inputs([f"x{i}" for i in range(8)])
    ys = c.add_inputs([f"y{i}" for i in range(2)])
    sel = c.add_input("sel")
    level = list(xs)
    rounds = 0
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(c.add_gate("XOR2", [level[i], level[i + 1]]))
        if len(level) % 2:
            nxt.append(level[-1])
        # Extra mixing layer keeps the cone deep and busy.
        mixed = []
        for i, net in enumerate(nxt):
            partner = nxt[(i + 1) % len(nxt)]
            if len(nxt) > 1 and rounds < 2:
                mixed.append(c.add_gate("XNOR2", [net, partner]))
            else:
                mixed.append(net)
        level = mixed
        rounds += 1
    f_out = level[0]
    g_out = c.add_gate("AND2", [ys[0], ys[1]])
    out = c.add_gate("MUX2", [f_out, g_out, sel], output="out")
    c.add_output(out)
    return c


def test_fig8_guarded_evaluation(once):
    def experiment():
        circuit = _mux_heavy_circuit()
        # The big block is needed only 25% of the time -- the idle
        # regime guarded evaluation targets.
        probs = {n: 0.5 for n in circuit.inputs}
        probs["sel"] = 0.75
        vectors = random_vectors(circuit.inputs, 500, seed=41,
                                 probs=probs)
        candidates = find_guard_candidates(circuit, min_cone=3)
        report = evaluate_guarded(circuit, vectors, min_cone=3)
        guarded = apply_guarded_evaluation(circuit, report.candidate)
        base = collect_activity(circuit, vectors)
        after = collect_activity(guarded, vectors)
        cone_nets = {g.output for g in circuit.gates
                     if g.output != "out"}
        base_cone = sum(base.toggles[n] for n in cone_nets)
        after_cone = sum(after.toggles.get(n.replace("n", "n"), 0)
                        for n in cone_nets if n in after.toggles)
        return candidates, report, base_cone, after_cone

    candidates, report, base_cone, after_cone = once(experiment)

    print()
    print("Fig. 8 guarded evaluation (mux-dominated circuit):")
    print(f"  candidates found : {len(candidates)} "
          f"(best guard: {report.candidate.guard!r} freezing "
          f"{report.candidate.cone_gates} gates)")
    print(f"  equivalent       : {report.equivalent}")
    print(f"  cone toggles     : {base_cone} -> {after_cone}")
    print(f"  total power      : {report.original_power:7.2f} -> "
          f"{report.guarded_power:7.2f} ({report.saving:+.1%})")

    shape("the mux select is discovered as a guard",
          any(c.guard == "sel" for c in candidates))
    shape("guarded circuit is functionally equivalent",
          report.equivalent)
    shape("guarded-cone switching drops", after_cone < base_cone)
    shape("cone switching drops by roughly the guard probability",
          after_cone < 0.45 * base_cone)
    shape("total power drops despite the guard latches",
          report.saving > 0.0)
