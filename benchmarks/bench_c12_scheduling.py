"""C12 — Section III-D: low-power operation scheduling.

Paper: (a) Musoll-Cortadella place operations sharing input operands
consecutively on the same FU so operands do not change between
activations [60]; (b) Monteiro et al. schedule mux control cones early
and data cones late so the unselected cone's units can be shut down
[63].

Shape: the activity-aware scheduler+binder never switches more FU
input bits than the plain list scheduler on operand-sharing kernels;
the PM scheduler certifies the mux of a branchy kernel as manageable,
orders decision-before-data, and predicts op-execution savings that
scale with the unselected-branch size.
"""

import random

from conftest import shape

from repro.cdfg import Cdfg, list_schedule
from repro.optimization.lp_scheduling import (
    activity_aware_schedule,
    fu_input_switching,
    greedy_binding,
    power_management_schedule,
)


def _sharing_kernel(seed=0):
    """Sum of products over shared operands: a*b + a*c + d*b + d*c.

    Declared in an interleaved order so a sharing-blind scheduler
    alternates operand sources on the shared multiplier.
    """
    cdfg = Cdfg(width=10)
    a, b, c, d = (cdfg.add_input(n) for n in "abcd")
    m1 = cdfg.add_op("mult", a, b)
    m2 = cdfg.add_op("mult", d, c)   # no sharing with m1
    m3 = cdfg.add_op("mult", a, c)   # shares a with m1
    m4 = cdfg.add_op("mult", d, b)   # shares d with m2
    s1 = cdfg.add_op("add", m1, m3)
    s2 = cdfg.add_op("add", m2, m4)
    cdfg.set_output("y", cdfg.add_op("add", s1, s2))
    return cdfg


def test_c12_activity_aware_scheduling(once):
    def experiment():
        cdfg = _sharing_kernel()
        resources = {"mult": 1, "add": 1}
        rows = []
        for seed in range(5):
            rng = random.Random(seed)
            streams = {n: [rng.randrange(1 << 10) for _ in range(80)]
                       for n in "abcd"}
            plain_s = list_schedule(cdfg, resources)
            plain = fu_input_switching(
                cdfg, plain_s, greedy_binding(cdfg, plain_s, resources),
                streams)
            smart_s = activity_aware_schedule(cdfg, resources)
            smart = fu_input_switching(
                cdfg, smart_s, greedy_binding(cdfg, smart_s, resources),
                streams)
            rows.append((plain, smart, plain_s.latency, smart_s.latency))
        return rows

    rows = once(experiment)
    print()
    print("C12 FU-input switching, plain vs operand-sharing-aware:")
    for plain, smart, lp, ls in rows:
        saving = 1 - smart / plain if plain else 0.0
        print(f"  plain {plain:7.1f} (lat {lp})  ->  aware "
              f"{smart:7.1f} (lat {ls})   ({saving:+.1%})")

    shape("aware scheduling never switches more",
          all(smart <= plain + 1e-9 for plain, smart, *_ in rows))
    shape("aware scheduling strictly wins on some stimulus",
          any(smart < plain - 1e-6 for plain, smart, *_ in rows))
    shape("latency not degraded",
          all(ls <= lp for _p, _s, lp, ls in rows))


def test_c12_power_management_scheduling(once):
    def experiment():
        cdfg = Cdfg(width=10)
        a, b, c, d, e = (cdfg.add_input(n) for n in "abcde")
        f1 = cdfg.add_op("mult", a, b)
        f2 = cdfg.add_op("mult", f1, a)
        f3 = cdfg.add_op("add", f2, b)       # heavy 0-branch: 3 ops
        g1 = cdfg.add_op("add", c, d)        # light 1-branch: 1 op
        ctrl = cdfg.add_op("cmp_gt", e, a)
        out = cdfg.add_op("mux", f3, g1, ctrl)
        cdfg.set_output("y", out)
        balanced = power_management_schedule(cdfg, latency=7)
        mostly_one = power_management_schedule(
            cdfg, latency=7,
            select_prob={out: 0.9})
        return cdfg, balanced, mostly_one, out

    cdfg, balanced, mostly_one, mux = once(experiment)
    print()
    print("C12 Monteiro PM scheduling (3-op vs 1-op branches):")
    print(f"  manageable muxes      : {balanced.manageable_muxes}")
    plan = balanced.plans[0]
    sched = balanced.schedule
    print(f"  control finishes step : "
          f"{max(sched.finish(u) for u in plan.control_cone)}")
    print(f"  data cones start step : "
          f"{min(sched.steps[u] for u in plan.zero_cone + plan.one_cone)}")
    print(f"  expected ops saved    : {balanced.expected_saved_ops:.2f} "
          f"(p=0.5) vs {mostly_one.expected_saved_ops:.2f} (p=0.9)")

    shape("the mux is power manageable", balanced.manageable_muxes == 1)
    shape("schedule remains valid", balanced.schedule.is_valid())
    control_finish = max(sched.finish(u) for u in plan.control_cone)
    data_start = min(sched.steps[u]
                     for u in plan.zero_cone + plan.one_cone)
    shape("decision precedes data evaluation",
          control_finish < data_start)
    shape("expected saving reflects branch asymmetry: selecting the "
          "light branch more often disables the heavy one more",
          mostly_one.expected_saved_ops > balanced.expected_saved_ops)
