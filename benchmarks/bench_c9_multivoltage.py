"""C9 — Section III-F: multiple supply-voltage scheduling.

Paper (Chang-Pedram [73]): a dynamic-programming pass over per-module
energy-delay curves assigns lower voltages to off-critical operations,
trading latency slack for energy at limited level-shifter cost.

Shape: the root power-delay curve is a clean Pareto frontier; energy
decreases monotonically as the latency bound relaxes; at zero slack
everything runs at the top voltage; at generous slack the scheduler
saves a large fraction versus the single-voltage baseline even after
charging level shifters.
"""

from conftest import shape

from repro.cdfg import ModuleLibrary
from repro.cdfg.transforms import fir_filter
from repro.optimization.multivoltage import MultiVoltageScheduler


def test_c9_multivoltage_tradeoff(once):
    def experiment():
        library = ModuleLibrary(width=4, characterization_cycles=80)
        scheduler = MultiVoltageScheduler(library)
        cdfg = fir_filter([3, 5, 7, 9], width=10)
        curve = scheduler.power_delay_curve(cdfg)
        single_e, single_lat = scheduler.single_voltage_energy(cdfg)
        sweep = []
        fastest = min(p.delay for p in curve)
        slowest = max(p.delay for p in curve)
        for k in range(6):
            bound = fastest + (slowest - fastest) * k / 5
            a = scheduler.schedule(cdfg, latency=bound)
            sweep.append((bound, a))
        return library, curve, single_e, single_lat, sweep

    library, curve, single_e, single_lat, sweep = once(experiment)
    print()
    print("C9 multiple-voltage scheduling (4-tap FIR tree):")
    print(f"  single voltage ({library.voltages[0]} V): "
          f"energy {single_e:.2f}, latency {single_lat:.1f}")
    print(f"  {'latency bound':>13s} {'energy':>8s} {'saving':>7s} "
          f"{'shifters':>8s} {'voltages used':>20s}")
    for bound, a in sweep:
        used = sorted(set(a.voltages.values()))
        print(f"  {bound:13.1f} {a.energy:8.2f} "
              f"{1 - a.energy / single_e:7.1%} {a.shifters:8d} "
              f"{str(used):>20s}")

    energies = [a.energy for _b, a in sweep]
    shape("curve is a Pareto frontier",
          all(p.delay <= q.delay and p.energy >= q.energy
              for p, q in zip(curve, curve[1:])))
    shape("energy monotone in the latency bound",
          all(a >= b - 1e-9 for a, b in zip(energies, energies[1:])))
    # The paper's core claim: critical-path modules stay at the top
    # voltage while off-critical modules downscale -- so even at zero
    # slack there is a saving, at zero latency cost.
    shape("zero slack keeps the top voltage on the critical path",
          library.voltages[0] in set(sweep[0][1].voltages.values()))
    shape("off-critical modules downscale at zero latency cost",
          sweep[0][1].energy < single_e
          and sweep[0][0] <= single_lat + 1e-9)
    shape("generous slack saves > 30% despite level shifters",
          sweep[-1][1].energy < 0.7 * single_e)
    shape("relaxed schedules actually mix voltages or drop them all",
          len(set(sweep[-1][1].voltages.values())) >= 1
          and min(sweep[-1][1].voltages.values())
          < library.voltages[0])
