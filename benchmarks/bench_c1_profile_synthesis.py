"""C1 — Section II-A: profile-driven program synthesis.

Paper (Hsieh et al. [8]): synthesize a short program whose
characteristic profile (instruction mix, cache miss rate, stall rate)
matches a long application trace; RT-level simulation of the short
trace then gives the same power with orders-of-magnitude less work
("three to five orders of magnitude reduction ... with negligible
estimation error").

Shape: trace length shrinks by a large factor, energy-per-instruction
error stays small, and the synthesized profile matches the original.
Our traces are laptop-scale, so the compaction factor is tens-to-
hundreds rather than 10^3-10^5; the mechanism (profile matching
preserves energy density) is what is reproduced.
"""

from conftest import shape

from repro.estimation.software_power import (
    CharacteristicProfile,
    profile_synthesis_experiment,
    synthesize_profile_program,
)
from repro.software import Machine, dot_product, fir_program, \
    random_program


def _workloads():
    return {
        "dot_product": (dot_product(400), list(range(512)), 1024),
        "fir": (fir_program([2, 3, 1, 4], 300), [k % 97 for k in
                                                 range(512)], 3000),
        "mixed": (random_program(6000, seed=5), None, None),
    }


def test_c1_profile_synthesis(once):
    def experiment():
        reports = {}
        for name, (program, data, extra_base) in _workloads().items():
            reports[name] = profile_synthesis_experiment(
                program, synthesized_length=400, seed=3)
        return reports

    reports = once(experiment)

    print()
    print("C1 profile-driven program synthesis:")
    print(f"  {'workload':12s} {'orig instrs':>11s} {'synth':>6s} "
          f"{'compaction':>10s} {'EPI error':>9s}")
    for name, r in reports.items():
        print(f"  {name:12s} {r.original_instructions:11d} "
              f"{r.synthesized_instructions:6d} "
              f"{r.compaction:9.1f}x {r.epi_error:9.1%}")

    for name, r in reports.items():
        shape(f"{name}: trace much shorter", r.compaction > 4)
        shape(f"{name}: energy/instruction error small (<= 25%)",
              r.epi_error <= 0.25)


def test_c1_profile_match(benchmark):
    stats = Machine().run(random_program(4000, seed=7))
    profile = CharacteristicProfile.from_stats(stats)
    short = benchmark(synthesize_profile_program, profile, 400, 1)
    short_stats = Machine().run(short)
    long_mix = profile.instruction_mix
    short_mix = short_stats.instruction_mix()
    print()
    print("  mix match (class: long vs synthesized):")
    for klass, frac in sorted(long_mix.items()):
        print(f"    {klass:6s}: {frac:6.3f} vs "
              f"{short_mix.get(klass, 0.0):6.3f}")
    for klass, frac in long_mix.items():
        if frac > 0.05:
            shape(f"mix of {klass} matches",
                  abs(short_mix.get(klass, 0.0) - frac) < 0.12)
