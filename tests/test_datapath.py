"""Tests for datapath+controller synthesis and the closed Fig. 1 loop."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdfg import Cdfg, list_schedule
from repro.cdfg.datapath import synthesize_datapath, synthesize_from_cdfg
from repro.cdfg.transforms import fir_filter, horner_polynomial
from repro.optimization.allocation import allocate_registers
from repro.optimization.lp_scheduling import greedy_binding


def _check_equivalence(cdfg, design, n_samples=15, seed=0):
    rng = random.Random(seed)
    names = [n.name for n in cdfg.nodes if n.kind == "input"]
    state = None
    for _k in range(n_samples):
        words = {name: rng.randrange(1 << design.width)
                 for name in names}
        outputs, state, _energy = design.run(words, state)
        expected = cdfg.evaluate(words)
        for out_name in cdfg.outputs:
            assert outputs[out_name] == expected[out_name], \
                (words, out_name)


class TestDatapathSynthesis:
    def test_fir_equivalent(self):
        cdfg = fir_filter([3, 5, 7], width=6)
        design = synthesize_from_cdfg(cdfg, {"mult": 1, "add": 1},
                                      width=6)
        _check_equivalence(cdfg, design)

    def test_horner_equivalent(self):
        cdfg = horner_polynomial([3, 5], width=5)
        design = synthesize_from_cdfg(cdfg, {"mult": 1, "add": 1},
                                      width=5)
        _check_equivalence(cdfg, design)

    def test_shift_add_kernel(self):
        """lshift operations become pure wiring."""
        cdfg = Cdfg(width=6)
        x = cdfg.add_input("x")
        sh = cdfg.add_op("lshift", x, value=2)
        y = cdfg.add_op("add", sh, x)      # 5x
        cdfg.set_output("y", y)
        design = synthesize_from_cdfg(cdfg, {"add": 1, "lshift": 1},
                                      width=6)
        _check_equivalence(cdfg, design)

    def test_mux_and_compare(self):
        cdfg = Cdfg(width=5)
        a = cdfg.add_input("a")
        b = cdfg.add_input("b")
        gt = cdfg.add_op("cmp_gt", a, b)
        out = cdfg.add_op("mux", b, a, gt)   # max(a, b)
        cdfg.set_output("m", out)
        design = synthesize_from_cdfg(cdfg, {"cmp_gt": 1, "mux": 1},
                                      width=5)
        _check_equivalence(cdfg, design)

    def test_more_fus_shorter_latency(self):
        cdfg = fir_filter([3, 5, 7, 9], width=6)
        serial = synthesize_from_cdfg(cdfg, {"mult": 1, "add": 1},
                                      width=6)
        parallel = synthesize_from_cdfg(cdfg, {"mult": 4, "add": 1},
                                        width=6)
        assert parallel.latency < serial.latency
        _check_equivalence(cdfg, parallel, n_samples=8)

    def test_register_count_matches_allocation(self):
        cdfg = fir_filter([3, 5, 7], width=6)
        resources = {"mult": 1, "add": 1}
        schedule = list_schedule(cdfg, resources)
        binding = greedy_binding(cdfg, schedule, resources)
        rng = random.Random(1)
        streams = {f"x{i}": [rng.randrange(64) for _ in range(30)]
                   for i in range(3)}
        allocation = allocate_registers(cdfg, schedule, streams)
        design = synthesize_datapath(cdfg, schedule, binding,
                                     allocation.assignment, width=6)
        data_latches = [l for l in design.circuit.latches
                        if l.output.startswith("r")]
        assert len(data_latches) == allocation.n_resources * 6

    def test_ring_controller_one_hot(self):
        from repro.logic.simulate import simulate

        cdfg = fir_filter([3, 5], width=5)
        design = synthesize_from_cdfg(cdfg, {"mult": 1, "add": 1},
                                      width=5)
        vec = {net: 0 for net in design.circuit.inputs}
        trace = simulate(design.circuit, [vec] * (2 * design.latency))
        for t, values in enumerate(trace):
            hot = [k for k in range(1, design.latency + 1)
                   if values[f"step{k}"]]
            assert hot == [(t % design.latency) + 1]

    def test_unsupported_kind_rejected(self):
        cdfg = Cdfg(width=4)
        a = cdfg.add_input("a")
        x = cdfg.add_op("cmp_eq", a, a)
        cdfg.set_output("y", x)
        schedule = list_schedule(cdfg, {})
        binding = {x: ("frobnicate", 0)}
        with pytest.raises(ValueError):
            synthesize_datapath(cdfg, schedule, binding, {x: 0}, width=4)


class TestClosedLoop:
    """The Fig. 1 promise: high-level estimates track implemented power."""

    def test_quick_synthesis_tracks_gate_level(self):
        from repro.cdfg import ModuleLibrary
        from repro.estimation.quicksynth import quick_synthesis_estimate

        cdfg = fir_filter([3, 5, 7], width=6)
        rng = random.Random(3)
        streams = {f"x{i}": [rng.randrange(64) for _ in range(24)]
                   for i in range(3)}
        design = synthesize_from_cdfg(cdfg, {"mult": 1, "add": 1},
                                      input_streams=streams, width=6)
        _outputs, measured_energy = design.evaluate_stream(streams)
        measured_per_cycle = measured_energy / (24 * design.latency)
        # Same supply as the measured design (V = 1).
        library = ModuleLibrary(width=6, voltages=(1.0,),
                                characterization_cycles=100)
        estimate = quick_synthesis_estimate(
            cdfg, library=library, resources={"mult": 1, "add": 1},
            input_streams=streams)
        # Behavioral estimate within a small factor of the implemented
        # design's measured power (Fig. 1's requirement is correct
        # *ranking*, not absolute accuracy).
        assert 0.25 * measured_per_cycle < estimate.total \
            < 4 * measured_per_cycle

    def test_estimates_rank_designs_like_measurements(self):
        """More functional units cost more measured power per cycle;
        the behavioral estimator must rank the two designs the same
        way it is used in the design-improvement loop."""
        cdfg = fir_filter([3, 5, 7, 9], width=6)
        rng = random.Random(4)
        streams = {f"x{i}": [rng.randrange(64) for _ in range(16)]
                   for i in range(4)}
        serial = synthesize_from_cdfg(cdfg, {"mult": 1, "add": 1},
                                      input_streams=streams, width=6)
        parallel = synthesize_from_cdfg(cdfg, {"mult": 4, "add": 3},
                                        input_streams=streams, width=6)
        _o1, e_serial = serial.evaluate_stream(streams)
        _o2, e_parallel = parallel.evaluate_stream(streams)
        measured = {"serial": e_serial / 16, "parallel": e_parallel / 16}
        # Time multiplexing makes the shared FU churn through
        # different operands every step (the activity the allocation
        # and scheduling sections fight), so the serial design costs
        # more energy per iteration despite its smaller area.
        assert measured["serial"] > measured["parallel"]

        # The behavioral estimator must rank the designs the same way
        # when asked for per-iteration energy.
        from repro.cdfg import ModuleLibrary
        from repro.estimation.quicksynth import quick_synthesis_estimate

        library = ModuleLibrary(width=6, voltages=(1.0,),
                                characterization_cycles=80)
        est_serial = quick_synthesis_estimate(
            cdfg, library=library, resources={"mult": 1, "add": 1},
            input_streams=streams)
        est_parallel = quick_synthesis_estimate(
            cdfg, library=library, resources={"mult": 4, "add": 3},
            input_streams=streams)
        per_iter = {
            "serial": est_serial.total * est_serial.latency,
            "parallel": est_parallel.total * est_parallel.latency,
        }
        assert (per_iter["serial"] > per_iter["parallel"]) == \
            (measured["serial"] > measured["parallel"])


class TestDatapathProperties:
    @given(st.integers(0, 200))
    @settings(max_examples=8, deadline=None)
    def test_random_fir_equivalence(self, seed):
        rng = random.Random(seed)
        taps = [rng.randrange(1, 8) for _ in range(rng.randrange(2, 4))]
        cdfg = fir_filter(taps, width=5)
        design = synthesize_from_cdfg(cdfg, {"mult": 1, "add": 1},
                                      width=5, seed=seed)
        _check_equivalence(cdfg, design, n_samples=6, seed=seed)
