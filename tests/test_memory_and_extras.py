"""Tests for memory mapping/hierarchy, partitioned bus-invert, and
force-directed scheduling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdfg.schedule import asap, force_directed_schedule, \
    list_schedule
from repro.cdfg.transforms import direct_polynomial, fir_filter
from repro.optimization.bus_encoding import (
    BinaryCode,
    BusInvertCode,
    PartitionedBusInvertCode,
    count_transitions,
    random_addresses,
)
from repro.optimization.memory_map import (
    Access,
    ArrayProfile,
    MemoryLevel,
    bus_transitions,
    explore_data_reuse,
    loop_nest_accesses,
    optimize_array_placement,
)
from repro.rtl.streams import WordStream


class TestArrayPlacement:
    def test_transitions_counter(self):
        assert bus_transitions([0, 1, 3]) == 2
        assert bus_transitions([5]) == 0

    def test_placement_never_worse_than_baseline(self):
        accesses = loop_nest_accesses({"x": 64, "y": 64},
                                      pattern="interleaved",
                                      iterations=128)
        result = optimize_array_placement(accesses,
                                          {"x": 64, "y": 64})
        assert result.transitions <= result.baseline_transitions

    def test_interleaved_arrays_benefit(self):
        """Interleaved access to two arrays: placing them so their
        address ranges differ in few bits cuts bus toggles (the
        Panda-Dutt observation)."""
        accesses = loop_nest_accesses({"a": 32, "b": 32, "c": 32},
                                      pattern="interleaved",
                                      iterations=200)
        result = optimize_array_placement(
            accesses, {"a": 32, "b": 32, "c": 32}, alignment=32)
        assert result.saving > 0.0

    def test_no_overlap(self):
        sizes = {"a": 40, "b": 24, "c": 16}
        accesses = loop_nest_accesses(sizes, pattern="interleaved",
                                      iterations=60)
        result = optimize_array_placement(accesses, sizes, alignment=16)
        spans = []
        for name, base in result.bases.items():
            aligned = ((sizes[name] + 15) // 16) * 16
            spans.append((base, base + aligned))
        spans.sort()
        for (a_lo, a_hi), (b_lo, b_hi) in zip(spans, spans[1:]):
            assert a_hi <= b_lo

    def test_fir_pattern_valid(self):
        accesses = loop_nest_accesses({"x": 128, "y": 128},
                                      pattern="fir", iterations=32)
        assert any(a.is_write for a in accesses)
        assert all(a.index < 128 for a in accesses)

    def test_unknown_pattern(self):
        with pytest.raises(ValueError):
            loop_nest_accesses({"x": 8}, pattern="zigzag")


class TestMemoryHierarchy:
    def _levels(self):
        return [
            MemoryLevel.from_parametric("buffer", words_log2=6),
            MemoryLevel.from_parametric("sram", words_log2=10),
            MemoryLevel.from_parametric("main", words_log2=14),
        ]

    def test_levels_ordered_by_energy(self):
        levels = self._levels()
        assert levels[0].read_energy < levels[1].read_energy \
            < levels[2].read_energy

    def test_hot_array_promoted(self):
        levels = self._levels()
        profiles = [
            ArrayProfile("coeffs", size=16, reads=5000, writes=0),
            ArrayProfile("samples", size=4000, reads=900, writes=300),
        ]
        result = explore_data_reuse(profiles, levels)
        assert result.placement["coeffs"] == "buffer"
        assert result.placement["samples"] == "main"
        assert result.saving > 0.2

    def test_cold_data_stays_down(self):
        levels = self._levels()
        profiles = [ArrayProfile("log", size=30, reads=2, writes=2)]
        result = explore_data_reuse(profiles, levels)
        # Copy-in cost exceeds the benefit of 4 accesses.
        assert result.placement["log"] == "main"

    def test_capacity_respected(self):
        levels = self._levels()
        profiles = [
            ArrayProfile("a", size=60, reads=9000, writes=0),
            ArrayProfile("b", size=60, reads=9000, writes=0),
        ]
        result = explore_data_reuse(profiles, levels)
        # Both want the 64-word buffer; only one fits.
        placements = list(result.placement.values())
        assert placements.count("buffer") <= 1

    def test_empty_levels_rejected(self):
        with pytest.raises(ValueError):
            explore_data_reuse([], [])


class TestPartitionedBusInvert:
    @given(st.lists(st.integers(0, 2**16 - 1), min_size=2, max_size=60),
           st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip(self, words, partitions):
        code = PartitionedBusInvertCode(16, partitions=partitions)
        count_transitions(code, WordStream(words, 16),
                          check_decode=True)

    def test_beats_single_invert_on_wide_bus(self):
        stream = random_addresses(32, 4000, seed=31)
        single = count_transitions(BusInvertCode(32), stream)
        split = count_transitions(
            PartitionedBusInvertCode(32, partitions=4), stream)
        plain = count_transitions(BinaryCode(32), stream)
        assert split.transitions < single.transitions < plain.transitions

    def test_line_overhead(self):
        code = PartitionedBusInvertCode(16, partitions=4)
        assert code.total_lines == 20


class TestForceDirected:
    def test_valid_schedule(self):
        cdfg = fir_filter([3, 5, 7, 9], width=8)
        schedule = force_directed_schedule(cdfg)
        assert schedule.is_valid()

    def test_balances_resources_at_same_latency(self):
        cdfg = direct_polynomial([3, 5, 7], width=8)
        baseline = list_schedule(cdfg, {})
        relaxed_latency = baseline.latency + 2
        balanced = force_directed_schedule(cdfg,
                                           latency=relaxed_latency)
        assert balanced.is_valid()
        assert balanced.latency <= relaxed_latency
        assert balanced.resource_usage().get("mult", 0) <= \
            baseline.resource_usage().get("mult", 0)

    def test_latency_respected(self):
        cdfg = fir_filter([3, 5, 7], width=8)
        minimum = asap(cdfg).latency
        schedule = force_directed_schedule(cdfg, latency=minimum)
        assert schedule.latency <= minimum

    def test_infeasible_latency(self):
        cdfg = fir_filter([3, 5, 7], width=8)
        with pytest.raises(ValueError):
            force_directed_schedule(cdfg, latency=1)
