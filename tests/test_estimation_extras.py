"""Tests for the parametric, compaction, and clustering estimators."""

import pytest

from repro.estimation.clustering import ClusterModel
from repro.estimation.compaction import (
    compact_stream,
    compaction_power_experiment,
    fit_markov,
)
from repro.estimation.macromodel import CycleAccurateModel, \
    characterization_streams
from repro.estimation.parametric import (
    Bus,
    ClockTree,
    MemoryArray,
    OffChipDriver,
    RandomLogicBlock,
    typical_processor,
)
from repro.rtl.components import make_component
from repro.rtl.streams import correlated_stream, counter_stream, \
    random_stream


class TestMemoryArrayModel:
    def test_paper_formula(self):
        """P_memcell = 0.5 V V_swing 2^k (C_int + 2^{n-k} C_tr)."""
        from repro.estimation.parametric import CELL_DRAIN_CAP, \
            CELL_WIRE_CAP

        mem = MemoryArray(n=10, k=4, word_bits=1, vdd=1.0, v_swing=0.2)
        rows = 1 << 6
        expected = 0.5 * 1.0 * 0.2 * (1 << 4) * (
            CELL_WIRE_CAP * rows + CELL_DRAIN_CAP * rows)
        assert mem.cell_array_energy() == pytest.approx(expected)

    def test_energy_grows_with_capacity(self):
        small = MemoryArray(n=8, k=4, word_bits=8)
        large = MemoryArray(n=12, k=6, word_bits=8)
        assert large.read_energy() > small.read_energy()

    def test_write_costs_more_than_read(self):
        mem = MemoryArray(n=10, k=5, word_bits=8)
        assert mem.write_energy() > mem.read_energy()

    def test_aspect_ratio_tradeoff(self):
        """Organization matters: the k-sweep has an interior optimum
        (too few columns = long bit lines; too many = wide rows)."""
        mem = MemoryArray(n=12, k=0, word_bits=8)
        best_k = mem.optimal_aspect()
        assert 0 < best_k < 12
        worst_extreme = max(
            MemoryArray(12, 0, 8).read_energy(),
            MemoryArray(12, 12, 8).read_energy())
        best = MemoryArray(12, best_k, 8).read_energy()
        assert best < worst_extreme

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            MemoryArray(n=4, k=6)

    def test_vdd_scaling(self):
        low = MemoryArray(n=10, k=5, word_bits=8, vdd=1.0)
        high = MemoryArray(n=10, k=5, word_bits=8, vdd=2.0)
        # Decoder/wordline terms scale as V^2.
        assert high.row_decoder_energy() == pytest.approx(
            4.0 * low.row_decoder_energy())


class TestSystemComponents:
    def test_bus_energy_scales_with_length(self):
        short = Bus(width=32, length_mm=2.0)
        long = Bus(width=32, length_mm=10.0)
        assert long.energy_per_transfer() == pytest.approx(
            5.0 * short.energy_per_transfer())

    def test_offchip_dominates_onchip(self):
        onchip = Bus(width=32, length_mm=6.0)
        offchip = OffChipDriver(width=32)
        assert offchip.energy_per_transfer() > \
            4 * onchip.energy_per_transfer()

    def test_clock_tree_wire_grows_with_leaves(self):
        small = ClockTree(n_leaves=256)
        big = ClockTree(n_leaves=4096)
        assert big.total_wire_mm() > small.total_wire_mm()
        assert big.energy_per_cycle() > small.energy_per_cycle()

    def test_processor_breakdown(self):
        cpu = typical_processor()
        parts = cpu.power_breakdown()
        assert set(parts) == {"memory", "busses", "clock", "logic",
                              "offchip"}
        assert all(v > 0 for v in parts.values())
        assert cpu.total_power() == pytest.approx(sum(parts.values()))

    def test_logic_activity_scales(self):
        lazy = RandomLogicBlock(1000, activity=0.1)
        busy = RandomLogicBlock(1000, activity=0.3)
        assert busy.energy_per_cycle() == pytest.approx(
            3.0 * lazy.energy_per_cycle())


class TestCompaction:
    def test_markov_fit_transitions_normalized(self):
        stream = counter_stream(6, 100)
        model = fit_markov(stream)
        for outs in model.transitions.values():
            assert sum(p for _n, p in outs) == pytest.approx(1.0)

    def test_counter_stream_reproduced_exactly(self):
        """A deterministic chain compacts losslessly."""
        stream = counter_stream(5, 64)   # wraps: 2 full periods
        short, report = compact_stream(stream, 40, seed=1)
        # The generated stream is also a counting sequence.
        diffs = {(b - a) % 32 for a, b in zip(short.words,
                                              short.words[1:])}
        assert diffs == {1}
        assert report.activity_error < 0.05

    def test_statistics_preserved_on_correlated(self):
        stream = correlated_stream(8, 4000, rho=0.95, seed=3)
        short, report = compact_stream(stream, 500, seed=2)
        assert report.compaction == pytest.approx(8.0)
        assert report.probability_error < 0.12
        assert report.activity_error < 0.12

    def test_lumping_caps_state_count(self):
        stream = random_stream(12, 2000, seed=4)
        model = fit_markov(stream, max_states=64)
        assert len(model.transitions) <= 64

    def test_power_preserved(self):
        component = make_component("add", 6)
        streams = [correlated_stream(6, 3000, rho=0.9, seed=5),
                   correlated_stream(6, 3000, rho=0.9, seed=6)]
        result = compaction_power_experiment(component, streams,
                                             target_length=400, seed=7)
        assert result["speedup"] == pytest.approx(7.5)
        assert result["relative_error"] < 0.15


class TestClusterModel:
    @pytest.fixture(scope="class")
    def setup(self):
        component = make_component("add", 4)
        training = characterization_streams(component, runs=14,
                                            length=80, seed=51)
        model = ClusterModel(n_clusters=8, seed=1)
        model.fit(component, training)
        return component, training, model

    def test_predicts_positive_power(self, setup):
        component, _training, model = setup
        streams = [random_stream(4, 150, seed=52),
                   random_stream(4, 150, seed=53)]
        assert model.predict(streams) > 0

    def test_average_power_reasonable(self, setup):
        component, _training, model = setup
        streams = [random_stream(4, 200, seed=54),
                   random_stream(4, 200, seed=55)]
        assert model.error(component, streams) < 0.35

    def test_weaker_than_regression_cycle_model(self, setup):
        """The paper's criticism: few clusters -> coarse cycle power."""
        component, training, cluster = setup
        regression = CycleAccurateModel(max_variables=8)
        regression.fit(component, training)
        streams = [random_stream(4, 200, seed=56),
                   random_stream(4, 200, seed=57)]
        assert regression.cycle_error(component, streams) < \
            cluster.cycle_error(component, streams)

    def test_more_clusters_help(self):
        component = make_component("add", 4)
        training = characterization_streams(component, runs=14,
                                            length=80, seed=58)
        streams = [random_stream(4, 200, seed=59),
                   random_stream(4, 200, seed=60)]
        coarse = ClusterModel(n_clusters=2, seed=2)
        coarse.fit(component, training)
        fine = ClusterModel(n_clusters=16, seed=2)
        fine.fit(component, training)
        assert fine.cycle_error(component, streams) <= \
            coarse.cycle_error(component, streams) + 0.05
