"""Tests for streams, RTL components, netlists, and simulation."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rtl import (
    RtlNetlist,
    RtlSimulator,
    WordStream,
    bit_activities,
    bit_entropy,
    bit_probabilities,
    constant_stream,
    correlated_stream,
    counter_stream,
    make_component,
    random_stream,
    sinusoid_stream,
    word_entropy,
)
from repro.rtl.components import output_words
from repro.rtl.streams import (
    average_activity,
    breakpoints,
    lag1_correlation,
    sign_transition_counts,
)


class TestStreams:
    def test_masking(self):
        s = WordStream([256 + 5, -1], 8)
        assert s.words == [5, 255]

    def test_random_stream_statistics(self):
        s = random_stream(8, 3000, seed=1)
        probs = bit_probabilities(s)
        acts = bit_activities(s)
        for p in probs:
            assert p == pytest.approx(0.5, abs=0.05)
        for a in acts:
            assert a == pytest.approx(0.5, abs=0.05)

    def test_biased_stream(self):
        s = random_stream(8, 3000, seed=2, bit_prob=0.9)
        probs = bit_probabilities(s)
        assert all(p > 0.8 for p in probs)
        # Biased bits switch less: 2 p (1-p) ~ 0.18.
        assert average_activity(s) < 0.3

    def test_correlated_stream_sign_bits_quiet(self):
        s = correlated_stream(12, 4000, rho=0.97, seed=3)
        acts = bit_activities(s)
        # MSB (sign) region much quieter than LSB region.
        assert acts[-1] < 0.5 * acts[0]
        assert lag1_correlation(s) > 0.7

    def test_uncorrelated_stream(self):
        s = random_stream(10, 4000, seed=4)
        assert abs(lag1_correlation(s)) < 0.1

    def test_sinusoid_range(self):
        s = sinusoid_stream(8, 200, period=50)
        half = 1 << 7
        signed = [w - ((w & half) << 1) for w in s.words]
        assert max(signed) <= 127 and min(signed) >= -128
        assert max(signed) > 100  # amplitude used

    def test_constant_stream_zero_activity(self):
        s = constant_stream(8, 100, value=37)
        assert average_activity(s) == 0.0
        assert word_entropy(s) == 0.0

    def test_counter_stream_lsb_hottest(self):
        s = counter_stream(8, 512)
        acts = bit_activities(s)
        assert acts[0] == pytest.approx(1.0)
        assert acts[1] == pytest.approx(0.5, abs=0.01)
        assert acts[7] < 0.01

    def test_entropy_bounds(self):
        s = random_stream(6, 4000, seed=5)
        assert bit_entropy(s) == pytest.approx(1.0, abs=0.01)
        assert word_entropy(s) <= 6.0 + 1e-9
        assert word_entropy(s) > 5.5

    def test_sign_transitions(self):
        s = WordStream([0, 0x80, 0x80, 0], 8)
        counts = sign_transition_counts(s)
        assert counts == {"++": 0, "+-": 1, "--": 1, "-+": 1}

    def test_breakpoints_random_vs_correlated(self):
        noisy = random_stream(12, 3000, seed=6)
        corr = correlated_stream(12, 3000, rho=0.98, seed=6)
        assert breakpoints(noisy) >= 11  # nearly everything random
        assert breakpoints(corr) < breakpoints(noisy)


class TestComponents:
    @pytest.mark.parametrize("kind,width,ops,expected", [
        ("add", 4, (7, 9), 16),
        ("add", 4, (15, 15), 30),
        ("sub", 4, (9, 7), 2),
        ("sub", 4, (3, 5), 14),   # wraps mod 16
        ("mult", 3, (5, 6), 30),
        ("mux", 4, (3, 12, 0), 3),
        ("mux", 4, (3, 12, 1), 12),
        ("reg", 4, (11,), 11),
        ("cmp_eq", 4, (9, 9), 1),
        ("cmp_eq", 4, (9, 8), 0),
        ("cmp_gt", 4, (9, 8), 1),
        ("cmp_gt", 4, (8, 9), 0),
    ])
    def test_functional_models(self, kind, width, ops, expected):
        comp = make_component(kind, width)
        assert comp.evaluate(ops) == expected

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_component("div", 4)

    @pytest.mark.parametrize("kind", ["add", "sub", "mult", "mux",
                                      "cmp_eq", "cmp_gt"])
    def test_gate_netlist_matches_function(self, kind):
        width = 3
        comp = make_component(kind, width)
        from repro.logic.simulate import evaluate

        import itertools
        n_ops = len(comp.input_ports)
        spaces = [range(1 << w) for _p, w in comp.input_ports]
        for operands in itertools.islice(itertools.product(*spaces), 80):
            values = evaluate(comp.circuit, comp.input_vector(operands))
            got = comp.read_output(values)
            mask = (1 << len(comp.output_nets)) - 1
            assert got == comp.evaluate(operands) & mask, (kind, operands)

    def test_reference_power_positive(self):
        comp = make_component("add", 4)
        streams = [random_stream(4, 100, seed=i) for i in range(2)]
        assert comp.reference_power(streams) > 0

    def test_constant_operand_lowers_power(self):
        comp = make_component("mult", 4)
        noisy = [random_stream(4, 300, seed=1), random_stream(4, 300, seed=2)]
        quiet = [random_stream(4, 300, seed=1), constant_stream(4, 300, 1)]
        assert comp.reference_power(quiet) < comp.reference_power(noisy)

    def test_cycle_energies_length(self):
        comp = make_component("add", 4)
        streams = [random_stream(4, 50, seed=3), random_stream(4, 50, seed=4)]
        energies = comp.cycle_energies(streams)
        assert len(energies) == 49
        assert all(e >= 0 for e in energies)
        report = comp.reference_activity(streams)
        assert sum(energies) == pytest.approx(
            0.5 * report.switched_capacitance)

    def test_output_words(self):
        comp = make_component("add", 4)
        a = WordStream([1, 2, 3], 4)
        b = WordStream([4, 5, 6], 4)
        out = output_words(comp, [a, b])
        assert out.words == [5, 7, 9]
        assert out.width == 5


class TestRtlNetlist:
    def _fir2(self):
        """y[t] = c0*x[t] + c1*x[t-1], a 2-tap FIR."""
        net = RtlNetlist("fir2")
        net.add_input("x", 4)
        net.add_constant("c0", 3, 4)
        net.add_constant("c1", 2, 4)
        net.add_instance("reg", 4, ["x"], output_signal="xd")
        net.add_instance("mult", 4, ["x", "c0"], output_signal="p0")
        net.add_instance("mult", 4, ["xd", "c1"], output_signal="p1")
        net.add_instance("add", 8, ["p0", "p1"], output_signal="y")
        net.add_output("y")
        return net

    def test_simulation_correct(self):
        net = self._fir2()
        sim = RtlSimulator(net)
        xs = [1, 2, 3, 4, 5]
        trace = sim.run({"x": WordStream(xs, 4)})
        expected = [3 * x + 2 * (xs[t - 1] if t else 0)
                    for t, x in enumerate(xs)]
        assert trace.signal_values["y"] == expected

    def test_cycle_detection(self):
        net = RtlNetlist()
        net.add_input("x", 4)
        net.add_instance("add", 4, ["x", "b"], output_signal="a")
        net.add_instance("add", 4, ["x", "a"], output_signal="b")
        with pytest.raises(ValueError):
            RtlSimulator(net)

    def test_register_breaks_cycle(self):
        # Accumulator: acc <- acc + x.
        net = RtlNetlist("acc")
        net.add_input("x", 4)
        net.add_instance("add", 4, ["x", "acc"], output_signal="sum")
        net.add_instance("reg", 5, ["sum"], output_signal="acc")
        net.add_output("acc")
        sim = RtlSimulator(net)
        trace = sim.run({"x": WordStream([1, 1, 1, 1], 4)})
        assert trace.signal_values["acc"] == [0, 1, 2, 3]

    def test_operand_streams_recorded(self):
        net = self._fir2()
        sim = RtlSimulator(net)
        trace = sim.run({"x": WordStream([1, 2, 3], 4)})
        inst = net.instances[1]  # mult x*c0
        streams = trace.operand_streams(inst)
        assert streams[0].words == [1, 2, 3]
        assert streams[1].words == [3, 3, 3]

    def test_gate_level_power_per_instance(self):
        net = self._fir2()
        sim = RtlSimulator(net)
        trace = sim.run({"x": random_stream(4, 80, seed=9)})
        power = sim.gate_level_power(trace)
        assert set(power) == {i.name for i in net.instances}
        assert all(p >= 0 for p in power.values())
        # Multipliers dominate adders of comparable width.
        assert power["u1_mult4"] > power["u3_add8"] * 0.3

    def test_missing_stimulus(self):
        net = self._fir2()
        with pytest.raises(ValueError):
            RtlSimulator(net).run({})

    def test_duplicate_signal(self):
        net = RtlNetlist()
        net.add_input("x", 4)
        with pytest.raises(ValueError):
            net.add_constant("x", 0, 4)


class TestProperties:
    @given(st.lists(st.integers(0, 15), min_size=2, max_size=30))
    @settings(max_examples=25, deadline=None)
    def test_activity_bounded(self, words):
        s = WordStream(words, 4)
        for a in bit_activities(s):
            assert 0.0 <= a <= 1.0
        assert 0.0 <= bit_entropy(s) <= 1.0
        assert word_entropy(s) <= 4.0 + 1e-9

    @given(st.integers(2, 8), st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_adder_component_always_correct(self, width, seed):
        comp = make_component("add", width)
        import random as _r

        rng = _r.Random(seed)
        a, b = rng.randrange(1 << width), rng.randrange(1 << width)
        assert comp.evaluate((a, b)) == a + b
