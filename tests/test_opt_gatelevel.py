"""Tests for precomputation, clock gating, guarded evaluation, retiming."""

import random

import networkx as nx
import pytest

from repro.fsm import benchmark, binary_encoding
from repro.logic import Circuit
from repro.logic.generators import chained_adder_tree, \
    magnitude_comparator, ripple_carry_adder
from repro.logic.simulate import evaluate, random_vectors, simulate
from repro.optimization.clock_gating import (
    build_gated_fsm,
    evaluate_clock_gating,
    idle_onset,
)
from repro.optimization.guarded_eval import (
    apply_guarded_evaluation,
    evaluate_guarded,
    find_guard_candidates,
)
from repro.optimization.precompute import (
    best_subset,
    build_precomputed_circuit,
    derive_predictors,
    evaluate_precomputation,
)
from repro.optimization.retiming import (
    choose_low_power_level,
    circuit_to_retiming_graph,
    evaluate_power_retiming,
    is_legal_retiming,
    min_period_retiming,
    net_levels,
    pipeline_at_level,
    retimed_period,
)


class TestPrecomputation:
    def test_predictors_sound(self):
        """g1 => f and g0 => ~f, checked exhaustively."""
        circuit = magnitude_comparator(3)
        subset = ["a2", "b2"]   # MSBs decide most comparisons
        pair = derive_predictors(circuit, "gt", subset)
        for a in range(8):
            for b in range(8):
                vec = {f"a{i}": (a >> i) & 1 for i in range(3)}
                vec.update({f"b{i}": (b >> i) & 1 for i in range(3)})
                f = evaluate(circuit, vec)["gt"]
                m = sum(vec[name] << i for i, name in enumerate(subset))
                if m in pair.g1_onset:
                    assert f == 1
                if m in pair.g0_onset:
                    assert f == 0

    def test_msb_subset_covers_half(self):
        """Fig. 6's classic result: comparing the two MSBs decides the
        comparator outcome half the time."""
        circuit = magnitude_comparator(4)
        pair = derive_predictors(circuit, "gt", ["a3", "b3"])
        assert pair.coverage == pytest.approx(0.5)

    def test_best_subset_finds_msbs(self):
        circuit = magnitude_comparator(3)
        pair = best_subset(circuit, "gt", 2)
        assert set(pair.subset) == {"a2", "b2"}

    def test_precomputed_circuit_functional(self):
        """Precomputed architecture = original with 1-cycle latency."""
        circuit = magnitude_comparator(3)
        pair = derive_predictors(circuit, "gt", ["a2", "b2"])
        pre = build_precomputed_circuit(circuit, "gt", pair)
        vectors = random_vectors(circuit.inputs, 80, seed=1)
        trace = simulate(pre, vectors)
        for t in range(1, len(vectors)):
            expected = evaluate(circuit, vectors[t - 1])["gt"]
            assert trace[t]["f"] == expected, t

    def test_precomputation_saves_power(self):
        circuit = magnitude_comparator(6)
        vectors = random_vectors(circuit.inputs, 300, seed=2)
        report = evaluate_precomputation(circuit, "gt", 2, vectors)
        assert report.coverage == pytest.approx(0.5)
        assert report.saving > 0.05
        assert report.precomputed_power < report.original_power

    def test_wrong_output_rejected(self):
        circuit = magnitude_comparator(3)
        pair = derive_predictors(circuit, "gt", ["a2"])
        bad = magnitude_comparator(3)
        bad.outputs = ["nope"]
        with pytest.raises(ValueError):
            build_precomputed_circuit(bad, "gt", pair)


class TestClockGating:
    def test_idle_onset_matches_self_loops(self):
        stg = benchmark("waiter")
        enc = binary_encoding(stg)
        onset = idle_onset(stg, enc)
        # SLEEP self-loops on in0=0 (2 minterms), W1/W2 have none,
        # W3 none (goes to SLEEP or W1).
        complete = stg.completed()
        loops = sum(1 for t in complete.transitions if t.src == t.dst)
        assert len(onset) >= loops  # cube expansion >= transition count

    def test_gated_fsm_equivalent(self):
        stg = benchmark("waiter")
        enc = binary_encoding(stg)
        from repro.fsm.synthesis import synthesize_fsm, verify_fsm_netlist

        gated, _fa = build_gated_fsm(stg, enc)
        rng = random.Random(3)
        seq = [rng.randrange(1 << stg.n_inputs) for _ in range(120)]
        assert verify_fsm_netlist(stg, gated, enc, seq)

    def test_gating_saves_on_idle_machine(self):
        from repro.fsm import one_hot_encoding

        stg = benchmark("waiter")
        # Mostly idle stimulus: in0 rarely asserted.  One-hot state
        # registers give the clock gate enough flops to pay for the
        # Fa network and the filter latch.
        report = evaluate_clock_gating(stg, encoding=one_hot_encoding(stg),
                                       cycles=500, seed=4,
                                       bit_probs=[0.05, 0.5])
        assert report.idle_fraction > 0.5
        assert report.saving > 0.0

    def test_gating_unprofitable_on_tiny_register(self):
        """With only two state flops, the gating overhead (filter
        latch + Fa) exceeds the clock saving — the overhead tradeoff
        the paper warns about."""
        stg = benchmark("waiter")
        report = evaluate_clock_gating(stg, cycles=500, seed=4,
                                       bit_probs=[0.05, 0.5])
        assert report.saving < 0.05

    def test_gating_overhead_on_busy_machine(self):
        stg = benchmark("waiter")
        busy = evaluate_clock_gating(stg, cycles=400, seed=5,
                                     bit_probs=[0.95, 0.5])
        idle = evaluate_clock_gating(stg, cycles=400, seed=5,
                                     bit_probs=[0.05, 0.5])
        assert idle.saving > busy.saving

    def test_simplified_fa_still_correct(self):
        """A simplified Fa must still gate only on true idle cycles."""
        stg = benchmark("waiter")
        enc = binary_encoding(stg)
        from repro.fsm.synthesis import verify_fsm_netlist

        gated, _fa = build_gated_fsm(stg, enc, simplify_fraction=0.4)
        seq = [random.Random(9).randrange(4) for _ in range(100)]
        assert verify_fsm_netlist(stg, gated, enc, seq)

    def test_simplified_fa_gates_less_often(self):
        stg = benchmark("waiter")
        full = evaluate_clock_gating(stg, cycles=300, seed=4,
                                     bit_probs=[0.05, 0.5],
                                     simplify_fraction=1.0)
        small = evaluate_clock_gating(stg, cycles=300, seed=4,
                                      bit_probs=[0.05, 0.5],
                                      simplify_fraction=0.3)
        assert small.idle_fraction <= full.idle_fraction


class TestGuardedEvaluation:
    def _mux_circuit(self):
        """out = sel ? g(Y) : f(X) with a fat f-cone to guard."""
        c = Circuit("guardme")
        xs = c.add_inputs([f"x{i}" for i in range(4)])
        ys = c.add_inputs([f"y{i}" for i in range(2)])
        sel = c.add_input("sel")
        # f cone: xor/and tree over xs.
        t1 = c.add_gate("XOR2", [xs[0], xs[1]])
        t2 = c.add_gate("XOR2", [xs[2], xs[3]])
        t3 = c.add_gate("AND2", [t1, t2])
        f_out = c.add_gate("OR2", [t3, t1])
        g_out = c.add_gate("AND2", [ys[0], ys[1]])
        out = c.add_gate("MUX2", [f_out, g_out, sel], output="out")
        c.add_output(out)
        return c

    def test_candidates_found(self):
        circuit = self._mux_circuit()
        candidates = find_guard_candidates(circuit, min_cone=3)
        assert candidates
        guards = {c.guard for c in candidates}
        assert "sel" in guards

    def test_guarded_circuit_equivalent(self):
        circuit = self._mux_circuit()
        vectors = random_vectors(circuit.inputs, 200, seed=6)
        report = evaluate_guarded(circuit, vectors, min_cone=3)
        assert report is not None
        assert report.equivalent

    def test_guarding_saves_power(self):
        circuit = self._mux_circuit()
        vectors = random_vectors(circuit.inputs, 400, seed=7)
        report = evaluate_guarded(circuit, vectors, min_cone=3)
        assert report is not None
        # Guard latches cost something; the frozen cone saves more on
        # logic, but flop/clock overhead can eat it on tiny cones --
        # assert the cone switching is actually suppressed instead.
        from repro.logic.simulate import collect_activity

        guarded = apply_guarded_evaluation(circuit,
                                           report.candidate)
        base = collect_activity(circuit, vectors)
        after = collect_activity(guarded, vectors)
        cone_nets = [g.output for g in circuit.gates
                     if g.output.startswith("n")]
        base_cone = sum(base.toggles[n] for n in base.toggles
                        if n.startswith("n"))
        after_cone = sum(after.toggles[n] for n in after.toggles
                         if n.startswith("n"))
        assert after_cone < base_cone

    def test_no_candidates_in_plain_adder(self):
        circuit = ripple_carry_adder(3)
        candidates = find_guard_candidates(circuit, min_cone=3)
        # Adders have no unobservable cones under any single signal.
        assert candidates == []


class TestLeisersonSaxe:
    def _correlator(self):
        """The classic Leiserson-Saxe correlator example."""
        g = nx.DiGraph()
        g.add_node("host", delay=0.0)
        for name, delay in [("d1", 3.0), ("d2", 3.0), ("d3", 3.0),
                            ("p1", 7.0), ("p2", 7.0), ("p3", 7.0),
                            ("p0", 7.0)]:
            g.add_node(name, delay=delay)
        edges = [("host", "d1", 1), ("d1", "d2", 1), ("d2", "d3", 1),
                 ("d3", "p3", 0), ("p3", "p2", 0), ("p2", "p1", 0),
                 ("p1", "p0", 0), ("p0", "host", 0),
                 ("d1", "p1", 0), ("d2", "p2", 0)]
        for u, v, w in edges:
            g.add_edge(u, v, weight=w)
        return g

    def test_initial_period(self):
        g = self._correlator()
        zero = {n: 0 for n in g.nodes}
        # Zero-weight path d3 -> p3 -> p2 -> p1 -> p0: 3 + 4*7 = 31.
        assert retimed_period(g, zero) == pytest.approx(31.0)

    def test_min_period_improves(self):
        g = self._correlator()
        period, retiming = min_period_retiming(g)
        assert is_legal_retiming(g, retiming)
        base = retimed_period(g, {n: 0 for n in g.nodes})
        assert period < base
        assert retimed_period(g, retiming) <= period + 1e-9

    def test_circuit_to_graph(self):
        from repro.logic.generators import counter

        circuit = counter(3)
        g = circuit_to_retiming_graph(circuit)
        assert "host" in g
        assert g.number_of_nodes() == len(circuit.gates) + 1
        # Sequential circuit: some edge carries a register.
        assert any(d["weight"] > 0 for _u, _v, d in g.edges(data=True))


class TestPowerRetiming:
    def test_pipeline_functional_shift(self):
        circuit = chained_adder_tree(3, 2)
        retimed, n_regs = pipeline_at_level(circuit, 4)
        assert n_regs > 0
        vectors = random_vectors(circuit.inputs, 40, seed=8)
        trace = simulate(retimed, vectors)
        for t in range(1, len(vectors)):
            expected = evaluate(circuit, vectors[t - 1])
            for out in circuit.outputs:
                assert trace[t][out] == expected[out], (t, out)

    def test_levels_increase(self):
        circuit = chained_adder_tree(3, 2)
        level = net_levels(circuit)
        for gate in circuit.gates:
            for net in gate.inputs:
                assert level[gate.output] > level.get(net, 0)

    def test_low_power_level_choice_valid(self):
        circuit = chained_adder_tree(4, 3)
        vectors = random_vectors(circuit.inputs, 60, seed=9)
        level = choose_low_power_level(circuit, vectors)
        assert 1 <= level < circuit.depth()

    def test_power_retiming_report(self):
        circuit = chained_adder_tree(4, 3)
        vectors = random_vectors(circuit.inputs, 120, seed=10)
        report = evaluate_power_retiming(circuit, vectors)
        assert report.depth_cut_registers > 0
        assert report.low_power_registers > 0
        # Glitch-aware placement at least matches the naive cut.
        assert report.low_power_cut_power <= report.depth_cut_power * 1.02

    def test_registers_kill_glitches(self):
        """Pipelined circuit has less glitch-driven switching per
        gate-output than the combinational one (normalized by gate
        count)."""
        from repro.logic.eventsim import EventSimulator
        from repro.logic.simulate import collect_activity

        circuit = chained_adder_tree(4, 3)
        vectors = random_vectors(circuit.inputs, 100, seed=11)
        base_timed = EventSimulator(circuit).run(vectors)
        base_func = collect_activity(circuit, vectors)
        base_glitch = base_timed.switched_capacitance \
            - base_func.switched_capacitance

        retimed, _n = pipeline_at_level(circuit, circuit.depth() // 2)
        re_timed = EventSimulator(retimed).run(vectors)
        re_func = collect_activity(retimed, vectors)
        re_glitch = re_timed.switched_capacitance \
            - re_func.switched_capacitance
        assert re_glitch < base_glitch
