"""Tests for shutdown policies, bus encoding, and software optimization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optimization.shutdown import (
    AlwaysOnPolicy,
    HwangWuPolicy,
    OraclePolicy,
    SrivastavaHeuristicPolicy,
    SrivastavaRegressionPolicy,
    StaticTimeoutPolicy,
    Workload,
    breakeven_time,
    generate_workload,
    simulate_policy,
)
from repro.optimization.bus_encoding import (
    BeachCode,
    BinaryCode,
    BusInvertCode,
    GrayCode,
    T0BusInvertCode,
    T0Code,
    WorkingZoneCode,
    correlated_block_addresses,
    count_transitions,
    from_gray,
    hamming,
    interleaved_array_addresses,
    random_addresses,
    sequential_addresses,
    to_gray,
)
from repro.optimization.software_opt import (
    bus_transition_cost,
    cold_schedule,
    dependence_dag,
    energy_aware_selection,
    evaluate_cold_scheduling,
    multiply_by_constant_alternatives,
)
from repro.rtl.streams import WordStream
from repro.software import Instruction, Machine, random_program

I = Instruction


class TestWorkloads:
    def test_workload_bound(self):
        w = Workload([(10.0, 90.0), (10.0, 90.0)])
        assert w.shutdown_upper_bound() == pytest.approx(10.0)

    def test_generated_workload_shape(self):
        w = generate_workload(100, seed=1)
        assert len(w.periods) == 100
        assert w.total_idle > w.total_active  # idle-dominated


class TestPolicies:
    @pytest.fixture(scope="class")
    def workload(self):
        return generate_workload(300, seed=2)

    def _run(self, workload, policy):
        return simulate_policy(workload, policy)

    def test_always_on_is_baseline(self, workload):
        report = self._run(workload, AlwaysOnPolicy())
        assert report.improvement == pytest.approx(1.0)
        assert report.sleeps == 0
        assert report.latency_penalty == 0.0

    def test_oracle_bounded_by_theory(self, workload):
        be = breakeven_time()
        report = self._run(workload, OraclePolicy(be))
        assert 1.0 < report.improvement < workload.shutdown_upper_bound() \
            * (1.0 / 0.8) + 1e-9

    def test_static_timeout_improves(self, workload):
        report = self._run(workload, StaticTimeoutPolicy(timeout=20.0))
        assert report.improvement > 1.0
        assert report.sleeps > 0

    def test_smaller_timeout_sleeps_more(self, workload):
        small = self._run(workload, StaticTimeoutPolicy(5.0))
        large = self._run(workload, StaticTimeoutPolicy(80.0))
        assert small.sleeps >= large.sleeps

    def test_predictive_beats_static(self, workload):
        """The paper's core claim: predictive > static timeout."""
        be = breakeven_time()
        static = self._run(workload, StaticTimeoutPolicy(2 * be))
        regression = self._run(workload, SrivastavaRegressionPolicy(be))
        hwang = self._run(workload, HwangWuPolicy(be))
        assert regression.improvement > static.improvement
        assert hwang.improvement > static.improvement

    def test_heuristic_policy_improves(self, workload):
        report = self._run(workload, SrivastavaHeuristicPolicy())
        assert report.improvement > 1.0

    def test_oracle_dominates_all(self, workload):
        be = breakeven_time()
        oracle = self._run(workload, OraclePolicy(be))
        for policy in (StaticTimeoutPolicy(be), HwangWuPolicy(be),
                       SrivastavaRegressionPolicy(be),
                       SrivastavaHeuristicPolicy()):
            assert oracle.improvement >= \
                self._run(workload, policy).improvement - 1e-9

    def test_prewakeup_cuts_latency(self, workload):
        be = breakeven_time()
        with_pre = self._run(workload, HwangWuPolicy(be, prewakeup=True))
        without = self._run(workload, HwangWuPolicy(be, prewakeup=False))
        assert with_pre.latency_penalty < without.latency_penalty

    def test_latency_penalty_small(self, workload):
        be = breakeven_time()
        report = self._run(workload, HwangWuPolicy(be))
        assert report.latency_penalty < 0.10  # paper quotes ~3%


class TestGrayHelpers:
    @given(st.integers(0, 4095))
    @settings(max_examples=60, deadline=None)
    def test_gray_roundtrip(self, value):
        assert from_gray(to_gray(value)) == value

    @given(st.integers(0, 4094))
    @settings(max_examples=60, deadline=None)
    def test_gray_adjacent(self, value):
        assert hamming(to_gray(value), to_gray(value + 1)) == 1


class TestBusCodes:
    WIDTH = 8

    def _codes(self):
        return [BinaryCode(self.WIDTH), BusInvertCode(self.WIDTH),
                GrayCode(self.WIDTH), T0Code(self.WIDTH),
                T0BusInvertCode(self.WIDTH),
                WorkingZoneCode(self.WIDTH, n_zones=2, offset_bits=4)]

    @pytest.mark.parametrize("stream_fn,kwargs", [
        (sequential_addresses, {}),
        (random_addresses, {"seed": 3}),
        (interleaved_array_addresses, {"seed": 4, "base_stride": 64}),
        (correlated_block_addresses, {"seed": 5}),
    ])
    def test_all_codes_decode_correctly(self, stream_fn, kwargs):
        stream = stream_fn(self.WIDTH, 300, **kwargs)
        for code in self._codes():
            count_transitions(code, stream, check_decode=True)

    def test_beach_decodes_after_training(self):
        stream = correlated_block_addresses(self.WIDTH, 400, seed=6)
        beach = BeachCode(self.WIDTH)
        beach.train(stream.words[:200])
        count_transitions(beach, stream, check_decode=True)

    def test_bus_invert_guarantee(self):
        """Never more than N/2 + 1 line transitions per cycle."""
        stream = random_addresses(self.WIDTH, 500, seed=7)
        code = BusInvertCode(self.WIDTH)
        code.reset()
        prev = None
        for word in stream.words:
            value = code.encode(word)
            if prev is not None:
                assert hamming(prev, value) <= self.WIDTH // 2 + 1
            prev = value

    def test_bus_invert_beats_binary_on_random(self):
        stream = random_addresses(self.WIDTH, 2000, seed=8)
        bi = count_transitions(BusInvertCode(self.WIDTH), stream)
        plain = count_transitions(BinaryCode(self.WIDTH), stream)
        assert bi.transitions < plain.transitions

    def test_gray_one_transition_on_sequential(self):
        stream = sequential_addresses(self.WIDTH, 256)
        report = count_transitions(GrayCode(self.WIDTH), stream)
        assert report.per_cycle == pytest.approx(1.0)

    def test_gray_optimal_irredundant_on_sequential(self):
        stream = sequential_addresses(self.WIDTH, 256)
        gray = count_transitions(GrayCode(self.WIDTH), stream)
        binary = count_transitions(BinaryCode(self.WIDTH), stream)
        assert gray.transitions < binary.transitions

    def test_t0_zero_transitions_on_sequential(self):
        stream = sequential_addresses(self.WIDTH, 200)
        report = count_transitions(T0Code(self.WIDTH), stream)
        # One INC-line rise at the second address; nothing after.
        assert report.transitions <= 1

    def test_working_zone_wins_on_interleaved(self):
        stream = interleaved_array_addresses(12, 600, n_arrays=3, seed=9,
                                             base_stride=256)
        wz = count_transitions(WorkingZoneCode(12, n_zones=4,
                                               offset_bits=4), stream)
        gray = count_transitions(GrayCode(12), stream)
        t0 = count_transitions(T0Code(12), stream)
        assert wz.per_cycle < gray.per_cycle
        assert wz.per_cycle < t0.per_cycle

    def test_beach_wins_on_block_correlated(self):
        # Beach is trace-driven: it is trained on an execution trace of
        # the embedded code and deployed on later executions of the
        # same code (same working regions).
        full = correlated_block_addresses(self.WIDTH, 1400, seed=10)
        train, test = full.words[:700], full.words[700:]
        beach = BeachCode(self.WIDTH)
        beach.train(train)
        b = count_transitions(beach, WordStream(test, self.WIDTH))
        plain = count_transitions(BinaryCode(self.WIDTH),
                                  WordStream(test, self.WIDTH))
        assert b.transitions < plain.transitions

    @given(st.lists(st.integers(0, 255), min_size=2, max_size=60))
    @settings(max_examples=25, deadline=None)
    def test_codes_roundtrip_property(self, words):
        stream = WordStream(words, 8)
        for code in self._codes():
            count_transitions(code, stream, check_decode=True)


class TestColdScheduling:
    def _block(self):
        return [
            I("ADDI", rd=1, rs=0, imm=5),
            I("MUL", rd=2, rs=1, rt=1),
            I("ADDI", rd=3, rs=0, imm=9),
            I("LD", rd=4, rs=0, imm=16),
            I("ADD", rd=5, rs=2, rt=3),
            I("XOR", rd=6, rs=4, rt=5),
            I("ST", rd=6, rs=0, imm=17),
        ]

    def test_dependence_dag_raw(self):
        block = self._block()
        deps = dependence_dag(block)
        assert 0 in deps[1]     # MUL reads r1
        assert 4 in deps[5]     # XOR reads r5
        assert 3 in deps[5]     # XOR reads r4
        assert 3 in deps[6]     # memory serialization LD -> ST

    def test_cold_schedule_preserves_semantics(self):
        report = evaluate_cold_scheduling(self._block(),
                                          memory_init=list(range(32)))
        assert report.equivalent

    def test_cold_schedule_reduces_toggles(self):
        program = random_program(60, seed=12)[:-1]  # drop HALT
        report = evaluate_cold_scheduling(program,
                                          memory_init=list(range(64)))
        assert report.equivalent
        assert report.scheduled_toggles <= report.original_toggles
        assert report.toggle_reduction >= 0.0

    @given(st.integers(0, 300))
    @settings(max_examples=15, deadline=None)
    def test_cold_schedule_equivalence_property(self, seed):
        program = random_program(40, seed=seed)[:-1]
        report = evaluate_cold_scheduling(program,
                                          memory_init=list(range(64)))
        assert report.equivalent


class TestInstructionSelection:
    @pytest.mark.parametrize("constant", [2, 3, 5, 8, 12])
    def test_alternatives_equivalent(self, constant):
        src, dst = 7, 8
        alts = multiply_by_constant_alternatives(src, dst, constant)
        results = []
        for alt in alts:
            m = Machine()
            setup = [I("ADDI", rd=src, rs=0, imm=11)]
            m.run(setup + list(alt) + [I("HALT")])
            results.append(m.registers[dst])
        assert results[0] == results[1] == 11 * constant

    def test_selection_picks_cheaper(self):
        alts = multiply_by_constant_alternatives(7, 8, 8)  # 1 shift
        setup = [I("ADDI", rd=7, rs=0, imm=11)]
        full = [setup + list(a) for a in alts]
        winner, energies = energy_aware_selection(full)
        assert len(energies) == 2
        # Single-shift version beats the multiply.
        assert winner == 1
