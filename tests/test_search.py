"""Parallel candidate-search executor (repro.optimization.search).

The load-bearing property mirrors PR 9's: *bit-identity*.  Every
rewired candidate loop must return identical reports — and pick the
identical winning candidate — for ``workers=1``, ``workers>=2``, and
the serial fallback, including a worker dying mid-sweep (its jobs are
re-run in-process, never silently dropped).  The remaining tests pin
the executor contract (ordered merge, deterministic spawn-key seeds,
env knob, context transports) and the consolidation of the repo's
seed-derivation schemes into :mod:`repro.util.seeding`.
"""

import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

# The equivalence tests re-apply their monkeypatches per example (the
# patch is idempotent), so the function-scoped-fixture check is noise.
_FIXTURE_OK = [HealthCheck.function_scoped_fixture]

from repro.fsm import benchmark as fsm_benchmark
from repro.fsm.encoding import low_power_encoding
from repro.logic.netlist import Circuit
from repro.logic.simulate import random_vectors
from repro.optimization import search
from repro.optimization.bus_encoding import (
    count_transitions,
    default_survey_codes,
    random_addresses,
    survey_codes,
)
from repro.util import seeding


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    monkeypatch.delenv(search.ENV_WORKERS, raising=False)


def teardown_module(module):
    search.shutdown_pool()


# ----------------------------------------------------------------------
# Module-level job functions (pool workers pickle them by reference)
# ----------------------------------------------------------------------

def _echo_job(candidate, ctx):
    return (candidate, ctx.seed, os.getpid(), search.in_worker())


def _crash_job(candidate, ctx):
    if search.in_worker():
        os._exit(11)            # simulates a worker dying mid-sweep
    return candidate * 2


def _angry_job(candidate, ctx):
    if candidate == 3:
        raise ValueError("candidate three is bad")
    return candidate


def _nested_job(candidate, ctx):
    inner = search.evaluate_candidates(_echo_job, [0, 1], workers=4)
    return (search.resolve_workers(4), [r[3] for r in inner])


def _no_pool(monkeypatch):
    def boom(n):
        raise RuntimeError("pool unavailable")
    monkeypatch.setattr(search, "_get_pool", boom)


# ----------------------------------------------------------------------
# Spawn-key seeding (the one derivation scheme)
# ----------------------------------------------------------------------
class TestSeeding:
    def test_recurrence_pinned_forever(self):
        # Committed characterization datasets depend on these values.
        assert seeding.STRIDE == 1000003
        assert seeding.child_seed(7, 0) == (7 * 1000003) & 0x7FFFFFFF
        assert seeding.child_seed(7, 5) == (7 * 1000003 + 5) & 0x7FFFFFFF

    def test_spawn_seeds_deterministic_and_distinct(self):
        a = seeding.spawn_seeds(123, 64)
        b = seeding.spawn_seeds(123, 64)
        assert a == b
        assert len(set(a)) == 64
        assert all(0 <= s <= 0x7FFFFFFF for s in a)

    def test_unseeded_passthrough_and_bad_index(self):
        assert seeding.child_seed(None, 9) is None
        assert seeding.spawn_seeds(None, 3) == [None, None, None]
        with pytest.raises(ValueError):
            seeding.child_seed(1, -1)

    def test_matches_learned_characterization_scheme(self):
        from repro.estimation.learned import characterize
        for base in (0, 1, 17, 99991):
            for k in (0, 1, 9973):
                assert characterize._run_seed(base, k) \
                    == seeding.child_seed(base, k)

    def test_serve_shards_draw_spawn_keys(self):
        from repro import serve
        job = {"technique": "simulation", "cycles": 120, "seed": 5,
               "shards": 3}
        subs = serve._shard_jobs(job)
        assert [s["seed"] for s in subs] \
            == [seeding.child_seed(5, k) for k in range(3)]
        assert sum(s["cycles"] for s in subs) == 120
        # unseeded jobs stay unseeded in every shard
        subs = serve._shard_jobs({"technique": "simulation",
                                  "cycles": 120, "seed": None,
                                  "shards": 3})
        assert [s["seed"] for s in subs] == [None, None, None]


# ----------------------------------------------------------------------
# Worker-count resolution
# ----------------------------------------------------------------------
class TestResolveWorkers:
    def test_default_serial(self):
        assert search.resolve_workers(None) == 1

    def test_explicit_and_floor(self):
        assert search.resolve_workers(3) == 3
        assert search.resolve_workers(0) == 1
        assert search.resolve_workers(-2) == 1

    def test_auto_is_cpu_count(self):
        assert search.resolve_workers("auto") \
            == max(1, os.cpu_count() or 1)

    def test_env_knob(self, monkeypatch):
        monkeypatch.setenv(search.ENV_WORKERS, "2")
        assert search.resolve_workers(None) == 2
        monkeypatch.setenv(search.ENV_WORKERS, "auto")
        assert search.resolve_workers(None) \
            == max(1, os.cpu_count() or 1)
        monkeypatch.setenv(search.ENV_WORKERS, "garbage")
        assert search.resolve_workers(None) == 1

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(search.ENV_WORKERS, "8")
        assert search.resolve_workers(2) == 2


# ----------------------------------------------------------------------
# Executor contract
# ----------------------------------------------------------------------
class TestExecutor:
    def test_ordered_merge_with_spawn_seeds(self):
        results = search.evaluate_candidates(
            _echo_job, list(range(8)), seed=42, workers=2)
        assert [r[0] for r in results] == list(range(8))
        assert [r[1] for r in results] == seeding.spawn_seeds(42, 8)
        # proof the pool actually ran: some job in another process,
        # with the worker flag up
        assert any(pid != os.getpid() for _c, _s, pid, _w in results)
        assert all(flag for _c, _s, pid, flag in results
                   if pid != os.getpid())

    def test_serial_path_stays_in_process(self):
        results = search.evaluate_candidates(
            _echo_job, list(range(4)), seed=7, workers=1)
        assert all(pid == os.getpid() for _c, _s, pid, _w in results)
        assert all(not flag for _c, _s, _p, flag in results)

    def test_env_knob_reaches_the_pool(self, monkeypatch):
        monkeypatch.setenv(search.ENV_WORKERS, "2")
        results = search.evaluate_candidates(
            _echo_job, list(range(6)), workers=None)
        assert [r[0] for r in results] == list(range(6))
        assert any(pid != os.getpid() for _c, _s, pid, _w in results)

    def test_pool_failure_degrades_to_serial(self, monkeypatch):
        _no_pool(monkeypatch)
        results = search.evaluate_candidates(
            _echo_job, list(range(5)), seed=1, workers=4)
        assert [r[0] for r in results] == list(range(5))
        assert all(pid == os.getpid() for _c, _s, pid, _w in results)

    def test_worker_death_never_drops_candidates(self):
        results = search.evaluate_candidates(
            _crash_job, list(range(6)), workers=2)
        assert results == [c * 2 for c in range(6)]

    def test_deterministic_exceptions_propagate(self):
        for workers in (1, 2):
            with pytest.raises(ValueError, match="candidate three"):
                search.evaluate_candidates(
                    _angry_job, list(range(5)), workers=workers)

    def test_jobs_cannot_nest_pools(self):
        # Two candidates: a single candidate legitimately short-
        # circuits to the serial path and never reaches a worker.
        results = search.evaluate_candidates(
            _nested_job, [0, 1], workers=2)
        for inner_workers, inner_flags in results:
            assert inner_workers == 1       # resolve_workers in worker
            assert all(inner_flags)         # ran inside the worker

    def test_empty_and_single_candidate(self):
        assert search.evaluate_candidates(_echo_job, [],
                                          workers=4) == []
        (result,) = search.evaluate_candidates(_echo_job, ["x"],
                                               workers=4)
        assert result[0] == "x" and result[2] == os.getpid()


class TestContextShipping:
    def test_small_context_inlines(self):
        search._SHIPPED.clear()
        ref = search._ship_context({"k": "tiny"}, {})
        assert ref["kind"] == "inline"

    def test_large_context_dedups_by_fingerprint(self):
        search._SHIPPED.clear()
        payload = {"blob": list(range(30000))}
        ref1 = search._ship_context(payload, {})
        ref2 = search._ship_context({"blob": list(range(30000))}, {})
        assert ref1 is ref2
        assert ref1["kind"] in ("shm", "file")

    def test_bignum_fallback_spools_to_file(self, monkeypatch):
        search._SHIPPED.clear()
        monkeypatch.setattr(search, "numpy_available", lambda: False)
        ref = search._ship_context({"blob": list(range(30000))}, {})
        assert ref["kind"] == "file"
        with open(ref["path"], "rb") as fh:
            assert len(fh.read()) > search._INLINE_LIMIT
        # workers can materialize it
        payload = search._materialize(dict(ref))
        assert payload["stimuli"]["blob"][:3] == [0, 1, 2]


# ----------------------------------------------------------------------
# Pass equivalence: workers=1 == workers>=2 == serial fallback
# ----------------------------------------------------------------------

def _mux_circuit():
    c = Circuit("g")
    c.add_inputs(["a", "b", "cc", "d", "s"])
    t1 = c.add_gate("AND2", ["a", "b"])
    t2 = c.add_gate("XOR2", [t1, "cc"])
    t3 = c.add_gate("OR2", [t2, "d"])
    c.add_gate("MUX2", [t3, "s", "s"], output="out")
    c.add_output("out")
    return c


def _chain_circuit(depth=5):
    c = Circuit("chain")
    c.add_inputs(["x0", "x1"])
    net = c.add_gate("XOR2", ["x0", "x1"])
    for _ in range(depth):
        net = c.add_gate("AND2", [net, "x0"])
        net = c.add_gate("XOR2", [net, "x1"])
    c.add_gate("BUF", [net], output="out")
    c.add_output("out")
    return c


class TestPassEquivalence:
    @settings(max_examples=3, deadline=None,
              suppress_health_check=_FIXTURE_OK)
    @given(seed=st.integers(0, 2**20))
    def test_guarded_eval(self, monkeypatch, seed):
        from repro.optimization.guarded_eval import evaluate_guarded

        c = _mux_circuit()
        vectors = random_vectors(c.inputs, 80, seed=seed)
        serial = evaluate_guarded(c, vectors, min_cone=2, top_k=2,
                                  workers=1)
        parallel = evaluate_guarded(c, vectors, min_cone=2, top_k=2,
                                    workers=2)
        _no_pool(monkeypatch)
        fallback = evaluate_guarded(c, vectors, min_cone=2, top_k=2,
                                    workers=2)
        assert serial == parallel == fallback

    @settings(max_examples=3, deadline=None,
              suppress_health_check=_FIXTURE_OK)
    @given(seed=st.integers(0, 2**20))
    def test_clock_gating_sweep(self, monkeypatch, seed):
        from repro.optimization.clock_gating import sweep_clock_gating

        stg = fsm_benchmark("waiter")
        serial = sweep_clock_gating(stg, [1.0, 0.5], cycles=120,
                                    seed=seed, workers=1)
        parallel = sweep_clock_gating(stg, [1.0, 0.5], cycles=120,
                                      seed=seed, workers=2)
        _no_pool(monkeypatch)
        fallback = sweep_clock_gating(stg, [1.0, 0.5], cycles=120,
                                      seed=seed, workers=2)
        assert serial == parallel == fallback

    @settings(max_examples=2, deadline=None,
              suppress_health_check=_FIXTURE_OK)
    @given(seed=st.integers(0, 2**20))
    def test_precompute_sweep(self, monkeypatch, seed):
        from repro.logic.generators import magnitude_comparator
        from repro.optimization.precompute import sweep_precomputation

        circuit = magnitude_comparator(3)
        vectors = random_vectors(circuit.inputs, 80, seed=seed)
        serial = sweep_precomputation(circuit, "gt", [1, 2], vectors,
                                      workers=1)
        parallel = sweep_precomputation(circuit, "gt", [1, 2], vectors,
                                        workers=2)
        _no_pool(monkeypatch)
        fallback = sweep_precomputation(circuit, "gt", [1, 2], vectors,
                                        workers=2)
        assert serial == parallel == fallback

    @settings(max_examples=3, deadline=None,
              suppress_health_check=_FIXTURE_OK)
    @given(seed=st.integers(0, 2**20))
    def test_respecification(self, monkeypatch, seed):
        from repro.optimization.respecification import \
            evaluate_respecification

        c = Circuit("resp")
        c.add_inputs(["d0", "d1", "d2", "d3", "s0", "s1"])
        m0 = c.add_gate("MUX2", ["d0", "d1", "s0"])
        m1 = c.add_gate("MUX2", ["d2", "d3", "s0"])
        c.add_gate("MUX2", [m0, m1, "s1"], output="y")
        c.add_output("y")
        vectors = random_vectors(c.inputs, 100, seed=seed)
        serial = evaluate_respecification(c, vectors, workers=1)
        parallel = evaluate_respecification(c, vectors, workers=2)
        _no_pool(monkeypatch)
        fallback = evaluate_respecification(c, vectors, workers=2)
        assert serial == parallel == fallback

    @settings(max_examples=3, deadline=None,
              suppress_health_check=_FIXTURE_OK)
    @given(seed=st.integers(0, 2**20))
    def test_retiming_level_choice(self, monkeypatch, seed):
        from repro.optimization.retiming import choose_low_power_level

        circuit = _chain_circuit()
        vectors = random_vectors(circuit.inputs, 100, seed=seed)
        serial = choose_low_power_level(circuit, vectors, workers=1)
        parallel = choose_low_power_level(circuit, vectors, workers=2)
        _no_pool(monkeypatch)
        fallback = choose_low_power_level(circuit, vectors, workers=2)
        assert serial == parallel == fallback

    @settings(max_examples=3, deadline=None,
              suppress_health_check=_FIXTURE_OK)
    @given(seed=st.integers(0, 2**16))
    def test_annealing_restarts(self, monkeypatch, seed):
        stg = fsm_benchmark("traffic")
        serial = low_power_encoding(stg, seed=seed, anneal_steps=300,
                                    restarts=3, workers=1)
        parallel = low_power_encoding(stg, seed=seed, anneal_steps=300,
                                      restarts=3, workers=2)
        _no_pool(monkeypatch)
        fallback = low_power_encoding(stg, seed=seed, anneal_steps=300,
                                      restarts=3, workers=2)
        assert serial.codes == parallel.codes == fallback.codes

    def test_single_restart_reproduces_historical_encoding(self):
        # restart 0 keeps the base seed, so the default run must equal
        # the pre-fan-out implementation bit for bit.
        stg = fsm_benchmark("waiter")
        legacy = low_power_encoding(stg, seed=3, anneal_steps=400)
        fanout = low_power_encoding(stg, seed=3, anneal_steps=400,
                                    restarts=1, workers=2)
        assert legacy.codes == fanout.codes
        assert fanout.strategy == "low-power-annealed"

    @settings(max_examples=3, deadline=None,
              suppress_health_check=_FIXTURE_OK)
    @given(seed=st.integers(0, 2**20))
    def test_bus_survey(self, monkeypatch, seed):
        stream = random_addresses(8, 150, seed=seed)
        serial = survey_codes(stream, workers=1)
        parallel = survey_codes(stream, workers=2)
        reference = [count_transitions(code, stream)
                     for code in default_survey_codes(8, stream)]
        _no_pool(monkeypatch)
        fallback = survey_codes(stream, workers=2)
        assert serial == parallel == fallback == reference

    def test_worker_death_mid_pass_still_bit_identical(self):
        # Kill the pool in the middle of a real sweep: the affected
        # candidates re-run in-process and the reports stay identical.
        stream = random_addresses(8, 150, seed=9)
        expected = survey_codes(stream, workers=1)
        search.evaluate_candidates(_crash_job, [0, 1], workers=2)
        got = survey_codes(stream, workers=2)
        assert got == expected


# ----------------------------------------------------------------------
# serve.py batch exposure
# ----------------------------------------------------------------------
class TestServeSearch:
    def test_bus_survey_job(self):
        from repro import serve
        result = serve.run_job({
            "technique": "search", "cycles": 200, "seed": 4,
            "search": {"kind": "bus-survey", "width": 8,
                       "stream": "random"},
        })
        assert result["ok"], result
        assert result["kind"] == "bus-survey"
        assert len(result["results"]) == 7
        best = min(result["results"],
                   key=lambda r: (r["transitions"], r["code"]))
        assert result["best"] == best["code"]
        assert result["power"] == pytest.approx(best["per_cycle"])

    def test_guarded_job(self):
        from repro import serve
        result = serve.run_job({
            "technique": "search", "cycles": 64, "seed": 1,
            "circuit": {"generator": "magnitude_comparator",
                        "params": {"width": 3}},
            "search": {"kind": "guarded", "top_k": 2},
        })
        assert result["ok"], result
        assert result["kind"] == "guarded"
        assert "results" in result and "best" in result

    def test_search_jobs_reject_bad_specs(self):
        from repro import serve
        bad_stream = serve.run_job({
            "technique": "search", "cycles": 64,
            "search": {"kind": "bus-survey", "stream": "evil"},
        })
        assert not bad_stream["ok"]
        bad_kind = serve.run_job({
            "technique": "search", "cycles": 64,
            "search": {"kind": "mystery"},
        })
        assert not bad_kind["ok"]

    def test_search_jobs_never_shard(self):
        from repro import serve
        job = {"technique": "search", "cycles": 400, "shards": 4,
               "search": {"kind": "bus-survey"}}
        assert serve._shard_jobs(job) == [job]
