"""Tests for macro-models, sampling cosimulation, quick synthesis, and
software power estimation."""

import random

import pytest

from repro.estimation.macromodel import (
    BitwiseModel,
    CycleAccurateModel,
    DualBitTypeModel,
    InputOutputModel,
    PfaModel,
    Table3DModel,
    characterization_streams,
    fit_macromodel,
)
from repro.estimation.sampling import (
    adaptive_power,
    census_power,
    gate_reference_power,
    sampler_power,
)
from repro.estimation.quicksynth import dynamic_profile, \
    quick_synthesis_estimate
from repro.estimation.software_power import (
    CharacteristicProfile,
    TiwariModel,
    profile_synthesis_experiment,
    synthesize_profile_program,
)
from repro.rtl.components import make_component
from repro.rtl.streams import (
    constant_stream,
    correlated_stream,
    random_stream,
)
from repro.software import Machine, dot_product, fir_program, random_program


@pytest.fixture(scope="module")
def adder():
    return make_component("add", 4)


@pytest.fixture(scope="module")
def adder_training(adder):
    return characterization_streams(adder, runs=16, length=80, seed=1)


def _test_streams(width, seed=77, length=100):
    return [random_stream(width, length, seed=seed),
            random_stream(width, length, seed=seed + 1)]


class TestMacroModels:
    def test_pfa_is_constant(self, adder, adder_training):
        model = fit_macromodel(PfaModel(), adder, adder_training)
        a = model.predict(_test_streams(4))
        b = model.predict([constant_stream(4, 50, 3)] * 2)
        assert a == b > 0

    def test_pfa_misses_data_dependence(self, adder, adder_training):
        """PFA errs badly on quiet data (the paper's criticism)."""
        model = fit_macromodel(PfaModel(), adder, adder_training)
        quiet = [constant_stream(4, 100, 5), constant_stream(4, 100, 9)]
        truth = adder.reference_power(quiet)
        assert truth == 0.0
        assert model.predict(quiet) > 0.05

    def test_bitwise_tracks_activity(self, adder, adder_training):
        model = fit_macromodel(BitwiseModel(), adder, adder_training)
        hot = _test_streams(4)
        cold = [random_stream(4, 100, seed=5, bit_prob=0.95),
                random_stream(4, 100, seed=6, bit_prob=0.95)]
        assert model.predict(hot) > model.predict(cold)

    def test_bitwise_accuracy_on_random(self, adder, adder_training):
        model = fit_macromodel(BitwiseModel(), adder, adder_training)
        err = model.error(adder, _test_streams(4))
        assert err < 0.25

    def test_io_model_on_multiplier(self):
        mult = make_component("mult", 4)
        training = characterization_streams(mult, runs=16, length=80,
                                            seed=2)
        io_model = fit_macromodel(InputOutputModel(), mult, training)
        err = io_model.error(mult, _test_streams(4, seed=30))
        assert err < 0.35

    def test_dbt_beats_pfa_on_correlated(self):
        mult = make_component("mult", 6)
        training = characterization_streams(mult, runs=20, length=80,
                                            seed=3)
        pfa = fit_macromodel(PfaModel(), mult, training)
        dbt = fit_macromodel(DualBitTypeModel(), mult, training)
        corr = [correlated_stream(6, 120, rho=0.97, seed=8),
                correlated_stream(6, 120, rho=0.97, seed=9)]
        assert dbt.error(mult, corr) < pfa.error(mult, corr)

    def test_table3d_predicts(self, adder, adder_training):
        model = fit_macromodel(Table3DModel(bins=4), adder, adder_training)
        value = model.predict(_test_streams(4))
        truth = adder.reference_power(_test_streams(4))
        assert value == pytest.approx(truth, rel=0.6)

    def test_cycle_accurate_selects_few_variables(self, adder,
                                                  adder_training):
        model = CycleAccurateModel(max_variables=8)
        model.fit(adder, adder_training)
        assert 1 <= len(model.selected) <= 8

    def test_cycle_accurate_average_error(self, adder, adder_training):
        model = CycleAccurateModel(max_variables=8)
        model.fit(adder, adder_training)
        streams = _test_streams(4, seed=55, length=150)
        assert model.error(adder, streams) < 0.20

    def test_cycle_accurate_cycle_error_larger_than_average(
            self, adder, adder_training):
        """Cycle error (10-20% in the paper) exceeds average error."""
        model = CycleAccurateModel(max_variables=8)
        model.fit(adder, adder_training)
        streams = _test_streams(4, seed=56, length=150)
        assert model.cycle_error(adder, streams) >= \
            model.error(adder, streams)


class TestDegenerateTraining:
    """The fixed ladder must stay finite on pathological training
    inputs — constant streams (singular design matrices), one-run
    training sets, width-1 components (the ridge-guard satellite)."""

    MODELS = [PfaModel, DualBitTypeModel, BitwiseModel,
              InputOutputModel, Table3DModel, CycleAccurateModel]

    @pytest.mark.parametrize("factory", MODELS)
    def test_constant_stream_training(self, factory):
        import math

        component = make_component("add", 4)
        training = [[constant_stream(4, 60, 5),
                     constant_stream(4, 60, 9)] for _ in range(4)]
        model = fit_macromodel(factory(), component, training=training)
        predicted = model.predict(_test_streams(4))
        assert math.isfinite(predicted)

    @pytest.mark.parametrize("factory", MODELS)
    def test_single_sample_training(self, factory):
        import math

        component = make_component("add", 4)
        training = characterization_streams(component, runs=1,
                                            length=60, seed=3)
        model = fit_macromodel(factory(), component, training=training)
        assert math.isfinite(model.predict(_test_streams(4)))

    @pytest.mark.parametrize("factory",
                             [PfaModel, BitwiseModel,
                              InputOutputModel, CycleAccurateModel])
    def test_width1_component(self, factory):
        import math

        component = make_component("reg", 1)
        training = characterization_streams(component, runs=6,
                                            length=60, seed=2)
        model = fit_macromodel(factory(), component, training=training)
        assert math.isfinite(model.predict(
            [random_stream(1, 80, seed=11)]))

    def test_zero_activity_training_predicts_training_mean(self):
        # A register fed constants: every activity feature is zero,
        # so the design matrix is singular — the ridge guard must
        # still recover the intercept (= the training-mean power)
        # instead of returning garbage.
        import math

        component = make_component("reg", 4)
        streams = [constant_stream(4, 60, 7)]
        training = [streams for _ in range(3)]
        truth = component.reference_power(streams)
        model = fit_macromodel(BitwiseModel(), component,
                               training=training)
        predicted = model.predict(streams)
        assert math.isfinite(predicted)
        assert predicted == pytest.approx(truth, rel=1e-6)


class TestSampling:
    @pytest.fixture(scope="class")
    def fitted(self):
        comp = make_component("add", 4)
        training = characterization_streams(comp, runs=16, length=80,
                                            seed=4)
        model = fit_macromodel(BitwiseModel(), comp, training)
        return comp, model

    def test_census_matches_model_average(self, fitted):
        comp, model = fitted
        streams = _test_streams(4, seed=60, length=400)
        census = census_power(model, streams)
        assert census.model_evaluations == 399
        assert census.estimate == pytest.approx(
            comp.reference_power(streams), rel=0.25)

    def test_sampler_much_cheaper_similar_answer(self, fitted):
        comp, model = fitted
        streams = _test_streams(4, seed=61, length=4000)
        census = census_power(model, streams)
        sampled = sampler_power(model, streams, n_samples=4,
                                sample_size=30, seed=1)
        assert sampled.model_evaluations == 120
        assert census.model_evaluations == 3999
        # ~33x fewer evaluations, small error:
        assert census.model_evaluations / sampled.model_evaluations > 30
        assert sampled.estimate == pytest.approx(census.estimate, rel=0.15)

    def test_sampler_fixed_seed_is_deterministic(self, fitted):
        _comp, model = fitted
        streams = _test_streams(4, seed=63, length=4000)
        first = sampler_power(model, streams, n_samples=4,
                              sample_size=30, seed=9)
        second = sampler_power(model, streams, n_samples=4,
                               sample_size=30, seed=9)
        assert first.estimate == second.estimate
        assert first.std_error == second.std_error

    def test_sampler_draws_without_cross_sample_replacement(self,
                                                            fitted):
        """One rng.sample covers all samples, so the marked cycles are
        pairwise distinct and the evaluation count is exact."""
        _comp, model = fitted
        streams = _test_streams(4, seed=64, length=4000)
        length = min(len(s) for s in streams)
        rng = random.Random(5)
        marked = rng.sample(list(range(1, length)), 4 * 30)
        assert len(set(marked)) == 120     # the draw itself is distinct
        result = sampler_power(model, streams, n_samples=4,
                               sample_size=30, seed=5)
        assert result.model_evaluations == 120

    def test_sampler_reports_standard_error(self, fitted):
        _comp, model = fitted
        streams = _test_streams(4, seed=65, length=4000)
        result = sampler_power(model, streams, n_samples=4,
                               sample_size=30, seed=2)
        census = census_power(model, streams)
        assert result.std_error is not None and result.std_error > 0.0
        # The paper's normality argument: the census mean should land
        # within a few standard errors of the sampled estimate.
        assert abs(result.estimate - census.estimate) \
            < 6.0 * result.std_error
        assert census.std_error is None    # census draws no samples

    def test_adaptive_scales_standard_error(self, fitted):
        comp, model = fitted
        streams = _test_streams(4, seed=66, length=4000)
        result = adaptive_power(model, comp, streams, n_samples=4,
                                sample_size=30, seed=3)
        assert result.std_error is not None and result.std_error > 0.0

    def test_gate_reference_timed_captures_glitches(self, fitted):
        comp, _model = fitted
        streams = _test_streams(4, seed=67, length=1200)
        plain = gate_reference_power(comp, streams)
        timed = gate_reference_power(comp, streams, timed=True)
        sharded = gate_reference_power(comp, streams, timed=True,
                                       workers=2)
        # Glitching only adds transitions, and sharding must not
        # change the answer at all.
        assert timed.estimate >= plain.estimate
        assert sharded.estimate == timed.estimate

    def test_sampler_enforces_minimum_units(self, fitted):
        _comp, model = fitted
        with pytest.raises(ValueError):
            sampler_power(model, _test_streams(4), sample_size=10)

    def test_sampler_small_population_falls_back(self, fitted):
        _comp, model = fitted
        streams = _test_streams(4, seed=62, length=50)
        result = sampler_power(model, streams)
        census = census_power(model, streams)
        assert result.estimate == census.estimate

    def test_adaptive_debiases(self, fitted):
        """A model trained on random data is biased on correlated
        data; the ratio estimator removes most of the bias."""
        comp = make_component("mult", 6)
        # Deliberately biased training: random data only.
        biased_training = [
            [random_stream(6, 80, seed=k), random_stream(6, 80, seed=k + 50)]
            for k in range(10)
        ]
        model = fit_macromodel(PfaModel(), comp, biased_training)
        streams = [correlated_stream(6, 2000, rho=0.98, seed=70),
                   correlated_stream(6, 2000, rho=0.98, seed=71)]
        truth = gate_reference_power(comp, streams).estimate
        census_err = abs(census_power(model, streams).estimate - truth) \
            / truth
        adaptive = adaptive_power(model, comp, streams,
                                  gate_sample_size=40, seed=2)
        adaptive_err = abs(adaptive.estimate - truth) / truth
        assert adaptive_err < census_err
        assert adaptive_err < 0.25
        # Way cheaper than full gate-level simulation.
        assert adaptive.gate_cycles < 0.05 * len(streams[0])


class TestQuickSynthesis:
    def test_estimate_structure(self):
        from repro.cdfg.transforms import fir_filter

        cdfg = fir_filter([3, 5, 7], width=8)
        est = quick_synthesis_estimate(cdfg, seed=0)
        assert est.total > 0
        assert est.total == pytest.approx(
            est.functional_units + est.registers + est.interconnect
            + est.control)
        assert est.latency >= 1

    def test_bigger_graph_costs_more(self):
        from repro.cdfg.transforms import fir_filter

        small = quick_synthesis_estimate(fir_filter([3, 5], width=8))
        large = quick_synthesis_estimate(fir_filter([3, 5, 7, 9, 11],
                                                    width=8))
        assert large.total > small.total

    def test_dynamic_profile_tracks_data(self):
        from repro.cdfg.transforms import fir_filter

        cdfg = fir_filter([3, 5], width=8)
        hot = {f"x{i}": [k * 37 % 256 for k in range(40)] for i in range(2)}
        cold = {f"x{i}": [7] * 40 for i in range(2)}
        p_hot = dynamic_profile(cdfg, hot)
        p_cold = dynamic_profile(cdfg, cold)
        assert p_hot["mult"] > p_cold["mult"]


class TestTiwariModel:
    @pytest.fixture(scope="class")
    def model(self):
        return TiwariModel.characterize(
            opcodes=["ADD", "SUB", "MUL", "ADDI", "LD", "ST", "NOP"],
            loop_length=200)

    def test_base_costs_ordered(self, model):
        assert model.base_costs["MUL"] > model.base_costs["ADD"]
        assert model.base_costs["ADD"] > model.base_costs["NOP"]

    def test_pair_costs_nonnegative_symmetric(self, model):
        for (a, b), cost in model.pair_costs.items():
            assert cost >= 0
            assert model.pair_costs[(b, a)] == cost

    def test_estimates_random_programs(self, model):
        for seed in range(3):
            program = random_program(600, seed=seed)
            stats = Machine().run(program)
            assert model.relative_error(stats) < 0.12, seed

    def test_estimates_kernels(self, model):
        m = Machine()
        m.load_memory(0, list(range(64)))
        m.load_memory(1024, list(range(64)))
        stats = m.run(dot_product(64))
        # Kernels include branches the model was not characterized on;
        # error stays moderate.
        assert model.relative_error(stats) < 0.30


class TestProfileSynthesis:
    def test_profile_extraction(self):
        stats = Machine().run(random_program(500, seed=3))
        profile = CharacteristicProfile.from_stats(stats)
        assert profile.instructions == 501
        assert abs(sum(profile.instruction_mix.values()) - 1.0) < 1e-9

    def test_synthesized_program_matches_mix(self):
        stats = Machine().run(random_program(3000, seed=4))
        profile = CharacteristicProfile.from_stats(stats)
        short = synthesize_profile_program(profile, length=400, seed=1)
        short_stats = Machine().run(short)
        long_mix = profile.instruction_mix
        short_mix = short_stats.instruction_mix()
        for klass, frac in long_mix.items():
            if frac > 0.05:
                assert short_mix.get(klass, 0) == pytest.approx(
                    frac, abs=0.12), klass

    def test_experiment_compaction_and_error(self):
        m = Machine()
        m.load_memory(0, [k % 97 for k in range(200)])
        m.load_memory(3000, [2, 3, 1])
        program = fir_program([2, 3, 1], 150)
        report = profile_synthesis_experiment(program,
                                              synthesized_length=300,
                                              seed=0)
        assert report.compaction > 5
        assert report.epi_error < 0.25
