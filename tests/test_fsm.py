"""Tests for the FSM substrate: STG, KISS, Markov, encoding, synthesis."""

import io
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fsm import (
    STG,
    benchmark,
    benchmark_names,
    binary_encoding,
    encoding_switching_cost,
    gray_encoding,
    low_power_encoding,
    minimize_states,
    one_hot_encoding,
    random_encoding,
    read_kiss,
    stationary_distribution,
    synthesize_fsm,
    transition_probabilities,
    write_kiss,
)
from repro.fsm.kiss import random_stg
from repro.fsm.markov import (
    expected_state_line_switching,
    stationary_power_iteration,
    transition_matrix,
)
from repro.fsm.minimize import equivalence_classes
from repro.fsm.synthesis import verify_fsm_netlist


class TestSTG:
    def test_benchmarks_load_and_are_deterministic(self):
        for name in benchmark_names():
            stg = benchmark(name)
            assert stg.n_states >= 2
            assert stg.is_deterministic(), f"{name} is nondeterministic"

    def test_benchmarks_reachable(self):
        for name in benchmark_names():
            stg = benchmark(name)
            assert stg.reachable_states() == set(stg.states), name

    def test_step_matches_transition(self):
        stg = benchmark("seq101")
        nxt, out = stg.step("S2", 1)
        assert nxt == "S1"
        assert out == "1"

    def test_unspecified_input_self_loops(self):
        stg = STG("t", 1, 1)
        stg.add_transition("1", "a", "b", "1")
        nxt, out = stg.step("a", 0)
        assert nxt == "a"
        assert out == "-"

    def test_simulate_detector(self):
        stg = benchmark("seq101")
        bits = [1, 0, 1, 0, 1]
        trace = stg.simulate(bits)
        outputs = [out for _s, out in trace]
        # 101 appears ending at positions 2 and 4.
        assert outputs == ["0", "0", "1", "0", "1"]

    def test_completed_is_complete(self):
        stg = STG("t", 2, 1)
        stg.add_transition("1-", "a", "b", "1")
        complete = stg.completed()
        assert complete.is_complete()
        assert not stg.is_complete()

    def test_width_validation(self):
        stg = STG("t", 2, 1)
        with pytest.raises(ValueError):
            stg.add_transition("1", "a", "b", "1")
        with pytest.raises(ValueError):
            stg.add_transition("11", "a", "b", "11")

    def test_self_loop_fraction(self):
        stg = benchmark("waiter")
        assert 0 < stg.self_loop_fraction() < 1


class TestKiss:
    def test_roundtrip(self):
        stg = benchmark("traffic")
        buf = io.StringIO()
        write_kiss(stg, buf)
        buf.seek(0)
        back = read_kiss(buf, "traffic")
        assert back.n_states == stg.n_states
        assert back.reset_state == stg.reset_state
        assert len(back.transitions) == len(stg.transitions)

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            benchmark("nope")

    def test_random_stg_complete_deterministic(self):
        stg = random_stg(6, 2, 2, seed=4)
        assert stg.is_complete()
        assert stg.is_deterministic()

    def test_random_stg_self_loop_bias(self):
        calm = random_stg(8, 2, 1, seed=1, self_loop_bias=0.9)
        wild = random_stg(8, 2, 1, seed=1, self_loop_bias=0.0)
        assert calm.self_loop_fraction() > wild.self_loop_fraction()


class TestMarkov:
    def test_transition_matrix_stochastic(self):
        for name in benchmark_names():
            matrix, _ = transition_matrix(benchmark(name))
            assert matrix.shape[0] == matrix.shape[1]
            for row in matrix:
                assert row.sum() == pytest.approx(1.0)

    def test_stationary_sums_to_one(self):
        pi = stationary_distribution(benchmark("traffic"))
        assert sum(pi.values()) == pytest.approx(1.0)
        assert all(p >= 0 for p in pi.values())

    def test_stationary_is_fixed_point(self):
        stg = benchmark("arbiter")
        matrix, index = transition_matrix(stg)
        pi = stationary_distribution(stg)
        import numpy as np

        v = np.array([pi[s] for s in stg.states])
        assert np.allclose(v @ matrix, v, atol=1e-8)

    def test_power_iteration_agrees_with_exact(self):
        for name in ["traffic", "waiter", "dk_like"]:
            stg = benchmark(name)
            exact = stationary_distribution(stg)
            approx = stationary_power_iteration(stg)
            for s in stg.states:
                assert approx[s] == pytest.approx(exact[s], abs=1e-3)

    def test_biased_inputs_shift_distribution(self):
        stg = benchmark("waiter")
        busy = stationary_distribution(stg, bit_probs=[0.9, 0.5])
        idle = stationary_distribution(stg, bit_probs=[0.05, 0.5])
        assert idle["SLEEP"] > busy["SLEEP"]

    def test_transition_probs_sum_to_one(self):
        probs = transition_probabilities(benchmark("handshake"))
        assert sum(probs.values()) == pytest.approx(1.0)

    def test_expected_switching_zero_for_identical_codes(self):
        stg = benchmark("traffic")
        pi = expected_state_line_switching(
            stg, {s: 0 for s in stg.states})
        assert pi == 0.0


class TestEncoding:
    def test_binary_codes_unique(self):
        enc = binary_encoding(benchmark("arbiter"))
        assert len(set(enc.codes.values())) == len(enc.codes)

    def test_gray_adjacent_codes(self):
        enc = gray_encoding(benchmark("grayctr"))
        values = [enc.codes[s] for s in benchmark("grayctr").states]
        for a, b in zip(values, values[1:]):
            assert bin(a ^ b).count("1") == 1

    def test_one_hot_width(self):
        stg = benchmark("traffic")
        enc = one_hot_encoding(stg)
        assert enc.n_bits == stg.n_states
        for s in stg.states:
            assert bin(enc.codes[s]).count("1") == 1

    def test_random_encoding_valid(self):
        stg = benchmark("bbsse_like")
        enc = random_encoding(stg, seed=3)
        assert len(set(enc.codes.values())) == stg.n_states
        assert max(enc.codes.values()) < (1 << enc.n_bits)

    def test_random_encoding_too_narrow(self):
        stg = benchmark("bbsse_like")  # 5 states
        with pytest.raises(ValueError):
            random_encoding(stg, n_bits=2)

    def test_low_power_beats_average_random(self):
        stg = benchmark("handshake")
        lp = low_power_encoding(stg, seed=1)
        lp_cost = encoding_switching_cost(stg, lp)
        random_costs = [
            encoding_switching_cost(stg, random_encoding(stg, seed=k))
            for k in range(10)
        ]
        assert lp_cost <= sum(random_costs) / len(random_costs) + 1e-9

    def test_greedy_vs_annealed(self):
        stg = random_stg(8, 2, 1, seed=9)
        greedy = low_power_encoding(stg, use_annealing=False)
        annealed = low_power_encoding(stg, seed=2)
        assert encoding_switching_cost(stg, annealed) <= \
            encoding_switching_cost(stg, greedy) + 1e-9

    def test_cost_nonnegative(self):
        stg = benchmark("dk_like")
        for enc in (binary_encoding(stg), gray_encoding(stg),
                    one_hot_encoding(stg)):
            assert encoding_switching_cost(stg, enc) >= 0


class TestMinimize:
    def test_redundant_states_merged(self):
        stg = STG("dup", 1, 1)
        # b and c are behaviourally identical.
        stg.add_transition("0", "a", "b", "0")
        stg.add_transition("1", "a", "c", "0")
        stg.add_transition("-", "b", "a", "1")
        stg.add_transition("-", "c", "a", "1")
        reduced = minimize_states(stg)
        assert reduced.n_states == 2

    def test_already_minimal(self):
        stg = benchmark("seq101")
        reduced = minimize_states(stg)
        assert reduced.n_states == stg.n_states

    def test_equivalence_preserved(self):
        stg = STG("dup", 1, 1)
        stg.add_transition("0", "a", "b", "0")
        stg.add_transition("1", "a", "c", "0")
        stg.add_transition("-", "b", "a", "1")
        stg.add_transition("-", "c", "a", "1")
        reduced = minimize_states(stg)
        rng = random.Random(0)
        bits = [rng.randrange(2) for _ in range(50)]
        orig = [out for _s, out in stg.completed().simulate(bits)]
        mini = [out for _s, out in reduced.simulate(bits)]
        assert orig == mini

    def test_classes_partition_states(self):
        stg = benchmark("arbiter")
        classes = equivalence_classes(stg)
        flat = [s for cls in classes for s in cls]
        assert sorted(flat) == sorted(stg.states)


class TestSynthesis:
    @pytest.mark.parametrize("name", ["seq101", "traffic", "waiter",
                                      "grayctr"])
    def test_netlist_matches_stg(self, name):
        stg = benchmark(name)
        enc = binary_encoding(stg)
        circuit = synthesize_fsm(stg, enc)
        rng = random.Random(42)
        seq = [rng.randrange(1 << stg.n_inputs) for _ in range(60)]
        assert verify_fsm_netlist(stg, circuit, enc, seq)

    def test_one_hot_netlist_matches(self):
        stg = benchmark("seq101")
        enc = one_hot_encoding(stg)
        circuit = synthesize_fsm(stg, enc)
        seq = [1, 0, 1, 1, 0, 1, 0, 0, 1]
        assert verify_fsm_netlist(stg, circuit, enc, seq)

    def test_latch_count_matches_encoding(self):
        stg = benchmark("traffic")
        enc = binary_encoding(stg)
        circuit = synthesize_fsm(stg, enc)
        assert len(circuit.latches) == enc.n_bits

    def test_different_encodings_different_power(self):
        from repro.logic.simulate import collect_activity

        stg = benchmark("handshake")
        rng = random.Random(5)
        seq = [rng.randrange(4) for _ in range(200)]

        def power(enc):
            circuit = synthesize_fsm(stg, enc)
            vecs = [{f"in{i}": (m >> i) & 1 for i in range(2)} for m in seq]
            return collect_activity(circuit, vecs).average_power()

        p_binary = power(binary_encoding(stg))
        p_onehot = power(one_hot_encoding(stg))
        assert p_binary > 0 and p_onehot > 0
        assert p_binary != pytest.approx(p_onehot, rel=1e-3)


class TestProperties:
    @given(st.integers(0, 500), st.integers(2, 6))
    @settings(max_examples=15, deadline=None)
    def test_random_fsm_synthesis_roundtrip(self, seed, n_states):
        stg = random_stg(n_states, 2, 1, seed=seed)
        enc = binary_encoding(stg)
        circuit = synthesize_fsm(stg, enc)
        rng = random.Random(seed)
        seq = [rng.randrange(4) for _ in range(25)]
        assert verify_fsm_netlist(stg, circuit, enc, seq)

    @given(st.integers(0, 500))
    @settings(max_examples=15, deadline=None)
    def test_minimization_never_grows(self, seed):
        stg = random_stg(6, 1, 1, seed=seed)
        assert minimize_states(stg).n_states <= stg.n_states


class TestLargeMachineSynthesis:
    """Wide encodings take the offset-driven heuristic path."""

    def test_one_hot_large_machine_fast_and_correct(self):
        from repro.fsm.kiss import random_stg

        stg = random_stg(14, 1, 1, seed=3, self_loop_bias=0.4)
        enc = one_hot_encoding(stg)       # 15 extraction variables
        circuit = synthesize_fsm(stg, enc)
        rng = random.Random(0)
        seq = [rng.randrange(2) for _ in range(80)]
        assert verify_fsm_netlist(stg, circuit, enc, seq)

    def test_binary_large_machine(self):
        from repro.fsm.kiss import random_stg

        stg = random_stg(40, 2, 2, seed=8)  # 6 state bits + 2 inputs
        enc = binary_encoding(stg)
        circuit = synthesize_fsm(stg, enc)
        rng = random.Random(1)
        seq = [rng.randrange(4) for _ in range(60)]
        assert verify_fsm_netlist(stg, circuit, enc, seq)

    def test_wide_random_encoding(self):
        from repro.fsm.kiss import random_stg

        stg = random_stg(10, 1, 1, seed=5)
        enc = random_encoding(stg, seed=2, n_bits=12)  # sparse codes
        circuit = synthesize_fsm(stg, enc)
        rng = random.Random(2)
        seq = [rng.randrange(2) for _ in range(60)]
        assert verify_fsm_netlist(stg, circuit, enc, seq)
