"""Tests for low-power scheduling, allocation, and voltage scheduling."""

import random

import pytest

from repro.cdfg import Cdfg, ModuleLibrary, asap, list_schedule
from repro.cdfg.transforms import direct_polynomial, fir_filter, \
    horner_polynomial
from repro.optimization.allocation import (
    allocate_registers,
    bind_functional_units,
    left_edge_registers,
    variable_lifetimes,
)
from repro.optimization.lp_scheduling import (
    activity_aware_schedule,
    fu_input_switching,
    greedy_binding,
    power_management_schedule,
    shared_operand_pairs,
)
from repro.optimization.multivoltage import (
    MultiVoltageScheduler,
    energy_latency_tradeoff,
)


def _streams(names, cycles=60, seed=0, width=8):
    rng = random.Random(seed)
    return {name: [rng.randrange(1 << width) for _ in range(cycles)]
            for name in names}


def _input_names(cdfg):
    return [n.name for n in cdfg.nodes if n.kind == "input"]


class TestActivityAwareScheduling:
    def _shared_operand_cdfg(self):
        """Four multiplications, two pairs sharing an operand."""
        cdfg = Cdfg(width=8)
        a = cdfg.add_input("a")
        b = cdfg.add_input("b")
        c = cdfg.add_input("c")
        d = cdfg.add_input("d")
        m1 = cdfg.add_op("mult", a, b)
        m2 = cdfg.add_op("mult", a, c)   # shares a with m1
        m3 = cdfg.add_op("mult", d, b)
        m4 = cdfg.add_op("mult", d, c)   # shares d with m3
        s1 = cdfg.add_op("add", m1, m2)
        s2 = cdfg.add_op("add", m3, m4)
        out = cdfg.add_op("add", s1, s2)
        cdfg.set_output("y", out)
        return cdfg

    def test_shared_pairs_detected(self):
        cdfg = self._shared_operand_cdfg()
        pairs = shared_operand_pairs(cdfg)
        assert len(pairs) >= 2
        assert all(v >= 1 for v in pairs.values())

    def test_schedule_valid(self):
        cdfg = self._shared_operand_cdfg()
        sched = activity_aware_schedule(cdfg, {"mult": 1, "add": 1})
        assert sched.is_valid()
        assert sched.resource_usage().get("mult", 0) <= 1

    def test_activity_aware_beats_plain_switching(self):
        cdfg = self._shared_operand_cdfg()
        resources = {"mult": 1, "add": 1}
        streams = _streams(_input_names(cdfg), seed=3)

        smart_sched = activity_aware_schedule(cdfg, resources)
        smart_bind = greedy_binding(cdfg, smart_sched, resources)
        smart = fu_input_switching(cdfg, smart_sched, smart_bind, streams)

        plain_sched = list_schedule(cdfg, resources)
        plain_bind = greedy_binding(cdfg, plain_sched, resources)
        plain = fu_input_switching(cdfg, plain_sched, plain_bind, streams)
        assert smart <= plain + 1e-9

    def test_binding_respects_resources(self):
        cdfg = self._shared_operand_cdfg()
        resources = {"mult": 2, "add": 1}
        sched = list_schedule(cdfg, resources)
        binding = greedy_binding(cdfg, sched, resources)
        for node in cdfg.operations():
            kind, unit = binding[node.uid]
            assert kind == node.kind
            assert unit < resources[kind]


class TestPowerManagementScheduling:
    def _mux_cdfg(self):
        """y = ctrl ? f(a,b) : g(c,d) with expensive both-side cones."""
        cdfg = Cdfg(width=8)
        a = cdfg.add_input("a")
        b = cdfg.add_input("b")
        c = cdfg.add_input("c")
        d = cdfg.add_input("d")
        e = cdfg.add_input("e")
        f1 = cdfg.add_op("mult", a, b)
        f2 = cdfg.add_op("mult", f1, a)
        g1 = cdfg.add_op("mult", c, d)
        g2 = cdfg.add_op("add", g1, c)
        ctrl = cdfg.add_op("cmp_gt", e, a)
        out = cdfg.add_op("mux", f2, g2, ctrl)
        cdfg.set_output("y", out)
        return cdfg

    def test_mux_is_manageable(self):
        cdfg = self._mux_cdfg()
        report = power_management_schedule(cdfg, latency=6)
        assert report.manageable_muxes == 1
        assert report.expected_saved_ops > 0
        assert report.schedule.is_valid()

    def test_control_scheduled_before_data(self):
        cdfg = self._mux_cdfg()
        report = power_management_schedule(cdfg, latency=6)
        plan = report.plans[0]
        sched = report.schedule
        control_finish = max(sched.finish(u) for u in plan.control_cone)
        data_start = min(sched.steps[u]
                         for u in plan.zero_cone + plan.one_cone)
        assert control_finish < data_start

    def test_shared_nodes_not_managed(self):
        cdfg = Cdfg(width=8)
        a = cdfg.add_input("a")
        b = cdfg.add_input("b")
        c = cdfg.add_input("c")
        shared = cdfg.add_op("mult", a, b)     # feeds both branches
        lhs = cdfg.add_op("add", shared, a)
        rhs = cdfg.add_op("add", shared, b)
        ctrl = cdfg.add_op("cmp_gt", c, a)
        out = cdfg.add_op("mux", lhs, rhs, ctrl)
        cdfg.set_output("y", out)
        report = power_management_schedule(cdfg, latency=8)
        for plan in report.plans:
            assert shared not in plan.zero_cone
            assert shared not in plan.one_cone

    def test_select_probability_weights_savings(self):
        # Asymmetric cones: the expected saving must depend on which
        # branch the control usually selects.
        cdfg = Cdfg(width=8)
        a = cdfg.add_input("a")
        b = cdfg.add_input("b")
        c = cdfg.add_input("c")
        e = cdfg.add_input("e")
        f1 = cdfg.add_op("mult", a, b)
        f2 = cdfg.add_op("mult", f1, a)      # heavy 0-branch
        g1 = cdfg.add_op("add", c, b)        # light 1-branch
        ctrl = cdfg.add_op("cmp_gt", e, a)
        out = cdfg.add_op("mux", f2, g1, ctrl)
        cdfg.set_output("y", out)
        mux_uid = [n.uid for n in cdfg.operations()
                   if n.kind == "mux"][0]
        # f-branch (selected on ctrl=0... mux semantics: ctrl=1 -> d1)
        mostly_one = power_management_schedule(
            cdfg, latency=6, select_prob={mux_uid: 0.95})
        mostly_zero = power_management_schedule(
            cdfg, latency=6, select_prob={mux_uid: 0.05})
        assert mostly_one.expected_saved_ops != pytest.approx(
            mostly_zero.expected_saved_ops)


class TestRegisterAllocation:
    def _chain(self):
        cdfg = horner_polynomial([3, 5, 7], width=8)
        sched = asap(cdfg)
        return cdfg, sched

    def test_lifetimes_well_formed(self):
        cdfg, sched = self._chain()
        for life in variable_lifetimes(cdfg, sched):
            assert life.death > life.birth

    def test_left_edge_minimal_for_chain(self):
        cdfg, sched = self._chain()
        lifetimes = variable_lifetimes(cdfg, sched)
        assignment = left_edge_registers(lifetimes)
        # A serial chain never needs more than 2 registers.
        assert len(set(assignment.values())) <= 2

    def test_allocation_valid(self):
        cdfg, sched = self._chain()
        streams = _streams(_input_names(cdfg), seed=4)
        result = allocate_registers(cdfg, sched, streams)
        lifetimes = {l.uid: l for l in variable_lifetimes(cdfg, sched)}
        # No two overlapping lifetimes share a register.
        by_reg = {}
        for uid, reg in result.assignment.items():
            by_reg.setdefault(reg, []).append(uid)
        for uids in by_reg.values():
            for i, a in enumerate(uids):
                for b in uids[i + 1:]:
                    assert not lifetimes[a].overlaps(lifetimes[b])

    def test_activity_aware_no_worse(self):
        cdfg = fir_filter([3, 5, 7, 9], width=8)
        sched = list_schedule(cdfg, {"mult": 2, "add": 1})
        streams = _streams(_input_names(cdfg), seed=5)
        smart = allocate_registers(cdfg, sched, streams,
                                   activity_aware=True)
        blind = allocate_registers(cdfg, sched, streams,
                                   activity_aware=False)
        assert smart.switching_cost <= blind.switching_cost + 1e-9

    def test_fu_binding_no_worse(self):
        cdfg = fir_filter([3, 5, 7, 9], width=8)
        sched = list_schedule(cdfg, {"mult": 2, "add": 1})
        streams = _streams(_input_names(cdfg), seed=6)
        smart = bind_functional_units(cdfg, sched, streams,
                                      activity_aware=True)
        blind = bind_functional_units(cdfg, sched, streams,
                                      activity_aware=False)
        smart_cost = sum(r.switching_cost for r in smart.values())
        blind_cost = sum(r.switching_cost for r in blind.values())
        assert smart_cost <= blind_cost + 1e-9

    def test_binding_respects_step_conflicts(self):
        cdfg = fir_filter([3, 5, 7], width=8)
        sched = list_schedule(cdfg, {"mult": 3, "add": 3})
        streams = _streams(_input_names(cdfg), seed=7)
        results = bind_functional_units(cdfg, sched, streams)
        for kind, result in results.items():
            by_fu = {}
            for uid, fu in result.assignment.items():
                by_fu.setdefault(fu, []).append(uid)
            for uids in by_fu.values():
                steps = [sched.steps[u] for u in uids]
                assert len(steps) == len(set(steps))


class TestMultiVoltage:
    @pytest.fixture(scope="class")
    def library(self):
        return ModuleLibrary(width=4, characterization_cycles=60)

    def test_curve_is_pareto(self, library):
        scheduler = MultiVoltageScheduler(library)
        cdfg = horner_polynomial([3, 5], width=8)
        curve = scheduler.power_delay_curve(cdfg)
        delays = [p.delay for p in curve]
        energies = [p.energy for p in curve]
        assert delays == sorted(delays)
        assert energies == sorted(energies, reverse=True)

    def test_tight_latency_uses_high_voltage(self, library):
        scheduler = MultiVoltageScheduler(library)
        cdfg = horner_polynomial([3, 5], width=8)
        curve = scheduler.power_delay_curve(cdfg)
        fastest = min(p.delay for p in curve)
        assignment = scheduler.schedule(cdfg, latency=fastest)
        top = library.voltages[0]
        assert all(v == top for v in assignment.voltages.values())

    def test_loose_latency_saves_energy(self, library):
        from repro.cdfg.transforms import fir_filter

        scheduler = MultiVoltageScheduler(library)
        cdfg = fir_filter([3, 5, 7], width=8)   # a tree CDFG
        single_e, single_lat = scheduler.single_voltage_energy(cdfg)
        relaxed = scheduler.schedule(cdfg, latency=2.5 * single_lat)
        assert relaxed.energy < single_e

    def test_infeasible_latency_raises(self, library):
        scheduler = MultiVoltageScheduler(library)
        cdfg = horner_polynomial([3, 5], width=8)
        with pytest.raises(ValueError):
            scheduler.schedule(cdfg, latency=0.01)

    def test_tradeoff_monotone(self, library):
        from repro.cdfg.transforms import fir_filter

        cdfg = fir_filter([3, 5, 7], width=8)
        points = energy_latency_tradeoff(cdfg, library, n_points=5)
        energies = [e for _l, e in points]
        assert all(b <= a + 1e-9 for a, b in zip(energies, energies[1:]))

    def test_assignment_covers_all_operations(self, library):
        scheduler = MultiVoltageScheduler(library)
        cdfg = horner_polynomial([3, 5, 7], width=8)
        assignment = scheduler.schedule(cdfg, latency=None)
        op_uids = {n.uid for n in cdfg.operations()}
        assert set(assignment.voltages) == op_uids

    def test_non_tree_rejected(self, library):
        cdfg = Cdfg(width=8)
        a = cdfg.add_input("a")
        sq = cdfg.add_op("mult", a, a)
        t1 = cdfg.add_op("add", sq, a)
        t2 = cdfg.add_op("add", sq, t1)   # sq fans out twice
        cdfg.set_output("y", t2)
        with pytest.raises(ValueError):
            MultiVoltageScheduler(library).schedule(cdfg)

    def test_multi_output_rejected(self, library):
        cdfg = Cdfg(width=8)
        a = cdfg.add_input("a")
        s = cdfg.add_op("add", a, a)
        cdfg.set_output("y1", s)
        cdfg.set_output("y2", a)
        with pytest.raises(ValueError):
            MultiVoltageScheduler(library).schedule(cdfg)
