"""Unit and property tests for the ROBDD manager."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import BddManager


@pytest.fixture
def mgr():
    return BddManager()


class TestBasics:
    def test_terminals(self, mgr):
        assert mgr.true.is_true()
        assert mgr.false.is_false()
        assert not mgr.true.is_false()

    def test_var_idempotent(self, mgr):
        assert mgr.var("a") == mgr.var("a")

    def test_canonical_and(self, mgr):
        a, b = mgr.declare("a", "b")
        assert (a & b) == (b & a)

    def test_double_negation(self, mgr):
        a = mgr.var("a")
        assert ~~a == a

    def test_xor_identity(self, mgr):
        a, b = mgr.declare("a", "b")
        assert (a ^ b) == ((a & ~b) | (~a & b))

    def test_demorgan(self, mgr):
        a, b = mgr.declare("a", "b")
        assert ~(a & b) == (~a | ~b)

    def test_truth_ambiguous(self, mgr):
        with pytest.raises(TypeError):
            bool(mgr.var("a"))

    def test_cross_manager_rejected(self, mgr):
        other = BddManager()
        with pytest.raises(ValueError):
            mgr.var("a") & other.var("a")

    def test_ite(self, mgr):
        a, b, c = mgr.declare("a", "b", "c")
        f = a.ite(b, c)
        assert f.evaluate({"a": True, "b": True, "c": False})
        assert not f.evaluate({"a": True, "b": False, "c": True})
        assert f.evaluate({"a": False, "b": False, "c": True})


class TestEvaluation:
    def test_evaluate_matches_semantics(self, mgr):
        a, b, c = mgr.declare("a", "b", "c")
        f = (a & b) | ~c
        for va, vb, vc in itertools.product([False, True], repeat=3):
            expected = (va and vb) or not vc
            assert f.evaluate({"a": va, "b": vb, "c": vc}) == expected

    def test_restrict(self, mgr):
        a, b = mgr.declare("a", "b")
        f = a & b
        assert f.restrict({"a": True}) == b
        assert f.restrict({"a": False}).is_false()

    def test_compose(self, mgr):
        a, b, c = mgr.declare("a", "b", "c")
        f = a & b
        g = f.compose("b", b | c)
        assert g == (a & (b | c))

    def test_compose_upward_dependency(self, mgr):
        # Substituting a function of an *earlier* variable must rebuild
        # correctly even though order is violated locally.
        a, b, c = mgr.declare("a", "b", "c")
        f = b & c
        g = f.compose("c", a)
        assert g == (b & a)

    def test_exists_forall(self, mgr):
        a, b = mgr.declare("a", "b")
        f = a & b
        assert f.exists(["a"]) == b
        assert f.forall(["a"]).is_false()
        g = a | b
        assert g.forall(["a"]) == b
        assert g.exists(["a", "b"]).is_true()


class TestCounting:
    def test_sat_count_simple(self, mgr):
        a, b, c = mgr.declare("a", "b", "c")
        assert (a & b).sat_count(["a", "b", "c"]) == 2
        assert (a | b).sat_count(["a", "b"]) == 3
        assert mgr.true.sat_count(["a", "b", "c"]) == 8
        assert mgr.false.sat_count(["a", "b", "c"]) == 0

    def test_sat_count_skipped_levels(self, mgr):
        a, b, c, d = mgr.declare("a", "b", "c", "d")
        f = a & d  # skips b, c
        assert f.sat_count(["a", "b", "c", "d"]) == 4

    def test_probability_uniform(self, mgr):
        a, b = mgr.declare("a", "b")
        assert (a & b).probability() == pytest.approx(0.25)
        assert (a | b).probability() == pytest.approx(0.75)
        assert (a ^ b).probability() == pytest.approx(0.5)

    def test_probability_biased(self, mgr):
        a, b = mgr.declare("a", "b")
        p = (a & b).probability({"a": 0.9, "b": 0.1})
        assert p == pytest.approx(0.09)

    def test_node_count(self, mgr):
        a, b, c = mgr.declare("a", "b", "c")
        assert mgr.true.node_count() == 0
        assert a.node_count() == 1
        assert (a ^ b ^ c).node_count() == 5  # xor chain: 2 per level - 1

    def test_support(self, mgr):
        a, b, c = mgr.declare("a", "b", "c")
        f = a & c
        assert f.support() == ["a", "c"]


class TestSatisfy:
    def test_satisfy_one(self, mgr):
        a, b = mgr.declare("a", "b")
        f = a & ~b
        sol = f.satisfy_one()
        assert sol == {"a": True, "b": False}
        assert mgr.false.satisfy_one() is None

    def test_satisfy_all(self, mgr):
        a, b = mgr.declare("a", "b")
        f = a | b
        sols = list(f.satisfy_all())
        # Paths may leave variables unset; each path must satisfy f and
        # the paths must jointly cover exactly the 3 satisfying minterms.
        covered = 0
        for sol in sols:
            free = 2 - len(sol)
            covered += 1 << free
            full = {"a": False, "b": False}
            full.update(sol)
            assert full["a"] or full["b"]
        assert covered == 3

    def test_from_truth_table(self, mgr):
        f = mgr.from_truth_table(["x0", "x1"], [1, 2])  # x0 xor x1
        x0, x1 = mgr.var("x0"), mgr.var("x1")
        assert f == (x0 ^ x1)

    def test_cube(self, mgr):
        f = mgr.cube({"a": True, "b": False})
        assert f.sat_count(["a", "b"]) == 1
        assert f.evaluate({"a": True, "b": False})


class TestEqualitySemantics:
    def test_eq_non_bdd_not_implemented(self, mgr):
        a = mgr.var("a")
        assert a.__eq__(42) is NotImplemented
        assert a.__eq__("a") is NotImplemented
        assert a.__eq__(None) is NotImplemented

    def test_eq_ne_consistent(self, mgr):
        a, b = mgr.declare("a", "b")
        assert (a == b) is not (a != b)
        assert (a == a) is not (a != a)
        # Python falls back to identity when both sides return
        # NotImplemented: a Bdd never equals a foreign object, and
        # != must answer the exact opposite.
        assert (a == object()) is False
        assert (a != object()) is True

    def test_eq_across_managers_is_false_not_error(self, mgr):
        other = BddManager()
        assert (mgr.var("a") == other.var("a")) is False
        assert (mgr.var("a") != other.var("a")) is True

    def test_hash_consistent_with_eq(self, mgr):
        a = mgr.var("a")
        same = mgr.var("a")
        assert hash(a) == hash(same)
        assert len({a, same}) == 1


class TestCornerCases:
    """satisfy_all / compose / exists on degenerate arguments."""

    def test_satisfy_all_terminals(self, mgr):
        assert list(mgr.false.satisfy_all()) == []
        assert list(mgr.true.satisfy_all()) == [{}]

    def test_satisfy_all_covers_exact_minterms(self, mgr):
        a, b, c = mgr.declare("a", "b", "c")
        f = (a & b) | (~a & c)
        covered = 0
        for sol in f.satisfy_all():
            free = 3 - len(sol)
            covered += 1 << free
            full = {"a": False, "b": False, "c": False}
            full.update(sol)
            assert f.evaluate(full)
        assert covered == f.sat_count(["a", "b", "c"])

    def test_compose_terminal_root(self, mgr):
        a, b = mgr.declare("a", "b")
        assert mgr.true.compose("a", b).is_true()
        assert mgr.false.compose("a", b).is_false()

    def test_compose_variable_absent_from_support(self, mgr):
        a, b, c = mgr.declare("a", "b", "c")
        f = a & b
        assert f.compose("c", a | b) == f

    def test_compose_with_terminal_replacement(self, mgr):
        a, b = mgr.declare("a", "b")
        f = a ^ b
        assert f.compose("a", mgr.true) == ~b
        assert f.compose("a", mgr.false) == b

    def test_exists_terminal_root(self, mgr):
        mgr.declare("a", "b")
        assert mgr.true.exists(["a"]).is_true()
        assert mgr.false.exists(["a", "b"]).is_false()
        assert mgr.true.forall(["a"]).is_true()
        assert mgr.false.forall(["a"]).is_false()

    def test_exists_variable_absent_from_support(self, mgr):
        a, b, c = mgr.declare("a", "b", "c")
        f = a & b
        assert f.exists(["c"]) == f
        assert f.forall(["c"]) == f
        assert f.exists([]) == f

    def test_exists_full_support(self, mgr):
        a, b, c = mgr.declare("a", "b", "c")
        f = (a & b) | c
        assert f.exists(["a", "b", "c"]).is_true()
        assert f.forall(["a", "b", "c"]).is_false()
        assert (a & ~a).exists(["a"]).is_false()

    def test_and_exists_matches_composition(self, mgr):
        a, b, c = mgr.declare("a", "b", "c")
        f = a | b
        g = b | c
        for q in ([], ["a"], ["b"], ["a", "b"], ["a", "b", "c"]):
            assert f.and_exists(g, q) == (f & g).exists(q)

    def test_and_exists_terminal_operands(self, mgr):
        a, b = mgr.declare("a", "b")
        f = a & b
        assert f.and_exists(mgr.true, ["a"]) == f.exists(["a"])
        assert f.and_exists(mgr.false, ["a"]).is_false()
        assert mgr.true.and_exists(mgr.true, ["a"]).is_true()


@st.composite
def _random_expr(draw, names=("a", "b", "c", "d")):
    """A random Boolean expression tree as a nested tuple."""
    depth = draw(st.integers(0, 4))

    def build(d):
        if d == 0:
            return draw(st.sampled_from(names))
        op = draw(st.sampled_from(["and", "or", "xor", "not"]))
        if op == "not":
            return ("not", build(d - 1))
        return (op, build(d - 1), build(d - 1))

    return build(depth)


def _eval_expr(expr, env):
    if isinstance(expr, str):
        return env[expr]
    if expr[0] == "not":
        return not _eval_expr(expr[1], env)
    lhs = _eval_expr(expr[1], env)
    rhs = _eval_expr(expr[2], env)
    if expr[0] == "and":
        return lhs and rhs
    if expr[0] == "or":
        return lhs or rhs
    return lhs != rhs


def _build_bdd(expr, mgr):
    if isinstance(expr, str):
        return mgr.var(expr)
    if expr[0] == "not":
        return ~_build_bdd(expr[1], mgr)
    lhs = _build_bdd(expr[1], mgr)
    rhs = _build_bdd(expr[2], mgr)
    if expr[0] == "and":
        return lhs & rhs
    if expr[0] == "or":
        return lhs | rhs
    return lhs ^ rhs


class TestProperties:
    @given(_random_expr())
    @settings(max_examples=60, deadline=None)
    def test_bdd_agrees_with_semantics(self, expr):
        mgr = BddManager()
        mgr.declare("a", "b", "c", "d")
        f = _build_bdd(expr, mgr)
        for bits in itertools.product([False, True], repeat=4):
            env = dict(zip(["a", "b", "c", "d"], bits))
            assert f.evaluate(env) == _eval_expr(expr, env)

    @given(_random_expr())
    @settings(max_examples=40, deadline=None)
    def test_sat_count_matches_enumeration(self, expr):
        mgr = BddManager()
        names = ["a", "b", "c", "d"]
        mgr.declare(*names)
        f = _build_bdd(expr, mgr)
        expected = sum(
            1 for bits in itertools.product([False, True], repeat=4)
            if _eval_expr(expr, dict(zip(names, bits))))
        assert f.sat_count(names) == expected
        assert f.probability() == pytest.approx(expected / 16.0)

    @given(_random_expr(), _random_expr())
    @settings(max_examples=40, deadline=None)
    def test_canonicity(self, e1, e2):
        """Semantically equal expressions build identical BDDs."""
        mgr = BddManager()
        names = ["a", "b", "c", "d"]
        mgr.declare(*names)
        f1, f2 = _build_bdd(e1, mgr), _build_bdd(e2, mgr)
        same = all(
            _eval_expr(e1, dict(zip(names, bits)))
            == _eval_expr(e2, dict(zip(names, bits)))
            for bits in itertools.product([False, True], repeat=4))
        assert (f1 == f2) == same


class TestVariableOrderAblation:
    """DESIGN.md ablation: signal probability is order-invariant,
    node counts are not."""

    def _adder_bdds(self, interleaved):
        from repro.logic.bdd_bridge import output_bdds
        from repro.logic.generators import ripple_carry_adder

        circuit = ripple_carry_adder(4)
        mgr = BddManager()
        if interleaved:
            for i in range(4):
                mgr.declare(f"a{i}", f"b{i}")
        else:
            mgr.declare(*[f"a{i}" for i in range(4)])
            mgr.declare(*[f"b{i}" for i in range(4)])
        return mgr, output_bdds(circuit, mgr)

    def test_probability_order_invariant(self):
        _m1, grouped = self._adder_bdds(interleaved=False)
        _m2, interleaved = self._adder_bdds(interleaved=True)
        for net in grouped:
            assert grouped[net].probability() == pytest.approx(
                interleaved[net].probability())

    def test_node_count_order_sensitive(self):
        _m1, grouped = self._adder_bdds(interleaved=False)
        _m2, interleaved = self._adder_bdds(interleaved=True)
        total_grouped = sum(f.node_count() for f in grouped.values())
        total_inter = sum(f.node_count() for f in interleaved.values())
        # Interleaving a/b is the famously good order for adders.
        assert total_inter < total_grouped
