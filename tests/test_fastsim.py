"""Bit-parallel compiled engine: exact-equivalence and cache tests.

The fast engine's contract is *bit-identical* activity reports against
the scalar reference — toggles, ones, switched and clock capacitance
— on any circuit the compiler can lower.  That exactness is what lets
every estimator in the framework switch engines without moving the
paper's relative-accuracy numbers; it is cross-checked here
property-based (hypothesis) on random combinational and latched
circuits, including load-enable latches and clock-gating capacitance.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.logic import fastsim
from repro.logic.generators import (
    counter,
    parity_tree,
    random_logic,
    ripple_carry_adder,
    shift_register,
)
from repro.logic.netlist import Circuit
from repro.logic.simulate import (
    ActivityReport,
    _collect_activity_reference,
    collect_activity,
    output_trace,
    random_vectors,
)


def assert_reports_identical(fast: ActivityReport,
                             ref: ActivityReport) -> None:
    assert fast.cycles == ref.cycles
    assert fast.toggles == ref.toggles
    assert fast.ones == ref.ones
    assert fast.switched_capacitance == ref.switched_capacitance
    assert fast.clock_capacitance == ref.clock_capacitance


def random_latched_circuit(n_inputs: int, n_gates: int, n_latches: int,
                           seed: int) -> Circuit:
    """Random sequential circuit with feedback, enables, and mixed
    clocked/transparent latches (the full Latch feature surface)."""
    rng = random.Random(seed)
    circuit = Circuit(f"seq_{n_inputs}_{n_gates}_{n_latches}_{seed}")
    inputs = circuit.add_inputs([f"x{i}" for i in range(n_inputs)])
    latch_outs = [f"s{i}" for i in range(n_latches)]
    circuit.reserve_nets(latch_outs)
    pool = list(inputs) + list(latch_outs)   # latch feedback into logic
    types = ["NAND2", "NOR2", "AND2", "OR2", "XOR2", "INV", "AOI21",
             "MUX2", "XNOR2"]
    for _ in range(n_gates):
        gate_type = rng.choice(types)
        arity = {"INV": 1, "AOI21": 3, "MUX2": 3}.get(gate_type, 2)
        ins = [rng.choice(pool) for _ in range(arity)]
        pool.append(circuit.add_gate(gate_type, ins))
    for q in latch_outs:
        data = rng.choice(pool)
        enable = rng.choice([None, None, rng.choice(pool)])
        circuit.add_latch(data, output=q, init=rng.randint(0, 1),
                          enable=enable,
                          clocked=rng.random() < 0.75)
    for net in rng.sample(pool, min(3, len(pool))):
        circuit.add_output(net)
    return circuit


class TestCombinationalEquivalence:
    @settings(deadline=None, max_examples=30)
    @given(n_inputs=st.integers(2, 10), n_gates=st.integers(1, 80),
           seed=st.integers(0, 10_000), n_vectors=st.integers(0, 70))
    def test_random_logic_matches_reference(self, n_inputs, n_gates,
                                            seed, n_vectors):
        circuit = random_logic(n_inputs, n_gates, 3, seed=seed)
        vectors = random_vectors(circuit.inputs, n_vectors, seed=seed + 1)
        assert_reports_identical(
            fastsim.collect_activity(circuit, vectors),
            _collect_activity_reference(circuit, vectors))

    @settings(deadline=None, max_examples=10)
    @given(width=st.integers(1, 10), n_vectors=st.integers(1, 40),
           seed=st.integers(0, 1000))
    def test_adder_matches_reference(self, width, n_vectors, seed):
        circuit = ripple_carry_adder(width)
        vectors = random_vectors(circuit.inputs, n_vectors, seed=seed)
        assert_reports_identical(
            fastsim.collect_activity(circuit, vectors),
            _collect_activity_reference(circuit, vectors))

    def test_output_trace_matches_reference(self):
        circuit = parity_tree(6)
        vectors = random_vectors(circuit.inputs, 50, seed=4)
        assert fastsim.output_trace(circuit, vectors) == \
            output_trace(circuit, vectors, engine="reference")


class TestSequentialEquivalence:
    @settings(deadline=None, max_examples=30)
    @given(n_inputs=st.integers(1, 6), n_gates=st.integers(1, 40),
           n_latches=st.integers(1, 8), seed=st.integers(0, 10_000),
           n_cycles=st.integers(0, 80))
    def test_latched_matches_reference(self, n_inputs, n_gates,
                                       n_latches, seed, n_cycles):
        circuit = random_latched_circuit(n_inputs, n_gates, n_latches,
                                         seed)
        vectors = random_vectors(circuit.inputs, n_cycles, seed=seed + 1)
        assert_reports_identical(
            fastsim.collect_activity(circuit, vectors),
            _collect_activity_reference(circuit, vectors))

    @pytest.mark.parametrize("make,width,cycles", [
        (counter, 6, 200),          # tight latch feedback loops
        (shift_register, 9, 150),   # deep feed-forward latch chain
    ])
    def test_sequential_benchmarks(self, make, width, cycles):
        circuit = make(width)
        vectors = random_vectors(circuit.inputs, cycles, seed=9)
        assert_reports_identical(
            fastsim.collect_activity(circuit, vectors),
            _collect_activity_reference(circuit, vectors))

    def test_chunk_boundaries_exact(self):
        """Toggle counting must stitch across the 64-cycle time chunks."""
        circuit = counter(4)
        for cycles in (63, 64, 65, 127, 128, 129, 193):
            vectors = [{"en": 1}] * cycles
            assert_reports_identical(
                fastsim.collect_activity(circuit, vectors),
                _collect_activity_reference(circuit, vectors))

    def test_initial_state_respected(self):
        circuit = shift_register(4)
        vectors = random_vectors(circuit.inputs, 30, seed=2)
        state = {f"q{i}": i % 2 for i in range(4)}
        assert_reports_identical(
            fastsim.collect_activity(circuit, vectors, state),
            _collect_activity_reference(circuit, vectors, state))

    def test_output_trace_sequential(self):
        circuit = counter(5)
        vectors = [{"en": t % 3 != 0} for t in range(100)]
        vectors = [{"en": int(v["en"])} for v in vectors]
        assert fastsim.output_trace(circuit, vectors) == \
            output_trace(circuit, vectors, engine="reference")


class TestDispatch:
    def test_engine_argument(self):
        circuit = ripple_carry_adder(3)
        vectors = random_vectors(circuit.inputs, 20, seed=0)
        fast = collect_activity(circuit, vectors, engine="fast")
        ref = collect_activity(circuit, vectors, engine="reference")
        assert_reports_identical(fast, ref)
        with pytest.raises(ValueError):
            collect_activity(circuit, vectors, engine="warp")

    def test_packed_vectors_accepted_by_both_engines(self):
        circuit = ripple_carry_adder(3)
        packed = fastsim.random_packed_vectors(circuit.inputs, 25, seed=1)
        assert len(packed) == 25
        fast = collect_activity(circuit, packed, engine="fast")
        ref = collect_activity(circuit, packed, engine="reference")
        assert_reports_identical(fast, ref)

    def test_packed_roundtrip(self):
        circuit = parity_tree(4)
        vectors = random_vectors(circuit.inputs, 33, seed=5)
        packed = fastsim.PackedVectors.from_vectors(circuit.inputs,
                                                    vectors)
        assert packed.to_vectors() == vectors

    def test_estimator_engines_agree(self):
        from repro.core.estimator import PowerEstimator

        circuit = ripple_carry_adder(4)
        vectors = random_vectors(circuit.inputs, 60, seed=3)
        est = PowerEstimator()
        fast = est.gate(circuit, vectors)
        ref = est.gate(circuit, vectors, engine="reference")
        assert fast.power == ref.power
        assert "fast" in fast.technique and "reference" in ref.technique


class TestPackedStimulus:
    def test_unbiased_lane_statistics(self):
        packed = fastsim.random_packed_vectors(["a", "b"], 4000, seed=7)
        for name in ("a", "b"):
            density = packed.words[name].bit_count() / 4000
            assert density == pytest.approx(0.5, abs=0.05)

    def test_biased_threshold_packing(self):
        packed = fastsim.random_packed_vectors(
            ["a", "b", "c"], 6000, seed=11,
            probs={"a": 0.1, "b": 0.85})
        assert packed.words["a"].bit_count() / 6000 == \
            pytest.approx(0.1, abs=0.03)
        assert packed.words["b"].bit_count() / 6000 == \
            pytest.approx(0.85, abs=0.03)
        assert packed.words["c"].bit_count() / 6000 == \
            pytest.approx(0.5, abs=0.05)

    def test_degenerate_probabilities(self):
        packed = fastsim.random_packed_vectors(
            ["a", "b"], 50, seed=0, probs={"a": 0.0, "b": 1.0})
        assert packed.words["a"] == 0
        assert packed.words["b"] == (1 << 50) - 1


class TestCycleConvention:
    """Regression pin for the cycles-vs-boundaries normalization."""

    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_single_cycle_has_no_transitions(self, engine):
        circuit = counter(3)
        report = collect_activity(circuit, [{"en": 1}], engine=engine)
        assert report.cycles == 1
        assert sum(report.toggles.values()) == 0
        assert report.switched_capacitance == 0.0
        assert report.clock_capacitance == 0.0   # needs cycles > 1
        assert report.average_power() == 0.0
        assert report.activity("q0") == 0.0
        # ones still counts the single settled state.
        assert report.probability("en") == 1.0

    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_two_cycles_one_boundary(self, engine):
        circuit = Circuit("inv")
        a = circuit.add_input("a")
        y = circuit.add_gate("INV", [a])
        circuit.add_output(y)
        report = collect_activity(circuit, [{"a": 0}, {"a": 1}],
                                  engine=engine)
        assert report.cycles == 2
        assert report.toggles["a"] == 1 and report.toggles[y] == 1
        # One boundary: activity = toggles / (cycles - 1) = 1.
        assert report.activity("a") == 1.0
        # ones spans both cycles: a high once, y high once.
        assert report.probability("a") == 0.5
        assert report.probability(y) == 0.5
        caps = circuit.load_capacitances()
        assert report.switched_capacitance == caps["a"] + caps[y]
        assert report.average_power() == pytest.approx(
            0.5 * (caps["a"] + caps[y]))

    def test_engines_agree_on_edge_cases(self):
        circuit = random_latched_circuit(3, 12, 3, seed=77)
        for cycles in (0, 1, 2):
            vectors = random_vectors(circuit.inputs, cycles, seed=cycles)
            assert_reports_identical(
                fastsim.collect_activity(circuit, vectors),
                _collect_activity_reference(circuit, vectors))


class TestCompiledPlanCaching:
    def test_plan_reused_until_mutation(self):
        circuit = ripple_carry_adder(3)
        plan1 = fastsim.compile_circuit(circuit)
        assert fastsim.compile_circuit(circuit) is plan1
        circuit.add_gate("INV", [circuit.inputs[0]])
        plan2 = fastsim.compile_circuit(circuit)
        assert plan2 is not plan1
        assert len(plan2.nets) == len(plan1.nets) + 1

    def test_fanout_and_caps_cached_and_invalidated(self):
        circuit = parity_tree(4)
        fanout1 = circuit.fanout_map()
        caps1 = circuit.load_capacitances()
        assert circuit.fanout_map() is fanout1
        assert circuit.load_capacitances() is caps1
        circuit.add_gate("INV", [circuit.inputs[0]])
        assert circuit.fanout_map() is not fanout1
        assert circuit.load_capacitances() is not caps1

    def test_inplace_mutation_with_invalidate(self):
        """The clock-gating pattern: mutate latch.enable in place,
        call invalidate(), and the fast engine must see the change."""
        circuit = counter(3)
        vectors = [{"en": 1}] * 40
        before = collect_activity(circuit, vectors)
        gate_off = circuit.add_gate("CONST0", [], output="gate_off")
        for latch in circuit.latches:
            latch.enable = gate_off
        circuit.invalidate()
        after = collect_activity(circuit, vectors)
        assert_reports_identical(
            after, _collect_activity_reference(circuit, vectors))
        # Clock gated off: no latch clock capacitance, less switching.
        assert after.clock_capacitance == 0.0
        assert before.clock_capacitance > 0.0

    def test_truth_table_fallback_for_custom_cells(self):
        """Gate types without a hand-written kernel lower through the
        synthesized truth-table path and stay exactly equivalent."""
        from repro.logic.gates import GateSpec, LIBRARY

        name = "MAJ3_TEST"
        LIBRARY[name] = GateSpec(
            name, 3, lambda v: int(v[0] + v[1] + v[2] >= 2),
            1.3, 0.8, 2.0, 2.0)
        try:
            circuit = Circuit("maj")
            a, b, c = circuit.add_inputs(["a", "b", "c"])
            y = circuit.add_gate(name, [a, b, c])
            circuit.add_output(y)
            vectors = random_vectors(circuit.inputs, 40, seed=1)
            assert_reports_identical(
                fastsim.collect_activity(circuit, vectors),
                _collect_activity_reference(circuit, vectors))
        finally:
            del LIBRARY[name]
