"""Coverage for smaller public paths not exercised elsewhere."""

import pytest

from repro import DesignImprovementLoop, EstimateResult
from repro.fsm import benchmark
from repro.fsm.markov import transition_entropy
from repro.rtl import RtlNetlist, RtlSimulator, WordStream
from repro.rtl.streams import sinusoid_stream


class TestRtlTraceHelpers:
    def _net(self):
        net = RtlNetlist("t")
        net.add_input("x", 4)
        net.add_constant("k", 3, 4)
        net.add_instance("add", 4, ["x", "k"], output_signal="y")
        net.add_output("y")
        return net

    def test_stream_extraction(self):
        net = self._net()
        trace = RtlSimulator(net).run({"x": WordStream([1, 2, 3], 4)})
        stream = trace.stream(net, "y")
        assert stream.words == [4, 5, 6]
        assert stream.width == 5   # adder output is width+1

    def test_signal_width_queries(self):
        net = self._net()
        assert net.signal_width("x") == 4
        assert net.signal_width("y") == 5
        assert net.signal_width("k") >= 1
        with pytest.raises(KeyError):
            net.signal_width("nope")

    def test_operand_streams_by_port(self):
        net = self._net()
        trace = RtlSimulator(net).run({"x": WordStream([7, 7], 4)})
        streams = trace.operand_streams(net.instances[0])
        assert streams[0].words == [7, 7]
        assert streams[1].words == [3, 3]

    def test_explicit_cycle_count(self):
        net = self._net()
        trace = RtlSimulator(net).run({"x": WordStream([1, 2, 3, 4], 4)},
                                      cycles=2)
        assert trace.cycles == 2
        assert len(trace.signal_values["y"]) == 2


class TestFlowEdgeCases:
    def test_keep_original_false(self):
        loop = DesignImprovementLoop()

        def evaluator(d):
            return EstimateResult(float(d), "t", "l")

        chosen = loop.improve("x", 1.0,
                              {"worse": lambda d: d * 3,
                               "worst": lambda d: d * 9},
                              evaluator, keep_original=False)
        # The original is not in the race: the least-bad candidate wins.
        assert chosen == 3.0

    def test_empty_history(self):
        loop = DesignImprovementLoop()
        assert loop.total_improvement() == 0.0
        assert "Design improvement loop" in loop.report()


class TestMarkovEntropy:
    def test_transition_entropy_bounds(self):
        stg = benchmark("dk_like")
        h = transition_entropy(stg)
        # t transitions with nonzero probability bound the entropy.
        from repro.fsm.markov import transition_probabilities

        t = sum(1 for p in transition_probabilities(stg).values()
                if p > 0)
        import math

        assert 0.0 <= h <= math.log2(t) + 1e-9

    def test_deterministic_cycle_low_entropy(self):
        # grayctr under always-enabled input walks a fixed cycle.
        stg = benchmark("grayctr")
        h = transition_entropy(stg, bit_probs=[1.0])
        assert h == pytest.approx(2.0)   # 4 equally likely edges


class TestStreamEdgeCases:
    def test_sinusoid_phase(self):
        a = sinusoid_stream(8, 50, period=25, phase=0.0)
        b = sinusoid_stream(8, 50, period=25, phase=3.14159)
        assert a.words != b.words

    def test_as_vectors(self):
        s = WordStream([5], 3)
        vectors = s.as_vectors("b")
        assert vectors == [{"b0": 1, "b1": 0, "b2": 1}]

    def test_bits_of(self):
        s = WordStream([6], 3)
        assert s.bits_of(0) == [0, 1, 1]
