"""Tests for the ISA, machine, and program kernels."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.software import (
    Instruction,
    Machine,
    dot_product,
    encode,
    fir_program,
    memory_optimized,
    memory_unoptimized,
    random_program,
)
from repro.software.isa import OPCODES, hamming32
from repro.software.machine import _sext

I = Instruction


class TestIsa:
    def test_unknown_opcode(self):
        with pytest.raises(ValueError):
            Instruction("FROB")

    def test_register_range(self):
        with pytest.raises(ValueError):
            Instruction("ADD", rd=16)

    def test_encodings_distinct(self):
        words = {encode(I(op)) for op in OPCODES}
        assert len(words) == len(OPCODES)

    def test_encoding_fields(self):
        word = encode(I("ADDI", rd=3, rs=5, imm=9))
        assert word & 0x1FFF == 9
        assert (word >> 21) & 0xF == 3

    def test_hamming(self):
        assert hamming32(0, 0b1011) == 3
        assert hamming32(0xFFFFFFFF, 0) == 32

    def test_sext(self):
        assert _sext(0x0005) == 5
        assert _sext(0x1FFF) == -1
        assert _sext(0x1000) == -4096


class TestMachine:
    def test_arithmetic(self):
        m = Machine()
        stats = m.run([
            I("ADDI", rd=1, rs=0, imm=6),
            I("ADDI", rd=2, rs=0, imm=7),
            I("MUL", rd=3, rs=1, rt=2),
            I("HALT"),
        ])
        assert m.registers[3] == 42
        assert stats.halted

    def test_r0_hardwired(self):
        m = Machine()
        m.run([I("ADDI", rd=0, rs=0, imm=9), I("HALT")])
        assert m.registers[0] == 0

    def test_load_store(self):
        m = Machine()
        m.load_memory(100, [11, 22])
        m.run([
            I("LD", rd=1, rs=0, imm=100),
            I("LD", rd=2, rs=0, imm=101),
            I("ADD", rd=3, rs=1, rt=2),
            I("ST", rd=3, rs=0, imm=102),
            I("HALT"),
        ])
        assert m.memory[102] == 33

    def test_branch_loop(self):
        m = Machine()
        # sum 1..5 in r1
        stats = m.run([
            I("ADDI", rd=1, rs=0, imm=0),
            I("ADDI", rd=2, rs=0, imm=0),
            I("ADDI", rd=3, rs=0, imm=5),
            I("ADDI", rd=2, rs=2, imm=1),       # pc=3
            I("ADD", rd=1, rs=1, rt=2),
            I("BNE", rd=2, rs=3, imm=3),
            I("HALT"),
        ])
        assert m.registers[1] == 15
        assert stats.halted

    def test_dot_product_correct(self):
        m = Machine()
        a = [1, 2, 3, 4]
        b = [5, 6, 7, 8]
        m.load_memory(0, a)
        m.load_memory(1024, b)
        m.run(dot_product(4))
        assert m.registers[1] == sum(x * y for x, y in zip(a, b))

    def test_fir_program_correct(self):
        m = Machine()
        xs = list(range(1, 11))
        taps = [2, 3]
        m.load_memory(0, xs)
        m.load_memory(3000, taps)
        m.run(fir_program(taps, 6))
        for i in range(6):
            assert m.memory[2048 + i] == 2 * xs[i] + 3 * xs[i + 1]

    def test_energy_components_positive(self):
        m = Machine()
        stats = m.run(dot_product(16))
        assert stats.energy > 0
        assert stats.cycles >= stats.instructions
        assert stats.cache_accesses > 0
        assert stats.bus_toggles > 0

    def test_cache_miss_behaviour(self):
        # Sequential access: 1 miss per line of 4 words.
        m = Machine(cache_lines=16, cache_line_words=4)
        program = []
        for i in range(32):
            program.append(I("LD", rd=1, rs=0, imm=i))
        program.append(I("HALT"))
        stats = m.run(program)
        assert stats.cache_misses == 8
        assert stats.cache_accesses == 32

    def test_load_use_stall(self):
        m = Machine()
        with_stall = m.run([
            I("LD", rd=1, rs=0, imm=0),
            I("ADD", rd=2, rs=1, rt=1),
            I("HALT"),
        ])
        m2 = Machine()
        without = m2.run([
            I("LD", rd=1, rs=0, imm=0),
            I("NOP"),
            I("ADD", rd=2, rs=1, rt=1),
            I("HALT"),
        ])
        assert with_stall.stalls == 1
        assert without.stalls == 0

    def test_mul_class_costs_more(self):
        muls = [I("MUL", rd=1, rs=2, rt=3)] * 50 + [I("HALT")]
        adds = [I("ADD", rd=1, rs=2, rt=3)] * 50 + [I("HALT")]
        e_mul = Machine().run(muls).energy
        e_add = Machine().run(adds).energy
        assert e_mul > e_add

    def test_profile_fields(self):
        stats = Machine().run(dot_product(8))
        mix = stats.instruction_mix()
        assert sum(mix.values()) == pytest.approx(1.0)
        assert 0 <= stats.miss_rate <= 1
        assert 0 <= stats.stall_rate <= 1

    def test_max_instructions_guard(self):
        # Infinite loop terminates at the fuel limit.
        stats = Machine().run([I("JMP", imm=0)], max_instructions=100)
        assert stats.instructions == 100
        assert not stats.halted


class TestFig2Memory:
    def test_same_result(self):
        n = 32
        data = [i * 3 % 17 for i in range(n)]
        m1 = Machine()
        m1.load_memory(0, data)
        m1.run(memory_unoptimized(n))
        m2 = Machine()
        m2.load_memory(0, data)
        m2.run(memory_optimized(n))
        assert m1.memory[2048:2048 + n] == m2.memory[2048:2048 + n]

    def test_optimized_halves_memory_traffic(self):
        n = 64
        m1 = Machine()
        s1 = m1.run(memory_unoptimized(n))
        m2 = Machine()
        s2 = m2.run(memory_optimized(n))
        # Unoptimized: 3n accesses (+2n for b); optimized: 2n.
        assert s1.cache_accesses == 4 * n
        assert s2.cache_accesses == 2 * n
        assert s2.energy < s1.energy


class TestRandomPrograms:
    @given(st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_random_program_runs_to_halt(self, seed):
        program = random_program(100, seed=seed)
        stats = Machine().run(program)
        assert stats.halted
        assert stats.instructions == 101

    def test_mix_is_respected(self):
        mix = {"alu": 0.8, "mem": 0.2}
        program = random_program(2000, mix=mix, seed=1)
        stats = Machine().run(program)
        got = stats.instruction_mix()
        assert got.get("alu", 0) == pytest.approx(0.8, abs=0.05)
        assert got.get("mem", 0) == pytest.approx(0.2, abs=0.05)
