"""Tests for repro.serve — the estimation service.

One module-scoped server (pool startup is the expensive part) backs
most tests; correctness is checked by comparing served estimates
against direct in-process :class:`~repro.core.PowerEstimator` calls
on identical circuits and stimulus.  Also covers the obs flush /
periodic-export API that long-running servers rely on.
"""

import json
import os
import time

import pytest

from repro import obs, serve
from repro import store as artifact_store
from repro.core import PowerEstimator
from repro.logic import fastsim
from repro.logic.generators import counter, parity_tree, \
    ripple_carry_adder

@pytest.fixture(scope="module")
def server():
    # The server exports REPRO_STORE and swaps the store singleton so
    # its forked workers share the disk store; restore both afterwards
    # so later test modules see a clean slate.
    prev_env = os.environ.get(artifact_store.ENV_DIR)
    prev_store = artifact_store.set_store(None)
    try:
        with serve.EstimationServer(workers=2) as srv:
            yield srv
    finally:
        if prev_env is None:
            os.environ.pop(artifact_store.ENV_DIR, None)
        else:
            os.environ[artifact_store.ENV_DIR] = prev_env
        artifact_store.set_store(prev_store)


@pytest.fixture(scope="module")
def client(server):
    return serve.Client(*server.address)


def _job(generator, params, technique="simulation", **kw):
    job = {"circuit": {"generator": generator, "params": params},
           "technique": technique}
    job.update(kw)
    return job


class TestEndpoints:
    def test_healthz(self, client, server):
        health = client.healthz()
        assert health["ok"] is True
        assert health["workers"] == 2
        assert health["store_dir"] == server._store_dir

    def test_unknown_route_404(self, client):
        status, lines = client._request("GET", "/nope")
        assert status == 404
        assert lines[0]["ok"] is False

    def test_bad_body_400(self, client):
        status, lines = client._request("POST", "/estimate",
                                        {"jobs": []})
        assert status == 400
        assert "jobs" in lines[0]["error"]

    def test_stats_shape(self, client):
        client.estimate([_job("parity_tree", {"width": 8},
                              cycles=64, seed=1)])
        stats = client.stats()
        assert stats["workers"] == 2
        assert stats["counters"]["jobs"] >= 1
        assert "p50_ms" in stats["latency"]
        assert "p99_ms" in stats["latency"]
        assert "hit_rate" in stats["store"]

    def test_telemetry_export_shape(self, client):
        telemetry = client.telemetry()
        assert telemetry["schema"] == obs.SCHEMA
        assert "metrics" in telemetry and "spans" in telemetry


class TestEstimation:
    def test_matches_direct_estimator(self, client):
        job = _job("ripple_carry_adder", {"width": 8},
                   cycles=256, seed=42)
        served = client.estimate([job])["results"][0]
        assert served["ok"], served

        circuit = ripple_carry_adder(8)
        vectors = fastsim.random_packed_vectors(
            circuit.inputs, 256, seed=42)
        direct = PowerEstimator().gate(circuit, vectors)
        assert served["power"] == pytest.approx(direct.power, rel=1e-12)
        assert served["technique"] == direct.technique
        assert served["fingerprint"] == circuit.fingerprint()

    def test_event_driven_matches_direct(self, client):
        job = _job("counter", {"width": 6}, technique="event-driven",
                   cycles=128, seed=7)
        served = client.estimate([job])["results"][0]
        assert served["ok"], served
        circuit = counter(6)
        vectors = fastsim.random_packed_vectors(
            circuit.inputs, 128, seed=7)
        direct = PowerEstimator().gate(circuit, vectors,
                                       technique="event-driven")
        assert served["power"] == pytest.approx(direct.power, rel=1e-12)

    def test_analytical_techniques(self, client):
        jobs = [_job("parity_tree", {"width": 8},
                     technique="probabilistic"),
                _job("parity_tree", {"width": 8},
                     technique="monte-carlo", seed=3)]
        results = client.estimate(jobs)["results"]
        assert all(r["ok"] for r in results)
        direct = PowerEstimator().gate(parity_tree(8),
                                       technique="probabilistic")
        assert results[0]["power"] == pytest.approx(direct.power,
                                                    rel=1e-12)

    def test_netlist_job(self, client):
        circuit = ripple_carry_adder(4)
        job = {"circuit": {"netlist": circuit.to_dict()},
               "technique": "simulation", "cycles": 64, "seed": 5}
        served = client.estimate([job])["results"][0]
        assert served["ok"], served
        assert served["fingerprint"] == circuit.fingerprint()

    def test_results_follow_submission_order(self, client):
        jobs = [_job("ripple_carry_adder", {"width": w},
                     cycles=32, seed=1, id=f"w{w}")
                for w in (8, 2, 6, 4)]
        results = client.estimate(jobs)["results"]
        assert [r["id"] for r in results] == ["w8", "w2", "w6", "w4"]

    def test_vdd_freq_scaling(self, client):
        base = _job("parity_tree", {"width": 6}, cycles=64, seed=2)
        scaled = dict(base, vdd=2.0)
        r_base, r_scaled = client.estimate(
            [base, scaled])["results"]
        # Dynamic power scales as Vdd^2.
        assert r_scaled["power"] == pytest.approx(4 * r_base["power"],
                                                  rel=1e-9)

    def test_sharded_job_close_to_serial(self, client):
        serial = _job("ripple_carry_adder", {"width": 8},
                      cycles=512, seed=9)
        sharded = dict(serial, shards=4)
        r_serial, r_sharded = client.estimate(
            [serial, sharded])["results"]
        assert r_sharded["ok"] and r_sharded["shards"] == 4
        assert r_sharded["cycles"] == 512
        # Different stimulus partitions: statistically close, not equal.
        assert r_sharded["power"] == pytest.approx(r_serial["power"],
                                                   rel=0.15)

    def test_bad_jobs_do_not_poison_batch(self, client):
        jobs = [_job("ripple_carry_adder", {"width": 4},
                     cycles=32, seed=1, id="good"),
                {"circuit": {"generator": "os.system"},
                 "technique": "simulation", "id": "evil"},
                {"circuit": {"generator": "counter",
                             "params": {"width": 4}},
                 "technique": "nonsense", "id": "bad-technique"},
                {"circuit": {}, "id": "empty"}]
        out = client.estimate(jobs)
        by_id = {r["id"]: r for r in out["results"]}
        assert by_id["good"]["ok"] is True
        assert by_id["evil"]["ok"] is False
        assert "unknown generator" in by_id["evil"]["error"]
        assert by_id["bad-technique"]["ok"] is False
        assert by_id["empty"]["ok"] is False
        assert out["summary"]["ok"] == 1
        assert out["summary"]["failed"] == 3

    def test_repeat_batch_hits_store(self, client):
        jobs = [_job("ripple_carry_adder", {"width": 12},
                     cycles=128, seed=4),
                _job("counter", {"width": 9},
                     technique="event-driven", cycles=128, seed=4)]
        client.estimate(jobs)                 # warm the shared store
        summary = client.estimate(jobs)["summary"]
        assert summary["store_hits"] > 0
        assert summary["store_hit_rate"] > 0
        assert summary["store_misses"] == 0

    def test_jobs_spread_across_workers(self, client):
        jobs = [_job("parity_tree", {"width": 8}, cycles=32,
                     seed=i, id=i) for i in range(8)]
        results = client.estimate(jobs)["results"]
        assert len({r["pid"] for r in results}) > 1


class TestSelfCheck:
    def test_self_check_passes(self, capsys):
        assert serve._self_check(workers=2) == 0
        assert "self-check: OK" in capsys.readouterr().out


class TestObsFlush:
    def test_flush_noop_without_target(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBS_EXPORT", raising=False)
        assert obs.flush() is None

    def test_flush_writes_export(self, tmp_path):
        target = tmp_path / "telemetry.json"
        obs.enable()
        try:
            obs.inc("test.flush.marker")
            state = obs.flush(str(target))
        finally:
            obs.disable()
        assert state is not None
        on_disk = obs.load_export(str(target))
        assert on_disk["schema"] == obs.SCHEMA
        assert "test.flush.marker" in json.dumps(on_disk["metrics"])

    def test_flush_env_target(self, tmp_path, monkeypatch):
        target = tmp_path / "env-telemetry.json"
        monkeypatch.setenv("REPRO_OBS_EXPORT", str(target))
        obs.enable()
        try:
            assert obs.flush() is not None
        finally:
            obs.disable()
        assert target.exists()

    def test_periodic_export(self, tmp_path):
        target = tmp_path / "periodic.json"
        exporter = obs.start_periodic_export(0.05, str(target))
        assert exporter is not None
        try:
            obs.inc("test.periodic.marker")
            deadline = time.time() + 5.0
            while not target.exists() and time.time() < deadline:
                time.sleep(0.02)
            assert target.exists(), "periodic exporter never flushed"
        finally:
            obs.stop_periodic_export()
            obs.disable()
        # stop() leaves a final, complete export behind.
        assert obs.load_export(str(target))["schema"] == obs.SCHEMA

    def test_periodic_export_needs_target(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBS_EXPORT", raising=False)
        assert obs.start_periodic_export(0.05) is None

    def test_stop_is_idempotent(self):
        obs.stop_periodic_export()
        obs.stop_periodic_export()


class TestStoreSharing:
    def test_server_configures_singleton(self, server):
        st = artifact_store.get_store()
        assert st.root is not None
        assert str(st.root) == server._store_dir
        assert os.environ.get(artifact_store.ENV_DIR) == \
            server._store_dir

    def test_workers_share_disk_store(self, server, client):
        # A structure no other test uses: first encounter compiles
        # and publishes; any later worker must rehydrate from disk.
        job = _job("ripple_carry_adder", {"width": 15},
                   cycles=64, seed=8)
        first = client.estimate([job])["results"][0]
        assert first["store_misses"] > 0
        repeats = client.estimate([dict(job, seed=i, id=i)
                                   for i in range(4)])
        for r in repeats["results"]:
            assert r["ok"]
            assert r["store_misses"] == 0
        assert repeats["summary"]["store_hits"] >= 4
