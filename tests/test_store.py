"""Tests for repro.store and Circuit.fingerprint().

Covers the three contracts the plan store depends on:

- the structural fingerprint is stable across object identity,
  construction order, pickling, and process boundaries, and changes
  exactly when the structure changes;
- the two-layer store (in-process LRU + disk) round-trips payloads,
  evicts correctly, and degrades to a miss — never an error — on
  corruption, truncation, version skew, or unwritable roots;
- the engines (fastsim / fasttimer / eventsim) rehydrate plans from
  the store bit-identically to a fresh compile, including across
  processes and under sharded execution.
"""

import json
import multiprocessing
import os
import pickle
import subprocess
import sys

import pytest

from repro import store as artifact_store
from repro.logic import eventsim, fastsim, fasttimer
from repro.logic.generators import counter, parity_tree, \
    ripple_carry_adder
from repro.logic.netlist import Circuit
from repro.store import ArtifactStore


@pytest.fixture
def mem_store():
    """Fresh in-memory store installed as the process singleton."""
    st = ArtifactStore(root=None)
    prev = artifact_store.set_store(st)
    yield st
    artifact_store.set_store(prev)


@pytest.fixture
def disk_store(tmp_path):
    """Fresh disk-backed store installed as the process singleton."""
    st = ArtifactStore(root=tmp_path / "store")
    prev = artifact_store.set_store(st)
    yield st
    artifact_store.set_store(prev)


# ----------------------------------------------------------------------
# Fingerprint
# ----------------------------------------------------------------------
class TestFingerprint:
    def test_identical_structures_same_fingerprint(self):
        a = ripple_carry_adder(8)
        b = ripple_carry_adder(8)
        assert a is not b
        assert a.fingerprint() == b.fingerprint()

    def test_different_structures_differ(self):
        fps = {ripple_carry_adder(4).fingerprint(),
               ripple_carry_adder(8).fingerprint(),
               parity_tree(8).fingerprint(),
               counter(8).fingerprint()}
        assert len(fps) == 4

    def test_name_independent(self):
        a = ripple_carry_adder(6, name="adder_a")
        b = ripple_carry_adder(6, name="adder_b")
        assert a.fingerprint() == b.fingerprint()

    def test_pickle_round_trip(self):
        a = counter(7)
        fp = a.fingerprint()
        b = pickle.loads(pickle.dumps(a))
        assert b.fingerprint() == fp

    def test_pickle_before_first_fingerprint(self):
        a = counter(7)
        b = pickle.loads(pickle.dumps(a))    # cache never populated
        assert b.fingerprint() == a.fingerprint()

    def test_construction_order_independent(self):
        def build(reverse: bool) -> Circuit:
            c = Circuit("order")
            ins = ["a", "b", "c"]
            c.add_inputs(ins)
            gates = [("AND2", ["a", "b"], "ab"),
                     ("OR2", ["ab", "c"], "abc"),
                     ("XOR2", ["a", "c"], "ac")]
            if reverse:
                # Dependency-free gates can be declared in any order;
                # 'ac' does not depend on 'ab'.
                gates = [gates[2], gates[0], gates[1]]
            for gt, gi, go in gates:
                c.add_gate(gt, gi, output=go)
            c.add_output("abc")
            c.add_output("ac")
            return c

        assert build(False).fingerprint() == build(True).fingerprint()

    def test_stable_across_processes(self):
        fp = ripple_carry_adder(8).fingerprint()
        code = ("import sys; sys.path.insert(0, 'src');"
                "from repro.logic.generators import ripple_carry_adder;"
                "print(ripple_carry_adder(8).fingerprint())")
        out = subprocess.run(
            [sys.executable, "-c", code], capture_output=True,
            text=True, check=True,
            cwd=os.path.dirname(os.path.dirname(__file__)))
        assert out.stdout.strip() == fp

    def test_invalidate_without_mutation_keeps_fingerprint(self):
        c = ripple_carry_adder(4)
        fp = c.fingerprint()
        c.invalidate()                 # version bump, same structure
        assert c.fingerprint() == fp

    def test_mutation_changes_fingerprint(self):
        c = ripple_carry_adder(4)
        fp = c.fingerprint()
        c.add_gate("INV", [c.outputs[0]], output="extra")
        assert c.fingerprint() != fp
        fp2 = c.fingerprint()
        c.add_output("extra")          # output pads are structural too
        assert c.fingerprint() != fp2

    def test_to_dict_round_trip(self):
        a = counter(5)
        b = Circuit.from_dict(json.loads(json.dumps(a.to_dict())))
        assert b.fingerprint() == a.fingerprint()
        assert b.inputs == a.inputs
        assert [g.output for g in b.gates] == [g.output for g in a.gates]
        vectors = fastsim.random_packed_vectors(a.inputs, 64, seed=3)
        assert fastsim.collect_activity(a, vectors).toggles == \
            fastsim.collect_activity(b, vectors).toggles


# ----------------------------------------------------------------------
# ArtifactStore mechanics
# ----------------------------------------------------------------------
class TestArtifactStore:
    def test_memory_round_trip(self, mem_store):
        mem_store.put("f" * 64, "thing", {"x": 1})
        assert mem_store.get("f" * 64, "thing") == {"x": 1}
        stats = mem_store.stats()
        assert stats["mem_hits"] == 1 and stats["puts"] == 1

    def test_miss_counts(self, mem_store):
        assert mem_store.get("0" * 64, "thing") is None
        assert mem_store.stats()["misses"] == 1

    def test_mem_lru_eviction(self):
        st = ArtifactStore(root=None, mem_entries=2)
        for i in range(3):
            st.put(f"{i}" * 64, "k", {"i": i})
        assert st.get("0" * 64, "k") is None      # evicted
        assert st.get("2" * 64, "k") == {"i": 2}

    def test_disk_persistence(self, tmp_path):
        root = tmp_path / "s"
        ArtifactStore(root=root).put("a" * 64, "plan", {"v": 7})
        st2 = ArtifactStore(root=root)            # fresh process stand-in
        assert st2.get("a" * 64, "plan") == {"v": 7}
        assert st2.stats()["disk_hits"] == 1

    def test_disk_eviction_by_size(self, tmp_path):
        st = ArtifactStore(root=tmp_path / "s", max_bytes=4096,
                           mem_entries=1)
        blob = {"pad": "x" * 1500}
        for i in range(8):
            st.put(f"{i:064x}", "k", blob)
        assert st.stats()["disk_evictions"] > 0
        assert st.disk_bytes() <= 4096
        # Newest entry survives eviction.
        st2 = ArtifactStore(root=tmp_path / "s")
        assert st2.get(f"{7:064x}", "k") == blob

    def test_corrupt_file_recovers(self, tmp_path):
        root = tmp_path / "s"
        st = ArtifactStore(root=root)
        st.put("b" * 64, "plan", {"v": 1})
        path = root / (st.key("b" * 64, "plan") + ".json")
        path.write_text("{ not json")
        st2 = ArtifactStore(root=root)
        assert st2.get("b" * 64, "plan") is None
        assert st2.stats()["corrupt"] == 1
        assert not path.exists()                  # quarantined
        st2.put("b" * 64, "plan", {"v": 2})       # and re-cacheable
        assert ArtifactStore(root=root).get("b" * 64, "plan") == {"v": 2}

    def test_truncated_file_recovers(self, tmp_path):
        root = tmp_path / "s"
        st = ArtifactStore(root=root)
        st.put("c" * 64, "plan", {"v": list(range(100))})
        path = root / (st.key("c" * 64, "plan") + ".json")
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])    # torn write stand-in
        st2 = ArtifactStore(root=root)
        assert st2.get("c" * 64, "plan") is None
        assert st2.stats()["corrupt"] == 1

    def test_cross_version_invalidation(self, tmp_path):
        root = tmp_path / "s"
        st = ArtifactStore(root=root)
        st.put("d" * 64, "plan", {"v": 1})
        path = root / (st.key("d" * 64, "plan") + ".json")
        envelope = json.loads(path.read_text())
        envelope["schema"] = "repro.store/0"
        path.write_text(json.dumps(envelope))
        st2 = ArtifactStore(root=root)
        assert st2.get("d" * 64, "plan") is None  # skew = miss

    def test_wrong_fingerprint_in_envelope_is_miss(self, tmp_path):
        root = tmp_path / "s"
        st = ArtifactStore(root=root)
        st.put("e" * 64, "plan", {"v": 1})
        path = root / (st.key("e" * 64, "plan") + ".json")
        envelope = json.loads(path.read_text())
        envelope["fingerprint"] = "0" * 64
        path.write_text(json.dumps(envelope))
        assert ArtifactStore(root=root).get("e" * 64, "plan") is None

    def test_unwritable_root_is_quiet(self, tmp_path):
        blocked = tmp_path / "file-not-dir"
        blocked.write_text("occupied")
        st = ArtifactStore(root=blocked / "nope")
        st.put("a" * 64, "k", {"v": 1})           # must not raise
        assert st.get("a" * 64, "k") == {"v": 1}  # mem layer still works

    def test_configure_and_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv(artifact_store.ENV_DIR, raising=False)
        prev = artifact_store.set_store(None)
        try:
            st = artifact_store.configure(root=tmp_path / "cfg")
            assert artifact_store.get_store() is st
            assert os.environ[artifact_store.ENV_DIR] == \
                str(tmp_path / "cfg")
        finally:
            artifact_store.set_store(prev)
            os.environ.pop(artifact_store.ENV_DIR, None)


# ----------------------------------------------------------------------
# Concurrency
# ----------------------------------------------------------------------
def _store_worker(args):
    root, fp, worker_id = args
    st = ArtifactStore(root=root)
    payload = {"worker": worker_id, "data": list(range(200))}
    for i in range(20):
        st.put(fp, "contended", payload)
        got = st.get(fp, "contended")
        if got is not None and "data" not in got:
            return f"worker {worker_id}: bad payload {got}"
    return None


class TestConcurrency:
    def test_parallel_writers_readers_same_key(self, tmp_path):
        root = str(tmp_path / "s")
        fp = "ab" * 32
        ctx = multiprocessing.get_context("fork") \
            if "fork" in multiprocessing.get_all_start_methods() \
            else multiprocessing.get_context()
        with ctx.Pool(4) as pool:
            errors = [e for e in pool.map(
                _store_worker, [(root, fp, i) for i in range(4)]) if e]
        assert errors == []
        # Whatever won the final race, the entry must parse cleanly.
        final = ArtifactStore(root=root).get(fp, "contended")
        assert final is not None and len(final["data"]) == 200


# ----------------------------------------------------------------------
# Engine rehydration
# ----------------------------------------------------------------------
class TestRehydration:
    def test_fastsim_rehydrate_bit_identical(self, mem_store):
        a = ripple_carry_adder(8)
        vectors = fastsim.random_packed_vectors(a.inputs, 256, seed=11)
        cold = fastsim.collect_activity(a, vectors)
        assert mem_store.stats()["misses"] >= 1
        b = ripple_carry_adder(8)                 # same structure
        warm = fastsim.collect_activity(b, vectors)
        assert mem_store.stats()["mem_hits"] >= 1
        assert warm.toggles == cold.toggles
        assert warm.ones == cold.ones
        assert warm.switched_capacitance == cold.switched_capacitance

    def test_fastsim_rehydrate_from_disk(self, tmp_path):
        root = tmp_path / "s"
        vectors = None
        results = []
        for _ in range(2):
            # A brand-new store each round: the second can only hit
            # the disk layer, as a forked worker would.
            prev = artifact_store.set_store(ArtifactStore(root=root))
            try:
                c = counter(8)
                if vectors is None:
                    vectors = fastsim.random_packed_vectors(
                        c.inputs, 128, seed=5)
                results.append(
                    fastsim.collect_activity(c, vectors).toggles)
                stats = artifact_store.get_store().stats()
            finally:
                artifact_store.set_store(prev)
        assert results[0] == results[1]
        assert stats["disk_hits"] >= 1

    def test_fastsim_rehydrate_binds_by_name(self, mem_store):
        # Same structure, different construction order: the cached
        # plan's slots must rebind to the new circuit by net name.
        def build(reverse):
            c = Circuit("bind")
            c.add_inputs(["p", "q", "r"])
            order = [("AND2", ["p", "q"], "pq"),
                     ("XOR2", ["q", "r"], "qr")]
            if reverse:
                order.reverse()
            for gt, gi, go in order:
                c.add_gate(gt, gi, output=go)
            c.add_output("pq")
            c.add_output("qr")
            return c

        a, b = build(False), build(True)
        assert a.fingerprint() == b.fingerprint()
        vectors = fastsim.random_packed_vectors(a.inputs, 64, seed=9)
        ta = fastsim.collect_activity(a, vectors).toggles
        tb = fastsim.collect_activity(b, vectors).toggles
        assert ta == tb

    def test_fasttimer_rehydrate_bit_identical(self, mem_store):
        a = ripple_carry_adder(6)
        vectors = fastsim.random_packed_vectors(a.inputs, 128, seed=2)
        cold = fasttimer.timed_activity(a, vectors)
        b = ripple_carry_adder(6)
        warm = fasttimer.timed_activity(b, vectors)
        assert warm.toggles == cold.toggles
        assert warm.events == cold.events
        assert warm.glitches == cold.glitches

    def test_fasttimer_sharded_warm(self, disk_store):
        a = counter(6)
        vectors = fastsim.random_packed_vectors(a.inputs, 512, seed=4)
        serial = fasttimer.timed_activity(a, vectors)
        b = counter(6)
        sharded = fasttimer.timed_activity(b, vectors, workers=2)
        assert sharded.toggles == serial.toggles
        assert sharded.events == serial.events

    def test_tick_grid_rehydrate(self, mem_store):
        a = parity_tree(8)
        grid_a = eventsim.tick_grid(a)
        b = parity_tree(8)
        grid_b = eventsim.tick_grid(b)
        assert grid_b.quantum == grid_a.quantum
        assert grid_b.ticks == grid_a.ticks
        assert mem_store.stats()["mem_hits"] >= 1

    def test_rehydrate_vs_reference_engine(self, mem_store):
        a = ripple_carry_adder(5)
        vectors = fastsim.random_packed_vectors(a.inputs, 64, seed=13)
        fastsim.collect_activity(a, vectors)      # populate store
        b = ripple_carry_adder(5)
        warm = fastsim.collect_activity(b, vectors)
        ref = fastsim.collect_activity(
            ripple_carry_adder(5), vectors.to_vectors())
        assert warm.toggles == ref.toggles

    def test_garbage_payload_falls_back_to_compile(self, mem_store):
        c = ripple_carry_adder(4)
        mem_store.put(c.fingerprint(), fastsim.STORE_KIND,
                      {"nets": ["bogus"], "caps": [], "code": {}})
        vectors = fastsim.random_packed_vectors(c.inputs, 32, seed=1)
        report = fastsim.collect_activity(c, vectors)   # must not raise
        ref = fastsim.collect_activity(
            ripple_carry_adder(4), vectors.to_vectors())
        assert report.toggles == ref.toggles


def _cross_process_activity(args):
    root, width, seed = args
    prev = artifact_store.set_store(ArtifactStore(root=root))
    try:
        c = ripple_carry_adder(width)
        vectors = fastsim.random_packed_vectors(c.inputs, 128,
                                                seed=seed)
        report = fastsim.collect_activity(c, vectors)
        stats = artifact_store.get_store().stats()
        return sorted(report.toggles.items()), stats["disk_hits"]
    finally:
        artifact_store.set_store(prev)


class TestCrossProcess:
    def test_plans_cross_process_boundary(self, tmp_path):
        root = str(tmp_path / "s")
        # Seed the store from this process...
        first, hits0 = _cross_process_activity((root, 7, 21))
        assert hits0 == 0
        # ...then rehydrate in real child processes.
        ctx = multiprocessing.get_context("fork") \
            if "fork" in multiprocessing.get_all_start_methods() \
            else multiprocessing.get_context()
        with ctx.Pool(2) as pool:
            results = pool.map(_cross_process_activity,
                               [(root, 7, 21)] * 2)
        for toggles, disk_hits in results:
            assert toggles == first
            assert disk_hits >= 1

    def test_code_blob_marshal_fast_path(self):
        source = "def __probe(x):\n    return x * 3\n"
        code = compile(source, "<probe>", "exec")
        blob = artifact_store.code_blob(source, "<probe>", code)
        assert blob["magic"]                       # tagged
        fn = artifact_store.load_function(blob, "__probe")
        assert fn(14) == 42
        # Magic mismatch (old interpreter's cache) → source fallback.
        stale = dict(blob, magic="deadbeef")
        assert artifact_store.load_function(stale, "__probe")(14) == 42
