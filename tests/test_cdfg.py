"""Tests for the CDFG model, transforms, scheduling, and module library."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdfg import (
    Cdfg,
    ModuleLibrary,
    Schedule,
    alap,
    asap,
    list_schedule,
)
from repro.cdfg.schedule import mobility
from repro.cdfg.transforms import (
    convert_constant_multiplications,
    csd_digits,
    direct_polynomial,
    fir_filter,
    horner_polynomial,
    strength_reduce_constant_mult,
)


def _poly_value(coeffs, x, width):
    mask = (1 << width) - 1
    acc = 0
    for d, c in enumerate(coeffs):
        acc = (acc + c * pow(x, d)) & mask
    return acc


class TestCdfg:
    def test_evaluate_arith(self):
        cdfg = Cdfg(width=8)
        a = cdfg.add_input("a")
        b = cdfg.add_input("b")
        s = cdfg.add_op("add", a, b)
        p = cdfg.add_op("mult", s, b)
        cdfg.set_output("y", p)
        assert cdfg.evaluate({"a": 3, "b": 4})["y"] == (7 * 4) & 0xFF

    def test_mux_and_compare(self):
        cdfg = Cdfg(width=8)
        a = cdfg.add_input("a")
        b = cdfg.add_input("b")
        gt = cdfg.add_op("cmp_gt", a, b)
        out = cdfg.add_op("mux", b, a, gt)   # max(a, b)
        cdfg.set_output("m", out)
        assert cdfg.evaluate({"a": 9, "b": 4})["m"] == 9
        assert cdfg.evaluate({"a": 2, "b": 4})["m"] == 4

    def test_lshift(self):
        cdfg = Cdfg(width=8)
        a = cdfg.add_input("a")
        sh = cdfg.add_op("lshift", a, value=3)
        cdfg.set_output("y", sh)
        assert cdfg.evaluate({"a": 5})["y"] == 40

    def test_operand_validation(self):
        cdfg = Cdfg()
        a = cdfg.add_input("a")
        with pytest.raises(ValueError):
            cdfg.add_op("add", a)          # wrong arity
        with pytest.raises(ValueError):
            cdfg.add_op("add", a, 99)      # out of range
        with pytest.raises(ValueError):
            cdfg.add_op("frob", a, a)      # unknown kind

    def test_operation_counts_and_critical_path(self):
        cdfg = direct_polynomial([1, 2], width=8)  # x^2 + 2x + 1
        counts = cdfg.operation_counts()
        assert counts["add"] == 2
        assert cdfg.critical_path() == 3

    def test_simulate_streams(self):
        cdfg = Cdfg(width=8)
        a = cdfg.add_input("a")
        b = cdfg.add_input("b")
        s = cdfg.add_op("add", a, b)
        cdfg.set_output("y", s)
        traces = cdfg.simulate({"a": [1, 2], "b": [3, 4]})
        assert traces[s] == [4, 6]

    def test_simulate_length_mismatch(self):
        cdfg = Cdfg()
        cdfg.add_input("a")
        cdfg.add_input("b")
        with pytest.raises(ValueError):
            cdfg.simulate({"a": [1], "b": [1, 2]})


class TestTransforms:
    def test_fig4_second_order(self):
        """Fig. 4: direct (2 add, 2 mult, cp 3) vs factored
        (2 add, 1 mult, cp 3) -- the transformation is a pure win."""
        coeffs = [7, 3]            # x^2 + 3x + 7
        direct = direct_polynomial(coeffs, width=12)
        horner = horner_polynomial(coeffs, width=12)
        dc, hc = direct.operation_counts(), horner.operation_counts()
        assert dc["add"] == 2 and dc["mult"] == 2
        assert hc["add"] == 2 and hc["mult"] == 1
        assert direct.critical_path() == 3
        assert horner.critical_path() == 3
        for x in range(40):
            assert direct.evaluate({"x": x}) == horner.evaluate({"x": x})

    def test_fig5_third_order(self):
        """Fig. 5: direct (3 add, 4 mult, cp 4) vs Horner (3 add, 2 mult,
        cp 5) -- fewer operations but a longer critical path."""
        coeffs = [7, 3, 5]         # x^3 + 5x^2 + 3x + 7
        direct = direct_polynomial(coeffs, width=12)
        horner = horner_polynomial(coeffs, width=12)
        dc, hc = direct.operation_counts(), horner.operation_counts()
        assert dc["add"] == 3 and dc["mult"] == 4
        assert hc["add"] == 3 and hc["mult"] == 2
        assert direct.critical_path() == 4
        assert horner.critical_path() == 5
        for x in range(40):
            assert direct.evaluate({"x": x}) == horner.evaluate({"x": x})

    @pytest.mark.parametrize("value", [0, 1, 2, 3, 5, 7, 11, 12, 100, 255])
    def test_csd_digits_value(self, value):
        total = sum(sign << shift for shift, sign in csd_digits(value))
        assert total == value

    @pytest.mark.parametrize("value", [3, 7, 15, 23, 47])
    def test_csd_fewer_terms_than_binary(self, value):
        assert len(csd_digits(value)) <= bin(value).count("1")

    def test_csd_negative_rejected(self):
        with pytest.raises(ValueError):
            csd_digits(-3)

    @pytest.mark.parametrize("const", [0, 1, 2, 3, 5, 6, 7, 10, 13])
    def test_constant_mult_conversion_preserves_function(self, const):
        cdfg = Cdfg(width=10)
        x = cdfg.add_input("x")
        c = cdfg.add_const(const)
        p = cdfg.add_op("mult", c, x)
        cdfg.set_output("y", p)
        converted = convert_constant_multiplications(cdfg)
        assert "mult" not in converted.operation_counts()
        for x_val in range(64):
            assert converted.evaluate({"x": x_val}) == \
                cdfg.evaluate({"x": x_val})

    def test_fir_conversion(self):
        coeffs = [3, 5, 7, 2]
        fir = fir_filter(coeffs, width=12)
        converted = convert_constant_multiplications(fir)
        assert "mult" not in converted.operation_counts()
        inputs = {f"x{i}": (i * 13 + 1) % 64 for i in range(4)}
        assert converted.evaluate(inputs) == fir.evaluate(inputs)

    def test_strength_reduce_single_node(self):
        cdfg = Cdfg(width=8)
        x = cdfg.add_input("x")
        c = cdfg.add_const(6)
        p = cdfg.add_op("mult", c, x)
        cdfg.set_output("y", p)
        reduced = strength_reduce_constant_mult(cdfg, p)
        assert "mult" not in reduced.operation_counts()

    def test_strength_reduce_requires_const(self):
        cdfg = Cdfg(width=8)
        a = cdfg.add_input("a")
        b = cdfg.add_input("b")
        p = cdfg.add_op("mult", a, b)
        with pytest.raises(ValueError):
            strength_reduce_constant_mult(cdfg, p)

    @given(st.integers(0, 4095))
    @settings(max_examples=80, deadline=None)
    def test_csd_property(self, value):
        digits = csd_digits(value)
        assert sum(sign << shift for shift, sign in digits) == value
        # CSD has no two adjacent nonzero digits.
        shifts = sorted(shift for shift, _s in digits)
        assert all(b - a >= 2 for a, b in zip(shifts, shifts[1:]))


class TestScheduling:
    def _diamond(self):
        cdfg = Cdfg(width=8)
        a = cdfg.add_input("a")
        b = cdfg.add_input("b")
        m1 = cdfg.add_op("mult", a, b)
        m2 = cdfg.add_op("mult", a, a)
        s = cdfg.add_op("add", m1, m2)
        cdfg.set_output("y", s)
        return cdfg, (m1, m2, s)

    def test_asap_valid_and_tight(self):
        cdfg, (m1, m2, s) = self._diamond()
        sched = asap(cdfg)
        assert sched.is_valid()
        assert sched.steps[m1] == 1 and sched.steps[m2] == 1
        assert sched.steps[s] == 2
        assert sched.latency == 2

    def test_alap_valid(self):
        cdfg, (m1, m2, s) = self._diamond()
        sched = alap(cdfg, latency=4)
        assert sched.is_valid()
        assert sched.latency == 4
        assert sched.steps[s] == 4

    def test_alap_infeasible_latency(self):
        cdfg, _ = self._diamond()
        with pytest.raises(ValueError):
            alap(cdfg, latency=1)

    def test_mobility(self):
        cdfg, (m1, m2, s) = self._diamond()
        mob = mobility(cdfg, latency=4)
        assert mob[s] == 2
        assert mob[m1] == 2

    def test_list_schedule_respects_resources(self):
        cdfg, _ = self._diamond()
        sched = list_schedule(cdfg, {"mult": 1, "add": 1})
        assert sched.is_valid()
        assert sched.resource_usage()["mult"] <= 1
        assert sched.latency == 3  # serialized multipliers

    def test_list_schedule_unconstrained_equals_asap(self):
        cdfg = horner_polynomial([1, 2, 3, 4], width=8)
        unconstrained = list_schedule(cdfg, {})
        assert unconstrained.is_valid()
        assert unconstrained.latency == asap(cdfg).latency

    def test_multicycle_ops(self):
        cdfg, (m1, m2, s) = self._diamond()
        delays = {"mult": 2, "add": 1}
        sched = asap(cdfg, delays=delays)
        assert sched.is_valid()
        assert sched.steps[s] == 3

    def test_resource_usage_counts_busy_cycles(self):
        cdfg, _ = self._diamond()
        delays = {"mult": 2, "add": 1}
        sched = list_schedule(cdfg, {"mult": 1}, delays=delays)
        assert sched.is_valid()
        assert sched.resource_usage()["mult"] == 1
        assert sched.latency == 5  # 2+2 serialized mults + add

    @given(st.integers(2, 6), st.integers(1, 3))
    @settings(max_examples=20, deadline=None)
    def test_list_schedule_valid_on_random_polys(self, degree, mults):
        coeffs = list(range(1, degree + 2))
        cdfg = direct_polynomial(coeffs, width=8)
        sched = list_schedule(cdfg, {"mult": mults, "add": 1})
        assert sched.is_valid()
        usage = sched.resource_usage()
        assert usage.get("mult", 0) <= mults
        assert usage.get("add", 0) <= 1


class TestModuleLibrary:
    @pytest.fixture(scope="class")
    def lib(self):
        return ModuleLibrary(width=4, characterization_cycles=80)

    def test_energy_scales_with_voltage(self, lib):
        curve = lib.curve("add")
        assert curve[0].voltage > curve[-1].voltage
        assert curve[0].energy > curve[-1].energy
        assert curve[0].delay < curve[-1].delay

    def test_mult_costs_more_than_add(self, lib):
        assert lib.energy("mult") > lib.energy("add")

    def test_quadratic_energy_scaling(self, lib):
        e5 = lib.energy("add", 5.0)
        e24 = lib.energy("add", 2.4)
        assert e5 / e24 == pytest.approx((5.0 / 2.4) ** 2, rel=1e-6)

    def test_unknown_voltage(self, lib):
        with pytest.raises(KeyError):
            lib.point("add", 1.234)

    def test_shifter_cost(self, lib):
        assert lib.shifter_cost(5.0, 5.0) == (0.0, 0.0)
        e, d = lib.shifter_cost(5.0, 3.3)
        assert e > 0 and d > 0
