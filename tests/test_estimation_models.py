"""Tests for entropy, Tyagi, complexity, and probabilistic estimators."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.estimation.entropy import (
    activity_upper_bound,
    cheng_agrawal_ctot,
    entropy_of_probability,
    entropy_power_estimate,
    estimate_circuit_power_entropic,
    ferrandi_ctot,
    marculescu_havg,
    measured_io_entropies,
    nemani_najm_havg,
    sequence_bit_entropy,
)
from repro.estimation.tyagi import (
    expected_hamming_switching,
    is_sparse,
    transition_probability_entropy,
    tyagi_lower_bound,
)
from repro.estimation.complexity import (
    area_complexity,
    fit_landman_rabaey,
    gate_equivalent_power,
    landman_rabaey_features,
    linear_measure,
    nemani_najm_area_model,
)
from repro.estimation.probabilistic import (
    density_power_estimate,
    monte_carlo_power,
    transition_density,
)
from repro.fsm import benchmark, binary_encoding, gray_encoding, \
    one_hot_encoding, random_encoding
from repro.logic.generators import parity_tree, random_logic, \
    ripple_carry_adder
from repro.logic.simulate import collect_activity, random_vectors


class TestEntropyBasics:
    def test_binary_entropy(self):
        assert entropy_of_probability(0.5) == pytest.approx(1.0)
        assert entropy_of_probability(0.0) == 0.0
        assert entropy_of_probability(1.0) == 0.0
        assert entropy_of_probability(0.1) == pytest.approx(
            entropy_of_probability(0.9))

    def test_sequence_entropy_random(self):
        vectors = random_vectors(["a", "b"], 2000, seed=1)
        h = sequence_bit_entropy(vectors, ["a", "b"])
        assert h == pytest.approx(1.0, abs=0.01)

    def test_activity_bound_holds_empirically(self):
        """E <= h/2 for circuit nets under random stimulus."""
        circuit = ripple_carry_adder(4)
        vectors = random_vectors(circuit.inputs, 1500, seed=2)
        report = collect_activity(circuit, vectors)
        from repro.logic.simulate import simulate

        trace = simulate(circuit, vectors)
        for net in circuit.nets:
            p = sum(v[net] for v in trace) / len(trace)
            h = entropy_of_probability(p)
            # Allow small sampling tolerance.
            assert report.activity(net) <= activity_upper_bound(h) + 0.05


class TestHavgModels:
    def test_marculescu_bounds(self):
        h = marculescu_havg(8, 4, 1.0, 0.5)
        assert 0.0 < h <= 1.0

    def test_marculescu_equal_entropies(self):
        assert marculescu_havg(8, 8, 0.9, 0.9) == pytest.approx(0.9)

    def test_marculescu_degenerate(self):
        assert marculescu_havg(8, 4, 0.0, 0.0) == 0.0

    def test_nemani_najm_formula(self):
        # 2/(3(n+m)) (H_in + H_out)
        assert nemani_najm_havg(4, 2, 4.0, 1.0) == pytest.approx(
            2.0 / 18.0 * 5.0)

    def test_cheng_agrawal(self):
        assert cheng_agrawal_ctot(4, 2, 1.0) == pytest.approx(8.0)
        # Pessimism grows exponentially with n: 2^n / n dominates.
        assert cheng_agrawal_ctot(10, 2, 1.0) > \
            25 * cheng_agrawal_ctot(4, 2, 1.0)
        assert cheng_agrawal_ctot(16, 2, 1.0) > \
            1000 * cheng_agrawal_ctot(4, 2, 1.0)

    def test_power_estimate_formula(self):
        p = entropy_power_estimate(c_tot=10.0, h_avg=1.0, vdd=2.0, freq=3.0)
        assert p == pytest.approx(0.5 * 4.0 * 3.0 * 10.0 * 0.5)

    def test_measured_entropies_reasonable(self):
        circuit = parity_tree(4)
        vectors = random_vectors(circuit.inputs, 800, seed=3)
        h_in, h_out = measured_io_entropies(circuit, vectors)
        assert h_in == pytest.approx(1.0, abs=0.02)
        assert h_out == pytest.approx(1.0, abs=0.02)

    def test_entropic_estimate_tracks_activity(self):
        """Lower input entropy -> lower estimated power."""
        circuit = ripple_carry_adder(4)
        hot = random_vectors(circuit.inputs, 500, seed=4)
        cold = random_vectors(circuit.inputs, 500, seed=4,
                              probs={n: 0.95 for n in circuit.inputs})
        p_hot = estimate_circuit_power_entropic(circuit, hot)
        p_cold = estimate_circuit_power_entropic(circuit, cold)
        assert p_cold < p_hot

    def test_unknown_model_rejected(self):
        circuit = parity_tree(3)
        vectors = random_vectors(circuit.inputs, 10, seed=0)
        with pytest.raises(ValueError):
            estimate_circuit_power_entropic(circuit, vectors, model="foo")

    def test_ferrandi_fit_predicts_population(self):
        circuits = [random_logic(5, 12 + 4 * k, 3, seed=k)
                    for k in range(6)]
        model = ferrandi_ctot(circuits, training_vectors=80)
        # The fitted model should correlate with the real capacitances:
        # mean relative error well below a naive constant model.
        from repro.logic.bdd_bridge import total_bdd_nodes
        from repro.logic.simulate import output_trace

        errors = []
        for c in circuits:
            vectors = random_vectors(c.inputs, 80, seed=0)
            outs = output_trace(c, vectors)
            h_out = sequence_bit_entropy(outs, c.outputs)
            pred = model.predict(len(c.inputs), len(c.outputs),
                                 total_bdd_nodes(c), h_out)
            truth = c.total_capacitance()
            errors.append(abs(pred - truth) / truth)
        assert sum(errors) / len(errors) < 0.5


class TestTyagi:
    @pytest.mark.parametrize("name", ["traffic", "waiter", "dk_like",
                                      "arbiter", "handshake"])
    def test_bound_below_measured_for_any_encoding(self, name):
        stg = benchmark(name)
        bound = tyagi_lower_bound(stg)
        for enc_fn in (binary_encoding, gray_encoding, one_hot_encoding):
            measured = expected_hamming_switching(stg, enc_fn(stg))
            assert measured >= bound - 1e-9

    def test_bound_below_random_encodings(self):
        stg = benchmark("bbsse_like")
        bound = tyagi_lower_bound(stg)
        for seed in range(5):
            enc = random_encoding(stg, seed=seed, n_bits=4)
            assert expected_hamming_switching(stg, enc) >= bound - 1e-9

    def test_entropy_nonnegative(self):
        from repro.fsm.markov import transition_probabilities

        probs = transition_probabilities(benchmark("traffic"))
        assert transition_probability_entropy(probs) >= 0

    def test_sparsity_check_runs(self):
        assert isinstance(is_sparse(benchmark("traffic")), bool)


class TestComplexity:
    def test_gate_equivalent_power_formula(self):
        p = gate_equivalent_power(100, energy_gate=1.0, c_load=2.0,
                                  activity=0.5, vdd=1.0, freq=1.0)
        assert p == pytest.approx(100 * (1.0 + 1.0) * 0.5)

    def test_linear_measure_simple(self):
        # f = x0 (n=2): single essential prime of 1 literal covering
        # both on-set minterms -> measure = 1 * (2/4).
        assert linear_measure(2, [1, 3]) == pytest.approx(0.5)

    def test_linear_measure_empty(self):
        assert linear_measure(3, []) == 0.0

    def test_area_complexity_symmetry(self):
        # XOR: on and off sets are symmetric.
        c = area_complexity(2, [1, 2])
        c_complement = area_complexity(2, [0, 3])
        assert c == pytest.approx(c_complement)

    def test_complexity_orders_area(self):
        """More complex functions (by the linear measure) need more
        gates after synthesis, and the exponential fit tracks it."""
        import random as _r

        from repro.logic.synthesis import synthesize_function

        rng = _r.Random(7)
        samples = []
        for k in range(10):
            density = rng.choice([0.2, 0.35, 0.5, 0.65, 0.8])
            onset = [m for m in range(16) if rng.random() < density]
            if not onset or len(onset) == 16:
                continue
            comp = area_complexity(4, onset)
            area = synthesize_function(4, onset).area()
            samples.append((comp, area))
        model = nemani_najm_area_model(samples)
        assert model.b > 0  # area grows with complexity
        # Fitted curve within a factor ~2.5 on average.
        ratios = [model.predict(c) / a for c, a in samples]
        assert 0.3 < sum(ratios) / len(ratios) < 3.0

    def test_landman_rabaey_fit(self):
        stgs = ["traffic", "waiter", "dk_like", "arbiter", "handshake",
                "seq101"]
        samples = [landman_rabaey_features(benchmark(n),
                                           binary_encoding(benchmark(n)),
                                           cycles=150)
                   for n in stgs]
        model = fit_landman_rabaey(samples)
        errors = []
        for s in samples:
            pred = model.predict(s["n_in"], s["n_out"], s["e_in"],
                                 s["e_out"], s["n_minterms"])
            errors.append(abs(pred - s["measured_power"])
                          / s["measured_power"])
        assert sum(errors) / len(errors) < 0.6


class TestProbabilistic:
    def test_monte_carlo_converges_to_reference(self):
        circuit = ripple_carry_adder(4)
        result = monte_carlo_power(circuit, batch_size=64, seed=5,
                                   relative_precision=0.04)
        vectors = random_vectors(circuit.inputs, 4000, seed=99)
        reference = collect_activity(circuit, vectors).average_power()
        assert result.power == pytest.approx(reference, rel=0.1)
        assert result.batches >= 4

    def test_transition_density_inputs_preserved(self):
        circuit = parity_tree(3)
        d = transition_density(circuit, {"x0": 0.2, "x1": 0.3, "x2": 0.4})
        assert d["x0"] == 0.2

    def test_density_xor_adds(self):
        # For XOR, P(boolean difference)=1 for both inputs:
        # D(y) = D(a) + D(b).
        from repro.logic.netlist import Circuit

        c = Circuit()
        a, b = c.add_inputs(["a", "b"])
        y = c.add_gate("XOR2", [a, b])
        c.add_output(y)
        d = transition_density(c, {"a": 0.25, "b": 0.5})
        assert d[y] == pytest.approx(0.75)

    def test_density_and_gate(self):
        # AND: P(dy/da) = P(b=1) = 0.5.
        from repro.logic.netlist import Circuit

        c = Circuit()
        a, b = c.add_inputs(["a", "b"])
        y = c.add_gate("AND2", [a, b])
        c.add_output(y)
        d = transition_density(c, {"a": 0.5, "b": 0.5})
        assert d[y] == pytest.approx(0.5)

    def test_density_power_close_to_simulated(self):
        circuit = ripple_carry_adder(3)
        est = density_power_estimate(circuit)
        vectors = random_vectors(circuit.inputs, 3000, seed=6)
        ref = collect_activity(circuit, vectors).average_power()
        # Density estimates ignore glitch filtering/correlation;
        # expect same order of magnitude.
        assert 0.3 * ref < est < 3.0 * ref
