"""Tests for the gate library, netlist, and simulators."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic import Circuit, EventSimulator, collect_activity, simulate
from repro.logic.gates import LIBRARY, gate_spec, wire_capacitance
from repro.logic.simulate import evaluate, output_trace, random_vectors
from repro.logic.generators import (
    array_multiplier,
    chained_adder_tree,
    counter,
    equality_comparator,
    magnitude_comparator,
    parity_tree,
    random_logic,
    ripple_carry_adder,
    shift_register,
)


def _word(values, prefix, width):
    return sum(values[f"{prefix}{i}"] << i for i in range(width))


def _vector(prefix_values):
    """{'a': (value, width), ...} -> flat input dict."""
    vec = {}
    for prefix, (value, width) in prefix_values.items():
        for i in range(width):
            vec[f"{prefix}{i}"] = (value >> i) & 1
    return vec


class TestGateLibrary:
    def test_all_specs_evaluate(self):
        for name, spec in LIBRARY.items():
            for bits in itertools.product([0, 1], repeat=spec.n_inputs):
                assert spec.evaluate(bits) in (0, 1)

    def test_known_functions(self):
        assert gate_spec("NAND2").evaluate((1, 1)) == 0
        assert gate_spec("NAND2").evaluate((0, 1)) == 1
        assert gate_spec("XOR3").evaluate((1, 1, 1)) == 1
        assert gate_spec("MUX2").evaluate((0, 1, 1)) == 1
        assert gate_spec("MUX2").evaluate((0, 1, 0)) == 0
        assert gate_spec("AOI21").evaluate((1, 1, 0)) == 0
        assert gate_spec("AOI21").evaluate((0, 0, 0)) == 1

    def test_unknown_gate(self):
        with pytest.raises(KeyError):
            gate_spec("FROB3")

    def test_arity_check(self):
        with pytest.raises(ValueError):
            gate_spec("AND2").evaluate((1, 1, 1))

    def test_wire_cap_monotone(self):
        assert wire_capacitance(0) == 0.0
        assert wire_capacitance(4) > wire_capacitance(1) > 0


class TestCircuitStructure:
    def test_duplicate_driver_rejected(self):
        c = Circuit()
        c.add_input("a")
        with pytest.raises(ValueError):
            c.add_input("a")

    def test_gate_arity_checked(self):
        c = Circuit()
        c.add_input("a")
        with pytest.raises(ValueError):
            c.add_gate("AND2", ["a"])

    def test_topological_order(self):
        c = Circuit()
        a, b = c.add_inputs(["a", "b"])
        n1 = c.add_gate("AND2", [a, b])
        n2 = c.add_gate("INV", [n1])
        order = [g.output for g in c.topological_gates()]
        assert order.index(n1) < order.index(n2)

    def test_cycle_detected(self):
        c = Circuit()
        c.add_input("a")
        # g1 depends on g2's output and vice versa.
        c.add_gate("AND2", ["a", "n2"], output="n1")
        c.add_gate("AND2", ["a", "n1"], output="n2")
        with pytest.raises(ValueError):
            c.topological_gates()

    def test_depth(self):
        c = ripple_carry_adder(4)
        assert c.depth() >= 4  # carry chain dominates

    def test_stats_and_area(self):
        c = equality_comparator(4)
        stats = c.stats()
        assert stats["gates"] == c.gate_count()
        assert stats["area"] > 0
        assert stats["total_capacitance"] > 0

    def test_clone_independent(self):
        c = parity_tree(4)
        d = c.clone()
        d.add_input("extra")
        assert "extra" not in c.inputs
        assert [g.output for g in d.gates] == [g.output for g in c.gates]


class TestFunctionalSimulation:
    @pytest.mark.parametrize("width", [1, 2, 4, 6])
    def test_adder_correct(self, width):
        circuit = ripple_carry_adder(width)
        rng = random.Random(1)
        for _ in range(20):
            a = rng.randrange(1 << width)
            b = rng.randrange(1 << width)
            values = evaluate(circuit, _vector({"a": (a, width),
                                                "b": (b, width)}))
            total = _word(values, "s", width) + (values["cout"] << width)
            assert total == a + b

    @pytest.mark.parametrize("width", [1, 2, 3, 4])
    def test_multiplier_correct(self, width):
        circuit = array_multiplier(width)
        for a in range(1 << width):
            for b in range(1 << width):
                values = evaluate(circuit, _vector({"a": (a, width),
                                                    "b": (b, width)}))
                assert _word(values, "p", 2 * width) == a * b

    def test_equality_comparator(self):
        circuit = equality_comparator(3)
        for a in range(8):
            for b in range(8):
                values = evaluate(circuit, _vector({"a": (a, 3),
                                                    "b": (b, 3)}))
                assert values["eq"] == int(a == b)

    def test_magnitude_comparator(self):
        circuit = magnitude_comparator(3)
        for a in range(8):
            for b in range(8):
                values = evaluate(circuit, _vector({"a": (a, 3),
                                                    "b": (b, 3)}))
                assert values["gt"] == int(a > b)

    def test_parity(self):
        circuit = parity_tree(5)
        for m in range(32):
            values = evaluate(circuit, {f"x{i}": (m >> i) & 1
                                        for i in range(5)})
            assert values["parity"] == bin(m).count("1") % 2

    def test_counter_counts(self):
        circuit = counter(4)
        vectors = [{"en": 1}] * 10
        trace = simulate(circuit, vectors)
        for t, values in enumerate(trace):
            assert _word(values, "q", 4) == t % 16

    def test_counter_hold(self):
        circuit = counter(4)
        trace = simulate(circuit, [{"en": 1}, {"en": 0}, {"en": 0},
                                   {"en": 1}])
        assert _word(trace[-1], "q", 4) == 1

    def test_shift_register(self):
        circuit = shift_register(3)
        bits = [1, 0, 1, 1, 0]
        trace = simulate(circuit, [{"din": b} for b in bits])
        assert trace[-1]["q0"] == bits[-2]
        assert trace[-1]["q2"] == bits[-4]

    def test_output_trace_shape(self):
        circuit = parity_tree(3)
        vecs = random_vectors(circuit.inputs, 5, seed=0)
        outs = output_trace(circuit, vecs)
        assert len(outs) == 5
        assert set(outs[0]) == {"parity"}


class TestActivityCollection:
    def test_toggle_counting(self):
        circuit = parity_tree(2)
        vecs = [{"x0": 0, "x1": 0}, {"x0": 1, "x1": 0}, {"x0": 1, "x1": 1}]
        report = collect_activity(circuit, vecs)
        assert report.toggles["x0"] == 1
        assert report.toggles["x1"] == 1
        assert report.activity("x0") == pytest.approx(0.5)
        assert report.switched_capacitance > 0

    def test_probability(self):
        circuit = parity_tree(2)
        vecs = [{"x0": 1, "x1": 0}] * 4
        report = collect_activity(circuit, vecs)
        assert report.probability("x0") == 1.0
        assert report.probability("x1") == 0.0

    def test_constant_inputs_no_power(self):
        circuit = ripple_carry_adder(4)
        vecs = [_vector({"a": (5, 4), "b": (3, 4)})] * 10
        report = collect_activity(circuit, vecs)
        assert report.switched_capacitance == 0.0
        assert report.average_power() == 0.0

    def test_power_scales_with_vdd(self):
        circuit = ripple_carry_adder(4)
        vecs = random_vectors(circuit.inputs, 50, seed=3)
        report = collect_activity(circuit, vecs)
        assert report.average_power(vdd=2.0) == pytest.approx(
            4.0 * report.average_power(vdd=1.0))

    def test_sequential_clock_power(self):
        circuit = counter(4)
        report = collect_activity(circuit, [{"en": 0}] * 10)
        # Even idle, the clock tree burns power.
        assert report.average_power() > 0


class TestEventSimulation:
    def test_settles_to_functional_values(self):
        circuit = ripple_carry_adder(4)
        sim = EventSimulator(circuit)
        rng = random.Random(7)
        state = None
        for _ in range(10):
            vec = _vector({"a": (rng.randrange(16), 4),
                           "b": (rng.randrange(16), 4)})
            settled = sim.step(vec)
            reference = evaluate(circuit, vec)
            for net, value in reference.items():
                assert settled[net] == value

    def test_glitches_exceed_functional_toggles(self):
        # A deep adder chain glitches under random stimulus.
        circuit = chained_adder_tree(4, 3)
        vecs = random_vectors(circuit.inputs, 60, seed=11)
        timed = EventSimulator(circuit).run(vecs)
        functional = collect_activity(circuit, vecs)
        assert timed.switched_capacitance >= functional.switched_capacitance
        # Strictly greater in practice:
        assert timed.switched_capacitance > 1.01 * \
            functional.switched_capacitance

    def test_glitch_report_nonnegative(self):
        circuit = chained_adder_tree(3, 2)
        vecs = random_vectors(circuit.inputs, 30, seed=5)
        report = EventSimulator(circuit).glitch_report(vecs)
        assert all(v >= 0 for v in report.values())
        assert any(v > 0 for v in report.values())

    def test_sequential_event_sim(self):
        circuit = counter(3)
        sim = EventSimulator(circuit)
        for t in range(1, 9):
            settled = sim.step({"en": 1})
            assert _word(settled, "q", 3) == (t - 1) % 8


class TestProperties:
    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_random_logic_simulates(self, seed):
        circuit = random_logic(5, 15, 3, seed=seed)
        vecs = random_vectors(circuit.inputs, 5, seed=seed)
        trace = simulate(circuit, vecs)
        assert all(set(v) >= set(circuit.outputs) for v in trace)

    @given(st.integers(1, 5), st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_event_sim_agrees_with_functional(self, width, seed):
        circuit = random_logic(width + 2, 10, 2, seed=seed)
        vecs = random_vectors(circuit.inputs, 8, seed=seed)
        sim = EventSimulator(circuit)
        for vec in vecs:
            settled = sim.step(vec)
            reference = evaluate(circuit, vec)
            assert all(settled[n] == reference[n] for n in circuit.outputs)
