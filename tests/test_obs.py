"""Observability core: spans, metrics, export schema, concurrency."""

import json
import threading

import pytest

from repro import obs
from repro.obs import trace
from repro.obs.metrics import Histogram, MetricsRegistry


@pytest.fixture(autouse=True)
def clean_obs():
    """Every test starts disabled and empty, and leaves no residue."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class TestSpans:
    def test_nesting_builds_a_tree(self):
        obs.enable()
        with obs.span("outer", circuit="adder") as outer:
            with obs.span("inner") as inner:
                inner.add("work", 3)
            with obs.span("inner2"):
                pass
        roots = obs.finished_spans()
        assert [r.name for r in roots] == ["outer"]
        assert [c.name for c in roots[0].children] == ["inner", "inner2"]
        assert roots[0].attributes["circuit"] == "adder"
        assert roots[0].children[0].counters["work"] == 3
        assert obs.span_names() == ["outer", "outer.inner",
                                    "outer.inner2"]

    def test_durations_measured(self):
        obs.enable()
        with obs.span("timed"):
            pass
        (root,) = obs.finished_spans()
        assert root.duration >= 0.0
        assert root.start > 0.0

    def test_exception_safety(self):
        obs.enable()
        with pytest.raises(ValueError, match="boom"):
            with obs.span("outer"):
                with obs.span("failing"):
                    raise ValueError("boom")
        (root,) = obs.finished_spans()
        failing = root.children[0]
        assert failing.duration >= 0.0
        assert "ValueError" in failing.attributes["error"]
        # The stack unwound fully: a new span is again a root.
        with obs.span("after"):
            pass
        assert [r.name for r in obs.finished_spans()] == ["outer",
                                                          "after"]

    def test_disabled_is_noop_singleton(self):
        assert not obs.enabled()
        sp = obs.span("anything", x=1)
        assert sp is obs.NULL_SPAN
        with sp as inner:
            inner.add("c")
            inner.set("k", "v")
        assert obs.finished_spans() == []

    def test_disabled_exceptions_propagate(self):
        with pytest.raises(RuntimeError):
            with obs.span("nope"):
                raise RuntimeError("still raised")

    def test_threads_build_independent_trees(self):
        obs.enable()
        barrier = threading.Barrier(4)

        def worker(i):
            barrier.wait()
            with obs.span(f"t{i}"):
                with obs.span("child"):
                    pass

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        roots = obs.finished_spans()
        assert sorted(r.name for r in roots) == ["t0", "t1", "t2", "t3"]
        assert all(len(r.children) == 1 for r in roots)


class TestMetrics:
    def test_counters_gauges_histograms(self):
        obs.enable()
        obs.inc("c", 2)
        obs.inc("c")
        obs.gauge("g", 7.5)
        obs.observe("h", 1.0)
        obs.observe("h", 3.0)
        snap = obs.registry.snapshot()
        assert snap["counters"]["c"] == 3
        assert snap["gauges"]["g"] == 7.5
        assert snap["histograms"]["h"]["count"] == 2
        assert snap["histograms"]["h"]["mean"] == 2.0

    def test_disabled_mutators_are_noops(self):
        obs.inc("c")
        obs.gauge("g", 1)
        obs.observe("h", 1)
        snap = obs.registry.snapshot()
        assert snap == {"counters": {}, "gauges": {},
                        "histograms": {}}

    def test_histogram_buckets_and_extremes(self):
        h = Histogram()
        for v in (0.5, 1.0, 2.0, 0.0, -1.0):
            h.observe(v)
        d = h.to_dict()
        assert d["count"] == 5
        assert d["min"] == -1.0 and d["max"] == 2.0
        assert d["buckets"]["-inf"] == 2      # 0.0 and -1.0
        assert sum(d["buckets"].values()) == 5

    def test_thread_safety_of_registry(self):
        obs.enable()
        reg = MetricsRegistry()
        n, k = 8, 2000

        def worker():
            for _ in range(k):
                reg.inc("hits")
                reg.observe("lat", 1.0)

        threads = [threading.Thread(target=worker) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("hits") == n * k
        assert reg.histogram("lat").count == n * k


class TestExport:
    def test_round_trip(self, tmp_path):
        obs.enable()
        with obs.span("root", kind="test") as sp:
            sp.add("items", 5)
        obs.inc("counter", 9)
        path = tmp_path / "telemetry.json"
        written = obs.write_export(str(path), seed=42)

        loaded = obs.load_export(str(path))
        assert loaded == json.loads(json.dumps(written))
        assert loaded["schema"] == obs.SCHEMA
        assert loaded["manifest"]["seed"] == 42
        assert loaded["manifest"]["package"] == "repro"
        assert loaded["metrics"]["counters"]["counter"] == 9
        (root,) = loaded["spans"]
        assert root["name"] == "root"
        assert root["attributes"] == {"kind": "test"}
        assert root["counters"] == {"items": 5}

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "something/else"}))
        with pytest.raises(ValueError, match="telemetry export"):
            obs.load_export(str(path))
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(ValueError):
            obs.load_export(str(path))

    def test_manifest_contents(self):
        m = obs.run_manifest(seed=7, extra={"note": "x"})
        assert m["seed"] == 7
        assert m["note"] == "x"
        assert m["version"]
        assert m["python"].count(".") == 2


class TestInstrumentationFlows:
    """Spans actually flow from the engines named in the issue."""

    def test_fastsim_emits_spans_and_counters(self):
        from repro import store as artifact_store
        from repro.logic.fastsim import collect_activity
        from repro.logic.generators import ripple_carry_adder
        from repro.logic.simulate import random_vectors

        obs.enable()
        circuit = ripple_carry_adder(3)
        circuit.invalidate()
        vectors = random_vectors(circuit.inputs, 32, seed=0)
        # An empty plan store forces the compile path (a warm store
        # would emit fastsim.rehydrate instead).
        prev = artifact_store.set_store(
            artifact_store.ArtifactStore(root=None))
        try:
            collect_activity(circuit, vectors)
        finally:
            artifact_store.set_store(prev)
        names = obs.span_names()
        assert "fastsim.collect_activity" in names
        assert "fastsim.collect_activity.fastsim.compile" in names
        assert obs.registry.counter("fastsim.vectors") == 32

    def test_eventsim_counts_events_and_glitches(self):
        from repro.logic.eventsim import EventSimulator
        from repro.logic.generators import ripple_carry_adder
        from repro.logic.simulate import random_vectors

        obs.enable()
        circuit = ripple_carry_adder(3)
        sim = EventSimulator(circuit)
        sim.run(random_vectors(circuit.inputs, 40, seed=1))
        assert "eventsim.run" in obs.span_names()
        assert obs.registry.counter("eventsim.events") == sim.events
        assert sim.events > 0
        assert sim.glitches >= 0

    def test_bdd_stats_bridge_to_gauges(self):
        from repro.bdd.manager import BddManager

        obs.enable()
        manager = BddManager()
        a, b = manager.var("a"), manager.var("b")
        _ = (a & b) | ~a
        stats = manager.stats()
        gauges = obs.registry.snapshot()["gauges"]
        for key, value in stats.items():
            assert gauges[f"bdd.{key}"] == value

    def test_estimator_spans(self):
        from repro import PowerEstimator
        from repro.logic.generators import ripple_carry_adder
        from repro.logic.simulate import random_vectors

        obs.enable()
        circuit = ripple_carry_adder(3)
        vectors = random_vectors(circuit.inputs, 16, seed=2)
        PowerEstimator().gate(circuit, vectors)
        names = obs.span_names()
        assert any(n.startswith("estimator.gate") for n in names)
        assert obs.registry.counter("estimator.calls.gate") == 1

    def test_schedule_spans(self):
        from repro.cdfg.graph import Cdfg
        from repro.cdfg.schedule import list_schedule

        obs.enable()
        cdfg = Cdfg("toy")
        a = cdfg.add_input("a")
        b = cdfg.add_input("b")
        cdfg.add_op("add", a, b)
        list_schedule(cdfg, {"add": 1})
        assert "schedule.list" in obs.span_names()

    def test_disabled_engines_emit_nothing(self):
        from repro.logic.fastsim import collect_activity
        from repro.logic.generators import ripple_carry_adder
        from repro.logic.simulate import random_vectors

        assert not obs.enabled()
        circuit = ripple_carry_adder(3)
        collect_activity(circuit,
                         random_vectors(circuit.inputs, 16, seed=0))
        assert obs.finished_spans() == []
        assert obs.registry.snapshot()["counters"] == {}


class TestEnvActivation:
    def test_env_export_at_exit(self, tmp_path):
        import subprocess
        import sys
        from pathlib import Path

        out = tmp_path / "tele.json"
        src = Path(__file__).resolve().parent.parent / "src"
        code = (
            "from repro import obs\n"
            "assert obs.enabled()\n"
            "with obs.span('from-env'):\n"
            "    obs.inc('ticks')\n"
        )
        env = {"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin",
               "REPRO_OBS_EXPORT": str(out)}
        subprocess.run([sys.executable, "-c", code], check=True, env=env)
        state = obs.load_export(str(out))
        assert [s["name"] for s in state["spans"]] == ["from-env"]
        assert state["metrics"]["counters"]["ticks"] == 1
