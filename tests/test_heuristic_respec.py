"""Tests for the heuristic minimizer and controller respecification."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic import Circuit
from repro.logic.simulate import collect_activity, random_vectors
from repro.optimization.respecification import (
    control_inputs,
    evaluate_respecification,
    observability_conditions,
    respecify_controls,
)
from repro.twolevel.cubes import Cover, Cube
from repro.twolevel.heuristic import (
    complement_cubes,
    expand_cube,
    irredundant,
    minimize_heuristic,
)
from repro.twolevel.quine_mccluskey import minimize


class TestComplement:
    @given(st.sets(st.integers(0, 63)))
    @settings(max_examples=40, deadline=None)
    def test_complement_exact(self, onset):
        onset = sorted(onset)
        cubes = complement_cubes(6, onset)
        covered = set()
        for cube in cubes:
            covered.update(cube.minterms())
        assert covered == set(range(64)) - set(onset)


class TestExpand:
    def test_expand_against_offset(self):
        # f = m(3) with off-set {0}: can expand to 11 -> -1 or 1-.
        offset = [Cube.minterm(2, 0)]
        grown = expand_cube(Cube.minterm(2, 3), offset)
        assert grown.literals() == 1
        assert not grown.covers_minterm(0)

    def test_expand_blocked(self):
        offset = [Cube.minterm(1, 0)]
        cube = Cube.minterm(1, 1)
        assert expand_cube(cube, offset) == cube


class TestIrredundant:
    def test_redundant_cube_removed(self):
        cover = Cover(2, [Cube.from_string("1-"),
                          Cube.minterm(2, 1)])   # second is contained
        slim = irredundant(cover)
        assert len(slim) == 1


class TestHeuristicMinimize:
    @given(st.sets(st.integers(0, 255)), st.sets(st.integers(0, 255)))
    @settings(max_examples=40, deadline=None)
    def test_correctness(self, onset, dc):
        onset = sorted(onset)
        dc = sorted(set(dc) - set(onset))
        cover = minimize_heuristic(8, onset, dc)
        allowed = set(onset) | set(dc)
        for m in onset:
            assert cover.evaluate(m)
        for m in range(256):
            if m not in allowed:
                assert not cover.evaluate(m)

    @given(st.sets(st.integers(0, 63), max_size=40))
    @settings(max_examples=25, deadline=None)
    def test_close_to_exact(self, onset):
        onset = sorted(onset)
        heuristic = minimize_heuristic(6, onset)
        exact = minimize(6, onset)
        # Within 60% of the exact-flavour QM covering in literals.
        assert heuristic.literal_count() <= \
            1.6 * exact.literal_count() + 2

    def test_scales_beyond_qm_comfort(self):
        """A sparse 18-variable function minimizes quickly."""
        rng = random.Random(3)
        onset = sorted(rng.sample(range(1 << 18), 60))
        cover = minimize_heuristic(18, onset)
        for m in onset:
            assert cover.evaluate(m)
        assert len(cover) <= len(onset)

    def test_tautology(self):
        cover = minimize_heuristic(3, list(range(8)))
        assert len(cover) == 1
        assert cover.cubes[0].literals() == 0

    def test_empty(self):
        assert len(minimize_heuristic(4, [])) == 0


def _steering_circuit():
    """Two muxes steered by dedicated control inputs; c1 is
    unobservable whenever c0 selects the bypass path."""
    c = Circuit("steer")
    xs = c.add_inputs(["x0", "x1", "x2", "x3"])
    c0 = c.add_input("c0")
    c1 = c.add_input("c1")
    inner = c.add_gate("MUX2", [xs[0], xs[1], c1])   # observable iff c0=1
    heavy = c.add_gate("XOR2", [inner, xs[2]])
    out = c.add_gate("MUX2", [xs[3], heavy, c0], output="out")
    c.add_output(out)
    return c


class TestRespecification:
    def test_control_detection(self):
        circuit = _steering_circuit()
        controls = control_inputs(circuit)
        assert set(controls) == {"c0", "c1"}

    def test_observability_conditions(self):
        circuit = _steering_circuit()
        conditions = observability_conditions(circuit, ["c1"])
        # c1 matters only when c0 = 1 and x0 != x1.
        cond = conditions["c1"]
        assert cond.restrict({"c0": False}).is_false()

    def test_respecified_trace_equivalent(self):
        circuit = _steering_circuit()
        vectors = random_vectors(circuit.inputs, 300, seed=71)
        report = evaluate_respecification(circuit, vectors)
        assert report.equivalent
        assert report.changed_cycles > 0

    def test_respecification_saves_power(self):
        circuit = _steering_circuit()
        # Controller that toggles c1 wildly while c0 mostly bypasses.
        rng = random.Random(72)
        vectors = []
        for _t in range(400):
            vectors.append({
                "x0": rng.randrange(2), "x1": rng.randrange(2),
                "x2": rng.randrange(2), "x3": rng.randrange(2),
                "c0": int(rng.random() < 0.15),
                "c1": rng.randrange(2),
            })
        report = evaluate_respecification(circuit, vectors)
        assert report.equivalent
        assert report.saving > 0.0

    def test_no_controls_no_change(self):
        from repro.logic.generators import ripple_carry_adder

        circuit = ripple_carry_adder(3)
        vectors = random_vectors(circuit.inputs, 50, seed=73)
        new_vectors, controls, changed = respecify_controls(
            circuit, vectors)
        assert controls == []
        assert changed == 0
        assert new_vectors == list(vectors)


class TestMinimizeWithOffset:
    @given(st.sets(st.integers(0, 255), min_size=1),
           st.sets(st.integers(0, 255)))
    @settings(max_examples=40, deadline=None)
    def test_offset_form_correct(self, onset, offset):
        from repro.twolevel.heuristic import minimize_with_offset

        onset = sorted(onset)
        offset = sorted(set(offset) - set(onset))
        offset_cubes = [Cube.minterm(8, m) for m in offset]
        cover = minimize_with_offset(8, onset, offset_cubes)
        for m in onset:
            assert cover.evaluate(m), "on-set minterm missed"
        for m in offset:
            assert not cover.evaluate(m), "off-set minterm covered"

    def test_no_offset_collapses_to_tautology(self):
        from repro.twolevel.heuristic import minimize_with_offset

        cover = minimize_with_offset(4, [3, 5], [])
        assert len(cover) == 1
        assert cover.cubes[0].literals() == 0
