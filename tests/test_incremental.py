"""Incremental cone-of-influence re-estimation (repro.logic.incremental).

The load-bearing property is *bit-identity*: every report produced
through the cone cache — cached, delta, full-splice, or store-backed —
must equal full resimulation exactly (integer counts and float sums).
The hypothesis suites drive random circuits, random edits, and every
engine through that equality; the remaining tests pin the cache
contracts (stale-mutation safety, store corruption degrading to a
miss, estimator memoization) and the rewired optimization passes.
"""

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import store as artifact_store
from repro.backend.core import numpy_available
from repro.logic import incremental as inc
from repro.logic.fastsim import (
    PackedVectors,
    random_packed_vectors,
    stimulus_fingerprint,
)
from repro.logic.generators import counter, random_logic
from repro.logic.netlist import Circuit
from repro.logic.simulate import collect_activity, random_vectors

requires_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy unavailable")

GATE_TYPES = ["AND2", "OR2", "XOR2", "NAND2", "NOR2", "XNOR2"]


@pytest.fixture(autouse=True)
def _isolated_cache():
    """Every test runs on its own process-wide cone cache."""
    old = inc.set_cone_cache(inc.ConeCache())
    yield
    inc.set_cone_cache(old)


def edit_gates(circuit: Circuit, indices, rng) -> Circuit:
    """Clone and retype the chosen 2-input gates (never a no-op)."""
    variant = circuit.clone(f"{circuit.name}_edit")
    two_in = [g for g in variant.gates if len(g.inputs) == 2
              and g.gate_type in GATE_TYPES]
    for i in indices:
        gate = two_in[i % len(two_in)]
        gate.gate_type = rng.choice(
            [t for t in GATE_TYPES if t != gate.gate_type])
    variant.invalidate()
    return variant


def assert_delta_equals_full(base, variant, vectors, engine=None):
    cache = inc.ConeCache()
    inc.prime(base, vectors, engine=engine, cache=cache)
    got, stats = inc.delta_activity(variant, vectors, engine=engine,
                                    cache=cache)
    want = collect_activity(variant, vectors, engine=engine)
    assert inc.reports_equal(got, want), stats
    return stats


# ----------------------------------------------------------------------
# Hypothesis: bit-identity across random edits / engines / feedback
# ----------------------------------------------------------------------
class TestDeltaBitIdentity:
    @settings(deadline=None, max_examples=25)
    @given(n_gates=st.integers(10, 120), n_cycles=st.integers(1, 80),
           edits=st.lists(st.integers(0, 1000), min_size=1, max_size=4),
           seed=st.integers(0, 10))
    def test_random_edits_combinational(self, n_gates, n_cycles,
                                        edits, seed):
        base = random_logic(6, n_gates, 3, seed=seed)
        vectors = random_packed_vectors(list(base.inputs), n_cycles,
                                        seed=seed + 1)
        variant = edit_gates(base, edits, random.Random(seed))
        assert_delta_equals_full(base, variant, vectors)

    @settings(deadline=None, max_examples=15)
    @given(width=st.integers(2, 6), n_cycles=st.integers(2, 60),
           seed=st.integers(0, 5))
    def test_latch_feedback(self, width, n_cycles, seed):
        """Counters close cones over latch feedback; editing the
        increment logic must still splice exactly."""
        base = counter(width)
        vectors = random_packed_vectors(list(base.inputs), n_cycles,
                                        seed=seed)
        variant = edit_gates(base, [seed], random.Random(seed))
        stats = assert_delta_equals_full(base, variant, vectors)
        assert stats.source in ("delta", "full", "cached")

    @settings(deadline=None, max_examples=10)
    @given(n_gates=st.integers(10, 60), seed=st.integers(0, 5))
    def test_engine_reference(self, n_gates, seed):
        base = random_logic(5, n_gates, 2, seed=seed)
        vectors = random_packed_vectors(list(base.inputs), 24,
                                        seed=seed)
        variant = edit_gates(base, [seed], random.Random(seed))
        assert_delta_equals_full(base, variant, vectors,
                                 engine="reference")

    @requires_numpy
    @settings(deadline=None, max_examples=10)
    @given(n_gates=st.integers(10, 60), seed=st.integers(0, 5))
    def test_engine_numpy(self, n_gates, seed):
        base = random_logic(5, n_gates, 2, seed=seed)
        vectors = random_packed_vectors(list(base.inputs), 200,
                                        seed=seed)
        variant = edit_gates(base, [seed], random.Random(seed))
        assert_delta_equals_full(base, variant, vectors, engine="numpy")

    def test_initial_state_falls_back(self):
        """Explicit latch initial state bypasses the cone cache."""
        base = counter(3)
        vectors = random_vectors(base.inputs, 20, seed=1)
        state = {latch.output: 1 for latch in base.latches}
        report, stats = inc.delta_activity(base, vectors,
                                           initial_state=state)
        assert stats.source == "fallback"
        assert inc.reports_equal(
            report, collect_activity(base, vectors, initial_state=state))

    def test_second_evaluation_is_fully_cached(self):
        base = random_logic(6, 50, 3, seed=2)
        vectors = random_packed_vectors(list(base.inputs), 64, seed=3)
        cache = inc.ConeCache()
        inc.prime(base, vectors, cache=cache)
        report, stats = inc.delta_activity(base, vectors, cache=cache)
        assert stats.source == "cached" and stats.dirty_nets == 0
        assert inc.reports_equal(report,
                                 collect_activity(base, vectors))

    def test_eviction_causes_misses_not_staleness(self):
        base = random_logic(6, 60, 3, seed=4)
        vectors = random_packed_vectors(list(base.inputs), 64, seed=5)
        cache = inc.ConeCache(max_bytes=1024)   # evicts almost all
        inc.prime(base, vectors, cache=cache)
        report, stats = inc.delta_activity(base, vectors, cache=cache)
        assert inc.reports_equal(report,
                                 collect_activity(base, vectors))
        assert stats.source in ("delta", "full")


# ----------------------------------------------------------------------
# Staleness contract
# ----------------------------------------------------------------------
class TestStaleness:
    def test_mutate_invalidate_rekeys(self):
        """In-place mutation + invalidate() must never serve the old
        circuit's cached counts."""
        base = random_logic(5, 40, 2, seed=6)
        vectors = random_packed_vectors(list(base.inputs), 48, seed=7)
        cache = inc.ConeCache()
        inc.prime(base, vectors, cache=cache)

        gate = next(g for g in base.gates if len(g.inputs) == 2
                    and g.gate_type in GATE_TYPES)
        gate.gate_type = ("AND2" if gate.gate_type != "AND2"
                          else "OR2")
        base.invalidate()

        report, _stats = inc.delta_activity(base, vectors, cache=cache)
        assert inc.reports_equal(report,
                                 collect_activity(base, vectors))

    def test_stimulus_change_rekeys(self):
        base = random_logic(5, 40, 2, seed=8)
        v1 = random_packed_vectors(list(base.inputs), 48, seed=1)
        v2 = random_packed_vectors(list(base.inputs), 48, seed=2)
        cache = inc.ConeCache()
        inc.prime(base, v1, cache=cache)
        report, _ = inc.delta_activity(base, v2, cache=cache)
        assert inc.reports_equal(report, collect_activity(base, v2))

    def test_data_only_cones_survive_control_change(self):
        """Changing one input's lanes re-keys only the cones that can
        observe it (the respecification reuse shape)."""
        c = Circuit("split")
        c.add_inputs(["a", "b", "s"])
        c.add_gate("XOR2", ["a", "b"], output="data")
        c.add_gate("AND2", ["data", "s"], output="y")
        c.add_output("y")
        v1 = random_packed_vectors(["a", "b", "s"], 32, seed=1)
        words = dict(v1.words)
        words["s"] ^= (1 << 31) - 1
        v2 = PackedVectors(["a", "b", "s"], 32, words)
        cache = inc.ConeCache()
        inc.prime(c, v1, cache=cache)
        report, stats = inc.delta_activity(c, v2, cache=cache)
        assert inc.reports_equal(report, collect_activity(c, v2))
        assert stats.reused_nets >= 1        # "data" spliced
        assert stats.dirty_nets >= 1         # "y" resimulated


# ----------------------------------------------------------------------
# Store layer (cross-process reuse, corruption)
# ----------------------------------------------------------------------
class TestStoreLayer:
    @pytest.fixture(autouse=True)
    def _store(self, tmp_path):
        old = artifact_store.set_store(None)
        artifact_store.configure(tmp_path)
        yield
        artifact_store.set_store(old)

    def _prime_on_disk(self):
        base = random_logic(5, 40, 2, seed=9)
        vectors = random_packed_vectors(
            list(base.inputs), inc.STORE_MIN_CYCLES, seed=3)
        inc.prime(base, vectors, cache=inc.ConeCache())
        return base, vectors

    def test_cross_process_store_hits(self):
        base, vectors = self._prime_on_disk()
        # Fresh in-process cache + fresh circuit object = a new
        # process; only the disk entries can satisfy the lookups.
        clone = base.clone(base.name)
        report, stats = inc.delta_activity(clone, vectors,
                                           cache=inc.ConeCache())
        assert stats.store_hits > 0
        assert inc.reports_equal(report,
                                 collect_activity(clone, vectors))

    def test_corrupt_store_entry_degrades_to_miss(self, tmp_path):
        base, vectors = self._prime_on_disk()
        for path in tmp_path.glob("*.json"):
            path.write_text("{ not json")
        # Fresh store object: the priming store's in-memory layer
        # would otherwise mask the corrupted disk entries.
        artifact_store.configure(tmp_path)
        report, stats = inc.delta_activity(base, vectors,
                                           cache=inc.ConeCache())
        assert stats.store_hits == 0
        assert inc.reports_equal(report,
                                 collect_activity(base, vectors))
        assert artifact_store.get_store().stats()["corrupt"] > 0

    def test_wrong_schema_payload_is_a_miss(self):
        assert artifact_store.unpack_activity(None) is None
        assert artifact_store.unpack_activity({"schema": "bogus"}) is None
        good = artifact_store.pack_activity(4, ["a"], {"a": 1},
                                            {"a": 2}, 1.5, 0.0)
        decoded = artifact_store.unpack_activity(good)
        assert decoded is not None and decoded["cycles"] == 4
        bad = dict(good)
        bad["toggles"] = [1, 2, 3]          # length mismatch
        assert artifact_store.unpack_activity(bad) is None


# ----------------------------------------------------------------------
# Estimator facade
# ----------------------------------------------------------------------
class TestEstimator:
    def test_estimate_delta_matches_simulation(self):
        from repro.core.estimator import PowerEstimator

        base = random_logic(6, 60, 3, seed=10)
        vectors = random_packed_vectors(list(base.inputs), 64, seed=4)
        variant = edit_gates(base, [2], random.Random(0))
        est = PowerEstimator()
        delta = est.estimate_delta(base, variant, vectors)
        full = est.gate(variant, vectors, technique="simulation")
        assert delta.power == full.power
        assert delta.technique.startswith("simulation-delta/")

    def test_gate_probe_transparent(self):
        from repro.core.estimator import PowerEstimator

        base = random_logic(6, 60, 3, seed=11)
        vectors = random_packed_vectors(list(base.inputs), 64, seed=5)
        est = PowerEstimator()
        cold = est.gate(base, vectors)         # empty cache: plain path
        inc.prime(base, vectors)               # process-wide cache
        warm = est.gate(base, vectors)         # probe serves the report
        assert cold.power == warm.power

    def test_packed_stimulus_memo(self):
        from repro.core.estimator import PowerEstimator
        from repro.rtl.components import make_component
        from repro.rtl.streams import random_stream

        comp = make_component("add", 4)
        streams = [random_stream(4, 40, seed=1),
                   random_stream(4, 40, seed=2)]
        est = PowerEstimator()
        p1 = est.packed_stimulus(comp.input_ports, streams)
        p2 = est.packed_stimulus(comp.input_ports, streams)
        assert p1 is p2                        # memo identity hit

        r1 = est.component(comp, streams)
        # In-place mutation + invalidate(): new fingerprint, repack.
        streams[0].words[0] ^= 0xF
        streams[0].invalidate()
        p3 = est.packed_stimulus(comp.input_ports, streams)
        assert p3 is not p1
        r2 = est.component(comp, streams)
        full = collect_activity(
            comp.circuit,
            p3).average_power()
        assert r2.power == pytest.approx(full)
        assert r1.technique == r2.technique

    def test_wordstream_invalidate_regression(self):
        """append + pop restores the length — only the version bump
        keeps the stale fingerprint from resurfacing."""
        from repro.rtl.streams import random_stream

        stream = random_stream(8, 32, seed=3)
        fp = stream.fingerprint()
        stream.words[0] ^= 0xFF
        stream.invalidate()
        assert stream.fingerprint() != fp

        stream2 = random_stream(8, 32, seed=4)
        fp2 = stream2.fingerprint()
        stream2.words.append(1)
        stream2.invalidate()
        stream2.words.pop()                   # length restored
        assert stream2.fingerprint() == fp2   # content truly unchanged
        stream2.words[1] ^= 1
        stream2.invalidate()
        assert stream2.fingerprint() != fp2


# ----------------------------------------------------------------------
# Rewired optimization passes
# ----------------------------------------------------------------------
class TestPasses:
    def test_clock_gating_incremental_equals_full(self):
        from repro.fsm import benchmark
        from repro.optimization.clock_gating import evaluate_clock_gating

        stg = benchmark("waiter")
        a = evaluate_clock_gating(stg, cycles=150, seed=4,
                                  bit_probs=[0.05, 0.5],
                                  incremental=True, cross_check=True)
        b = evaluate_clock_gating(stg, cycles=150, seed=4,
                                  bit_probs=[0.05, 0.5],
                                  incremental=False)
        assert (a.idle_fraction, a.original_power, a.gated_power,
                a.fa_gates) == (b.idle_fraction, b.original_power,
                                b.gated_power, b.fa_gates)

    def test_precompute_incremental_equals_full(self):
        from repro.logic.generators import magnitude_comparator
        from repro.optimization.precompute import evaluate_precomputation

        circuit = magnitude_comparator(4)
        vectors = random_vectors(circuit.inputs, 120, seed=2)
        a = evaluate_precomputation(circuit, "gt", 2, vectors,
                                    incremental=True, cross_check=True)
        b = evaluate_precomputation(circuit, "gt", 2, vectors,
                                    incremental=False)
        assert (a.coverage, a.original_power, a.precomputed_power) \
            == (b.coverage, b.original_power, b.precomputed_power)

    def test_guarded_incremental_equals_full(self):
        from repro.optimization.guarded_eval import evaluate_guarded

        c = Circuit("g")
        c.add_inputs(["a", "b", "cc", "d", "s"])
        t1 = c.add_gate("AND2", ["a", "b"])
        t2 = c.add_gate("XOR2", [t1, "cc"])
        t3 = c.add_gate("OR2", [t2, "d"])
        c.add_gate("MUX2", [t3, "s", "s"], output="out")
        c.add_output("out")
        vectors = random_vectors(c.inputs, 100, seed=3)
        a = evaluate_guarded(c, vectors, min_cone=2, top_k=2,
                             incremental=True, cross_check=True)
        b = evaluate_guarded(c, vectors, min_cone=2, top_k=2,
                             incremental=False)
        assert a is not None and b is not None
        assert (a.original_power, a.guarded_power, a.equivalent) \
            == (b.original_power, b.guarded_power, b.equivalent)

    def test_respecification_incremental_equals_full(self):
        from repro.optimization.respecification import \
            evaluate_respecification

        c = Circuit("resp")
        c.add_inputs(["d0", "d1", "d2", "d3", "s0", "s1"])
        m0 = c.add_gate("MUX2", ["d0", "d1", "s0"])
        m1 = c.add_gate("MUX2", ["d2", "d3", "s0"])
        c.add_gate("MUX2", [m0, m1, "s1"], output="y")
        c.add_output("y")
        vectors = random_vectors(c.inputs, 90, seed=5)
        a = evaluate_respecification(c, vectors, incremental=True,
                                     cross_check=True)
        b = evaluate_respecification(c, vectors, incremental=False)
        assert (a.changed_cycles, a.original_power,
                a.respecified_power, a.equivalent) \
            == (b.changed_cycles, b.original_power,
                b.respecified_power, b.equivalent)

    def test_timed_activity_cached(self, tmp_path):
        from repro.logic.eventsim import EventSimulator
        from repro.logic.fasttimer import timed_activity_cached

        old = artifact_store.set_store(None)
        artifact_store.configure(tmp_path)
        try:
            circuit = random_logic(5, 30, 2, seed=12)
            vectors = random_packed_vectors(list(circuit.inputs), 300,
                                            seed=6)
            r1 = timed_activity_cached(circuit, vectors)
            r2 = timed_activity_cached(circuit, vectors)
            ref = EventSimulator(circuit).run(vectors)
            assert r1.average_power() == r2.average_power()
            assert r1.average_power() == ref.average_power()
            assert r1.toggles == ref.toggles
            assert r2 is not r1                  # fresh report per hit
            hits = artifact_store.get_store().stats()
            assert hits["mem_hits"] + hits["disk_hits"] > 0
        finally:
            artifact_store.set_store(old)

    def test_retiming_memoized_runs_agree(self, tmp_path):
        from repro.logic.generators import chained_adder_tree
        from repro.optimization.retiming import evaluate_power_retiming

        old = artifact_store.set_store(None)
        artifact_store.configure(tmp_path)
        try:
            circuit = chained_adder_tree(3, 3)
            vectors = random_vectors(circuit.inputs, 400, seed=7)
            r1 = evaluate_power_retiming(circuit, vectors)
            r2 = evaluate_power_retiming(circuit, vectors)
            assert r1 == r2
            assert artifact_store.get_store().stats()["mem_hits"] > 0
        finally:
            artifact_store.set_store(old)
