"""Tests for BLIF I/O and the remaining circuit generators."""

import io
import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.blif import load_blif, read_blif, save_blif, write_blif
from repro.logic.generators import (
    carry_lookahead_adder,
    constant_scaler,
    parity_tree,
    random_logic,
    ripple_carry_adder,
)
from repro.logic.netlist import Circuit
from repro.logic.simulate import evaluate, random_vectors, simulate


def _roundtrip(circuit):
    buffer = io.StringIO()
    write_blif(circuit, buffer)
    buffer.seek(0)
    return read_blif(buffer)


class TestBlif:
    def test_roundtrip_combinational_equivalence(self):
        circuit = ripple_carry_adder(3)
        back = _roundtrip(circuit)
        assert back.inputs == circuit.inputs
        assert back.outputs == circuit.outputs
        for vec in random_vectors(circuit.inputs, 60, seed=1):
            ref = evaluate(circuit, vec)
            got = evaluate(back, vec)
            assert all(got[o] == ref[o] for o in circuit.outputs)

    def test_roundtrip_sequential(self):
        from repro.logic.generators import counter

        circuit = counter(3)
        back = _roundtrip(circuit)
        assert len(back.latches) == 3
        vecs = [{"en": 1}] * 10
        ref = simulate(circuit, vecs)
        got = simulate(back, vecs)
        for r, g in zip(ref, got):
            for o in circuit.outputs:
                assert r[o] == g[o]

    def test_parse_names_block(self):
        text = """
.model tiny
.inputs a b
.outputs y
.names a b y
11 1
0- 1
.end
"""
        circuit = read_blif(io.StringIO(text))
        # y = ab + a'
        for m in range(4):
            vec = {"a": m & 1, "b": (m >> 1) & 1}
            expected = int((vec["a"] and vec["b"]) or not vec["a"])
            assert evaluate(circuit, vec)["y"] == expected

    def test_parse_constants(self):
        text = """
.model consts
.inputs a
.outputs one zero
.names one
1
.names zero
.end
"""
        circuit = read_blif(io.StringIO(text))
        values = evaluate(circuit, {"a": 0})
        assert values["one"] == 1
        assert values["zero"] == 0

    def test_file_io(self, tmp_path):
        circuit = parity_tree(4)
        path = str(tmp_path / "parity.blif")
        save_blif(circuit, path)
        back = load_blif(path)
        for m in range(16):
            vec = {f"x{i}": (m >> i) & 1 for i in range(4)}
            assert evaluate(back, vec)["parity"] == \
                evaluate(circuit, vec)["parity"]

    def test_comments_and_continuations(self):
        text = (".model c  # comment\n"
                ".inputs \\\na b\n"
                ".outputs y\n"
                ".names a b y   # and\n"
                "11 1\n"
                ".end\n")
        circuit = read_blif(io.StringIO(text))
        assert evaluate(circuit, {"a": 1, "b": 1})["y"] == 1
        assert evaluate(circuit, {"a": 1, "b": 0})["y"] == 0

    @given(st.integers(0, 400))
    @settings(max_examples=15, deadline=None)
    def test_roundtrip_random_logic(self, seed):
        circuit = random_logic(4, 12, 2, seed=seed)
        back = _roundtrip(circuit)
        for m in range(16):
            vec = {f"x{i}": (m >> i) & 1 for i in range(4)}
            ref = evaluate(circuit, vec)
            got = evaluate(back, vec)
            assert all(got[o] == ref[o] for o in circuit.outputs)


class TestCarryLookahead:
    @pytest.mark.parametrize("width,block", [(4, 4), (6, 4), (8, 4),
                                             (8, 2), (5, 3)])
    def test_correct(self, width, block):
        circuit = carry_lookahead_adder(width, block=block)
        rng = random.Random(width * 7 + block)
        for _ in range(40):
            a = rng.randrange(1 << width)
            b = rng.randrange(1 << width)
            vec = {f"a{i}": (a >> i) & 1 for i in range(width)}
            vec.update({f"b{i}": (b >> i) & 1 for i in range(width)})
            values = evaluate(circuit, vec)
            total = sum(values[f"s{i}"] << i for i in range(width)) \
                + (values["cout"] << width)
            assert total == a + b

    def test_shallower_than_ripple(self):
        cla = carry_lookahead_adder(8)
        rca = ripple_carry_adder(8)
        assert cla.depth() < rca.depth()
        assert cla.gate_count() > rca.gate_count()

    def test_power_tradeoff_measurable(self):
        """CLA burns more capacitance for its speed (the classic
        area-delay-power triangle the allocation experiments explore)."""
        from repro.logic.simulate import collect_activity

        cla = carry_lookahead_adder(8)
        rca = ripple_carry_adder(8)
        vectors = random_vectors(cla.inputs, 300, seed=9)
        p_cla = collect_activity(cla, vectors).average_power()
        p_rca = collect_activity(rca, vectors).average_power()
        assert p_cla > p_rca


class TestConstantScaler:
    @given(st.integers(0, 63), st.integers(0, 255))
    @settings(max_examples=60, deadline=None)
    def test_scaler_property(self, constant, x):
        circuit = constant_scaler(constant, 8)
        vec = {f"a{i}": (x >> i) & 1 for i in range(8)}
        values = evaluate(circuit, vec)
        got = sum(values[f"p{i}"] << i for i in range(8))
        assert got == (constant * x) & 0xFF
