"""Tests for multistage pipelining and the Table I study helpers."""

import pytest

from repro.core.fir_study import (
    CapacitanceBreakdown,
    _datapath,
    table1_experiment,
)
from repro.logic.generators import chained_adder_tree
from repro.logic.simulate import evaluate, random_vectors, simulate
from repro.optimization.retiming import pipeline_multistage
from repro.rtl.streams import WordStream, correlated_stream


class TestMultistagePipeline:
    def test_two_stage_equivalence(self):
        circuit = chained_adder_tree(3, 3)
        piped, n_regs = pipeline_multistage(circuit, [4, 9])
        assert n_regs > 0
        vectors = random_vectors(circuit.inputs, 25, seed=5)
        trace = simulate(piped, vectors)
        for t in range(2, 25):
            expected = evaluate(circuit, vectors[t - 2])
            for out in circuit.outputs:
                assert trace[t][out] == expected[out]

    def test_depth_shrinks_per_stage(self):
        circuit = chained_adder_tree(3, 3)
        one, _n1 = pipeline_multistage(circuit, [circuit.depth() // 2])
        two, _n2 = pipeline_multistage(
            circuit, [circuit.depth() // 3, 2 * circuit.depth() // 3])
        assert two.depth() <= one.depth()
        assert one.depth() < circuit.depth()

    def test_nonincreasing_thresholds_rejected(self):
        circuit = chained_adder_tree(3, 2)
        with pytest.raises(ValueError):
            pipeline_multistage(circuit, [6, 6])


class TestFirStudy:
    def test_breakdown_rows_sum(self):
        breakdown = CapacitanceBreakdown(10.0, 5.0, 1.0, 4.0)
        assert breakdown.total == pytest.approx(20.0)
        rows = breakdown.rows()
        assert sum(pct for _n, _c, pct in rows) == pytest.approx(100.0)

    def test_datapath_components_positive(self):
        taps = (3, 5)
        streams = [correlated_stream(8, 20 + 2, rho=0.9, seed=1)
                   for _ in taps]
        streams = [WordStream(s.words[:20], 8) for s in streams]
        before = _datapath(taps, 8, streams, use_scalers=False)
        after = _datapath(taps, 8, streams, use_scalers=True)
        for b in (before, after):
            assert b.execution_units > 0
            assert b.registers_clock > 0
            assert b.control_logic > 0
            assert b.interconnect >= 0

    def test_experiment_shape_small(self):
        result = table1_experiment(taps=(3, 5, 7), width=6, cycles=24)
        assert result.total_reduction > 1.0
        assert result.execution_reduction > 1.0
        assert result.after.control_logic > result.before.control_logic
