"""The backend seam: primitive properties and cross-backend identity.

:mod:`repro.backend` promises that the same packed-word kernels run
bit-identically on arbitrary-precision integers (bignum) and numpy
``uint64`` lane arrays.  This file property-checks the primitive set
itself (pack/unpack, shifts, popcounts, extract/blit at unaligned
offsets, widths straddling the 64-bit lane boundary), the engine
dispatch chain (``auto`` selection, ``REPRO_ENGINE``, the
``REPRO_NO_NUMPY`` degradation), and full-engine identity across all
three simulators.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend import core as backend_core
from repro.backend.core import (
    AUTO_NUMPY_MIN_CYCLES,
    AUTO_NUMPY_MIN_SEQ_CYCLES,
    BackendUnavailable,
    auto_select,
    available_backends,
    default_engine,
    get_backend,
    numpy_available,
    resolve_engine,
)
from repro.logic import fastsim, fasttimer
from repro.logic.eventsim import EventSimulator
from repro.logic.generators import counter, random_logic, shift_register
from repro.logic.simulate import collect_activity, random_vectors
from repro.rtl import faststreams
from repro.util.bits import popcount

# Widths straddle the uint64 lane boundary; offsets are deliberately
# unaligned.
word_widths = st.integers(min_value=1, max_value=200)
seeds = st.integers(min_value=0, max_value=2**31)


def backends():
    return [get_backend(name) for name in available_backends()]


def random_word(n, seed):
    return random.Random(seed).getrandbits(n) if n else 0


# ----------------------------------------------------------------------
# Primitive properties (every available backend vs the int model)
# ----------------------------------------------------------------------

@given(word_widths, seeds)
@settings(max_examples=60, deadline=None)
def test_roundtrip_and_queries(n, seed):
    x = random_word(n, seed)
    for be in backends():
        w = be.from_int(x, n)
        assert be.to_int(w) == x
        assert be.popcount(w) == popcount(x)
        assert be.nonzero(w) == bool(x)
        assert be.equal(w, be.from_int(x, n))
        for t in {0, n // 2, n - 1}:
            assert be.get_bit(w, t) == (x >> t) & 1
        assert be.to_int(be.zeros(n)) == 0
        assert be.to_int(be.ones_mask(n)) == (1 << n) - 1


@given(word_widths, seeds, st.integers(0, 1))
@settings(max_examples=60, deadline=None)
def test_time_shifts_and_toggle_count(n, seed, carry):
    x = random_word(n, seed)
    mask = (1 << n) - 1
    for be in backends():
        w = be.from_int(x, n)
        assert be.to_int(be.shift_in_time(w, n, carry)) \
            == ((x << 1) | carry) & mask
        assert be.to_int(be.shift_out_time(w)) == x >> 1
        assert be.toggle_count(w, n, carry) \
            == popcount((x ^ ((x << 1) | carry)) & mask)


@given(word_widths, seeds)
@settings(max_examples=60, deadline=None)
def test_extract_unaligned_and_low_mask(n, seed):
    x = random_word(n, seed)
    rng = random.Random(seed + 1)
    lo = rng.randrange(n)
    c = rng.randrange(1, n - lo + 1)
    for be in backends():
        w = be.from_int(x, n)
        assert be.to_int(be.extract(w, lo, c)) \
            == (x >> lo) & ((1 << c) - 1)
        assert be.to_int(be.low_mask(c, n)) == (1 << c) - 1


@given(st.integers(1, 6), st.integers(1, 300), seeds)
@settings(max_examples=40, deadline=None)
def test_blit_reassembles_chunks(n_chunks, chunk_bits, seed):
    """Aligned blits of masked chunks reassemble the original word."""
    chunk = ((chunk_bits + 63) // 64) * 64   # lane-aligned chunk size
    n = n_chunks * chunk
    x = random_word(n, seed)
    for be in backends():
        dst = be.zeros(n)
        for k in range(n_chunks):
            src = be.from_int((x >> (k * chunk)) & ((1 << chunk) - 1),
                              chunk)
            dst = be.blit(dst, src, k * chunk)
        assert be.to_int(dst) == x


@given(st.integers(1, 8), st.integers(1, 200), seeds,
       st.booleans())
@settings(max_examples=40, deadline=None)
def test_batch_stats_matches_scalar_model(n_words, n, seed, seeded):
    rng = random.Random(seed)
    xs = [rng.getrandbits(n) for _ in range(n_words)]
    carries = [rng.randint(0, 1) for _ in range(n_words)] \
        if seeded else None
    mask = (1 << n) - 1
    for be in backends():
        words = [be.from_int(x, n) for x in xs]
        ones, toggles, last = be.batch_stats(words, n, carries)
        for i, x in enumerate(xs):
            carry = (x & 1) if carries is None else carries[i]
            assert ones[i] == popcount(x)
            assert toggles[i] == popcount((x ^ ((x << 1) | carry)) & mask)
            assert last[i] == (x >> (n - 1)) & 1


def test_int_zero_is_a_valid_word_for_all_backends():
    """The compiled kernels seed unused slots with the int 0; every
    backend must accept it alongside its own words."""
    for be in backends():
        w = be.from_int(0b1011, 70)
        assert be.to_int(w & 0) == 0
        assert be.to_int(w | 0) == 0b1011
        assert be.to_int(w ^ 0) == 0b1011


# ----------------------------------------------------------------------
# Dispatch: get_backend / resolve_engine / auto / env overrides
# ----------------------------------------------------------------------

def test_get_backend_names_and_aliases():
    assert get_backend("fast") is get_backend("bignum")
    assert get_backend(get_backend("bignum")) is get_backend("bignum")
    with pytest.raises(ValueError):
        get_backend("cuda")


def test_resolve_engine_validates_and_defaults():
    assert resolve_engine(None, "fast") == "fast"
    assert resolve_engine("reference", "fast") == "reference"
    with pytest.raises(ValueError):
        resolve_engine("simd", "fast")


def test_auto_select_thresholds():
    long_comb = auto_select(cycles=AUTO_NUMPY_MIN_CYCLES)
    short_comb = auto_select(cycles=AUTO_NUMPY_MIN_CYCLES - 1)
    long_seq = auto_select(cycles=AUTO_NUMPY_MIN_SEQ_CYCLES,
                           sequential=True)
    mid_seq = auto_select(cycles=AUTO_NUMPY_MIN_CYCLES,
                          sequential=True)
    assert short_comb == "fast"
    assert mid_seq == "fast"
    assert auto_select(cycles=None) == "fast"
    if numpy_available():
        assert long_comb == "numpy"
        assert long_seq == "numpy"
    else:
        assert long_comb == "fast"
        assert long_seq == "fast"


def test_default_engine_env_override(monkeypatch):
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    assert default_engine() == "fast"
    monkeypatch.setenv("REPRO_ENGINE", "reference")
    assert default_engine() == "reference"
    monkeypatch.setenv("REPRO_ENGINE", "bogus")
    assert default_engine() == "fast"


def test_no_numpy_degrades_the_whole_chain(monkeypatch):
    monkeypatch.setenv("REPRO_NO_NUMPY", "1")
    assert not numpy_available()
    assert backend_core.numpy_or_none() is None
    assert available_backends() == ["bignum"]
    with pytest.raises(BackendUnavailable):
        get_backend("numpy")
    assert resolve_engine("numpy", "fast") == "fast"
    assert auto_select(cycles=1 << 22) == "fast"
    # Public entry points keep working (and agree with the reference).
    circuit = random_logic(4, 20, 2, seed=9)
    vectors = random_vectors(circuit.inputs, 40, seed=2)
    rep_numpy = collect_activity(circuit, vectors, engine="numpy")
    rep_ref = collect_activity(circuit, vectors, engine="reference")
    assert rep_numpy.toggles == rep_ref.toggles
    report = fasttimer.timed_activity(circuit, vectors, engine="numpy")
    ref = EventSimulator(circuit, engine="reference").run(vectors)
    assert report.toggles == ref.toggles
    assert report.glitches == ref.glitches


# ----------------------------------------------------------------------
# Cross-backend engine identity (all three simulators)
# ----------------------------------------------------------------------

requires_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy unavailable")


def assert_identical(a, b):
    assert a.cycles == b.cycles
    assert a.toggles == b.toggles
    assert a.ones == b.ones
    assert a.switched_capacitance == b.switched_capacitance
    assert a.clock_capacitance == b.clock_capacitance


@requires_numpy
@given(st.integers(2, 8), st.integers(1, 60), seeds,
       st.integers(0, 120))
@settings(max_examples=25, deadline=None)
def test_zero_delay_engines_identical(n_inputs, n_gates, seed, n_cycles):
    circuit = random_logic(n_inputs, n_gates, 3, seed=seed)
    vectors = fastsim.random_packed_vectors(
        list(circuit.inputs), n_cycles, seed=seed + 1)
    ref = collect_activity(circuit, vectors, engine="reference")
    assert_identical(collect_activity(circuit, vectors, engine="fast"),
                     ref)
    assert_identical(collect_activity(circuit, vectors, engine="numpy"),
                     ref)
    assert_identical(
        fastsim.collect_activity_backend(circuit, vectors,
                                         backend="bignum"), ref)
    assert_identical(
        fastsim.collect_activity_backend(circuit, vectors,
                                         backend="numpy"), ref)


@requires_numpy
@pytest.mark.parametrize("make,width,cycles", [
    (counter, 5, 300),           # tight feedback (dispatch falls back)
    (shift_register, 7, 300),    # feed-forward latch chain
])
def test_sequential_engines_identical(make, width, cycles):
    circuit = make(width)
    vectors = fastsim.random_packed_vectors(
        list(circuit.inputs), cycles, seed=11)
    ref = collect_activity(circuit, vectors, engine="reference")
    assert_identical(collect_activity(circuit, vectors, engine="fast"),
                     ref)
    assert_identical(collect_activity(circuit, vectors, engine="numpy"),
                     ref)
    timed_ref = EventSimulator(circuit, engine="reference").run(vectors)
    for engine in ("fast", "numpy"):
        timed = EventSimulator(circuit, engine=engine).run(vectors)
        assert_identical(timed, timed_ref)
        assert timed.events == timed_ref.events
        assert timed.glitches == timed_ref.glitches


@requires_numpy
def test_tight_feedback_settle_bail():
    """Lane backends decline tight-feedback settles; the dispatcher
    falls back to bignum and stays bit-identical."""
    circuit = counter(6)
    vectors = fastsim.random_packed_vectors(
        list(circuit.inputs), 4000, seed=3)
    with pytest.raises(BackendUnavailable):
        fastsim.collect_activity_backend(circuit, vectors,
                                         backend="numpy")
    assert_identical(collect_activity(circuit, vectors, engine="numpy"),
                     collect_activity(circuit, vectors, engine="fast"))
    # The timed engine degrades inside timed_batch instead of raising.
    timed = fasttimer.timed_activity(circuit, vectors, engine="numpy")
    assert_identical(timed,
                     fasttimer.timed_activity(circuit, vectors,
                                              engine="fast"))


@requires_numpy
def test_sharded_numpy_matches_serial():
    circuit = shift_register(6)
    vectors = fastsim.random_packed_vectors(
        list(circuit.inputs), 2048, seed=5)
    serial = EventSimulator(circuit, engine="numpy").run(vectors)
    for engine in ("fast", "numpy"):
        sharded = fasttimer.timed_activity(circuit, vectors, workers=2,
                                           engine=engine)
        assert_identical(sharded, serial)
        assert sharded.events == serial.events
        assert sharded.glitches == serial.glitches


@requires_numpy
@given(st.integers(1, 66), st.integers(0, 100), seeds)
@settings(max_examples=30, deadline=None)
def test_stream_kernels_identical(width, length, seed):
    rng = random.Random(seed)
    words = [rng.randrange(1 << width) for _ in range(length)]
    planes = faststreams.pack_planes(words, width)
    assert faststreams.one_counts(planes, backend="numpy") \
        == faststreams.one_counts(planes)
    assert faststreams.toggle_counts(planes, backend="numpy") \
        == faststreams.toggle_counts(planes)
    assert faststreams.transition_count(words, width, backend="numpy") \
        == faststreams.transition_count(words, width)
    other = [rng.randrange(1 << width) for _ in range(length)]
    assert faststreams.cross_hamming(words, other, width,
                                     backend="numpy") \
        == faststreams.cross_hamming(words, other, width)
