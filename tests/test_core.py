"""Tests for the PowerEstimator facade, the design-improvement loop,
and FSM decomposition."""

import pytest

from repro import DesignImprovementLoop, EstimateResult, PowerEstimator
from repro.cdfg.transforms import direct_polynomial, horner_polynomial
from repro.fsm import benchmark
from repro.fsm.decompose import (
    evaluate_decomposition,
    partition_states,
    submachine,
)
from repro.logic.generators import parity_tree, ripple_carry_adder
from repro.logic.simulate import random_vectors
from repro.rtl.components import make_component
from repro.rtl.streams import random_stream
from repro.software import dot_product


class TestPowerEstimator:
    @pytest.fixture(scope="class")
    def estimator(self):
        return PowerEstimator()

    def test_gate_simulation(self, estimator):
        circuit = ripple_carry_adder(4)
        vectors = random_vectors(circuit.inputs, 200, seed=1)
        result = estimator.gate(circuit, vectors)
        assert result.power > 0
        assert result.level == "gate"
        assert result.cost > 0

    def test_gate_event_driven_at_least_zero_delay(self, estimator):
        from repro.logic.generators import chained_adder_tree

        circuit = chained_adder_tree(3, 2)
        vectors = random_vectors(circuit.inputs, 100, seed=2)
        plain = estimator.gate(circuit, vectors, technique="simulation")
        timed = estimator.gate(circuit, vectors, technique="event-driven")
        assert timed.power >= plain.power

    def test_gate_probabilistic_no_vectors_needed(self, estimator):
        circuit = parity_tree(4)
        result = estimator.gate(circuit, technique="probabilistic")
        assert result.power > 0

    def test_gate_unknown_technique(self, estimator):
        with pytest.raises(ValueError):
            estimator.gate(parity_tree(3), technique="psychic")

    def test_entropic_close_to_simulation(self, estimator):
        circuit = ripple_carry_adder(4)
        vectors = random_vectors(circuit.inputs, 400, seed=3)
        sim = estimator.gate(circuit, vectors)
        ent = estimator.entropic(circuit, vectors)
        # High-level estimate: same order of magnitude.
        assert 0.2 * sim.power < ent.power < 5.0 * sim.power

    def test_behavioral_estimates(self, estimator):
        cdfg = horner_polynomial([3, 5, 7], width=8)
        quick = estimator.behavioral(cdfg, technique="quick-synthesis")
        gates = estimator.behavioral(cdfg, technique="gate-equivalents")
        assert quick.power > 0
        assert gates.power > 0
        assert quick.level == "behavioral"

    def test_rtl_estimates(self, estimator):
        component = make_component("add", 4)
        streams = [random_stream(4, 300, seed=4),
                   random_stream(4, 300, seed=5)]
        census = estimator.rtl(component, streams, evaluation="census")
        sampler = estimator.rtl(component, streams, evaluation="sampler",
                                n_samples=2, sample_size=30)
        assert census.power == pytest.approx(sampler.power, rel=0.3)
        assert sampler.cost < census.cost

    def test_software_estimate(self, estimator):
        from repro.estimation.software_power import TiwariModel

        model = TiwariModel.characterize(
            opcodes=["ADD", "MUL", "ADDI", "LD", "ST"], loop_length=100)
        result = estimator.software(dot_product(16), model=model)
        assert result.power > 0
        assert result.level == "software"

    def test_vdd_scaling(self):
        circuit = parity_tree(4)
        vectors = random_vectors(circuit.inputs, 100, seed=6)
        low = PowerEstimator(vdd=1.0).gate(circuit, vectors)
        high = PowerEstimator(vdd=2.0).gate(circuit, vectors)
        assert high.power == pytest.approx(4.0 * low.power)


class TestDesignImprovementLoop:
    def test_loop_chooses_best(self):
        loop = DesignImprovementLoop()

        designs = {"heavy": 10.0, "medium": 5.0, "light": 2.0}

        def evaluator(d):
            return EstimateResult(designs[d], "table", "test")

        chosen = loop.improve(
            "behavioral", "heavy",
            {"to_medium": lambda d: "medium", "to_light": lambda d: "light"},
            evaluator)
        assert chosen == "light"
        assert loop.history[0].chosen == "to_light"
        assert loop.history[0].improvement == pytest.approx(0.8)

    def test_original_kept_if_best(self):
        loop = DesignImprovementLoop()

        def evaluator(d):
            return EstimateResult({"good": 1.0, "bad": 9.0}[d], "t", "l")

        chosen = loop.improve("rtl", "good",
                              {"worsen": lambda d: "bad"}, evaluator)
        assert chosen == "good"
        assert loop.history[0].improvement == 0.0

    def test_polynomial_flow(self):
        """Fig. 4 as a flow decision: Horner wins for degree 2."""
        loop = DesignImprovementLoop()
        estimator = PowerEstimator()

        def evaluator(cdfg):
            return estimator.behavioral(cdfg,
                                        technique="gate-equivalents")

        chosen = loop.improve(
            "behavioral", direct_polynomial([7, 3], width=8),
            {"horner": lambda d: horner_polynomial([7, 3], width=8)},
            evaluator)
        assert loop.history[0].chosen == "horner"
        assert chosen.operation_counts()["mult"] == 1

    def test_total_improvement_compounds(self):
        loop = DesignImprovementLoop()

        def evaluator(d):
            return EstimateResult(d, "t", "l")

        loop.improve("a", 10.0, {"halve": lambda d: d / 2}, evaluator)
        loop.improve("b", 5.0, {"halve": lambda d: d / 2}, evaluator)
        assert loop.total_improvement() == pytest.approx(0.75)

    def test_report_readable(self):
        loop = DesignImprovementLoop()

        def evaluator(d):
            return EstimateResult(d, "t", "l")

        loop.improve("x", 4.0, {"opt": lambda d: 1.0}, evaluator)
        text = loop.report()
        assert "chose 'opt'" in text
        assert "75.0% saved" in text


class TestDecomposition:
    def test_partition_covers_all_states(self):
        stg = benchmark("bbsse_like")
        decomposition = partition_states(stg)
        assert sorted(decomposition.part_a + decomposition.part_b) \
            == sorted(stg.states)
        assert decomposition.part_a and decomposition.part_b

    def test_crossing_probability_bounded(self):
        stg = benchmark("arbiter")
        decomposition = partition_states(stg)
        assert 0.0 <= decomposition.crossing_probability <= 1.0

    def test_submachine_structure(self):
        stg = benchmark("handshake")
        decomposition = partition_states(stg)
        sub = submachine(stg, decomposition.part_a, "subA")
        assert f"subA_WAIT" in sub.states
        assert sub.n_inputs == stg.n_inputs
        # All internal transitions preserved.
        internal = [t for t in stg.transitions
                    if t.src in decomposition.part_a
                    and t.dst in decomposition.part_a]
        kept = [t for t in sub.transitions
                if t.src != "subA_WAIT" and t.dst != "subA_WAIT"]
        assert len(kept) == len(internal)

    def test_report_shutdown_potential(self):
        stg = benchmark("bbsse_like")
        report = evaluate_decomposition(stg)
        assert 0.0 <= report.active_fraction_a <= 1.0
        assert report.shutdown_potential <= 1.0
        # Most cycles should not be handoffs for a sensible partition.
        assert report.handoffs_per_cycle < 0.8


class TestCli:
    def test_info_and_experiments(self, capsys):
        from repro.__main__ import main

        assert main(["info"]) == 0
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out
        assert "bench_table1_fir.py" in out

    def test_unknown_command(self, capsys):
        from repro.__main__ import main

        assert main(["frobnicate"]) == 2
