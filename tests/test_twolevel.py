"""Tests for cubes, covers, and Quine-McCluskey minimization."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.twolevel import (
    Cover,
    Cube,
    essential_primes,
    minimize,
    prime_implicants,
)


class TestCube:
    def test_from_to_string(self):
        cube = Cube.from_string("1-0")
        assert cube.to_string() == "1-0"
        assert cube.literals() == 2
        assert cube.size() == 2

    def test_minterm(self):
        cube = Cube.minterm(3, 5)
        assert cube.to_string() == "101"
        assert list(cube.minterms()) == [5]

    def test_contains(self):
        big = Cube.from_string("1--")
        small = Cube.from_string("1-0")
        assert big.contains(small)
        assert not small.contains(big)

    def test_covers_minterm(self):
        cube = Cube.from_string("-1-")
        assert cube.covers_minterm(0b010)
        assert cube.covers_minterm(0b111)
        assert not cube.covers_minterm(0b101)

    def test_merge_adjacent(self):
        a = Cube.minterm(3, 0b000)
        b = Cube.minterm(3, 0b001)
        merged = a.merge(b)
        assert merged is not None
        assert merged.to_string() == "-00"

    def test_merge_nonadjacent(self):
        a = Cube.minterm(3, 0b000)
        b = Cube.minterm(3, 0b011)
        assert a.merge(b) is None

    def test_merge_different_masks(self):
        a = Cube.from_string("0-0")
        b = Cube.from_string("00-")
        assert a.merge(b) is None

    def test_intersection(self):
        a = Cube.from_string("1--")
        b = Cube.from_string("-0-")
        both = a.intersection(b)
        assert both is not None and both.to_string() == "10-"
        c = Cube.from_string("0--")
        assert a.intersection(c) is None

    def test_minterm_enumeration(self):
        cube = Cube.from_string("-0-")
        assert sorted(cube.minterms()) == [0, 1, 4, 5]  # bit1 must be 0

    def test_bad_value(self):
        with pytest.raises(ValueError):
            Cube(2, 0b01, 0b10)


class TestCover:
    def test_evaluate(self):
        cover = Cover(2, [Cube.from_string("1-"), Cube.from_string("-1")])
        assert cover.evaluate(0b01)
        assert cover.evaluate(0b10)
        assert not cover.evaluate(0b00)

    def test_minterms(self):
        cover = Cover.from_minterms(2, [0, 3])
        assert cover.minterms() == [0, 3]

    def test_width_mismatch(self):
        cover = Cover(2)
        with pytest.raises(ValueError):
            cover.add(Cube.from_string("111"))


class TestQuineMcCluskey:
    def test_primes_xor(self):
        # XOR has no merging: primes are the minterms themselves.
        primes = prime_implicants(2, [1, 2])
        assert sorted(p.to_string() for p in primes) == ["01", "10"]

    def test_primes_and(self):
        primes = prime_implicants(2, [3])
        assert [p.to_string() for p in primes] == ["11"]

    def test_primes_with_dc(self):
        # f = m(1), dc = m(3): prime should grow to x0=1.
        primes = prime_implicants(2, [1], dc=[3])
        assert any(p.to_string() == "1-" for p in primes)

    def test_essential_primes_majority(self):
        # maj(a,b,c): every prime (ab, ac, bc) is essential.
        onset = [3, 5, 6, 7]
        essentials = essential_primes(3, onset)
        assert len(essentials) == 3

    def test_minimize_covers_exactly(self):
        onset = [0, 1, 2, 5, 6, 7]
        cover = minimize(3, onset)
        for m in range(8):
            assert cover.evaluate(m) == (m in onset)

    def test_minimize_tautology(self):
        cover = minimize(2, [0, 1, 2, 3])
        assert len(cover) == 1
        assert cover.cubes[0].literals() == 0

    def test_minimize_empty(self):
        cover = minimize(3, [])
        assert len(cover) == 0

    def test_minimize_with_dc_smaller(self):
        # dc lets the cover collapse to a single cube.
        with_dc = minimize(3, [1, 3], dc=[5, 7])
        without = minimize(3, [1, 3])
        assert with_dc.literal_count() <= without.literal_count()
        # With dc {5,7} usable, f can be just x0.
        assert with_dc.literal_count() == 1

    def test_classic_example(self):
        # Standard 4-var QM example: f = sum m(4,8,10,11,12,15) dc(9,14).
        onset = [4, 8, 10, 11, 12, 15]
        dc = [9, 14]
        cover = minimize(4, onset, dc)
        for m in range(16):
            if m in onset:
                assert cover.evaluate(m)
            elif m not in dc:
                assert not cover.evaluate(m)
        assert len(cover) <= 4


class TestProperties:
    @given(st.sets(st.integers(0, 15)), st.sets(st.integers(0, 15)))
    @settings(max_examples=60, deadline=None)
    def test_minimize_correct_and_prime(self, onset, dc):
        onset = sorted(onset)
        dc = sorted(set(dc) - set(onset))
        cover = minimize(4, onset, dc)
        allowed = set(onset) | set(dc)
        for m in range(16):
            if m in onset:
                assert cover.evaluate(m), "on-set minterm missed"
            elif m not in allowed:
                assert not cover.evaluate(m), "off-set minterm covered"

    @given(st.sets(st.integers(0, 15), min_size=1))
    @settings(max_examples=40, deadline=None)
    def test_primes_are_maximal(self, onset):
        onset = sorted(onset)
        primes = prime_implicants(4, onset)
        onset_set = set(onset)
        for p in primes:
            # Every covered minterm is in the on-set.
            assert all(m in onset_set for m in p.minterms())
            # Dropping any literal would cover an off-set minterm.
            for i in range(4):
                if not (p.care >> i) & 1:
                    continue
                bigger = Cube(4, p.care & ~(1 << i), p.value & ~(1 << i))
                assert any(m not in onset_set for m in bigger.minterms()), \
                    f"prime {p.to_string()} is not maximal"

    @given(st.sets(st.integers(0, 15)))
    @settings(max_examples=40, deadline=None)
    def test_essentials_subset_of_primes(self, onset):
        onset = sorted(onset)
        primes = set(prime_implicants(4, onset))
        for e in essential_primes(4, onset):
            assert e in primes
