"""Tests for the architectural CPU model and stratified sampling."""

import pytest

from repro.estimation.architectural import (
    ArchitecturalModel,
    calibrate,
)
from repro.estimation.probabilistic import (
    monte_carlo_power,
    stratified_monte_carlo,
)
from repro.estimation.software_power import TiwariModel
from repro.logic.generators import chained_adder_tree, \
    ripple_carry_adder
from repro.logic.simulate import collect_activity, random_vectors
from repro.software import Machine, dot_product, random_program


class TestArchitecturalModel:
    @pytest.fixture(scope="class")
    def calibrated(self):
        reference = Machine().run(random_program(2000, seed=7))
        return calibrate(reference)

    def test_calibration_exact_on_reference(self, calibrated):
        reference = Machine().run(random_program(2000, seed=7))
        assert calibrated.estimate(reference) == pytest.approx(
            reference.energy, rel=1e-9)

    def test_generalizes_to_other_workloads(self, calibrated):
        for seed in (11, 12):
            stats = Machine().run(random_program(1200, seed=seed))
            assert calibrated.relative_error(stats) < 0.10, seed

    def test_breakdown_sums_to_estimate(self, calibrated):
        stats = Machine().run(random_program(500, seed=9))
        parts = calibrated.breakdown(stats)
        assert sum(parts.values()) == pytest.approx(
            calibrated.estimate(stats))

    def test_multiplier_heavy_workload_shifts_breakdown(self, calibrated):
        mul_heavy = Machine().run(
            random_program(800, mix={"mul": 0.7, "alu": 0.3}, seed=13))
        alu_heavy = Machine().run(
            random_program(800, mix={"mul": 0.05, "alu": 0.95}, seed=13))
        b_mul = calibrated.breakdown(mul_heavy)
        b_alu = calibrated.breakdown(alu_heavy)
        assert b_mul["multiplier"] > b_alu["multiplier"]
        assert b_alu["alu"] > b_mul["alu"]

    def test_coarser_than_instruction_level(self, calibrated):
        """[5]-style module counts vs the Tiwari model: the
        instruction-level model (with pair terms) is at least as
        accurate on a kernel with strong inter-instruction structure."""
        tiwari = TiwariModel.characterize(
            opcodes=["ADD", "MUL", "ADDI", "LD", "ST", "NOP"],
            loop_length=150)
        machine = Machine()
        machine.load_memory(0, list(range(64)))
        machine.load_memory(1024, list(range(64)))
        stats = machine.run(dot_product(64))
        assert tiwari.relative_error(stats) <= \
            calibrated.relative_error(stats) + 0.02


class TestStratifiedSampling:
    def test_matches_reference(self):
        circuit = ripple_carry_adder(4)
        result = stratified_monte_carlo(circuit, budget=500, seed=1)
        reference = collect_activity(
            circuit, random_vectors(circuit.inputs, 5000, seed=2)
        ).average_power()
        assert result.power == pytest.approx(reference, rel=0.12)
        assert result.vectors_used <= 520

    def test_strata_weights_sum_to_one(self):
        circuit = ripple_carry_adder(3)
        result = stratified_monte_carlo(circuit, budget=200, seed=3)
        assert sum(result.strata_weights) == pytest.approx(1.0)

    def test_energy_grows_with_distance_band(self):
        """More input bits flipping -> more switched energy, which is
        why Hamming distance works as the stratification variable."""
        circuit = chained_adder_tree(3, 2)
        result = stratified_monte_carlo(circuit, budget=600, seed=4)
        assert result.strata_means[0] < result.strata_means[-1]

    def test_variance_reduction_vs_simple_sampling(self):
        """At equal budget, stratified estimates scatter less across
        seeds than simple Monte Carlo batches."""
        import statistics

        circuit = ripple_carry_adder(4)
        stratified = [stratified_monte_carlo(circuit, budget=120,
                                             seed=s).power
                      for s in range(12)]
        simple = []
        for s in range(12):
            vectors = random_vectors(circuit.inputs, 120, seed=100 + s)
            simple.append(collect_activity(circuit,
                                           vectors).average_power())
        assert statistics.pstdev(stratified) < \
            1.2 * statistics.pstdev(simple)
