"""Tests for the learned-macromodel subsystem
(:mod:`repro.estimation.learned`)."""

import json
import math
import tempfile

import numpy as np
import pytest

from repro import obs
from repro import store as artifact_store
from repro.core import PowerEstimator
from repro.estimation.learned import (
    FeatureConfig,
    LearnedMacroModel,
    LearnedModel,
    WindowDataset,
    characterize_circuit,
    characterize_component,
    characterize_population,
    cluster_signals,
    evaluate_component,
    fit_learned,
    holdout_streams,
    load_model,
    model_for,
    save_model,
    toggle_lanes,
    window_features,
    window_slices,
    window_truth,
    windowed_mape,
)
from repro.estimation.learned.cli import main as learn_main
from repro.estimation.macromodel import ridge_lstsq
from repro.logic import fastsim
from repro.logic.generators import ripple_carry_adder
from repro.rtl.components import circuit_cycle_energies, make_component
from repro.serve import run_job
from repro.store import ArtifactStore


# ----------------------------------------------------------------------
# Ridge guard (shared solver)
# ----------------------------------------------------------------------
class TestRidgeLstsq:
    def test_well_conditioned_matches_lstsq(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(30, 4))
        y = a @ [1.0, -2.0, 0.5, 3.0]
        coeffs = ridge_lstsq(a, y)
        assert np.allclose(coeffs, [1.0, -2.0, 0.5, 3.0], atol=1e-8)

    def test_singular_duplicate_columns_finite(self):
        col = np.arange(10.0)
        a = np.column_stack([col, col, np.ones(10)])
        y = 2.0 * col + 1.0
        coeffs = ridge_lstsq(a, y)
        assert np.all(np.isfinite(coeffs))
        assert np.allclose(a @ coeffs, y, atol=1e-3)

    def test_zero_matrix_and_empty(self):
        assert np.all(ridge_lstsq(np.zeros((5, 3)), np.zeros(5)) == 0)
        assert ridge_lstsq(np.zeros((0, 3)), np.zeros(0)).size == 3

    def test_single_sample(self):
        coeffs = ridge_lstsq(np.array([[1.0, 2.0]]), np.array([3.0]))
        assert np.all(np.isfinite(coeffs))

    def test_explicit_l2_shrinks(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=(20, 3))
        y = rng.normal(size=20)
        free = ridge_lstsq(a, y)
        tight = ridge_lstsq(a, y, l2=1e6)
        assert np.linalg.norm(tight) < np.linalg.norm(free)


# ----------------------------------------------------------------------
# Features
# ----------------------------------------------------------------------
class TestFeatures:
    def test_toggle_lanes(self):
        # cycles: 0,1,1,0 -> toggles at transitions 0->1 and 2->3
        lanes = {"a": 0b0110}
        toggles = toggle_lanes(lanes, 4)
        assert toggles["a"] == 0b101

    def test_toggle_lanes_short_trace(self):
        assert toggle_lanes({"a": 1}, 1) == {"a": 0}
        assert toggle_lanes({"a": 1}, 0) == {"a": 0}

    def test_window_slices_edges(self):
        assert window_slices(0, 64) == []
        assert window_slices(10, 64) == [(0, 10)]       # partial
        assert window_slices(128, 64) == [(0, 64), (64, 64)]
        assert window_slices(130, 64) == [(0, 64), (64, 64)]

    def test_cluster_drops_constant_inputs(self):
        config = FeatureConfig(max_signals=4)
        toggles = {"a": 0b1111, "b": 0, "c": 0b1010}
        clusters = cluster_signals(toggles, 4, config)
        assert "b" in clusters.dropped
        assert "b" not in clusters.signals

    def test_cluster_respects_max_signals(self):
        config = FeatureConfig(max_signals=2,
                               cluster_threshold=0.999)
        toggles = {f"s{i}": 1 << i for i in range(6)}
        clusters = cluster_signals(toggles, 8, config)
        assert len(clusters.signals) == 2
        assert set(clusters.assignment) == set(toggles)

    def test_cluster_merges_identical_signals(self):
        config = FeatureConfig(max_signals=8)
        toggles = {"a": 0b110101, "b": 0b110101, "c": 0b001010}
        clusters = cluster_signals(toggles, 6, config)
        assert clusters.assignment["a"] == clusters.assignment["b"]

    def test_window_features_rates(self):
        config = FeatureConfig(window=4, degree=1, structural=False)
        toggles = {"a": 0b1111, "b": 0b0001}
        rows = window_features(toggles, 4, ["a", "b"], config)
        assert rows == [[1.0, 0.25]]


# ----------------------------------------------------------------------
# Characterization
# ----------------------------------------------------------------------
class TestCharacterize:
    def test_deterministic_same_seed(self):
        circuit = ripple_carry_adder(4)
        d1 = characterize_circuit(circuit, cycles=128, seed=5, runs=4)
        d2 = characterize_circuit(circuit, cycles=128, seed=5, runs=4)
        assert d1.rows == d2.rows
        assert d1.targets == d2.targets
        assert [r.seed for r in d1.runs] == [r.seed for r in d2.runs]

    def test_different_seed_differs(self):
        circuit = ripple_carry_adder(4)
        d1 = characterize_circuit(circuit, cycles=128, seed=5, runs=4)
        d3 = characterize_circuit(circuit, cycles=128, seed=6, runs=4)
        assert d1.targets != d3.targets

    def test_windows_align_with_truth(self):
        circuit = ripple_carry_adder(4)
        config = FeatureConfig(window=32)
        dataset = characterize_circuit(circuit, config, cycles=256,
                                       seed=0, runs=2)
        # 2 runs x floor(255/32) windows
        assert len(dataset) == 2 * (255 // 32)
        assert all(t >= 0.0 for t in dataset.targets)

    def test_provenance_lands_in_manifest(self):
        obs.clear_run_records()
        try:
            circuit = ripple_carry_adder(4)
            dataset = characterize_circuit(circuit, cycles=64, seed=9,
                                           runs=2)
            manifest = obs.run_manifest()
            records = manifest.get("records", {})
            assert "learned.characterization" in records
            entry = records["learned.characterization"][-1]
            assert entry["fingerprint"] == circuit.fingerprint()
            assert entry["seed"] == 9
            assert entry["run_seeds"] == [r.seed for r in dataset.runs]
        finally:
            obs.clear_run_records()

    def test_dataset_roundtrip(self):
        component = make_component("add", 4)
        dataset = characterize_component(component, cycles=128,
                                         seed=1, runs=4)
        clone = WindowDataset.from_dict(
            json.loads(json.dumps(dataset.to_dict())))
        assert clone.rows == dataset.rows
        assert clone.targets == dataset.targets
        assert clone.config == dataset.config

    def test_population_serial_matches_parallel(self):
        specs = [{"name": "add4", "component": "add", "width": 4},
                 {"name": "mux4", "component": "mux", "width": 4}]
        serial = characterize_population(specs, cycles=128, seed=3,
                                         runs=2, workers=1)
        parallel = characterize_population(specs, cycles=128, seed=3,
                                           runs=2, workers=2)
        assert [d.targets for d in serial] == \
            [d.targets for d in parallel]
        assert [d.rows for d in serial] == [d.rows for d in parallel]


# ----------------------------------------------------------------------
# Fitting and prediction
# ----------------------------------------------------------------------
class TestFitPredict:
    def test_fit_tracks_truth(self):
        component = make_component("add", 4)
        config = FeatureConfig(window=32)
        dataset = characterize_component(component, config,
                                         cycles=512, seed=0, runs=8)
        model = fit_learned(dataset)
        assert model.report is not None
        assert model.report.cv_mape < 0.5
        vec = fastsim.random_packed_vectors(
            component.circuit.inputs, 512, seed=77)
        predicted = model.predict_power(vec)
        truth = (sum(circuit_cycle_energies(component.circuit, vec))
                 / 511)
        assert abs(predicted - truth) / truth < 0.25

    def test_empty_dataset_zero_model(self):
        dataset = WindowDataset(
            name="empty", fingerprint="x", config=FeatureConfig(),
            signals=[], feature_names=[], rows=[], targets=[])
        model = fit_learned(dataset)
        assert model.coeffs == [0.0]
        vec = fastsim.random_packed_vectors(["a"], 16, seed=0)
        assert model.predict_power(vec) == 0.0

    def test_single_window_dataset(self):
        dataset = WindowDataset(
            name="one", fingerprint="x", config=FeatureConfig(),
            signals=["a"], feature_names=["t:a", "t:a*t:a"],
            rows=[[0.5, 0.25]], targets=[3.0])
        model = fit_learned(dataset)
        assert all(math.isfinite(c) for c in model.coeffs)
        assert model.report.n_windows == 1

    def test_constant_stimulus_intercept_only(self):
        # Register fed a constant: no input toggles, zero power.
        component = make_component("reg", 4)
        from repro.rtl.streams import constant_stream

        training = [[constant_stream(4, 96, 9)] for _ in range(3)]
        adapter = LearnedMacroModel(FeatureConfig(window=16))
        adapter.fit(component, training)
        assert adapter.model is not None
        assert adapter.model.signals == []
        # Intercept-only model: prediction is finite and close to the
        # (tiny) gate-level truth — only the latches' initial
        # transition dissipates.
        stream = [constant_stream(4, 64, 9)]
        predicted = adapter.predict(stream)
        assert math.isfinite(predicted)
        assert 0.0 <= predicted < 0.2

    def test_width1_component(self):
        component = make_component("reg", 1)
        config = FeatureConfig(window=16)
        dataset = characterize_component(component, config,
                                         cycles=128, seed=0, runs=4)
        model = fit_learned(dataset)
        assert all(math.isfinite(c) for c in model.coeffs)

    def test_zero_power_windows_mape(self):
        assert windowed_mape([0.0, 5.0], [0.0, 5.0]) == 0.0
        assert windowed_mape([1.0], [0.0]) == 1.0     # degenerate
        assert windowed_mape([], []) == 0.0

    def test_predict_windows_clip_nonnegative(self):
        model = LearnedModel(
            fingerprint="x", name="m", config=FeatureConfig(
                window=8, structural=False),
            signals=["a"], feature_names=["t:a", "t:a*t:a"],
            coeffs=[-5.0, 1.0, 1.0])
        vec = fastsim.random_packed_vectors(["a"], 64, seed=0)
        assert all(w >= 0.0 for w in model.predict_windows(vec))

    def test_pruning_removes_dead_features(self):
        rng = np.random.default_rng(3)
        x = rng.random(40)
        rows = [[float(v), 0.0] for v in x]     # 2nd column dead
        dataset = WindowDataset(
            name="p", fingerprint="x",
            config=FeatureConfig(structural=False),
            signals=["a"], feature_names=["t:a", "t:b"],
            rows=rows, targets=[2.0 * v + 1.0 for v in x])
        model = fit_learned(dataset)
        assert "t:b" in model.report.pruned
        assert "t:b" not in model.feature_names


# ----------------------------------------------------------------------
# Persistence (ArtifactStore)
# ----------------------------------------------------------------------
class TestPersistence:
    def test_store_roundtrip_bit_identical(self):
        circuit = ripple_carry_adder(5)
        config = FeatureConfig(window=32)
        vec = fastsim.random_packed_vectors(circuit.inputs, 256,
                                            seed=11)
        with tempfile.TemporaryDirectory() as tmp:
            fitted = model_for(circuit, config, cycles=256, seed=2,
                               runs=4, store=ArtifactStore(root=tmp))
            # Fresh store instance over the same directory = the
            # cross-process rehydrate path.
            loaded = load_model(circuit.fingerprint(), config,
                                store=ArtifactStore(root=tmp))
        assert loaded is not None
        assert loaded.coeffs == fitted.coeffs
        assert loaded.predict_power(vec) == fitted.predict_power(vec)
        assert loaded.report.cv_mape == fitted.report.cv_mape

    def test_model_for_cache_hit(self):
        circuit = ripple_carry_adder(4)
        config = FeatureConfig(window=32)
        store = ArtifactStore(root=None)
        m1 = model_for(circuit, config, cycles=128, seed=0, runs=3,
                       store=store)
        m2 = model_for(circuit, config, cycles=128, seed=0, runs=3,
                       store=store)
        assert m2.coeffs == m1.coeffs

    def test_config_key_separates_models(self):
        circuit = ripple_carry_adder(4)
        store = ArtifactStore(root=None)
        a = FeatureConfig(window=32)
        b = FeatureConfig(window=16)
        model_for(circuit, a, cycles=128, seed=0, runs=3, store=store)
        assert load_model(circuit.fingerprint(), b, store=store) \
            is None

    def test_corrupt_payload_degrades_to_miss(self):
        store = ArtifactStore(root=None)
        config = FeatureConfig()
        from repro.estimation.learned.model import _store_kind

        store.put("fp", _store_kind(config), {"schema": "bogus"})
        assert load_model("fp", config, store=store) is None


# ----------------------------------------------------------------------
# Integration: estimator, serve, adapter, evaluate
# ----------------------------------------------------------------------
class TestIntegration:
    def test_estimator_learned_technique(self):
        circuit = ripple_carry_adder(4)
        vec = fastsim.random_packed_vectors(circuit.inputs, 256,
                                            seed=4)
        est = PowerEstimator()
        result = est.gate(circuit, vec, technique="learned")
        truth = est.gate(circuit, vec, technique="simulation")
        assert result.technique == "learned/windowed-ridge"
        assert result.level == "rtl"
        assert result.power == pytest.approx(truth.power, rel=0.35)

    def test_estimator_learned_needs_vectors(self):
        with pytest.raises(ValueError):
            PowerEstimator().gate(ripple_carry_adder(4),
                                  technique="learned")

    def test_estimator_learned_scales_with_vdd_freq(self):
        circuit = ripple_carry_adder(4)
        vec = fastsim.random_packed_vectors(circuit.inputs, 128,
                                            seed=4)
        base = PowerEstimator().gate(circuit, vec,
                                     technique="learned").power
        scaled = PowerEstimator(vdd=2.0, freq=3.0).gate(
            circuit, vec, technique="learned").power
        assert scaled == pytest.approx(12.0 * base)

    def test_serve_run_job_learned(self):
        job = {"circuit": {"generator": "ripple_carry_adder",
                           "params": {"width": 4}},
               "technique": "learned", "cycles": 256, "seed": 3}
        result = run_job(job)
        assert result["ok"], result
        assert result["technique"] == "learned/windowed-ridge"
        assert result["power"] > 0
        # Same job again: the fitted model comes from the store.
        again = run_job(job)
        assert again["power"] == result["power"]

    def test_macromodel_adapter_protocol(self):
        from repro.estimation.macromodel import (
            characterization_streams,
            fit_macromodel,
        )

        component = make_component("add", 4)
        adapter = fit_macromodel(LearnedMacroModel(
            FeatureConfig(window=32)), component, seed=0)
        streams = characterization_streams(component, runs=1,
                                           length=256, seed=42)[0]
        predicted = adapter.predict(streams)
        assert predicted > 0
        assert adapter.error(component, streams) < 1.0
        assert len(adapter.predict_windows(streams)) == 255 // 32

    def test_evaluate_component_shape(self):
        component = make_component("add", 4)
        report = evaluate_component(component, FeatureConfig(),
                                    runs=2, length=256,
                                    train_cycles=256, train_runs=4)
        assert set(report["techniques"]) == \
            {"learned", "dbt", "bitwise", "pfa"}
        assert report["windows"] > 0
        assert isinstance(report["learned_wins"], bool)

    def test_window_truth_matches_energies(self):
        circuit = ripple_carry_adder(4)
        config = FeatureConfig(window=32)
        vec = fastsim.random_packed_vectors(circuit.inputs, 128,
                                            seed=0)
        truth = window_truth(circuit, vec, config)
        energies = circuit_cycle_energies(circuit, vec)
        assert truth[0] == pytest.approx(sum(energies[:32]) / 32)

    def test_holdout_streams_deterministic(self):
        component = make_component("add", 4)
        a = holdout_streams(component, runs=2, length=128)
        b = holdout_streams(component, runs=2, length=128)
        assert [[s.words for s in run] for run in a] == \
            [[s.words for s in run] for run in b]


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_characterize_fit_report_pipeline(self, tmp_path,
                                              capsys, monkeypatch):
        monkeypatch.setenv(artifact_store.ENV_DIR,
                           str(tmp_path / "store"))
        artifact_store.set_store(None)
        try:
            out = tmp_path / "ds.json"
            rc = learn_main(["characterize", "--component", "add8",
                             "--cycles", "128", "--runs", "2",
                             "--workers", "1", "--out", str(out)])
            assert rc == 0
            assert json.loads(out.read_text())["datasets"]

            rc = learn_main(["fit", "--dataset", str(out)])
            assert rc == 0

            rc = learn_main(["report", "--component", "add8"])
            assert rc == 0
            text = capsys.readouterr().out
            assert "cv_mape" in text
            assert "1 stored model(s)" in text
        finally:
            monkeypatch.delenv(artifact_store.ENV_DIR, raising=False)
            artifact_store.set_store(None)

    def test_evaluate_json(self, capsys):
        rc = learn_main(["evaluate", "--component", "mult4",
                         "--cycles", "256", "--runs", "4", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["components"][0]["component"] == "mult4"

    def test_unknown_component_rejected(self):
        with pytest.raises(SystemExit):
            learn_main(["characterize", "--component", "nope"])

    def test_no_subcommand_shows_help(self, capsys):
        assert learn_main([]) == 2
