"""Engine-level tests for the BDD manager overhaul.

Covers what the unit tests in ``test_bdd.py`` don't: recursion-depth
regressions (all core traversals are explicit-stack iterative and must
survive structures far deeper than CPython's default recursion limit),
the fused ``and_exists`` against its compositional definition, sifting
reordering, garbage collection, and the telemetry counters.
"""

import random
import sys
from pathlib import Path

import pytest

from repro.bdd import BddManager
from repro.fsm.symbolic import reachable_states
from repro.logic.bdd_bridge import build_bdds, net_bdds
from repro.logic.generators import equality_comparator, shift_register
from repro.logic.netlist import Circuit

SRC_ROOT = Path(__file__).resolve().parent.parent / "src"

CHAIN_DEPTH = 250


def _gate_chain(depth: int) -> Circuit:
    """A ``depth``-level chain of alternating AND/OR gates, each mixing
    in a fresh primary input — the BDD is a single path ``depth`` nodes
    deep, the worst case for recursive traversals."""
    circuit = Circuit(f"chain{depth}")
    names = [f"x{i}" for i in range(depth)]
    circuit.add_inputs(names)
    net = names[0]
    for i in range(1, depth):
        kind = "AND2" if i % 2 else "OR2"
        net = circuit.add_gate(kind, [net, names[i]])
    circuit.add_output(net)
    return circuit


def _chain_expected(depth: int):
    """(probability, sat_count) of the chain by direct recurrence."""
    prob, count = 0.5, 1
    for i in range(1, depth):
        if i % 2:  # AND with a fresh 0.5 input
            prob *= 0.5
            # x_i must be 1: count unchanged over i+1 variables.
        else:      # OR
            prob = prob + 0.5 - prob * 0.5
            count = count + (1 << i)
    return prob, count


class TestDeepStructures:
    """No traversal may touch sys.setrecursionlimit — these run at the
    interpreter default."""

    def test_no_recursion_limit_tweaks_in_src(self):
        offenders = [p for p in SRC_ROOT.rglob("*.py")
                     if "setrecursionlimit" in p.read_text()]
        assert offenders == []

    def test_deep_chain_probability_and_counts(self):
        assert sys.getrecursionlimit() <= 1000 + 100
        circuit = _gate_chain(CHAIN_DEPTH)
        out = circuit.outputs[0]
        f = net_bdds(circuit)[out]
        exp_prob, exp_count = _chain_expected(CHAIN_DEPTH)
        names = [f"x{i}" for i in range(CHAIN_DEPTH)]
        assert f.probability() == pytest.approx(exp_prob)
        # sat_count over the full chain, exact integers.  The last
        # gate is AND (odd index), so x_{depth-1} is forced: the count
        # over all depth variables equals the recurrence value.
        assert f.sat_count(names) == exp_count
        assert f.node_count() == CHAIN_DEPTH
        assert f.evaluate({n: True for n in names})

    def test_deep_chain_manager_ops(self):
        mgr = BddManager()
        depth = 1200
        names = [f"v{i}" for i in range(depth)]
        f = mgr.var(names[0])
        for i in range(1, depth):
            g = mgr.var(names[i])
            f = (f & g) if i % 2 else (f | g)
        assert f.node_count() == depth
        # Iterative restrict / compose / exists / satisfy on the same
        # deep path.
        mid = names[depth // 2]
        assert f.restrict({mid: True}).node_count() < depth
        assert f.compose(mid, mgr.var(names[0])) is not None
        assert f.exists([mid]).node_count() < depth
        assert f.satisfy_one() is not None
        # satisfy_all on the alternating chain has exponentially many
        # paths; a pure conjunction has exactly one, 1200 levels deep.
        conj = mgr.true
        for name in names:
            conj = conj & mgr.var(name)
        paths = list(conj.satisfy_all())
        assert len(paths) == 1
        assert paths[0] == {n: True for n in names}

    def test_deep_fsm_reachability(self):
        # >= 200 sequential levels: the transition relation and every
        # image iteration walk BDDs deeper than the recursion limit.
        width = 220
        circuit = shift_register(width)
        _mgr, reached, state_vars = reachable_states(circuit, fused=True)
        assert reached.sat_count(state_vars) == 2 ** width


class TestAndExists:
    def test_matches_composition_randomized(self):
        rng = random.Random(7)
        mgr = BddManager()
        names = [f"w{i}" for i in range(8)]
        vs = [mgr.var(n) for n in names]

        def random_fn():
            f = vs[rng.randrange(8)]
            for _ in range(10):
                g = vs[rng.randrange(8)]
                op = rng.randrange(3)
                f = f & g if op == 0 else f | g if op == 1 else f ^ g
                if rng.random() < 0.3:
                    f = ~f
            return f

        for _ in range(60):
            f, g = random_fn(), random_fn()
            q = [n for n in names if rng.random() < 0.4]
            assert f.and_exists(g, q) == (f & g).exists(q)

    def test_cache_is_used(self):
        mgr = BddManager()
        a, b, c = mgr.declare("a", "b", "c")
        f = (a & b) | c
        g = a | (b & c)
        first = f.and_exists(g, ["b"])
        before = mgr.stats()["and_exists_cache_hits"]
        again = f.and_exists(g, ["b"])
        assert again == first
        assert mgr.stats()["and_exists_cache_hits"] > before


class TestReorder:
    def test_sifting_preserves_semantics(self):
        rng = random.Random(3)
        mgr = BddManager()
        names = [f"s{i}" for i in range(8)]
        vs = [mgr.var(n) for n in names]
        fns = []
        for _ in range(5):
            f = vs[rng.randrange(8)]
            for _ in range(12):
                g = vs[rng.randrange(8)]
                f = f & g if rng.random() < 0.5 else f ^ g
            fns.append(f)
        truth = []
        for f in fns:
            rows = []
            for m in range(256):
                env = {n: bool((m >> i) & 1)
                       for i, n in enumerate(names)}
                rows.append(f.evaluate(env))
            truth.append(rows)

        mgr.reorder(method="sifting")

        for f, rows in zip(fns, truth):
            for m in range(256):
                env = {n: bool((m >> i) & 1)
                       for i, n in enumerate(names)}
                assert f.evaluate(env) == rows[m]
        # Canonicity survives: rebuilding a function under the new
        # order hits the same node.
        assert (fns[0] ^ fns[0]).is_false()

    def test_sifting_rescues_grouped_comparator(self):
        width = 8
        mgr = BddManager()
        for i in range(width):
            mgr.var(f"a{i}")
        for i in range(width):
            mgr.var(f"b{i}")
        circuit = equality_comparator(width)
        eq = build_bdds(circuit, mgr, nets=circuit.outputs,
                        order="declare")[circuit.outputs[0]]
        before = eq.node_count()
        saved = mgr.reorder(method="sifting")
        after = eq.node_count()
        assert after < before
        assert saved > 0
        # Equality under an interleaved order is 3 nodes per bit pair.
        assert after <= 6 * width
        assert mgr.stats()["reorders"] == 1
        # Still the equality function.
        env = {f"a{i}": bool(i % 2) for i in range(width)}
        env.update({f"b{i}": bool(i % 2) for i in range(width)})
        assert eq.evaluate(env)
        env["b3"] = not env["b3"]
        assert not eq.evaluate(env)

    def test_unknown_method_rejected(self):
        mgr = BddManager()
        mgr.var("a")
        with pytest.raises(ValueError):
            mgr.reorder(method="genetic")

    def test_auto_reorder_triggers(self):
        mgr = BddManager(auto_reorder=True, auto_reorder_threshold=200)
        for i in range(8):
            mgr.var(f"a{i}")
        for i in range(8):
            mgr.var(f"b{i}")
        circuit = equality_comparator(8)
        eq = build_bdds(circuit, mgr, nets=circuit.outputs,
                        order="declare")[circuit.outputs[0]]
        # Keep operating so a safe-point is crossed after growth.
        probe = eq & mgr.var("a0")
        assert mgr.stats()["reorders"] >= 1
        assert probe == (eq & mgr.var("a0"))


class TestGarbageCollection:
    def test_gc_reclaims_dead_nodes(self):
        mgr = BddManager()
        names = [f"g{i}" for i in range(10)]
        vs = [mgr.var(n) for n in names]
        keep = vs[0] ^ vs[1]
        trash = vs[0]
        for v in vs[1:]:
            trash = trash ^ v
        grown = mgr.size()
        del trash
        reclaimed = mgr.gc()
        assert reclaimed > 0
        assert mgr.size() < grown
        # Survivor still works after compaction remapped its root.
        assert keep.evaluate({"g0": True, "g1": False})
        assert not keep.evaluate({"g0": True, "g1": True})
        assert keep == (mgr.var("g0") ^ mgr.var("g1"))

    def test_gc_noop_when_everything_live(self):
        mgr = BddManager()
        a, b = mgr.declare("a", "b")
        f = a & b
        assert mgr.gc() == 0
        assert f.evaluate({"a": True, "b": True})

    def test_stats_schema(self):
        mgr = BddManager()
        a, b = mgr.declare("a", "b")
        _ = (a & b) | ~a
        stats = mgr.stats()
        expected = {"nodes_total", "nodes_live", "nodes_peak",
                    "variables", "unique_hits", "unique_misses",
                    "ite_cache_size", "ite_cache_hits",
                    "ite_cache_misses", "and_exists_cache_size",
                    "and_exists_cache_hits", "and_exists_cache_misses",
                    "gc_runs", "gc_reclaimed", "reorders", "cache_ages"}
        assert expected <= set(stats)
        assert all(isinstance(v, int) for v in stats.values())
        assert stats["variables"] == 2
        assert stats["nodes_peak"] >= stats["nodes_live"]

    def test_gc_counters_move(self):
        mgr = BddManager()
        a, b = mgr.declare("a", "b")
        tmp = a ^ b
        del tmp
        mgr.gc()
        stats = mgr.stats()
        assert stats["gc_runs"] >= 1
        assert stats["gc_reclaimed"] >= 1
