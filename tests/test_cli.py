"""CLI (`python -m repro`) and bench-orchestrator coverage.

The orchestrator tests drive ``repro bench`` against a scratch bench
directory holding a passing, a failing, and a hanging bench, so the
sweep's graceful-degradation guarantees (timeout kills, one retry,
failures recorded not raised) are exercised in seconds.
"""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.__main__ import main
from repro.obs import runner

SRC = str(Path(__file__).resolve().parent.parent / "src")


class TestBasicCommands:
    def test_default_is_info(self, capsys):
        assert main([]) == 0
        assert "repro" in capsys.readouterr().out

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro.estimation" in out
        assert "repro.obs" in out

    def test_info_json(self, capsys):
        assert main(["info", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["package"] == "repro"
        modules = [s["module"] for s in payload["subsystems"]]
        assert "repro.obs" in modules and "repro.bdd" in modules

    def test_experiments(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "bench_table1_fir.py" in out
        assert "python -m repro bench" in out

    def test_experiments_json(self, capsys):
        assert main(["experiments", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        by_id = {e["id"]: e for e in payload}
        assert by_id["T1"]["bench"] == "bench_table1_fir.py"
        assert by_id["P1"]["kind"] == "perf"
        assert all({"id", "title", "bench", "kind"} <= set(e)
                   for e in payload)

    def test_registry_matches_bench_files(self):
        from repro.experiments import EXPERIMENTS

        bench_dir = Path(__file__).resolve().parent.parent / "benchmarks"
        on_disk = {p.name for p in bench_dir.glob("bench_*.py")}
        registered = {e.bench for e in EXPERIMENTS}
        assert registered == on_disk

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "gate-level simulation" in out
        assert "entropy model" in out

    def test_unknown_command(self, capsys):
        assert main(["frobnicate"]) == 2
        assert "Commands" in capsys.readouterr().out

    def test_unknown_command_subprocess(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "no-such-cmd"],
            env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
        assert proc.returncode == 2
        assert "bench" in proc.stdout


@pytest.fixture
def scratch_benches(tmp_path):
    """A bench dir with one passing, one failing, one hanging bench."""
    bench_dir = tmp_path / "benchmarks"
    bench_dir.mkdir()
    (bench_dir / "bench_pass.py").write_text(textwrap.dedent("""
        from repro import obs

        def test_ok():
            with obs.span("scratch.work"):
                obs.inc("scratch.units", 4)
            assert True
    """))
    (bench_dir / "bench_fail.py").write_text(textwrap.dedent("""
        def test_broken():
            raise RuntimeError("deliberate failure")
    """))
    (bench_dir / "bench_hang.py").write_text(textwrap.dedent("""
        import time

        def test_hangs():
            time.sleep(60)
    """))
    return bench_dir


class TestBenchOrchestrator:
    def test_sweep_degrades_gracefully(self, scratch_benches, capsys):
        rc = main(["bench", "--bench-dir", str(scratch_benches),
                   "--timeout", "6", "--jobs", "2"])
        out = capsys.readouterr().out
        assert rc == 1                       # failures reported via exit
        report_path = scratch_benches.parent / "BENCH_ALL.json"
        report = json.loads(report_path.read_text())

        benches = report["benches"]
        assert set(benches) == {"bench_pass.py", "bench_fail.py",
                                "bench_hang.py"}
        assert benches["bench_pass.py"]["status"] == "ok"
        assert benches["bench_fail.py"]["status"] == "failed"
        assert benches["bench_hang.py"]["status"] == "timeout"
        for entry in benches.values():
            assert entry["status"] in ("ok", "failed", "timeout")

        # One retry for everything that did not pass.
        assert benches["bench_fail.py"]["attempts"] == 2
        assert benches["bench_pass.py"]["attempts"] == 1
        assert benches["bench_fail.py"]["output_tail"]

        # Telemetry harvested from the instrumented worker.
        telemetry = benches["bench_pass.py"]["telemetry"]
        assert "scratch.work" in telemetry["span_roots"]
        assert telemetry["counters"]["scratch.units"] == 4

        summary = report["summary"]
        assert summary == {"total": 3, "ok": 1, "failed": 1,
                           "timeout": 1}
        assert report["manifest"]["version"]
        assert "bench_hang.py" in out

    def test_hang_timeout_is_enforced(self, scratch_benches):
        entry = runner.run_bench(scratch_benches / "bench_hang.py",
                                 timeout=1.5, retries=0)
        assert entry["status"] == "timeout"
        assert entry["attempts"] == 1
        assert entry["duration_s"] < 15

    def test_filter_and_json_output(self, scratch_benches, capsys):
        rc = main(["bench", "--bench-dir", str(scratch_benches),
                   "--filter", "pass", "--timeout", "30", "--json"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert list(report["benches"]) == ["bench_pass.py"]
        assert report["summary"]["ok"] == 1
        assert report["config"]["filter"] == "pass"

    def test_smoke_selects_the_committed_subset(self, tmp_path):
        bench_dir = tmp_path / "benchmarks"
        bench_dir.mkdir()
        for name in runner.SMOKE_BENCHES + ["bench_other.py"]:
            (bench_dir / name).write_text("def test_ok():\n    pass\n")
        rc = main(["bench", "--bench-dir", str(bench_dir), "--smoke",
                   "--timeout", "60", "--no-trace"])
        assert rc == 0
        report = json.loads(
            (tmp_path / "BENCH_ALL.json").read_text())
        assert set(report["benches"]) == set(runner.SMOKE_BENCHES)
        assert report["config"]["smoke"] is True

    def test_no_benches_matched(self, tmp_path, capsys):
        bench_dir = tmp_path / "benchmarks"
        bench_dir.mkdir()
        assert main(["bench", "--bench-dir", str(bench_dir)]) == 2

    def test_smoke_set_exists_on_disk(self):
        bench_dir = Path(__file__).resolve().parent.parent / "benchmarks"
        for name in runner.SMOKE_BENCHES:
            assert (bench_dir / name).is_file(), name


class TestRegressionGate:
    def test_gate_flags_speedup_drops(self, tmp_path):
        baseline = {"exp": {"speedup": 100.0},
                    "no_speedup_key": {"note": "ignored"}}
        current = {"exp": {"speedup": 10.0}}
        (tmp_path / "BENCH_fastsim.json").write_text(json.dumps(current))
        regs = runner.gate_regressions(
            {"BENCH_fastsim.json": baseline}, tmp_path, tolerance=0.5)
        assert len(regs) == 1
        assert regs[0]["key"] == "exp"
        assert regs[0]["measured_speedup"] == 10.0

    def test_gate_passes_within_tolerance(self, tmp_path):
        baseline = {"exp": {"speedup": 100.0}}
        (tmp_path / "BENCH_fastsim.json").write_text(
            json.dumps({"exp": {"speedup": 60.0}}))
        regs = runner.gate_regressions(
            {"BENCH_fastsim.json": baseline}, tmp_path, tolerance=0.5)
        assert regs == []

    def test_gate_ignores_missing_files(self, tmp_path):
        regs = runner.gate_regressions(
            {"BENCH_fastsim.json": {}, "BENCH_bdd.json": {}}, tmp_path)
        assert regs == []


class TestPerfCommonRecord:
    def test_concurrent_writers_drop_nothing(self, tmp_path):
        import threading

        sys.path.insert(0, str(Path(__file__).resolve().parent.parent
                               / "benchmarks"))
        try:
            import _perf_common
        finally:
            sys.path.pop(0)

        path = tmp_path / "BENCH_x.json"
        n, per = 8, 12

        def writer(i):
            for j in range(per):
                _perf_common.record(path, f"w{i}_k{j}",
                                    {"value": i * 100 + j})

        threads = [threading.Thread(target=writer, args=(i,))
                   for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        data = json.loads(path.read_text())
        assert len(data) == n * per
        assert data["w3_k7"] == {"value": 307}
        assert not path.with_name(path.name + ".lock").exists()
