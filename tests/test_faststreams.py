"""Property-based cross-checks of the bit-plane word-stream engine.

Every packed kernel in :mod:`repro.rtl.faststreams` (and every
consumer rewired onto it) is asserted against its scalar
``engine="reference"`` implementation: exactly equal for the integer
counts and integer-derived rates, ``isclose``/``allclose`` for the
float-weighted objectives whose summation order differs.
"""

import math
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fsm import encoding as fsm_encoding
from repro.fsm import markov
from repro.fsm.stg import STG
from repro.logic.fastsim import pack_streams
from repro.optimization import allocation, bus_encoding, memory_map
from repro.rtl import faststreams
from repro.rtl import streams as rtl_streams
from repro.rtl.streams import WordStream
from repro.util.bits import hamming, popcount

# Widths straddle the numpy fast paths (<=64, %8==0) and the
# pure-python fallbacks; lengths include the 0/1 degenerate edges.
widths = st.integers(min_value=1, max_value=70)
lengths = st.integers(min_value=0, max_value=120)
seeds = st.integers(min_value=0, max_value=2**31)


def make_words(width, length, seed):
    rng = random.Random(seed)
    return [rng.randrange(1 << width) for _ in range(length)]


# ----------------------------------------------------------------------
# Packed representations and integer kernels
# ----------------------------------------------------------------------

@given(widths, lengths, seeds)
@settings(max_examples=60, deadline=None)
def test_pack_planes_roundtrip(width, length, seed):
    words = make_words(width, length, seed)
    planes = faststreams.pack_planes(words, width)
    assert planes.n == length and planes.width == width
    for i, lane in enumerate(planes.lanes):
        for t, w in enumerate(words):
            assert (lane >> t) & 1 == (w >> i) & 1


@given(widths, lengths, seeds)
@settings(max_examples=60, deadline=None)
def test_pack_words_roundtrip(width, length, seed):
    words = make_words(width, length, seed)
    packed = faststreams.pack_words(words, width)
    mask = (1 << width) - 1
    for t, w in enumerate(words):
        assert (packed >> (t * width)) & mask == w
    assert packed >> (length * width) == 0


@given(widths, lengths, seeds)
@settings(max_examples=60, deadline=None)
def test_transition_and_cross_counts(width, length, seed):
    words = make_words(width, length, seed)
    other = make_words(width, max(0, length - 3), seed + 1)
    assert faststreams.transition_count(words, width) == \
        sum(hamming(a, b) for a, b in zip(words, words[1:]))
    assert faststreams.cross_hamming(words, other, width) == \
        sum(hamming(a, b) for a, b in zip(words, other))


@given(widths, seeds, st.integers(min_value=2, max_value=6))
@settings(max_examples=40, deadline=None)
def test_pairwise_hamming_matrix(width, seed, k):
    rng = random.Random(seed)
    traces = [make_words(width, rng.randrange(0, 40), seed + i)
              for i in range(k)]
    matrix = faststreams.pairwise_hamming_matrix(traces, width)
    for i in range(k):
        assert matrix[i][i] == 0
        for j in range(k):
            assert matrix[i][j] == sum(
                hamming(a, b) for a, b in zip(traces[i], traces[j]))


# ----------------------------------------------------------------------
# Stream statistics: packed == scalar exactly
# ----------------------------------------------------------------------

@given(widths, lengths, seeds)
@settings(max_examples=60, deadline=None)
def test_stream_statistics_match_reference(width, length, seed):
    stream = WordStream(make_words(width, length, seed), width)
    assert rtl_streams.bit_activities(stream) == \
        rtl_streams.bit_activities(stream, engine="reference")
    assert rtl_streams.bit_probabilities(stream) == \
        rtl_streams.bit_probabilities(stream, engine="reference")
    assert rtl_streams.average_activity(stream) == \
        rtl_streams.average_activity(stream, engine="reference")
    assert rtl_streams.sign_transition_counts(stream) == \
        rtl_streams.sign_transition_counts(stream, engine="reference")


def test_degenerate_streams_are_zero():
    for length in (0, 1):
        stream = WordStream(make_words(8, length, 3), 8)
        assert rtl_streams.bit_activities(stream) == [0.0] * 8
        assert rtl_streams.average_activity(stream) == 0.0
        assert rtl_streams.sign_transition_counts(stream) == \
            {"++": 0, "+-": 0, "-+": 0, "--": 0}
    assert rtl_streams.bit_probabilities(WordStream([], 8)) == [0.0] * 8


def test_stream_cache_invalidation():
    stream = WordStream([1, 2, 3], 4)
    first = stream.bit_planes()
    assert stream.bit_planes() is first          # cached
    stream.words.append(12)                      # length change -> rebuilt
    assert stream.bit_planes() is not first
    assert rtl_streams.bit_probabilities(stream) == \
        rtl_streams.bit_probabilities(stream, engine="reference")
    stream.words[0] = 9                          # in-place edit
    stream.invalidate()
    assert rtl_streams.bit_probabilities(stream) == \
        rtl_streams.bit_probabilities(stream, engine="reference")


def test_pack_streams_uses_cached_planes():
    stream = WordStream(make_words(6, 37, 11), 6)

    class Plain:
        def __init__(self, words):
            self.words = list(words)

        def __len__(self):
            return len(self.words)

    fast = pack_streams([("a", 6)], [stream])
    slow = pack_streams([("a", 6)], [Plain(stream.words)])
    assert fast.words == slow.words and fast.n == slow.n
    # Port wider than the stream: missing lanes are zero.
    wide = pack_streams([("a", 9)], [stream])
    assert all(wide.words[f"a{i}"] == 0 for i in range(6, 9))


# ----------------------------------------------------------------------
# Correlation / weighted-Hamming float kernels
# ----------------------------------------------------------------------

@given(st.integers(min_value=1, max_value=12), st.integers(2, 60), seeds)
@settings(max_examples=40, deadline=None)
def test_correlation_matrix_matches_numpy(width, length, seed):
    words = make_words(width, length, seed)
    planes = faststreams.pack_planes(words, width)
    # The no-numpy fallback returns nested lists; normalize for the
    # fancy-indexed comparisons below.
    corr = np.asarray(faststreams.correlation_matrix(planes))
    bits = np.array([[(w >> i) & 1 for i in range(width)]
                     for w in words], dtype=float)
    std = bits.std(axis=0)
    live = std > 0
    if live.any():
        expected = np.corrcoef(bits[:, live].T)
        expected = np.atleast_2d(expected)
        assert np.allclose(corr[np.ix_(live, live)], expected,
                           atol=1e-9)
    # Zero-variance lanes: 0 off-diagonal, 1 on the diagonal.
    assert np.allclose(corr[~live][:, live], 0.0)
    assert np.allclose(np.diag(corr), 1.0)


@given(st.integers(min_value=1, max_value=60),
       st.integers(min_value=1, max_value=30), seeds)
@settings(max_examples=40, deadline=None)
def test_weighted_hamming_and_lane_probs(n_bits, n_pairs, seed):
    rng = random.Random(seed)
    codes = [rng.randrange(1 << n_bits) for _ in range(2 * n_pairs)]
    p = [rng.random() for _ in range(n_pairs)]
    ia = np.arange(n_pairs)
    ib = np.arange(n_pairs, 2 * n_pairs)
    fast = faststreams.weighted_hamming(codes, ia, ib, p)
    ref = sum(w * hamming(codes[i], codes[j])
              for i, j, w in zip(ia, ib, p))
    assert math.isclose(fast, ref, rel_tol=1e-9, abs_tol=1e-12)
    # The no-numpy fallback returns a plain list; normalize.
    lanes = np.asarray(
        faststreams.lane_transition_probs(codes, ia, ib, p, n_bits))
    assert math.isclose(float(lanes.sum()), ref, rel_tol=1e-9,
                        abs_tol=1e-12)


def test_popcount_array_matches_scalar():
    rng = random.Random(0)
    values = [rng.randrange(1 << 64) for _ in range(200)] + [0, 2**64 - 1]
    out = faststreams.popcount_array(np.array(values, dtype=np.uint64))
    assert list(out) == [popcount(v) for v in values]


def test_util_bits_helpers():
    assert popcount(0) == 0
    assert popcount((1 << 200) | 7) == 4
    assert hamming(0b1010, 0b0110) == 2


def _pure_python_lanes(words, width):
    lanes = [0] * width
    bit = 1
    for w in words:
        for i in range(width):
            if (w >> i) & 1:
                lanes[i] |= bit
        bit <<= 1
    return lanes


requires_seam_numpy = pytest.mark.skipif(
    faststreams.numpy_or_none() is None,
    reason="numpy stubbed out (REPRO_NO_NUMPY)")


@requires_seam_numpy
@given(st.integers(min_value=1, max_value=64), lengths, seeds)
@settings(max_examples=40, deadline=None)
def test_pack_planes_numpy_matches_pure_python(width, length, seed):
    words = make_words(width, length, seed)
    planes = faststreams._pack_planes_numpy(words, width)
    assert planes.n == length and planes.width == width
    assert planes.lanes == _pure_python_lanes(words, width)


@requires_seam_numpy
@pytest.mark.parametrize("width,length", [
    (1, 0),    # narrowest stream, empty
    (1, 5),    # single lane
    (64, 0),   # widest numpy path, empty
    (64, 3),
])
def test_pack_planes_numpy_edges(width, length):
    words = make_words(width, length, seed=7)
    planes = faststreams._pack_planes_numpy(words, width)
    assert planes.n == length and planes.width == width
    assert planes.lanes == _pure_python_lanes(words, width)


def test_pack_planes_dispatch_agrees_without_numpy(monkeypatch):
    words = make_words(17, 33, seed=5)
    with_np = faststreams.pack_planes(words, 17)
    monkeypatch.setenv("REPRO_NO_NUMPY", "1")
    without = faststreams.pack_planes(words, 17)
    assert without.lanes == with_np.lanes
    assert without.n == with_np.n and without.width == with_np.width


# ----------------------------------------------------------------------
# Rewired consumers: fast == reference
# ----------------------------------------------------------------------

@given(st.integers(min_value=2, max_value=16), st.integers(0, 80), seeds)
@settings(max_examples=30, deadline=None)
def test_bus_codes_match_reference(width, length, seed):
    stream = WordStream(make_words(width, length, seed), width)
    for code_cls in (bus_encoding.BinaryCode, bus_encoding.GrayCode):
        fast = bus_encoding.count_transitions(code_cls(width), stream)
        ref = bus_encoding.count_transitions(code_cls(width), stream,
                                             engine="reference")
        assert fast.transitions == ref.transitions
        assert fast.lines == ref.lines


@given(st.integers(min_value=2, max_value=10), seeds)
@settings(max_examples=20, deadline=None)
def test_beach_code_roundtrip_and_counts(width, seed):
    rng = random.Random(seed)
    # Correlated trace so clustering has something to find.
    words, value = [], 0
    for _ in range(80):
        if rng.random() < 0.3:
            value = rng.randrange(1 << width)
        words.append(value)
    code = bus_encoding.BeachCode(width)
    code.train(words)
    stream = WordStream(words, width)
    fast = bus_encoding.count_transitions(code, stream)
    ref = bus_encoding.count_transitions(code, stream,
                                         engine="reference")
    assert fast.transitions == ref.transitions


@given(st.integers(min_value=1, max_value=20), st.integers(0, 60), seeds)
@settings(max_examples=40, deadline=None)
def test_bus_transitions_match_reference(width, length, seed):
    addresses = make_words(width, length, seed)
    assert memory_map.bus_transitions(addresses) == \
        memory_map.bus_transitions(addresses, engine="reference")


@given(widths, st.integers(0, 50), seeds)
@settings(max_examples=40, deadline=None)
def test_switch_fractions_match_reference(width, length, seed):
    a = make_words(width, length, seed)
    b = make_words(width, length + 2, seed + 1)
    assert allocation.average_switch_fraction(a, b, width) == \
        allocation.average_switch_fraction(a, b, width,
                                           engine="reference")
    traces = {0: a, 1: b, 2: make_words(width, length, seed + 2)}
    fractions = allocation.pairwise_switch_fractions([0, 1, 2],
                                                     traces, width)
    for (x, y), value in fractions.items():
        assert value == allocation.average_switch_fraction(
            traces[x], traces[y], width, engine="reference")


# ----------------------------------------------------------------------
# FSM consumers: encoding costs and Markov matrices
# ----------------------------------------------------------------------

def _random_stg(seed, n_states=8, n_inputs=2):
    rng = random.Random(seed)
    stg = STG("hyp", n_inputs, 1)
    states = [f"s{i}" for i in range(n_states)]
    for s in states:
        stg.add_state(s)
    for s in states:
        for _ in range(rng.randrange(1, 4)):
            cube = "".join(rng.choice("01-") for _ in range(n_inputs))
            stg.add_transition(cube, s, rng.choice(states), "0")
    return stg


@given(seeds, st.integers(min_value=2, max_value=10),
       st.integers(min_value=0, max_value=3))
@settings(max_examples=30, deadline=None)
def test_markov_matrices_match_reference(seed, n_states, n_inputs):
    stg = _random_stg(seed, n_states, n_inputs)
    bit_probs = [random.Random(seed + 1).random()
                 for _ in range(n_inputs)]
    for bp in (None, bit_probs):
        fast, idx = markov.transition_matrix(stg, bp)
        ref, idx_ref = markov.transition_matrix(stg, bp,
                                                engine="reference")
        assert idx == idx_ref
        assert np.allclose(fast, ref, atol=1e-12)
    codes = {s: random.Random(seed + i).randrange(1 << 6)
             for i, s in enumerate(stg.states)}
    fast_sw = markov.expected_state_line_switching(stg, codes)
    ref_sw = markov.expected_state_line_switching(stg, codes,
                                                  engine="reference")
    assert math.isclose(fast_sw, ref_sw, rel_tol=1e-9, abs_tol=1e-12)


@given(seeds)
@settings(max_examples=15, deadline=None)
def test_encoding_costs_match_reference(seed):
    stg = _random_stg(seed)
    for enc in (fsm_encoding.binary_encoding(stg),
                fsm_encoding.gray_encoding(stg),
                fsm_encoding.one_hot_encoding(stg),
                fsm_encoding.random_encoding(stg, seed=seed)):
        fast = fsm_encoding.encoding_switching_cost(stg, enc)
        ref = fsm_encoding.encoding_switching_cost(stg, enc,
                                                   engine="reference")
        assert math.isclose(fast, ref, rel_tol=1e-9, abs_tol=1e-12)


@given(seeds)
@settings(max_examples=8, deadline=None)
def test_low_power_encoding_engines_agree(seed):
    stg = _random_stg(seed)
    greedy_fast = fsm_encoding.low_power_encoding(
        stg, seed=seed, use_annealing=False)
    greedy_ref = fsm_encoding.low_power_encoding(
        stg, seed=seed, use_annealing=False, engine="reference")
    assert greedy_fast.codes == greedy_ref.codes
    # Annealed trajectories may diverge on rare accept/reject
    # decisions sitting exactly on a float-rounding boundary (the
    # vectorized np.dot delta and the scalar sum round differently)
    # and then land in different local minima — per-move delta
    # agreement is pinned by test_anneal_deltas_match_reference.
    # What both engines do guarantee is best-so-far tracking from the
    # same greedy start: neither may end worse than greedy.
    greedy_cost = fsm_encoding.encoding_switching_cost(
        stg, greedy_ref, engine="reference")
    for engine in ("fast", "reference"):
        annealed = fsm_encoding.low_power_encoding(
            stg, seed=seed, anneal_steps=300, engine=engine)
        assert len(set(annealed.codes.values())) == stg.n_states
        cost = fsm_encoding.encoding_switching_cost(
            stg, annealed, engine="reference")
        assert cost <= greedy_cost + 1e-9


@requires_seam_numpy
@given(seeds)
@settings(max_examples=10, deadline=None)
def test_anneal_deltas_match_reference(seed):
    """Vectorized move/swap deltas agree with the scalar walks."""
    from repro.fsm.markov import transition_probabilities

    stg = _random_stg(seed)
    weight = {}
    for (a, b), p in transition_probabilities(stg, None).items():
        if a != b:
            key = (a, b) if a < b else (b, a)
            weight[key] = weight.get(key, 0.0) + p
    enc = fsm_encoding.random_encoding(stg, seed=seed)
    states = list(stg.states)
    codes = dict(enc.codes)
    vectors = fsm_encoding._WeightVectors(states, weight)
    np = faststreams.numpy_or_none()
    codes_arr = np.array([codes[s] for s in states], dtype=np.uint64)
    free = sorted(set(range(1 << enc.n_bits)) - set(codes.values()))
    rng = random.Random(seed)
    for _ in range(6):
        a, b = rng.sample(states, 2)
        fast_d = vectors.swap_delta(codes_arr, vectors.index[a],
                                    vectors.index[b])
        ref_d = fsm_encoding._pair_swap_delta(codes, weight, a, b)
        assert math.isclose(fast_d, ref_d, rel_tol=1e-9, abs_tol=1e-9)
        if free:
            new_code = rng.choice(free)
            fast_d = vectors.move_delta(codes_arr, vectors.index[a],
                                        new_code)
            ref_d = fsm_encoding._swap_delta(codes, weight, a,
                                             new_code)
            assert math.isclose(fast_d, ref_d, rel_tol=1e-9,
                                abs_tol=1e-9)


def test_wide_codes_fall_back_to_reference():
    stg = _random_stg(1, n_states=6)
    wide = fsm_encoding.Encoding(
        {s: 1 << (70 + i) for i, s in enumerate(stg.states)}, 76,
        "wide")
    fast = fsm_encoding.encoding_switching_cost(stg, wide)
    ref = fsm_encoding.encoding_switching_cost(stg, wide,
                                               engine="reference")
    assert math.isclose(fast, ref, rel_tol=1e-12)


@pytest.mark.parametrize("bits", [63, 64, 65])
def test_code_width_boundary_pinned(bits):
    """Widths straddling MAX_UINT64_CODE_BITS: 63 rides the packed
    uint64 path, 64 and 65 must take the scalar fallback — all three
    agree with the reference."""
    from repro.util.bits import MAX_UINT64_CODE_BITS

    assert MAX_UINT64_CODE_BITS == 63
    assert fsm_encoding._MAX_VECTOR_BITS == MAX_UINT64_CODE_BITS

    stg = _random_stg(2, n_states=7)
    rng = random.Random(bits)
    codes = {s: rng.randrange(1 << (bits - 1), 1 << bits)
             for s in stg.states}
    enc = fsm_encoding.Encoding(codes, bits, f"w{bits}")
    fast = fsm_encoding.encoding_switching_cost(stg, enc)
    ref = fsm_encoding.encoding_switching_cost(stg, enc,
                                               engine="reference")
    assert math.isclose(fast, ref, rel_tol=1e-9, abs_tol=1e-12)

    fast_sw = markov.expected_state_line_switching(stg, codes)
    ref_sw = markov.expected_state_line_switching(stg, codes,
                                                  engine="reference")
    assert math.isclose(fast_sw, ref_sw, rel_tol=1e-9, abs_tol=1e-12)
