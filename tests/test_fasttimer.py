"""Tick-wheel timed engine: exact-equivalence and semantics tests.

The fast timed engine's contract mirrors fastsim's: *bit-identical*
activity reports against the event-driven reference — toggles, ones,
glitches, events, switched and clock capacitance — on any circuit the
compiler can lower, including enable-gated latches, feedback, and
0-delay cells.  Also pinned here: the settling-cycle normalization
(``ones``/``cycles`` match the zero-delay engine's accounting while
``toggles``/``glitches`` cover only counted boundaries) and the
clock-edge convention shared with the zero-delay engine.
"""

import dataclasses
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.logic import fasttimer, gates as gatelib
from repro.logic.eventsim import EventSimulator, tick_grid
from repro.logic.fastsim import random_packed_vectors
from repro.logic.generators import chained_adder_tree, ripple_carry_adder
from repro.logic.netlist import Circuit
from repro.logic.simulate import ActivityReport, collect_activity, \
    random_vectors


def random_latched_circuit(n_inputs: int, n_gates: int, n_latches: int,
                           seed: int) -> Circuit:
    """Random sequential circuit with feedback, enables, and mixed
    clocked/transparent latches (same recipe as test_fastsim)."""
    rng = random.Random(seed)
    circuit = Circuit(f"seq_{n_inputs}_{n_gates}_{n_latches}_{seed}")
    inputs = circuit.add_inputs([f"x{i}" for i in range(n_inputs)])
    latch_outs = [f"s{i}" for i in range(n_latches)]
    circuit.reserve_nets(latch_outs)
    pool = list(inputs) + list(latch_outs)   # latch feedback into logic
    types = ["NAND2", "NOR2", "AND2", "OR2", "XOR2", "INV", "AOI21",
             "MUX2", "XNOR2"]
    for _ in range(n_gates):
        gate_type = rng.choice(types)
        arity = {"INV": 1, "AOI21": 3, "MUX2": 3}.get(gate_type, 2)
        ins = [rng.choice(pool) for _ in range(arity)]
        pool.append(circuit.add_gate(gate_type, ins))
    for q in latch_outs:
        data = rng.choice(pool)
        enable = rng.choice([None, None, rng.choice(pool)])
        circuit.add_latch(data, output=q, init=rng.randint(0, 1),
                          enable=enable,
                          clocked=rng.random() < 0.75)
    for net in rng.sample(pool, min(3, len(pool))):
        circuit.add_output(net)
    return circuit


def assert_timed_identical(fast: ActivityReport,
                           ref: ActivityReport) -> None:
    assert fast.cycles == ref.cycles
    assert fast.toggles == ref.toggles
    assert fast.ones == ref.ones
    assert fast.glitches == ref.glitches
    assert fast.events == ref.events
    assert fast.switched_capacitance == ref.switched_capacitance
    assert fast.clock_capacitance == ref.clock_capacitance


def both_engines(circuit, vectors):
    fast = EventSimulator(circuit, engine="fast").run(vectors)
    ref = EventSimulator(circuit, engine="reference").run(vectors)
    return fast, ref


class TestTickGrid:
    def test_library_delays_are_exactly_discretized(self):
        circuit = chained_adder_tree(4, 2)
        grid = tick_grid(circuit)
        for gate in circuit.gates:
            assert float(grid.quantum * grid.ticks[gate.output]) \
                == pytest.approx(gate.spec.delay, abs=0.0)

    def test_quantum_is_gcd_of_delays(self):
        circuit = Circuit("grid")
        a, b = circuit.add_inputs(["a", "b"])
        x = circuit.add_gate("AND2", [a, b])      # delay 2.0
        y = circuit.add_gate("XOR2", [x, b])      # delay 2.6
        circuit.add_output(y)
        grid = tick_grid(circuit)
        assert float(grid.quantum) == pytest.approx(0.2)
        assert grid.ticks[x] == 10
        assert grid.ticks[y] == 13


class TestEngineEquivalence:
    @settings(deadline=None, max_examples=25)
    @given(n_inputs=st.integers(2, 8), n_gates=st.integers(1, 60),
           n_latches=st.integers(0, 5), seed=st.integers(0, 10_000),
           n_vectors=st.integers(0, 50))
    def test_random_latched_matches_reference(self, n_inputs, n_gates,
                                              n_latches, seed,
                                              n_vectors):
        circuit = random_latched_circuit(n_inputs, n_gates, n_latches,
                                         seed)
        vectors = random_vectors(circuit.inputs, n_vectors,
                                 seed=seed + 1)
        fast, ref = both_engines(circuit, vectors)
        assert_timed_identical(fast, ref)

    def test_fig9_circuit_matches_reference(self):
        circuit = chained_adder_tree(4, 3)
        vectors = random_vectors(circuit.inputs, 80, seed=11)
        fast, ref = both_engines(circuit, vectors)
        assert_timed_identical(fast, ref)
        assert fast.glitches > 0

    def test_packed_stimulus_matches_dict_stimulus(self):
        circuit = ripple_carry_adder(6)
        packed = random_packed_vectors(circuit.inputs, 64, seed=4)
        from_packed = EventSimulator(circuit, engine="fast").run(packed)
        from_dicts = EventSimulator(circuit, engine="fast").run(
            packed.to_vectors())
        assert_timed_identical(from_packed, from_dicts)

    def test_zero_delay_cells_match_reference(self):
        spec = dataclasses.replace(gatelib.LIBRARY["AND2"],
                                   name="ZAND2_T", delay=0.0)
        gatelib.LIBRARY["ZAND2_T"] = spec
        try:
            circuit = Circuit("zd")
            a, b, d = circuit.add_inputs(["a", "b", "d"])
            x = circuit.add_gate("XOR2", [a, b])
            z = circuit.add_gate("ZAND2_T", [x, d])
            y = circuit.add_gate("INV", [z])
            q = circuit.add_latch(y, enable=x)
            circuit.add_output(circuit.add_gate("OR2", [q, z]))
            vectors = random_vectors(circuit.inputs, 40, seed=5)
            fast, ref = both_engines(circuit, vectors)
            assert_timed_identical(fast, ref)
        finally:
            del gatelib.LIBRARY["ZAND2_T"]

    def test_multi_run_accumulation_matches_one_run(self):
        circuit = random_latched_circuit(5, 40, 4, seed=3)
        vectors = random_vectors(circuit.inputs, 50, seed=7)
        split = EventSimulator(circuit, engine="fast")
        split.run(vectors[:20])
        report = split.run(vectors[20:])
        other = EventSimulator(circuit, engine="reference")
        whole = other.run(vectors)
        assert_timed_identical(report, whole)
        # The simulator's internal state carried over exactly too.
        assert split._values == other._values
        assert split._state == other._state

    def test_step_then_run_mix_matches_reference(self):
        circuit = random_latched_circuit(4, 25, 2, seed=9)
        vectors = random_vectors(circuit.inputs, 30, seed=10)
        mixed = EventSimulator(circuit, engine="fast")
        for vec in vectors[:5]:
            mixed.step(vec)
        report = mixed.run(vectors[5:])
        pure = EventSimulator(circuit, engine="reference").run(vectors)
        assert_timed_identical(report, pure)

    def test_missing_input_keys_fall_back_to_reference(self):
        """Partial vectors (inputs holding their previous value) are a
        reference-engine feature; the fast path must defer, not crash."""
        circuit = ripple_carry_adder(3)
        partial = [{"a0": 1, "a1": 0, "a2": 1}] * 10   # b* unspecified
        fast, ref = both_engines(circuit, partial)
        assert_timed_identical(fast, ref)


class TestSettlingNormalization:
    """Satellite: pin the settling-cycle conventions in both engines."""

    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_ones_and_cycles_match_zero_delay_accounting(self, engine):
        circuit = random_latched_circuit(5, 30, 3, seed=21)
        vectors = random_vectors(circuit.inputs, 25, seed=22)
        timed = EventSimulator(circuit, engine=engine).run(vectors)
        functional = collect_activity(circuit, vectors)
        # Settled values are delay-independent, and the settling cycle
        # counts toward ones/cycles in both engines -- so the static
        # statistics agree exactly with the zero-delay engine.
        assert timed.cycles == functional.cycles
        assert timed.ones == functional.ones

    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_clock_capacitance_matches_zero_delay(self, engine):
        """Enable-gated clock edges follow the zero-delay convention:
        the edge after cycle k is gated by cycle k's enable, counted
        for k = 0..cycles-2 (regression for the old one-cycle skew)."""
        circuit = Circuit("gated")
        d, en = circuit.add_inputs(["d", "en"])
        q = circuit.add_latch(d, enable=en)
        circuit.add_output(circuit.add_gate("AND2", [q, d]))
        vectors = [{"d": t & 1, "en": (t < 3)} for t in range(8)]
        timed = EventSimulator(circuit, engine=engine).run(vectors)
        functional = collect_activity(circuit, vectors)
        assert timed.clock_capacitance == functional.clock_capacitance

    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_settling_cycle_counts_no_toggles(self, engine):
        circuit = ripple_carry_adder(4)
        vectors = random_vectors(circuit.inputs, 1, seed=1)
        report = EventSimulator(circuit, engine=engine).run(vectors)
        assert report.cycles == 1
        assert sum(report.toggles.values()) == 0
        assert report.glitches == 0
        assert report.events > 0      # settling still moved nets


class TestGlitchReport:
    def test_glitch_report_identical_across_engines(self):
        circuit = chained_adder_tree(4, 2)
        vectors = random_vectors(circuit.inputs, 50, seed=31)
        fast = EventSimulator(circuit, engine="fast")
        ref = EventSimulator(circuit, engine="reference")
        assert fast.glitch_report(vectors) == ref.glitch_report(vectors)


class TestSharding:
    def test_sharded_activity_identical_to_serial(self):
        circuit = random_latched_circuit(5, 40, 4, seed=17)
        packed = random_packed_vectors(circuit.inputs, 1500, seed=18)
        serial = EventSimulator(circuit, engine="fast").run(packed)
        sharded = fasttimer.timed_activity(circuit, packed, workers=2)
        assert_timed_identical(sharded, serial)

    def test_small_batches_stay_serial(self):
        circuit = ripple_carry_adder(4)
        vectors = random_vectors(circuit.inputs, 20, seed=2)
        serial = EventSimulator(circuit, engine="fast").run(vectors)
        report = fasttimer.timed_activity(circuit, vectors, workers=4)
        assert_timed_identical(report, serial)


class TestPlanCache:
    def test_plan_cached_and_invalidated(self):
        circuit = ripple_carry_adder(3)
        plan = fasttimer.compile_timed(circuit)
        assert fasttimer.compile_timed(circuit) is plan
        a = circuit.add_gate("INV", [circuit.inputs[0]])
        circuit.add_output(a)
        fresh = fasttimer.compile_timed(circuit)
        assert fresh is not plan
        assert fresh.version == circuit._version

    def test_circuit_pickles_without_plans(self):
        import pickle

        circuit = ripple_carry_adder(3)
        fasttimer.compile_timed(circuit)
        clone = pickle.loads(pickle.dumps(circuit))
        assert clone._fasttimer_plan is None
        assert clone._fastsim_plan is None
        vectors = random_vectors(circuit.inputs, 10, seed=6)
        assert_timed_identical(
            EventSimulator(clone, engine="fast").run(vectors),
            EventSimulator(circuit, engine="reference").run(vectors))
