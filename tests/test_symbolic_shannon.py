"""Tests for symbolic FSM analysis and Shannon (BDD) synthesis."""

import random

import pytest

from repro.bdd import BddManager
from repro.fsm import benchmark, binary_encoding, one_hot_encoding, \
    synthesize_fsm
from repro.fsm.symbolic import (
    count_reachable,
    extract_stg,
    reachable_states,
    reencode_circuit,
    transition_relation,
)
from repro.logic.generators import counter, shift_register
from repro.logic.shannon import (
    mux_network_cost,
    synthesize_bdd,
    synthesize_function_shannon,
)
from repro.logic.simulate import evaluate


class TestTransitionRelation:
    def test_counter_relation(self):
        circuit = counter(3)
        mgr, relation, state_vars, next_vars = \
            transition_relation(circuit)
        # With en=1 and state 0, next state must be 1.
        assign = {"en": True}
        assign.update({v: False for v in state_vars})
        assign.update({next_vars[0]: True, next_vars[1]: False,
                       next_vars[2]: False})
        assert relation.evaluate(assign)
        # ...and next state 2 is impossible.
        assign[next_vars[0]] = False
        assign[next_vars[1]] = True
        assert not relation.evaluate(assign)

    def test_relation_is_deterministic(self):
        circuit = counter(2)
        mgr, relation, state_vars, next_vars = \
            transition_relation(circuit)
        # For each (input, state), exactly one next state satisfies T.
        count = relation.sat_count(["en"] + state_vars + next_vars)
        assert count == 2 * 4   # |inputs| x |states| combinations


class TestReachability:
    def test_counter_reaches_all_states(self):
        assert count_reachable(counter(3)) == 8

    def test_shift_register_reachable(self):
        assert count_reachable(shift_register(3)) == 8

    def test_fsm_unreachable_codes_excluded(self):
        # 5-state machine in 3 bits: only 5 of 8 codes reachable.
        stg = benchmark("bbsse_like")
        circuit = synthesize_fsm(stg, binary_encoding(stg))
        assert count_reachable(circuit) == stg.n_states

    def test_one_hot_reachability(self):
        stg = benchmark("traffic")
        circuit = synthesize_fsm(stg, one_hot_encoding(stg))
        # Exactly the valid one-hot codes are reachable.
        assert count_reachable(circuit) == stg.n_states


class TestStgExtraction:
    def test_extracted_machine_equivalent(self):
        stg = benchmark("seq101")
        circuit = synthesize_fsm(stg, binary_encoding(stg))
        extracted = extract_stg(circuit)
        assert extracted.n_states == stg.n_states
        rng = random.Random(5)
        bits = [rng.randrange(2) for _ in range(100)]
        original = [out for _s, out in stg.simulate(bits)]
        recovered = [out for _s, out in extracted.simulate(bits)]
        assert original == recovered

    def test_extraction_complete_and_deterministic(self):
        stg = benchmark("traffic")
        circuit = synthesize_fsm(stg, binary_encoding(stg))
        extracted = extract_stg(circuit)
        assert extracted.is_complete()
        assert extracted.is_deterministic()


class TestReencoding:
    def test_reencode_preserves_behaviour(self):
        stg = benchmark("handshake")
        # Start from a deliberately poor (random) encoding.
        from repro.fsm import random_encoding

        original = synthesize_fsm(stg, random_encoding(stg, seed=9))
        reencoded, extracted, encoding = reencode_circuit(original,
                                                          seed=1)
        rng = random.Random(11)
        from repro.logic.simulate import next_state

        state_a = {l.output: l.init for l in original.latches}
        state_b = {l.output: l.init for l in reencoded.latches}
        for _ in range(80):
            m = rng.randrange(4)
            vec = {f"in{i}": (m >> i) & 1 for i in range(2)}
            va = evaluate(original, vec, state_a)
            vb = evaluate(reencoded, vec, state_b)
            for j in range(stg.n_outputs):
                assert va[f"out{j}"] == vb[f"out{j}"]
            state_a = next_state(original, va)
            state_b = next_state(reencoded, vb)

    def test_reencoding_not_worse_on_switching(self):
        from repro.estimation.tyagi import expected_hamming_switching
        from repro.fsm import random_encoding
        from repro.fsm.encoding import Encoding

        stg = benchmark("waiter")
        bad = random_encoding(stg, seed=13)
        circuit = synthesize_fsm(stg, bad)
        _new, extracted, encoding = reencode_circuit(circuit, seed=2)
        # Compare switching through the extracted machine's own frame.
        old_cost = expected_hamming_switching(
            extracted,
            Encoding({f"s{bad.code_string(s)}": bad.codes[s]
                      for s in stg.states}, bad.n_bits))
        new_cost = expected_hamming_switching(extracted, encoding)
        assert new_cost <= old_cost + 1e-9


class TestShannonSynthesis:
    def test_single_function_correct(self):
        onset = [1, 2, 4, 7]   # parity of 3 bits
        circuit = synthesize_function_shannon(3, onset)
        for m in range(8):
            vec = {f"x{i}": (m >> i) & 1 for i in range(3)}
            assert evaluate(circuit, vec)["f"] == int(m in onset)

    def test_shared_nodes_shared_gates(self):
        mgr = BddManager()
        a, b, c = mgr.declare("a", "b", "c")
        f = (a & b) | c
        g = ~((a & b) | c)
        circuit = synthesize_bdd({"f": f, "g": g})
        # g is built over the same subgraph structure; each output has
        # its own BDD but shared nodes appear once.
        assert circuit.gate_count() <= mux_network_cost({"f": f,
                                                         "g": g}) \
            + 2 + 2 + 2   # muxes + consts + bufs slack

    def test_multi_output_correct(self):
        mgr = BddManager()
        a, b = mgr.declare("a", "b")
        circuit = synthesize_bdd({"and": a & b, "xor": a ^ b})
        for m in range(4):
            vec = {"a": m & 1, "b": (m >> 1) & 1}
            values = evaluate(circuit, vec)
            assert values["and"] == (vec["a"] & vec["b"])
            assert values["xor"] == (vec["a"] ^ vec["b"])

    def test_mux_count_equals_bdd_nodes(self):
        mgr = BddManager()
        a, b, c, d = mgr.declare("a", "b", "c", "d")
        f = (a & b) | (c & d)
        circuit = synthesize_bdd({"f": f})
        muxes = sum(1 for g in circuit.gates if g.gate_type == "MUX2")
        assert muxes == f.node_count()

    def test_different_managers_rejected(self):
        m1, m2 = BddManager(), BddManager()
        with pytest.raises(ValueError):
            synthesize_bdd({"f": m1.var("a"), "g": m2.var("a")})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            synthesize_bdd({})

    def test_sop_vs_shannon_tradeoff(self):
        """Both styles implement the same function; sizes differ --
        the 'large, deep and slow' caveat is measurable."""
        from repro.logic.synthesis import synthesize_function

        onset = [m for m in range(32) if bin(m).count("1") % 2]
        shannon = synthesize_function_shannon(5, onset)
        sop = synthesize_function(5, onset)
        for m in range(32):
            vec = {f"x{i}": (m >> i) & 1 for i in range(5)}
            assert evaluate(shannon, vec)["f"] == \
                evaluate(sop, vec)["f"]
        # Parity: BDD is tiny (9 nodes), SOP is exponential (16 cubes).
        assert shannon.gate_count() < sop.gate_count()
