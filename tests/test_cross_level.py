"""Cross-level consistency: the property the Fig. 1 loop stands on.

High-level estimators may be off in absolute terms, but to drive a
design-improvement loop they must *rank* designs the way the gate-level
reference does.  These tests pit every estimator family against the
reference on a graded population of circuits.
"""

import pytest

from repro import PowerEstimator
from repro.estimation.probabilistic import stratified_monte_carlo
from repro.logic.bdd_bridge import expected_switched_capacitance
from repro.logic.generators import (
    carry_lookahead_adder,
    parity_tree,
    random_logic,
    ripple_carry_adder,
)
from repro.logic.simulate import collect_activity, random_vectors


def _population():
    """Circuits of clearly increasing switched capacitance."""
    return [
        parity_tree(4),
        ripple_carry_adder(4),
        random_logic(6, 80, 5, seed=5),
        carry_lookahead_adder(8),
    ]


def _reference_ranking(circuits):
    powers = []
    for circuit in circuits:
        vectors = random_vectors(circuit.inputs, 800, seed=21)
        powers.append(collect_activity(circuit,
                                       vectors).average_power())
    return powers


@pytest.fixture(scope="module")
def graded():
    circuits = _population()
    reference = _reference_ranking(circuits)
    order = sorted(range(len(circuits)), key=lambda i: reference[i])
    return circuits, reference, order


def _ranks(values, order):
    return [sorted(range(len(values)),
                   key=lambda i: values[i]).index(i) for i in order]


class TestRankingConsistency:
    def test_reference_population_is_graded(self, graded):
        _c, reference, _o = graded
        assert len(set(round(p, 3) for p in reference)) == len(reference)

    def test_entropy_model_ranks_like_reference(self, graded):
        circuits, reference, order = graded
        estimator = PowerEstimator()
        estimates = []
        for circuit in circuits:
            vectors = random_vectors(circuit.inputs, 400, seed=22)
            estimates.append(estimator.entropic(circuit, vectors).power)
        assert sorted(range(4), key=lambda i: estimates[i]) == order

    def test_transition_density_ranks_like_reference(self, graded):
        circuits, _reference, order = graded
        estimator = PowerEstimator()
        estimates = [estimator.gate(c, technique="probabilistic").power
                     for c in circuits]
        assert sorted(range(4), key=lambda i: estimates[i]) == order

    def test_bdd_expected_capacitance_ranks(self, graded):
        circuits, _reference, order = graded
        estimates = [expected_switched_capacitance(c) for c in circuits]
        assert sorted(range(4), key=lambda i: estimates[i]) == order

    def test_stratified_sampling_ranks(self, graded):
        circuits, _reference, order = graded
        estimates = [stratified_monte_carlo(c, budget=300, seed=5).power
                     for c in circuits]
        assert sorted(range(4), key=lambda i: estimates[i]) == order

    def test_area_proxy_ranks(self, graded):
        """The crudest model of all (gate equivalents) still orders
        this population — the CES model's raison d'etre."""
        circuits, _reference, order = graded
        estimates = [c.area() for c in circuits]
        assert sorted(range(4), key=lambda i: estimates[i]) == order


class TestAbsoluteAgreement:
    """Probabilistic and sampled estimates should agree with simulation
    not just in rank but within a small factor on each circuit."""

    @pytest.mark.parametrize("index", [0, 1, 2, 3])
    def test_density_within_factor(self, graded, index):
        circuits, reference, _order = graded
        estimate = PowerEstimator().gate(
            circuits[index], technique="probabilistic").power
        assert 0.3 * reference[index] < estimate < 3.5 * reference[index]

    @pytest.mark.parametrize("index", [0, 1, 2, 3])
    def test_stratified_within_factor(self, graded, index):
        circuits, reference, _order = graded
        estimate = stratified_monte_carlo(circuits[index], budget=400,
                                          seed=7).power
        assert estimate == pytest.approx(reference[index], rel=0.25)
