"""Bit-plane word-stream engine: packed statistics and vectorized
switched-activity costs.

Every word-level technique in the survey — RT-level macro-model
characterization (II-C1), bus encoding (III-G), register/FU
allocation, memory mapping and FSM encoding cost functions (III-H) —
consumes the same handful of primitives over word streams: per-bit
activities and probabilities, Hamming transition counts, pairwise
toggle matrices, lane–lane correlations, and probability-weighted
Hamming objectives.  The scalar reference implementations walk Python
lists word by word and bit by bit; this module evaluates whole streams
per primitive operation, the same batching idea that powers the
compiled gate-level engines (:mod:`repro.logic.fastsim`,
:mod:`repro.logic.fasttimer`) and the hardware-accelerated estimators
they are modeled on.

Two packed representations, both arbitrary-precision Python integers
so a single C-level operation touches the whole stream:

- **bit planes** (:class:`BitPlanes`): one bignum per bit lane, bit
  ``t`` of lane ``i`` is bit ``i`` of word ``t``.  Per-bit statistics
  are one shift/xor/popcount per lane.
- **word-packed** (:func:`pack_words`): the words concatenated at a
  fixed stride, so the total Hamming distance between two streams is
  a single ``popcount(a ^ b)`` and the within-stream transition count
  is ``popcount((p ^ (p >> width)) & mask)``.

Both representations are cached on :class:`~repro.rtl.streams.WordStream`
(see ``WordStream.bit_planes`` / ``WordStream.packed_words``) and
invalidated on mutation.  Every kernel here is numerically identical
to its scalar reference for integer counts (and identical after the
same final division for the derived rates); the float-weighted
objectives (:func:`weighted_hamming`, :func:`correlation_matrix`)
agree to float round-off.  ``tests/test_faststreams.py`` cross-checks
all of them property-style.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.util.bits import popcount

try:                                   # numpy accelerates packing and
    import numpy as np                 # the vectorized float kernels;
except ImportError:                    # pragma: no cover - baked in
    np = None                          # pure-python paths remain.

__all__ = [
    "BitPlanes", "pack_planes", "pack_words",
    "one_counts", "toggle_counts",
    "transition_count", "cross_hamming", "pairwise_hamming_matrix",
    "correlation_matrix", "popcount_array", "weighted_hamming",
    "lane_transition_probs",
]


# ----------------------------------------------------------------------
# Packed representations
# ----------------------------------------------------------------------

@dataclass
class BitPlanes:
    """A word stream transposed into per-bit-lane bignums.

    ``lanes[i]`` holds bit ``i`` of every word: bit ``t`` of the lane
    is ``(words[t] >> i) & 1``.  ``n`` is the stream length in cycles.
    """

    lanes: List[int]
    n: int
    width: int


def pack_planes(words: Sequence[int], width: int) -> BitPlanes:
    """Transpose ``words`` into one bignum per bit lane."""
    with obs.span("faststreams.pack_planes", words=len(words),
                  width=width):
        obs.inc("faststreams.pack_planes")
        if np is not None and width <= 64:
            return _pack_planes_numpy(words, width)
        lanes = [0] * width
        bit = 1
        for w in words:
            while w:
                lsb = w & -w
                lanes[lsb.bit_length() - 1] |= bit
                w ^= lsb
            bit <<= 1
        return BitPlanes(lanes, len(words), width)


def _pack_planes_numpy(words: Sequence[int], width: int) -> BitPlanes:
    arr = np.asarray(words, dtype=np.uint64)
    if arr.ndim != 1:
        arr = arr.reshape(-1)
    lanes = []
    one = np.uint64(1)
    for i in range(width):
        bits = ((arr >> np.uint64(i)) & one).astype(np.uint8)
        lanes.append(int.from_bytes(
            np.packbits(bits, bitorder="little").tobytes(), "little"))
    return BitPlanes(lanes, len(words), width)


def pack_words(words: Sequence[int], width: int) -> int:
    """Concatenate ``words`` into one bignum at stride ``width``.

    Bits ``[t * width, (t + 1) * width)`` of the result hold word
    ``t``, so stream-level Hamming arithmetic becomes single bignum
    operations.  Words must already be masked to ``width`` bits
    (``WordStream.__post_init__`` guarantees this).
    """
    with obs.span("faststreams.pack_words", words=len(words),
                  width=width):
        obs.inc("faststreams.pack_words")
        if not words:
            return 0
        if np is not None and width <= 64 and width % 8 == 0:
            arr = np.asarray(words, dtype=np.uint64)
            raw = np.frombuffer(arr.astype("<u8").tobytes(),
                                dtype=np.uint8)
            return int.from_bytes(
                raw.reshape(-1, 8)[:, :width // 8].tobytes(), "little")
        # Balanced-tree merge: O(log n) rounds of C-level big-int ors.
        chunks = list(words)
        shift = width
        while len(chunks) > 1:
            merged = [chunks[i] | (chunks[i + 1] << shift)
                      for i in range(0, len(chunks) - 1, 2)]
            if len(chunks) % 2:
                merged.append(chunks[-1])
            chunks = merged
            shift <<= 1
        return chunks[0]


# ----------------------------------------------------------------------
# Integer kernels (bit-identical to the scalar references)
# ----------------------------------------------------------------------

def one_counts(planes: BitPlanes) -> List[int]:
    """Per-lane count of ones across the stream."""
    return [popcount(lane) for lane in planes.lanes]


def toggle_counts(planes: BitPlanes) -> List[int]:
    """Per-lane count of transitions between consecutive cycles."""
    if planes.n < 2:
        return [0] * planes.width
    mask = (1 << (planes.n - 1)) - 1
    return [popcount((lane ^ (lane >> 1)) & mask)
            for lane in planes.lanes]


def transition_count(words: Sequence[int], width: int,
                     packed: Optional[int] = None) -> int:
    """Total Hamming distance between consecutive words of a stream."""
    n = len(words)
    if n < 2:
        return 0
    if packed is None:
        packed = pack_words(words, width)
    mask = (1 << ((n - 1) * width)) - 1
    return popcount((packed ^ (packed >> width)) & mask)


def cross_hamming(words_a: Sequence[int], words_b: Sequence[int],
                  width: int,
                  packed_a: Optional[int] = None,
                  packed_b: Optional[int] = None) -> int:
    """Sum over cycles of the Hamming distance between two streams.

    Streams of different lengths are compared over the common prefix,
    matching the scalar ``zip`` convention.
    """
    n = min(len(words_a), len(words_b))
    if n == 0:
        return 0
    if packed_a is None:
        packed_a = pack_words(words_a, width)
    if packed_b is None:
        packed_b = pack_words(words_b, width)
    diff = packed_a ^ packed_b
    if len(words_a) != len(words_b):
        diff &= (1 << (n * width)) - 1
    return popcount(diff)


def pairwise_hamming_matrix(traces: Sequence[Sequence[int]],
                            width: int) -> List[List[int]]:
    """Symmetric matrix of total pairwise Hamming distances.

    ``matrix[i][j]`` is the sum over cycles of ``hamming(traces[i][t],
    traces[j][t])`` — the O(n^2 * T) inner loop of activity-aware
    allocation, evaluated as one xor+popcount per pair.
    """
    with obs.span("faststreams.pairwise_hamming_matrix",
                  traces=len(traces), width=width):
        obs.inc("faststreams.pairwise_matrix")
        packs = [pack_words(t, width) for t in traces]
        lengths = [len(t) for t in traces]
        k = len(traces)
        matrix = [[0] * k for _ in range(k)]
        for i in range(k):
            for j in range(i + 1, k):
                n = min(lengths[i], lengths[j])
                if n == 0:
                    continue
                diff = packs[i] ^ packs[j]
                if lengths[i] != lengths[j]:
                    # Unequal lengths: truncate to the common prefix.
                    # Equal-length packs carry no bits above n * width,
                    # so the mask (two more stream-sized bignum ops)
                    # is skipped on the hot all-equal case.
                    diff &= (1 << (n * width)) - 1
                matrix[i][j] = matrix[j][i] = popcount(diff)
        return matrix


# ----------------------------------------------------------------------
# Float kernels (agree with the references to round-off)
# ----------------------------------------------------------------------

def correlation_matrix(planes: BitPlanes):
    """Lane–lane Pearson correlation of the bit streams.

    Computed from popcounts of lane pairs: for 0/1 variables
    ``E[x y] = popcount(x & y) / n`` and ``E[x^2] = E[x]``, so the
    whole matrix needs ``width * (width + 1) / 2`` popcounts instead
    of materializing an ``n x width`` float matrix.  Lanes with zero
    variance correlate 0 with everything (1 with themselves).
    """
    if np is None:                     # pragma: no cover - baked in
        raise RuntimeError("correlation_matrix requires numpy")
    with obs.span("faststreams.correlation_matrix",
                  width=planes.width, cycles=planes.n):
        obs.inc("faststreams.correlation_matrix")
        w = planes.width
        n = planes.n
        if n == 0:
            return np.eye(w)
        ones = np.array([popcount(lane) for lane in planes.lanes],
                        dtype=np.float64)
        co = np.zeros((w, w), dtype=np.float64)
        for i in range(w):
            li = planes.lanes[i]
            co[i, i] = ones[i]
            for j in range(i + 1, w):
                co[i, j] = co[j, i] = popcount(li & planes.lanes[j])
        mean = ones / n
        cov = co / n - np.outer(mean, mean)
        var = mean - mean * mean
        std = np.sqrt(var)
        denom = np.outer(std, std)
        with np.errstate(divide="ignore", invalid="ignore"):
            corr = np.where(denom > 0, cov / np.where(denom > 0, denom, 1.0),
                            0.0)
        np.fill_diagonal(corr, 1.0)
        return corr


def popcount_array(arr):
    """Vectorized popcount over an unsigned numpy integer array."""
    if np is None:                     # pragma: no cover - baked in
        raise RuntimeError("popcount_array requires numpy")
    arr = np.asarray(arr, dtype=np.uint64)
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(arr).astype(np.int64)
    # SWAR fallback for older numpy.      pragma: no cover
    x = arr.copy()
    x = x - ((x >> np.uint64(1)) & np.uint64(0x5555555555555555))
    x = (x & np.uint64(0x3333333333333333)) \
        + ((x >> np.uint64(2)) & np.uint64(0x3333333333333333))
    x = (x + (x >> np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
    return ((x * np.uint64(0x0101010101010101))
            >> np.uint64(56)).astype(np.int64)


def lane_transition_probs(codes: Sequence[int], ia, ib, p,
                          n_bits: int):
    """Per-lane transition-probability vector of a weighted pair set.

    Element ``l`` is the total probability mass of pairs whose codes
    differ in bit lane ``l``; its sum is the weighted-Hamming
    objective.  ``ia``/``ib`` index into ``codes``; ``p`` carries the
    pair probabilities.
    """
    if np is None:                     # pragma: no cover - baked in
        raise RuntimeError("lane_transition_probs requires numpy")
    codes_arr = np.asarray(codes, dtype=np.uint64)
    diff = codes_arr[ia] ^ codes_arr[ib]
    p = np.asarray(p, dtype=np.float64)
    lanes = np.empty(n_bits, dtype=np.float64)
    one = np.uint64(1)
    for l in range(n_bits):
        lanes[l] = p[((diff >> np.uint64(l)) & one).astype(bool)].sum()
    return lanes


def weighted_hamming(codes: Sequence[int], ia, ib, p) -> float:
    """Probability-weighted Hamming objective sum(p * H(c_a, c_b))."""
    if np is None:                     # pragma: no cover - baked in
        raise RuntimeError("weighted_hamming requires numpy")
    codes_arr = np.asarray(codes, dtype=np.uint64)
    diff = codes_arr[ia] ^ codes_arr[ib]
    return float(np.dot(np.asarray(p, dtype=np.float64),
                        popcount_array(diff)))
