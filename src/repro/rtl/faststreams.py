"""Bit-plane word-stream engine: packed statistics and vectorized
switched-activity costs.

Every word-level technique in the survey — RT-level macro-model
characterization (II-C1), bus encoding (III-G), register/FU
allocation, memory mapping and FSM encoding cost functions (III-H) —
consumes the same handful of primitives over word streams: per-bit
activities and probabilities, Hamming transition counts, pairwise
toggle matrices, lane–lane correlations, and probability-weighted
Hamming objectives.  The scalar reference implementations walk Python
lists word by word and bit by bit; this module evaluates whole streams
per primitive operation, the same batching idea that powers the
compiled gate-level engines (:mod:`repro.logic.fastsim`,
:mod:`repro.logic.fasttimer`) and the hardware-accelerated estimators
they are modeled on.

Two packed representations, both arbitrary-precision Python integers
so a single C-level operation touches the whole stream:

- **bit planes** (:class:`BitPlanes`): one bignum per bit lane, bit
  ``t`` of lane ``i`` is bit ``i`` of word ``t``.  Per-bit statistics
  are one shift/xor/popcount per lane.
- **word-packed** (:func:`pack_words`): the words concatenated at a
  fixed stride, so the total Hamming distance between two streams is
  a single ``popcount(a ^ b)`` and the within-stream transition count
  is ``popcount((p ^ (p >> width)) & mask)``.

Both representations are cached on :class:`~repro.rtl.streams.WordStream`
(see ``WordStream.bit_planes`` / ``WordStream.packed_words``) and
invalidated on mutation.  Every kernel here is numerically identical
to its scalar reference for integer counts (and identical after the
same final division for the derived rates); the float-weighted
objectives (:func:`weighted_hamming`, :func:`correlation_matrix`)
agree to float round-off.  ``tests/test_faststreams.py`` cross-checks
all of them property-style.

The integer kernels additionally take ``backend=`` from the unified
seam (:mod:`repro.backend`): ``"numpy"`` runs the same shift/xor/
popcount recipe on ``uint64`` lane arrays (fastest for very long
streams), any other value keeps the native bignum words.  The
float kernels degrade to pure-python loops when numpy is missing
(e.g. under ``REPRO_NO_NUMPY=1``) instead of raising.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.backend.core import Backend, BackendUnavailable, get_backend, \
    numpy_or_none
from repro.util.bits import popcount

__all__ = [
    "BitPlanes", "pack_planes", "pack_words", "backend_lanes",
    "one_counts", "toggle_counts",
    "transition_count", "cross_hamming", "pairwise_hamming_matrix",
    "correlation_matrix", "popcount_array", "weighted_hamming",
    "lane_transition_probs",
]


# ----------------------------------------------------------------------
# Packed representations
# ----------------------------------------------------------------------

@dataclass
class BitPlanes:
    """A word stream transposed into per-bit-lane bignums.

    ``lanes[i]`` holds bit ``i`` of every word: bit ``t`` of the lane
    is ``(words[t] >> i) & 1``.  ``n`` is the stream length in cycles.
    """

    lanes: List[int]
    n: int
    width: int


def pack_planes(words: Sequence[int], width: int) -> BitPlanes:
    """Transpose ``words`` into one bignum per bit lane."""
    with obs.span("faststreams.pack_planes", words=len(words),
                  width=width):
        obs.inc("faststreams.pack_planes")
        if numpy_or_none() is not None and width <= 64:
            return _pack_planes_numpy(words, width)
        lanes = [0] * width
        bit = 1
        for w in words:
            while w:
                lsb = w & -w
                lanes[lsb.bit_length() - 1] |= bit
                w ^= lsb
            bit <<= 1
        return BitPlanes(lanes, len(words), width)


def _pack_planes_numpy(words: Sequence[int], width: int) -> BitPlanes:
    np = numpy_or_none()
    if np is None:                     # pragma: no cover - guarded
        raise BackendUnavailable("numpy is unavailable")
    arr = np.asarray(words, dtype=np.uint64)
    if arr.ndim != 1:
        arr = arr.reshape(-1)
    lanes = []
    one = np.uint64(1)
    for i in range(width):
        bits = ((arr >> np.uint64(i)) & one).astype(np.uint8)
        lanes.append(int.from_bytes(
            np.packbits(bits, bitorder="little").tobytes(), "little"))
    return BitPlanes(lanes, len(words), width)


def backend_lanes(planes: BitPlanes, backend) -> List[object]:
    """Per-lane backend words for ``planes`` (cached on the object).

    The bit-plane transpose itself stays bignum; lane backends get
    their word representation through one conversion per lane, reused
    across statistics calls (``WordStream`` caches the
    :class:`BitPlanes`, so the conversion rides the same lifetime).
    """
    be = get_backend(backend)
    cache = getattr(planes, "_backend_lanes", None)
    if cache is None:
        cache = {}
        object.__setattr__(planes, "_backend_lanes", cache)
    words = cache.get(be.name)
    if words is None:
        words = cache[be.name] = [be.from_int(lane, planes.n)
                                  for lane in planes.lanes]
    return words


def pack_words(words: Sequence[int], width: int) -> int:
    """Concatenate ``words`` into one bignum at stride ``width``.

    Bits ``[t * width, (t + 1) * width)`` of the result hold word
    ``t``, so stream-level Hamming arithmetic becomes single bignum
    operations.  Words must already be masked to ``width`` bits
    (``WordStream.__post_init__`` guarantees this).
    """
    with obs.span("faststreams.pack_words", words=len(words),
                  width=width):
        obs.inc("faststreams.pack_words")
        if not words:
            return 0
        np = numpy_or_none()
        if np is not None and width <= 64 and width % 8 == 0:
            arr = np.asarray(words, dtype=np.uint64)
            raw = np.frombuffer(arr.astype("<u8").tobytes(),
                                dtype=np.uint8)
            return int.from_bytes(
                raw.reshape(-1, 8)[:, :width // 8].tobytes(), "little")
        # Balanced-tree merge: O(log n) rounds of C-level big-int ors.
        chunks = list(words)
        shift = width
        while len(chunks) > 1:
            merged = [chunks[i] | (chunks[i + 1] << shift)
                      for i in range(0, len(chunks) - 1, 2)]
            if len(chunks) % 2:
                merged.append(chunks[-1])
            chunks = merged
            shift <<= 1
        return chunks[0]


# ----------------------------------------------------------------------
# Integer kernels (bit-identical to the scalar references)
# ----------------------------------------------------------------------

def one_counts(planes: BitPlanes,
               backend: Optional[str] = None) -> List[int]:
    """Per-lane count of ones across the stream.

    ``backend`` selects the word representation the popcounts run on
    (``None``/"bignum" native, "numpy" lane arrays); counts are
    identical either way.
    """
    if backend is not None:
        be = get_backend(backend)
        if be.name != "bignum":
            return [be.popcount(w) for w in backend_lanes(planes, be)]
    return [popcount(lane) for lane in planes.lanes]


def toggle_counts(planes: BitPlanes,
                  backend: Optional[str] = None) -> List[int]:
    """Per-lane count of transitions between consecutive cycles."""
    if planes.n < 2:
        return [0] * planes.width
    if backend is not None:
        be = get_backend(backend)
        if be.name != "bignum":
            # Seeding the carry with the lane's own bit 0 makes the
            # cycle-0 boundary contribute zero, leaving exactly the
            # n - 1 between-cycle transitions.
            return [be.toggle_count(w, planes.n, be.get_bit(w, 0))
                    for w in backend_lanes(planes, be)]
    mask = (1 << (planes.n - 1)) - 1
    return [popcount((lane ^ (lane >> 1)) & mask)
            for lane in planes.lanes]


def transition_count(words: Sequence[int], width: int,
                     packed: Optional[int] = None,
                     backend: Optional[str] = None) -> int:
    """Total Hamming distance between consecutive words of a stream."""
    n = len(words)
    if n < 2:
        return 0
    if packed is None:
        packed = pack_words(words, width)
    if backend is not None:
        be = get_backend(backend)
        if be.name != "bignum":
            total = n * width
            pw = be.from_int(packed, total)
            return be.popcount(be.extract(pw, width, total - width)
                               ^ be.extract(pw, 0, total - width))
    mask = (1 << ((n - 1) * width)) - 1
    return popcount((packed ^ (packed >> width)) & mask)


def cross_hamming(words_a: Sequence[int], words_b: Sequence[int],
                  width: int,
                  packed_a: Optional[int] = None,
                  packed_b: Optional[int] = None,
                  backend: Optional[str] = None) -> int:
    """Sum over cycles of the Hamming distance between two streams.

    Streams of different lengths are compared over the common prefix,
    matching the scalar ``zip`` convention.
    """
    n = min(len(words_a), len(words_b))
    if n == 0:
        return 0
    if packed_a is None:
        packed_a = pack_words(words_a, width)
    if packed_b is None:
        packed_b = pack_words(words_b, width)
    if backend is not None:
        be = get_backend(backend)
        if be.name != "bignum":
            total = n * width
            wa = be.from_int(packed_a & ((1 << total) - 1), total)
            wb = be.from_int(packed_b & ((1 << total) - 1), total)
            return be.popcount(wa ^ wb)
    diff = packed_a ^ packed_b
    if len(words_a) != len(words_b):
        diff &= (1 << (n * width)) - 1
    return popcount(diff)


def pairwise_hamming_matrix(traces: Sequence[Sequence[int]],
                            width: int,
                            backend: Optional[str] = None
                            ) -> List[List[int]]:
    """Symmetric matrix of total pairwise Hamming distances.

    ``matrix[i][j]`` is the sum over cycles of ``hamming(traces[i][t],
    traces[j][t])`` — the O(n^2 * T) inner loop of activity-aware
    allocation, evaluated as one xor+popcount per pair.
    """
    with obs.span("faststreams.pairwise_hamming_matrix",
                  traces=len(traces), width=width):
        obs.inc("faststreams.pairwise_matrix")
        packs = [pack_words(t, width) for t in traces]
        lengths = [len(t) for t in traces]
        k = len(traces)
        matrix = [[0] * k for _ in range(k)]
        be = None
        if backend is not None:
            cand = get_backend(backend)
            if cand.name != "bignum" and len(set(lengths)) == 1:
                # Equal-length traces: convert each pack once, then
                # every pair is a lane-array xor + popcount.  Mixed
                # lengths keep the bignum path (per-pair masking).
                be = cand
        if be is not None:
            n_bits = lengths[0] * width if lengths else 0
            words = [be.from_int(p, n_bits) for p in packs]
            for i in range(k):
                for j in range(i + 1, k):
                    if lengths[i] == 0:
                        continue
                    matrix[i][j] = matrix[j][i] = \
                        be.popcount(words[i] ^ words[j])
            return matrix
        for i in range(k):
            for j in range(i + 1, k):
                n = min(lengths[i], lengths[j])
                if n == 0:
                    continue
                diff = packs[i] ^ packs[j]
                if lengths[i] != lengths[j]:
                    # Unequal lengths: truncate to the common prefix.
                    # Equal-length packs carry no bits above n * width,
                    # so the mask (two more stream-sized bignum ops)
                    # is skipped on the hot all-equal case.
                    diff &= (1 << (n * width)) - 1
                matrix[i][j] = matrix[j][i] = popcount(diff)
        return matrix


# ----------------------------------------------------------------------
# Float kernels (agree with the references to round-off)
# ----------------------------------------------------------------------

def correlation_matrix(planes: BitPlanes):
    """Lane–lane Pearson correlation of the bit streams.

    Computed from popcounts of lane pairs: for 0/1 variables
    ``E[x y] = popcount(x & y) / n`` and ``E[x^2] = E[x]``, so the
    whole matrix needs ``width * (width + 1) / 2`` popcounts instead
    of materializing an ``n x width`` float matrix.  Lanes with zero
    variance correlate 0 with everything (1 with themselves).

    Without numpy the same values come back as nested lists (the
    popcount formulation never needed the float matrix, only the
    final normalization).
    """
    np = numpy_or_none()
    if np is None:
        return _correlation_matrix_py(planes)
    with obs.span("faststreams.correlation_matrix",
                  width=planes.width, cycles=planes.n):
        obs.inc("faststreams.correlation_matrix")
        w = planes.width
        n = planes.n
        if n == 0:
            return np.eye(w)
        ones = np.array([popcount(lane) for lane in planes.lanes],
                        dtype=np.float64)
        co = np.zeros((w, w), dtype=np.float64)
        for i in range(w):
            li = planes.lanes[i]
            co[i, i] = ones[i]
            for j in range(i + 1, w):
                co[i, j] = co[j, i] = popcount(li & planes.lanes[j])
        mean = ones / n
        cov = co / n - np.outer(mean, mean)
        var = mean - mean * mean
        std = np.sqrt(var)
        denom = np.outer(std, std)
        with np.errstate(divide="ignore", invalid="ignore"):
            corr = np.where(denom > 0, cov / np.where(denom > 0, denom, 1.0),
                            0.0)
        np.fill_diagonal(corr, 1.0)
        return corr


def _correlation_matrix_py(planes: BitPlanes) -> List[List[float]]:
    """Pure-python :func:`correlation_matrix` (same popcount math)."""
    w = planes.width
    n = planes.n
    if n == 0:
        return [[1.0 if i == j else 0.0 for j in range(w)]
                for i in range(w)]
    ones = [popcount(lane) for lane in planes.lanes]
    mean = [o / n for o in ones]
    std = [(m - m * m) ** 0.5 for m in mean]
    corr = [[0.0] * w for _ in range(w)]
    for i in range(w):
        corr[i][i] = 1.0
        for j in range(i + 1, w):
            denom = std[i] * std[j]
            if denom > 0:
                cov = popcount(planes.lanes[i] & planes.lanes[j]) / n \
                    - mean[i] * mean[j]
                corr[i][j] = corr[j][i] = cov / denom
    return corr


def popcount_array(arr):
    """Vectorized popcount over an unsigned numpy integer array.

    Without numpy, accepts any sequence of non-negative ints and
    degrades to a list of scalar popcounts (same values, same
    indexing), so callers need no availability guard of their own.
    """
    np = numpy_or_none()
    if np is None:
        return [popcount(int(x)) for x in arr]
    arr = np.asarray(arr, dtype=np.uint64)
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(arr).astype(np.int64)
    # SWAR fallback for older numpy.      pragma: no cover
    x = arr.copy()
    x = x - ((x >> np.uint64(1)) & np.uint64(0x5555555555555555))
    x = (x & np.uint64(0x3333333333333333)) \
        + ((x >> np.uint64(2)) & np.uint64(0x3333333333333333))
    x = (x + (x >> np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
    return ((x * np.uint64(0x0101010101010101))
            >> np.uint64(56)).astype(np.int64)


def lane_transition_probs(codes: Sequence[int], ia, ib, p,
                          n_bits: int):
    """Per-lane transition-probability vector of a weighted pair set.

    Element ``l`` is the total probability mass of pairs whose codes
    differ in bit lane ``l``; its sum is the weighted-Hamming
    objective.  ``ia``/``ib`` index into ``codes``; ``p`` carries the
    pair probabilities.  Without numpy the same vector comes back as
    a list.
    """
    np = numpy_or_none()
    if np is None:
        lanes_py = [0.0] * n_bits
        for a, b, pk in zip(ia, ib, p):
            diff = codes[a] ^ codes[b]
            while diff:
                lsb = diff & -diff
                lanes_py[lsb.bit_length() - 1] += pk
                diff ^= lsb
        return lanes_py
    codes_arr = np.asarray(codes, dtype=np.uint64)
    diff = codes_arr[ia] ^ codes_arr[ib]
    p = np.asarray(p, dtype=np.float64)
    lanes = np.empty(n_bits, dtype=np.float64)
    one = np.uint64(1)
    for l in range(n_bits):
        lanes[l] = p[((diff >> np.uint64(l)) & one).astype(bool)].sum()
    return lanes


def weighted_hamming(codes: Sequence[int], ia, ib, p) -> float:
    """Probability-weighted Hamming objective sum(p * H(c_a, c_b)).

    Degrades to the scalar loop when numpy is unavailable (``ia``/
    ``ib`` then only need to be iterables of indices).
    """
    np = numpy_or_none()
    if np is None:
        return float(sum(pk * popcount(codes[a] ^ codes[b])
                         for a, b, pk in zip(ia, ib, p)))
    codes_arr = np.asarray(codes, dtype=np.uint64)
    diff = codes_arr[ia] ^ codes_arr[ib]
    return float(np.dot(np.asarray(p, dtype=np.float64),
                        popcount_array(diff)))
