"""RTL component library backed by gate-level implementations.

Each component couples

- a word-level functional model (fast RT-level simulation),
- a real gate-level netlist from :mod:`repro.logic.generators`
  (reference power by simulation -- the "gate-level power value"
  macro-models are fitted against in Section II-C),
- port metadata so stimulus generators can drive it uniformly.

This mirrors the paper's high-level design library: the macro-model
characterization flow of Section II-C1 step 1 runs each component
under pseudorandom data and fits regression models to the measured
switched capacitance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.logic.generators import (
    array_multiplier,
    bus,
    equality_comparator,
    magnitude_comparator,
    ripple_carry_adder,
)
from repro.logic.netlist import Circuit
from repro.logic.simulate import ActivityReport, collect_activity
from repro.rtl.streams import WordStream


@dataclass
class RtlComponent:
    """A characterized RTL module."""

    kind: str
    width: int
    circuit: Circuit
    input_ports: List[Tuple[str, int]]     # (bus prefix, width)
    output_ports: List[Tuple[str, int]]
    fn: Callable[[Sequence[int]], int]
    output_nets: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.output_nets:
            self.output_nets = [f"{prefix}{i}"
                                for prefix, w in self.output_ports
                                for i in range(w)]

    def read_output(self, values: Dict[str, int]) -> int:
        """Assemble the output word from settled gate-level net values."""
        word = 0
        for i, net in enumerate(self.output_nets):
            word |= values[net] << i
        return word

    @property
    def name(self) -> str:
        return f"{self.kind}{self.width}"

    def evaluate(self, operands: Sequence[int]) -> int:
        return self.fn(operands)

    def input_vector(self, operands: Sequence[int]) -> Dict[str, int]:
        vec: Dict[str, int] = {}
        for (prefix, w), word in zip(self.input_ports, operands):
            for i in range(w):
                vec[f"{prefix}{i}"] = (word >> i) & 1
        return vec

    def reference_activity(self, operand_streams: Sequence[WordStream],
                           timed: bool = False,
                           workers: Optional[int] = None
                           ) -> ActivityReport:
        """Gate-level activity under word-level stimulus (ground truth).

        Streams are packed directly into bit-parallel input lanes, so
        characterization runs (thousands of cycles per component) skip
        the per-cycle vector dicts entirely.  ``timed=True`` switches
        the ground truth to the glitch-aware tick-wheel engine
        (:mod:`repro.logic.fasttimer`); ``workers`` then shards long
        streams across processes (partial reports merge exactly).
        """
        from repro.logic import fastsim

        packed = fastsim.pack_streams(self.input_ports, operand_streams)
        if timed:
            from repro.logic import fasttimer

            return fasttimer.timed_activity(self.circuit, packed,
                                            workers=workers)
        return collect_activity(self.circuit, packed)

    def reference_power(self, operand_streams: Sequence[WordStream],
                        vdd: float = 1.0, freq: float = 1.0,
                        timed: bool = False,
                        workers: Optional[int] = None) -> float:
        return self.reference_activity(
            operand_streams, timed=timed, workers=workers,
        ).average_power(vdd=vdd, freq=freq)

    def cycle_energies(self, operand_streams: Sequence[WordStream],
                       vdd: float = 1.0) -> List[float]:
        """Per-cycle switched energy (for cycle-accurate macro-models)."""
        from repro.logic import fastsim

        packed = fastsim.pack_streams(self.input_ports, operand_streams)
        return circuit_cycle_energies(self.circuit, packed, vdd=vdd)


def circuit_cycle_energies(circuit: Circuit, stimulus,
                           vdd: float = 1.0) -> List[float]:
    """Per-cycle switched energy of any circuit under any stimulus.

    ``stimulus`` is either packed vectors or a list of per-cycle input
    dicts.  Entry ``t`` is the energy of the ``t -> t+1`` transition,
    so a batch of ``n`` cycles yields ``n - 1`` energies.  This is the
    ground-truth labeling primitive shared by the cycle-accurate
    macro-models and the learned characterization flow
    (:mod:`repro.estimation.learned`).
    """
    from repro.logic import fastsim

    caps = circuit.load_capacitances()
    try:
        words, n = fastsim.net_words(circuit, stimulus)
    except fastsim.CompileError:
        vectors = stimulus.to_vectors() \
            if hasattr(stimulus, "to_vectors") else stimulus
        return _cycle_energies_reference(circuit, vectors, caps, vdd)
    raw = [0.0] * max(0, n - 1)
    boundary_mask = ((1 << n) - 1) & ~1
    for net in caps:
        diff = words[net]
        diff = (diff ^ (diff << 1)) & boundary_mask
        cap = caps[net]
        while diff:
            lsb = diff & -diff
            raw[lsb.bit_length() - 2] += cap
            diff ^= lsb
    return [0.5 * vdd * vdd * e for e in raw]


def _cycle_energies_reference(circuit: Circuit,
                              vectors: Sequence[Dict[str, int]],
                              caps: Dict[str, float],
                              vdd: float) -> List[float]:
    from repro.logic.simulate import simulate

    trace = simulate(circuit, vectors)
    energies: List[float] = []
    for prev, cur in zip(trace, trace[1:]):
        e = sum(caps[net] for net in caps if prev[net] != cur[net])
        energies.append(0.5 * vdd * vdd * e)
    return energies


def _signed(word: int, width: int) -> int:
    half = 1 << (width - 1)
    return word - ((word & half) << 1)


def _make_subtractor(width: int) -> Circuit:
    """a - b as a + ~b + 1 (two's complement), gate level."""
    from repro.logic.generators import _full_adder

    circuit = Circuit(f"sub{width}")
    a = circuit.add_inputs(bus("a", width))
    b = circuit.add_inputs(bus("b", width))
    carry = circuit.add_gate("CONST1", [])
    for i in range(width):
        nb = circuit.add_gate("INV", [b[i]])
        s, carry = _full_adder(circuit, a[i], nb, carry)
        out = circuit.add_gate("BUF", [s], output=f"s{i}")
        circuit.add_output(out)
    out = circuit.add_gate("BUF", [carry], output="cout")
    circuit.add_output(out)
    return circuit


def _make_register(width: int) -> Circuit:
    circuit = Circuit(f"reg{width}")
    d = circuit.add_inputs(bus("a", width))
    for i in range(width):
        q = circuit.add_latch(d[i], output=f"s{i}")
        circuit.add_output(q)
    return circuit


def _make_mux(width: int) -> Circuit:
    circuit = Circuit(f"mux{width}")
    d0 = circuit.add_inputs(bus("a", width))
    d1 = circuit.add_inputs(bus("b", width))
    sel = circuit.add_input("c0")
    for i in range(width):
        out = circuit.add_gate("MUX2", [d0[i], d1[i], sel], output=f"s{i}")
        circuit.add_output(out)
    return circuit


def make_component(kind: str, width: int) -> RtlComponent:
    """Instantiate a library component.

    Kinds: ``add``, ``sub``, ``mult``, ``mux``, ``reg``, ``cmp_eq``,
    ``cmp_gt``.
    """
    mask = (1 << width) - 1
    if kind == "add":
        return RtlComponent(
            kind, width, ripple_carry_adder(width),
            [("a", width), ("b", width)], [("s", width + 1)],
            lambda ops: (ops[0] + ops[1]) & ((1 << (width + 1)) - 1),
            output_nets=[f"s{i}" for i in range(width)] + ["cout"])
    if kind == "sub":
        return RtlComponent(
            kind, width, _make_subtractor(width),
            [("a", width), ("b", width)], [("s", width)],
            lambda ops: (ops[0] - ops[1]) & mask)
    if kind == "mult":
        return RtlComponent(
            kind, width, array_multiplier(width),
            [("a", width), ("b", width)], [("p", 2 * width)],
            lambda ops: (ops[0] * ops[1]) & ((1 << (2 * width)) - 1))
    if kind == "mux":
        return RtlComponent(
            kind, width, _make_mux(width),
            [("a", width), ("b", width), ("c", 1)], [("s", width)],
            lambda ops: ops[1] if ops[2] & 1 else ops[0])
    if kind == "reg":
        return RtlComponent(
            kind, width, _make_register(width),
            [("a", width)], [("s", width)],
            lambda ops: ops[0] & mask)
    if kind == "cmp_eq":
        return RtlComponent(
            kind, width, equality_comparator(width),
            [("a", width), ("b", width)], [("eq", 1)],
            lambda ops: int((ops[0] & mask) == (ops[1] & mask)),
            output_nets=["eq"])
    if kind == "cmp_gt":
        return RtlComponent(
            kind, width, magnitude_comparator(width),
            [("a", width), ("b", width)], [("gt", 1)],
            lambda ops: int((ops[0] & mask) > (ops[1] & mask)),
            output_nets=["gt"])
    raise ValueError(f"unknown component kind {kind!r}")


COMPONENT_TYPES = ["add", "sub", "mult", "mux", "reg", "cmp_eq", "cmp_gt"]


def output_words(component: RtlComponent,
                 operand_streams: Sequence[WordStream]) -> WordStream:
    """Functional output stream of the component under given operands."""
    length = min(len(s) for s in operand_streams)
    words = [
        component.evaluate([s.words[t] for s in operand_streams])
        for t in range(length)
    ]
    total_width = sum(w for _p, w in component.output_ports)
    return WordStream(words, total_width, f"{component.name}_out")
