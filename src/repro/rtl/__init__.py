"""Register-transfer-level substrate.

- :mod:`repro.rtl.streams`    -- word-level stimulus generators with
  controllable temporal correlation (the "typical data" of Section
  II-C: pseudorandom, speech-like AR(1), sinusoid, address traces),
- :mod:`repro.rtl.components` -- RTL module library backed by real
  gate-level implementations, with word-level functional models,
- :mod:`repro.rtl.netlist`    -- RTL netlists of interconnected
  components plus registers,
- :mod:`repro.rtl.simulate`   -- RT-level simulation with a pluggable
  power cosimulator (census/sampler hooks of Section II-C2).
"""

from repro.rtl.streams import (
    WordStream,
    random_stream,
    correlated_stream,
    sinusoid_stream,
    constant_stream,
    counter_stream,
    bit_activities,
    bit_probabilities,
    word_entropy,
    bit_entropy,
)
from repro.rtl.components import RtlComponent, make_component, COMPONENT_TYPES
from repro.rtl.netlist import RtlNetlist
from repro.rtl.simulate import RtlSimulator

__all__ = [
    "WordStream",
    "random_stream",
    "correlated_stream",
    "sinusoid_stream",
    "constant_stream",
    "counter_stream",
    "bit_activities",
    "bit_probabilities",
    "word_entropy",
    "bit_entropy",
    "RtlComponent",
    "make_component",
    "COMPONENT_TYPES",
    "RtlNetlist",
    "RtlSimulator",
]
