"""RT-level simulation with a power cosimulation hook.

The simulator advances the word-level netlist cycle by cycle and
records, per instance, the operand streams seen at its inputs.  A
power cosimulator (Section II-C2) can then

- evaluate macro-model equations every cycle (*census*),
- evaluate them only on sampled cycles (*sampler*),
- additionally invoke gate-level simulation on a few cycles to
  de-bias the macro-model (*adaptive*),

all implemented in :mod:`repro.estimation.sampling` on top of the
recorded streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.rtl.components import RtlComponent
from repro.rtl.netlist import RtlInstance, RtlNetlist
from repro.rtl.streams import WordStream


@dataclass
class RtlTrace:
    """Result of an RT-level simulation run."""

    cycles: int
    signal_values: Dict[str, List[int]]
    instance_inputs: Dict[str, List[List[int]]]   # name -> per-cycle operands

    def stream(self, netlist: RtlNetlist, signal: str) -> WordStream:
        return WordStream(list(self.signal_values[signal]),
                          netlist.signal_width(signal), signal)

    def operand_streams(self, instance: RtlInstance) -> List[WordStream]:
        rows = self.instance_inputs[instance.name]
        streams: List[WordStream] = []
        for port_index, (_prefix, width) in enumerate(
                instance.component.input_ports):
            words = [row[port_index] for row in rows]
            streams.append(WordStream(words, width,
                                      f"{instance.name}_op{port_index}"))
        return streams


class RtlSimulator:
    """Cycle-accurate word-level simulator for an RtlNetlist."""

    def __init__(self, netlist: RtlNetlist) -> None:
        self.netlist = netlist
        self._order = netlist.combinational_order()
        self._registers = netlist.registers()

    def run(self, input_streams: Dict[str, WordStream],
            cycles: Optional[int] = None) -> RtlTrace:
        for signal, _w in self.netlist.inputs:
            if signal not in input_streams:
                raise ValueError(f"no stimulus for input {signal!r}")
        if cycles is None:
            cycles = min(len(s) for s in input_streams.values())

        reg_state: Dict[str, int] = {r.output_signal: 0
                                     for r in self._registers}
        signal_values: Dict[str, List[int]] = {
            s: [] for s in self._all_signals()}
        instance_inputs: Dict[str, List[List[int]]] = {
            i.name: [] for i in self.netlist.instances}

        for t in range(cycles):
            values: Dict[str, int] = dict(self.netlist.constants)
            for signal, _w in self.netlist.inputs:
                values[signal] = input_streams[signal].words[t]
            values.update(reg_state)
            for inst in self._order:
                operands = [values[s] for s in inst.input_signals]
                instance_inputs[inst.name].append(operands)
                values[inst.output_signal] = inst.component.evaluate(operands)
            # Registers sample at the cycle boundary.
            next_state = {}
            for reg in self._registers:
                operands = [values[s] for s in reg.input_signals]
                instance_inputs[reg.name].append(operands)
                next_state[reg.output_signal] = \
                    reg.component.evaluate(operands)
            for signal in signal_values:
                signal_values[signal].append(values[signal])
            reg_state = next_state

        return RtlTrace(cycles, signal_values, instance_inputs)

    def _all_signals(self) -> List[str]:
        signals = [s for s, _w in self.netlist.inputs]
        signals.extend(self.netlist.constants)
        signals.extend(i.output_signal for i in self.netlist.instances)
        return signals

    # ------------------------------------------------------------------
    def gate_level_power(self, trace: RtlTrace, vdd: float = 1.0,
                         freq: float = 1.0) -> Dict[str, float]:
        """Reference power per instance by full gate-level simulation.

        This is the slow path the macro-model techniques avoid; it
        serves as ground truth in the sampling experiments (C6).
        """
        result: Dict[str, float] = {}
        for inst in self.netlist.instances:
            streams = trace.operand_streams(inst)
            result[inst.name] = inst.component.reference_power(
                streams, vdd=vdd, freq=freq)
        return result
