"""Word-level stimulus streams and their statistics.

The accuracy ladder of RT-level macro-models (Section II-C1) is driven
entirely by input statistics: average activity, per-bit activity,
sign-bit correlation, and signal probability.  This module generates
streams with controllable statistics and computes the statistics the
models consume.

Streams are plain lists of non-negative ints interpreted as ``width``-
bit words (two's complement for the signed generators), wrapped with
their width in :class:`WordStream`.
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import store as artifact_store
from repro.backend.core import default_engine, get_backend, resolve_engine

#: Streams below this many bits skip the artifact store entirely —
#: repacking is cheaper than a disk round trip.
_STORE_MIN_BITS = 1 << 15


@dataclass
class WordStream:
    """A sequence of ``width``-bit words.

    Packed representations (bit planes and the word-concatenated
    bignum, see :mod:`repro.rtl.faststreams`) are cached on the
    stream.  Appending or removing words invalidates the cache
    automatically (the cached length no longer matches); mutating a
    word *in place* requires an explicit :meth:`invalidate`.
    """

    words: List[int]
    width: int
    name: str = "stream"
    _cache: Dict[str, Tuple[int, int, Any]] = field(
        default_factory=dict, init=False, repr=False, compare=False)
    #: Bumped by :meth:`invalidate`; part of every cache entry's
    #: validity, so invalidation can never be undone by restoring the
    #: stream to its old length.
    _version: int = field(default=0, init=False, repr=False,
                          compare=False)

    def __post_init__(self) -> None:
        mask = (1 << self.width) - 1
        self.words = [w & mask for w in self.words]

    def __len__(self) -> int:
        return len(self.words)

    def __iter__(self):
        return iter(self.words)

    def __getitem__(self, i):
        return self.words[i]

    def invalidate(self) -> None:
        """Drop *every* cached derivation after in-place edits.

        Clears all length-keyed entries — bit planes, the packed
        word, and the content :meth:`fingerprint` — and bumps the
        stream version so no stale entry can resurface (entries are
        validated against both length and version).  The fingerprint
        is the critical one: it keys the artifact-store bit-plane
        round trip and the estimator's packed-stimulus memo, so a
        stale fingerprint would serve another stream's cached lanes.
        """
        self._cache.clear()
        self._version += 1

    def _cached(self, key: str, build):
        entry = self._cache.get(key)
        if entry is not None and entry[0] == len(self.words) \
                and entry[1] == self._version:
            return entry[2]
        value = build()
        self._cache[key] = (len(self.words), self._version, value)
        return value

    def fingerprint(self) -> str:
        """Content hash of the stream (width + words, hex, stable).

        Keys the stream's packed representations in the
        content-addressed artifact store, same contract as
        :meth:`repro.logic.netlist.Circuit.fingerprint`: identical
        across copies, pickling, and process boundaries.
        """

        def build() -> str:
            nb = max(1, (self.width + 7) // 8)
            h = hashlib.sha256(
                f"stream/1:{self.width}:{len(self.words)}".encode())
            chunk = 4096
            for i in range(0, len(self.words), chunk):
                h.update(b"".join(
                    w.to_bytes(nb, "little")
                    for w in self.words[i:i + chunk]))
            return h.hexdigest()

        return self._cached("fingerprint", build)

    def bit_planes(self):
        """Cached bit-plane transpose (one bignum per bit lane).

        Long streams additionally round-trip through the
        content-addressed artifact store when a disk root is
        configured (``REPRO_STORE``), so bench subprocesses and
        server workers replaying a known stream skip the transpose.
        """
        from repro.rtl import faststreams

        def build():
            st = artifact_store.get_store()
            use_store = (st.root is not None
                         and len(self.words) * self.width
                         >= _STORE_MIN_BITS)
            if use_store:
                fp = self.fingerprint()
                payload = st.get(fp, "bitplanes")
                if payload is not None:
                    try:
                        if (int(payload["n"]) == len(self.words)
                                and int(payload["width"]) == self.width):
                            return faststreams.BitPlanes(
                                [int(h, 16) if h else 0
                                 for h in payload["lanes"]],
                                len(self.words), self.width)
                    except Exception:
                        pass
            planes = faststreams.pack_planes(self.words, self.width)
            if use_store:
                st.put(fp, "bitplanes", {
                    "n": planes.n,
                    "width": planes.width,
                    "lanes": [format(lane, "x") for lane in planes.lanes],
                })
            return planes

        return self._cached("planes", build)

    def packed_words(self) -> int:
        """Cached word-concatenated bignum at stride ``width``."""
        from repro.rtl import faststreams

        return self._cached(
            "packed",
            lambda: faststreams.pack_words(self.words, self.width))

    def bit(self, word: int, i: int) -> int:
        return (word >> i) & 1

    def bits_of(self, t: int) -> List[int]:
        return [(self.words[t] >> i) & 1 for i in range(self.width)]

    def as_vectors(self, prefix: str) -> List[Dict[str, int]]:
        """Per-cycle input dicts for a gate-level bus ``prefix``.

        The packed gate-level handoff (:func:`repro.logic.fastsim.
        pack_streams`) consumes :meth:`bit_planes` directly and skips
        this per-cycle dict materialization entirely.
        """
        return [{f"{prefix}{i}": (w >> i) & 1 for i in range(self.width)}
                for w in self.words]


def random_stream(width: int, length: int, seed: int = 0,
                  bit_prob: float = 0.5) -> WordStream:
    """Temporally independent words; each bit is 1 w.p. ``bit_prob``."""
    rng = random.Random(seed)
    words = []
    for _ in range(length):
        w = 0
        for i in range(width):
            if rng.random() < bit_prob:
                w |= 1 << i
        words.append(w)
    return WordStream(words, width, f"random(p={bit_prob})")


def correlated_stream(width: int, length: int, rho: float = 0.9,
                      seed: int = 0, amplitude: float = 0.6) -> WordStream:
    """AR(1) Gaussian process quantized to two's complement.

    This is the "speech-like" data of the dual-bit-type model [40]:
    strong lag-1 correlation makes the high-order (sign) bits switch
    rarely and together, while low-order bits stay essentially random.
    """
    rng = random.Random(seed)
    scale = amplitude * (1 << (width - 1))
    sigma = math.sqrt(max(1e-12, 1.0 - rho * rho))
    x = 0.0
    words = []
    top = (1 << (width - 1)) - 1
    for _ in range(length):
        x = rho * x + sigma * rng.gauss(0.0, 1.0)
        value = int(max(-top - 1, min(top, round(x * scale / 3.0))))
        words.append(value & ((1 << width) - 1))
    return WordStream(words, width, f"ar1(rho={rho})")


def sinusoid_stream(width: int, length: int, period: float = 64.0,
                    amplitude: float = 0.9, phase: float = 0.0
                    ) -> WordStream:
    """Deterministic sinusoid, the classic DSP stimulus."""
    top = (1 << (width - 1)) - 1
    words = []
    for t in range(length):
        value = int(round(amplitude * top
                          * math.sin(2 * math.pi * t / period + phase)))
        words.append(value & ((1 << width) - 1))
    return WordStream(words, width, f"sin(T={period})")


def constant_stream(width: int, length: int, value: int = 0) -> WordStream:
    return WordStream([value] * length, width, f"const({value})")


def counter_stream(width: int, length: int, start: int = 0,
                   stride: int = 1) -> WordStream:
    """Arithmetic sequence (sequential addresses for bus-code studies)."""
    return WordStream([start + stride * t for t in range(length)], width,
                      f"count(+{stride})")


# ----------------------------------------------------------------------
# Statistics
# ----------------------------------------------------------------------
# Each statistic keeps its scalar loop as the ``engine="reference"``
# cross-check; the compiled engines ("fast" on bignum words, "numpy"
# on uint64 lane arrays — see repro.backend) run on the cached bit
# planes (one popcount per lane) with bit-identical results — the
# integer counts are equal, and the derived rates are the same
# integers through the same final division.  ``engine=None`` takes
# the session default (repro.backend.core.default_engine).

def _resolve_stream_engine(engine: Optional[str], n: int) -> str:
    """Engine dispatch shared by the stream statistics."""
    return resolve_engine(engine, default_engine(), cycles=n)


def bit_activities(stream: WordStream, engine: Optional[str] = None
                   ) -> List[float]:
    """Per-bit toggles per cycle (E_i of the bitwise macro-model).

    Streams of length <= 1 have no transitions: all-zero activities.
    """
    if len(stream) < 2:
        return [0.0] * stream.width
    engine = _resolve_stream_engine(engine, len(stream))
    if engine in ("fast", "numpy"):
        from repro.rtl import faststreams

        counts = faststreams.toggle_counts(
            stream.bit_planes(),
            backend="numpy" if engine == "numpy" else None)
    else:
        counts = _bit_toggle_counts_reference(stream)
    return [c / (len(stream) - 1) for c in counts]


def _bit_toggle_counts_reference(stream: WordStream) -> List[int]:
    counts = [0] * stream.width
    for prev, cur in zip(stream.words, stream.words[1:]):
        diff = prev ^ cur
        for i in range(stream.width):
            if (diff >> i) & 1:
                counts[i] += 1
    return counts


def average_activity(stream: WordStream,
                     engine: Optional[str] = None) -> float:
    acts = bit_activities(stream, engine=engine)
    return sum(acts) / len(acts) if acts else 0.0


def bit_probabilities(stream: WordStream, engine: Optional[str] = None
                      ) -> List[float]:
    if not len(stream):
        return [0.0] * stream.width
    engine = _resolve_stream_engine(engine, len(stream))
    if engine in ("fast", "numpy"):
        from repro.rtl import faststreams

        counts = faststreams.one_counts(
            stream.bit_planes(),
            backend="numpy" if engine == "numpy" else None)
    else:
        counts = _bit_one_counts_reference(stream)
    return [c / len(stream) for c in counts]


def _bit_one_counts_reference(stream: WordStream) -> List[int]:
    counts = [0] * stream.width
    for w in stream.words:
        for i in range(stream.width):
            if (w >> i) & 1:
                counts[i] += 1
    return counts


def _entropy(p: float) -> float:
    if p <= 0.0 or p >= 1.0:
        return 0.0
    return -p * math.log2(p) - (1 - p) * math.log2(1 - p)


def bit_entropy(stream: WordStream) -> float:
    """Average per-bit entropy, the upper bound h of Section II-B1."""
    probs = bit_probabilities(stream)
    if not probs:
        return 0.0
    return sum(_entropy(p) for p in probs) / len(probs)


def word_entropy(stream: WordStream) -> float:
    """Empirical word-level (sectional) entropy of the stream."""
    if not len(stream):
        return 0.0
    counts: Dict[int, int] = {}
    for w in stream.words:
        counts[w] = counts.get(w, 0) + 1
    n = len(stream)
    return -sum((c / n) * math.log2(c / n) for c in counts.values())


def sign_transition_counts(stream: WordStream,
                           engine: Optional[str] = None
                           ) -> Dict[str, int]:
    """Counts of sign transitions ++, +-, -+, -- (DBT model inputs)."""
    sign_bit = stream.width - 1
    counts = {"++": 0, "+-": 0, "-+": 0, "--": 0}
    if len(stream) < 2:
        return counts
    engine = _resolve_stream_engine(engine, len(stream))
    n = len(stream)
    if engine == "numpy":
        from repro.rtl import faststreams

        # Same three popcounts as the bignum path, on the cached
        # backend lane words; ~x is ones_mask ^ x to stay masked.
        be = get_backend("numpy")
        lane = faststreams.backend_lanes(stream.bit_planes(),
                                         be)[sign_bit]
        mask = be.low_mask(n - 1, n)
        ones = be.ones_mask(n)
        nxt = be.shift_out_time(lane)
        counts["--"] = be.popcount(lane & nxt & mask)
        counts["-+"] = be.popcount(lane & (ones ^ nxt) & mask)
        counts["+-"] = be.popcount((ones ^ lane) & nxt & mask)
        counts["++"] = (n - 1) - counts["--"] - counts["-+"] \
            - counts["+-"]
        return counts
    if engine == "fast":
        from repro.util.bits import popcount

        # Bit t of the sign lane is the sign of word t; shifting by
        # one aligns each word's sign with its successor's.
        lane = stream.bit_planes().lanes[sign_bit]
        mask = (1 << (n - 1)) - 1
        nxt = lane >> 1
        counts["--"] = popcount(lane & nxt & mask)
        counts["-+"] = popcount(lane & ~nxt & mask)
        counts["+-"] = popcount(~lane & nxt & mask)
        counts["++"] = (n - 1) - counts["--"] - counts["-+"] \
            - counts["+-"]
        return counts
    for prev, cur in zip(stream.words, stream.words[1:]):
        a = "-" if (prev >> sign_bit) & 1 else "+"
        b = "-" if (cur >> sign_bit) & 1 else "+"
        counts[a + b] += 1
    return counts


def lag1_correlation(stream: WordStream) -> float:
    """Lag-1 autocorrelation of the signed word values."""
    if len(stream) < 3:
        return 0.0
    half = 1 << (stream.width - 1)
    values = [w - (w & half) * 2 for w in stream.words]
    n = len(values)
    mean = sum(values) / n
    var = sum((v - mean) ** 2 for v in values) / n
    if var == 0:
        return 0.0
    cov = sum((values[t] - mean) * (values[t + 1] - mean)
              for t in range(n - 1)) / (n - 1)
    return cov / var


def breakpoints(stream: WordStream, threshold: float = 0.1
                ) -> int:
    """DBT boundary: first bit (from MSB) whose activity is 'random'.

    Returns the index of the lowest sign-region bit; bits below it are
    treated as white noise, bits at or above as sign bits [40].
    """
    acts = bit_activities(stream)
    random_level = 0.5
    boundary = stream.width
    for i in reversed(range(stream.width)):
        if abs(acts[i] - random_level) <= threshold * random_level:
            boundary = i + 1
            break
        boundary = i
    return boundary
