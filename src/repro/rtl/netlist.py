"""RTL netlists: components wired by word-level signals.

An :class:`RtlNetlist` connects component instances (from
:mod:`repro.rtl.components`) through named word signals.  Registers
(``reg`` components) break combinational cycles; everything else must
form a DAG.  The structure is deliberately simple -- it is the
"RT-level description" a behavioral synthesizer would emit (Fig. 1),
and the object RT-level power cosimulation operates on (Section II-C2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.rtl.components import RtlComponent, make_component


@dataclass
class RtlInstance:
    """A component instance reading word signals and driving one."""

    name: str
    component: RtlComponent
    input_signals: List[str]
    output_signal: str


class RtlNetlist:
    """Word-level netlist of RTL component instances."""

    def __init__(self, name: str = "rtl") -> None:
        self.name = name
        self.inputs: List[Tuple[str, int]] = []      # (signal, width)
        self.outputs: List[str] = []
        self.instances: List[RtlInstance] = []
        self.constants: Dict[str, int] = {}
        self._driver: Dict[str, object] = {}

    def add_input(self, signal: str, width: int) -> str:
        if signal in self._driver:
            raise ValueError(f"signal {signal!r} already driven")
        self.inputs.append((signal, width))
        self._driver[signal] = "input"
        return signal

    def add_constant(self, signal: str, value: int, width: int) -> str:
        if signal in self._driver:
            raise ValueError(f"signal {signal!r} already driven")
        self.constants[signal] = value & ((1 << width) - 1)
        self._driver[signal] = "constant"
        return signal

    def add_output(self, signal: str) -> str:
        self.outputs.append(signal)
        return signal

    def add_instance(self, kind: str, width: int,
                     input_signals: Sequence[str],
                     output_signal: Optional[str] = None,
                     name: Optional[str] = None) -> RtlInstance:
        component = make_component(kind, width)
        if len(input_signals) != len(component.input_ports):
            raise ValueError(
                f"{kind} takes {len(component.input_ports)} operands, "
                f"got {len(input_signals)}")
        if output_signal is None:
            output_signal = f"w{len(self.instances)}_{kind}"
        if output_signal in self._driver:
            raise ValueError(f"signal {output_signal!r} already driven")
        if name is None:
            name = f"u{len(self.instances)}_{kind}{width}"
        instance = RtlInstance(name, component, list(input_signals),
                               output_signal)
        self.instances.append(instance)
        self._driver[output_signal] = instance
        return instance

    def combinational_order(self) -> List[RtlInstance]:
        """Non-register instances in dependency order."""
        ready = {s for s, _w in self.inputs}
        ready.update(self.constants)
        ready.update(i.output_signal for i in self.instances
                     if i.component.kind == "reg")
        order: List[RtlInstance] = []
        pending = [i for i in self.instances if i.component.kind != "reg"]
        while pending:
            progressed = False
            still: List[RtlInstance] = []
            for inst in pending:
                if all(s in ready for s in inst.input_signals):
                    order.append(inst)
                    ready.add(inst.output_signal)
                    progressed = True
                else:
                    still.append(inst)
            pending = still
            if pending and not progressed:
                names = [i.name for i in pending]
                raise ValueError(
                    f"combinational cycle or undriven signal among {names}")
        return order

    def registers(self) -> List[RtlInstance]:
        return [i for i in self.instances if i.component.kind == "reg"]

    def signal_width(self, signal: str) -> int:
        driver = self._driver.get(signal)
        if driver == "input":
            for s, w in self.inputs:
                if s == signal:
                    return w
        if driver == "constant":
            return max(1, self.constants[signal].bit_length())
        if isinstance(driver, RtlInstance):
            return sum(w for _p, w in driver.component.output_ports)
        raise KeyError(f"unknown signal {signal!r}")

    def __repr__(self) -> str:
        return (f"RtlNetlist({self.name!r}, inputs={len(self.inputs)}, "
                f"instances={len(self.instances)})")
