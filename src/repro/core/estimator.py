"""Unified power estimator across abstraction levels.

:class:`PowerEstimator` is the "power analyzer/estimator" box of the
paper's Fig. 1: one object that can be asked for a power estimate at
whatever abstraction the design currently exists in --

- software:    a program for the framework's ISA,
- behavioral:  a CDFG (entropy / complexity / quick-synthesis models),
- RTL:         a component with operand streams (macro-models, with
  census/sampler/adaptive evaluation),
- gate:        a netlist with stimulus (simulation, probabilistic, or
  Monte Carlo).

Every method reports an :class:`EstimateResult` carrying the value,
the technique used, and a relative-cost indicator so flows can trade
accuracy for speed, which is the entire premise of high-level
estimation.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro import obs
from repro.logic.netlist import Circuit
from repro.logic.simulate import Vector


@dataclass
class EstimateResult:
    """A power estimate plus its provenance."""

    power: float
    technique: str
    level: str
    cost: float = 0.0     # relative evaluation cost (bigger = slower)

    def __repr__(self) -> str:
        return (f"EstimateResult({self.power:.4f}, {self.technique!r}, "
                f"level={self.level!r})")


def _traced(method):
    """Wrap an estimator method in an ``estimator.<name>`` span.

    The span carries the technique/level/power of the produced
    :class:`EstimateResult` and bumps a per-level call counter; with
    the obs subsystem disabled the original method is called directly.
    """
    import functools

    name = method.__name__

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        if not obs.enabled():
            return method(self, *args, **kwargs)
        with obs.span(f"estimator.{name}") as sp:
            result = method(self, *args, **kwargs)
            sp.set("technique", result.technique)
            sp.set("level", result.level)
            sp.set("power", result.power)
            sp.add("cost", result.cost)
        obs.inc(f"estimator.calls.{result.level}")
        return result

    return wrapper


class PowerEstimator:
    """Facade over the estimation techniques of Section II."""

    #: Bound on the per-estimator packed-stimulus memo (entries).
    PACK_CACHE_ENTRIES = 8

    def __init__(self, vdd: float = 1.0, freq: float = 1.0,
                 engine: str = "fast") -> None:
        self.vdd = vdd
        self.freq = freq
        #: Gate-level simulation engine: "fast" (bit-parallel
        #: compiled, exactly equivalent) or "reference" (scalar).
        self.engine = engine
        self._pack_cache: "OrderedDict[tuple, object]" = OrderedDict()

    # ------------------------------------------------------------------
    # Software level (Section II-A)
    # ------------------------------------------------------------------
    @_traced
    def software(self, program, model=None) -> EstimateResult:
        """Instruction-level estimate of a program's energy."""
        from repro.estimation.software_power import TiwariModel
        from repro.software.machine import Machine

        stats = Machine().run(list(program))
        if model is None:
            model = TiwariModel.characterize(loop_length=200)
        energy = model.estimate(stats)
        return EstimateResult(energy, "tiwari-instruction-level",
                              "software", cost=stats.instructions)

    # ------------------------------------------------------------------
    # Behavioral level (Section II-B)
    # ------------------------------------------------------------------
    @_traced
    def behavioral(self, cdfg, technique: str = "quick-synthesis",
                   **kwargs) -> EstimateResult:
        if technique == "quick-synthesis":
            from repro.estimation.quicksynth import \
                quick_synthesis_estimate

            estimate = quick_synthesis_estimate(cdfg, **kwargs)
            return EstimateResult(estimate.total, technique, "behavioral",
                                  cost=10.0)
        if technique == "gate-equivalents":
            from repro.estimation.complexity import gate_equivalent_power

            counts = cdfg.operation_counts()
            equivalents = {"add": 12, "sub": 14, "mult": 60, "mux": 4,
                           "lshift": 1, "cmp_gt": 8, "cmp_eq": 6}
            n = sum(equivalents.get(k, 8) * v for k, v in counts.items())
            power = gate_equivalent_power(n, vdd=self.vdd, freq=self.freq)
            return EstimateResult(power, technique, "behavioral", cost=1.0)
        raise ValueError(f"unknown behavioral technique {technique!r}")

    @_traced
    def entropic(self, circuit: Circuit, vectors: Sequence[Vector],
                 model: str = "marculescu") -> EstimateResult:
        """Information-theoretic estimate (Section II-B1)."""
        from repro.estimation.entropy import \
            estimate_circuit_power_entropic

        power = estimate_circuit_power_entropic(
            circuit, vectors, model=model, vdd=self.vdd, freq=self.freq)
        return EstimateResult(power, f"entropy/{model}", "behavioral",
                              cost=len(vectors))

    # ------------------------------------------------------------------
    # RT level (Section II-C)
    # ------------------------------------------------------------------
    @_traced
    def rtl(self, component, streams, model=None,
            evaluation: str = "census", **kwargs) -> EstimateResult:
        """Macro-model estimate of an RTL component under stimulus."""
        from repro.estimation.macromodel import BitwiseModel, \
            fit_macromodel
        from repro.estimation import sampling

        if model is None:
            model = fit_macromodel(BitwiseModel(), component)
        if evaluation == "census":
            result = sampling.census_power(model, streams)
        elif evaluation == "sampler":
            result = sampling.sampler_power(model, streams, **kwargs)
        elif evaluation == "adaptive":
            result = sampling.adaptive_power(model, component, streams,
                                             **kwargs)
        else:
            raise ValueError(f"unknown evaluation {evaluation!r}")
        scaled = result.estimate * 0.5 * self.vdd * self.vdd * self.freq \
            / 0.5
        return EstimateResult(scaled, f"macromodel/{model.name}"
                              f"/{evaluation}", "rtl", cost=result.cost)

    # ------------------------------------------------------------------
    # Gate level (reference techniques)
    # ------------------------------------------------------------------
    @_traced
    def gate(self, circuit: Circuit,
             vectors: Optional[Sequence[Vector]] = None,
             technique: str = "simulation",
             engine: Optional[str] = None) -> EstimateResult:
        if technique == "simulation":
            if vectors is None:
                raise ValueError("simulation needs stimulus vectors")
            from repro.logic import incremental
            from repro.logic.simulate import collect_activity

            engine = engine or self.engine
            # Transparent incremental path: when this process has
            # already simulated a structurally nearby circuit under
            # the same stimulus, splice the cached cones instead of
            # resimulating everything.  With an empty cone cache the
            # probe costs one len() check; the report is bit-identical
            # either way.
            report = incremental.cached_activity(circuit, vectors,
                                                 engine=engine)
            if report is None:
                report = collect_activity(circuit, vectors, engine=engine)
            power = report.average_power(vdd=self.vdd, freq=self.freq)
            return EstimateResult(power, f"{technique}/{engine}", "gate",
                                  cost=len(vectors) * circuit.gate_count())
        if technique == "incremental":
            if vectors is None:
                raise ValueError("incremental simulation needs stimulus "
                                 "vectors")
            from repro.logic import incremental

            engine = engine or self.engine
            report = incremental.collect_activity_incremental(
                circuit, vectors, engine=engine)
            power = report.average_power(vdd=self.vdd, freq=self.freq)
            return EstimateResult(power, f"{technique}/{engine}", "gate",
                                  cost=len(vectors) * circuit.gate_count())
        if technique == "event-driven":
            if vectors is None:
                raise ValueError("event-driven needs stimulus vectors")
            from repro.logic.eventsim import EventSimulator

            engine = engine or self.engine
            power = EventSimulator(circuit, engine=engine).run(
                vectors).average_power(vdd=self.vdd, freq=self.freq)
            return EstimateResult(
                power, f"{technique}/{engine}", "gate",
                cost=3.0 * len(vectors) * circuit.gate_count())
        if technique == "probabilistic":
            from repro.estimation.probabilistic import \
                density_power_estimate

            power = density_power_estimate(circuit, vdd=self.vdd,
                                           freq=self.freq)
            return EstimateResult(power, "transition-density", "gate",
                                  cost=circuit.gate_count())
        if technique == "learned":
            if vectors is None:
                raise ValueError("learned estimation needs stimulus "
                                 "vectors")
            from repro.estimation.learned import model_for

            model = model_for(circuit)
            power = model.predict_power(vectors) \
                * self.vdd * self.vdd * self.freq
            # Evaluation walks input lanes only — cost scales with
            # cycles and model terms, not gate count.
            return EstimateResult(
                power, "learned/windowed-ridge", "rtl",
                cost=float(len(vectors) * max(1, model.n_terms)))
        if technique == "monte-carlo":
            from repro.estimation.probabilistic import monte_carlo_power

            result = monte_carlo_power(circuit)
            return EstimateResult(
                result.power * self.vdd * self.vdd * self.freq,
                "monte-carlo", "gate",
                cost=result.vectors_used * circuit.gate_count())
        raise ValueError(f"unknown gate technique {technique!r}")

    @_traced
    def estimate_delta(self, base: Circuit, variant: Circuit,
                       vectors: Sequence[Vector],
                       engine: Optional[str] = None) -> EstimateResult:
        """Re-estimate an edited ``variant`` against a cached ``base``.

        Primes the process cone cache with the base circuit (free when
        it is already resident) and evaluates the variant by
        resimulating only the dirty cone — edited gates plus
        transitive fanout, closed over latch feedback — splicing the
        clean region's cached per-net activity.  The resulting power
        is **bit-identical** to a full ``technique="simulation"``
        estimate of the variant; the reported cost scales with the
        dirty-net count instead of the gate count.
        """
        from repro.logic import incremental

        engine = engine or self.engine
        report, stats = incremental.estimate_delta(base, variant, vectors,
                                                   engine=engine)
        power = report.average_power(vdd=self.vdd, freq=self.freq)
        if obs.enabled():
            obs.inc("estimator.delta_reused_nets", stats.reused_nets)
        return EstimateResult(
            power, f"simulation-delta/{engine}", "gate",
            cost=float(len(vectors) * max(1, stats.dirty_nets)))

    def packed_stimulus(self, input_ports, streams,
                        length: Optional[int] = None):
        """Memoized :func:`repro.logic.fastsim.pack_streams`.

        Repeated ``estimate`` calls over the same operand streams used
        to repack the bit planes into input lanes every time; the memo
        keys on each stream's content ``fingerprint()`` (plus ports
        and length), so a mutated-then-invalidated stream repacks
        while an untouched one is a dict hit.  Streams without a
        fingerprint (plain word-list objects) are packed uncached.
        """
        from repro.logic.fastsim import pack_streams

        try:
            fps = tuple(s.fingerprint() for s in streams)
        except AttributeError:
            return pack_streams(input_ports, streams, length)
        key = (tuple((p, w) for p, w in input_ports), fps, length)
        packed = self._pack_cache.get(key)
        if packed is not None:
            self._pack_cache.move_to_end(key)
            if obs.enabled():
                obs.inc("estimator.pack_hits")
            return packed
        packed = pack_streams(input_ports, streams, length)
        self._pack_cache[key] = packed
        while len(self._pack_cache) > self.PACK_CACHE_ENTRIES:
            self._pack_cache.popitem(last=False)
        return packed

    def component(self, component, streams,
                  technique: str = "simulation",
                  engine: Optional[str] = None,
                  length: Optional[int] = None) -> EstimateResult:
        """Gate-level estimate of an RTL component under word streams.

        Packs the streams once per content fingerprint (see
        :meth:`packed_stimulus`) and feeds the shared packed lanes to
        :meth:`gate` — the repeated-evaluation shape every
        optimization sweep has.
        """
        packed = self.packed_stimulus(component.input_ports, streams,
                                      length)
        return self.gate(component.circuit, packed, technique=technique,
                         engine=engine)
