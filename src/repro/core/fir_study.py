"""The Table I experiment: FIR filter capacitance breakdown before and
after converting constant multiplications into shift/add networks.

The paper's Table I (from Chandrakasan et al. [18]) reports the
switched capacitance of a direct-mapped FIR filter datapath split into
four components — execution units, registers/clock, control logic,
interconnect — before and after the transformation.  The published
shape: execution units drop by roughly a factor of eight and dominate
the saving, registers/clock and interconnect shrink moderately with
the implementation's area, control logic pays a small *penalty*, and
the total falls by ~2.7x.

This module rebuilds the experiment on the framework's own stack with
a direct-mapped datapath (one unit per operation, the architecture of
[18]'s voltage-scaled designs):

- per-tap coefficient multipliers (:func:`array_multiplier` fed a
  constant coefficient) versus per-tap CSD shift/add scalers
  (:func:`constant_scaler`), both measured by gate-level simulation
  under speech-like AR(1) data,
- a shared balanced adder tree, also measured at gate level,
- a tap delay line whose register/clock capacitance scales with the
  implementation area (wire loads shrink when the datapath shrinks),
- sequencing/enable control sized by the number of datapath units
  (more, smaller units after the transformation -> small penalty),
- inter-unit buses whose switched capacitance is measured from the
  actual product streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cdfg.transforms import csd_digits
from repro.logic import gates as gatelib
from repro.logic.generators import array_multiplier, constant_scaler, \
    ripple_carry_adder
from repro.logic.netlist import Circuit
from repro.logic.simulate import collect_activity
from repro.rtl.streams import WordStream, bit_activities


@dataclass
class CapacitanceBreakdown:
    """Per-cycle switched capacitance of one implementation."""

    execution_units: float
    registers_clock: float
    control_logic: float
    interconnect: float

    @property
    def total(self) -> float:
        return (self.execution_units + self.registers_clock
                + self.control_logic + self.interconnect)

    def rows(self) -> List[Tuple[str, float, float]]:
        total = self.total or 1.0
        return [
            ("Execution units", self.execution_units,
             100.0 * self.execution_units / total),
            ("Registers/clock", self.registers_clock,
             100.0 * self.registers_clock / total),
            ("Control logic", self.control_logic,
             100.0 * self.control_logic / total),
            ("Interconnect", self.interconnect,
             100.0 * self.interconnect / total),
        ]


def _activity_of(circuit: Circuit, streams: Dict[str, WordStream]
                 ) -> Tuple[float, List[int]]:
    """(switched cap per cycle, functional output words) of a unit."""
    length = min(len(s) for s in streams.values())
    vectors = []
    for t in range(length):
        vec: Dict[str, int] = {}
        for prefix, stream in streams.items():
            for i in range(stream.width):
                vec[f"{prefix}{i}"] = (stream.words[t] >> i) & 1
        vectors.append(vec)
    report = collect_activity(circuit, vectors)
    from repro.logic.simulate import simulate

    trace = simulate(circuit, vectors)
    out_words = []
    out_nets = circuit.outputs
    for values in trace:
        word = 0
        for i, net in enumerate(out_nets):
            word |= values[net] << i
        out_words.append(word)
    per_cycle = report.switched_capacitance / max(1, length - 1)
    return per_cycle, out_words


def _adder_tree_capacitance(product_streams: List[List[int]],
                            width: int) -> Tuple[float, float]:
    """(switched cap, total area) of a balanced tree of ripple adders."""
    level = [WordStream(words, width) for words in product_streams]
    total = 0.0
    area = 0.0
    while len(level) > 1:
        nxt: List[WordStream] = []
        for i in range(0, len(level) - 1, 2):
            adder = ripple_carry_adder(width)
            area += adder.area()
            cap, out_words = _activity_of(
                adder, {"a": level[i], "b": level[i + 1]})
            total += cap
            nxt.append(WordStream([w & ((1 << width) - 1)
                                   for w in out_words], width))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return total, area


def _datapath(taps: Sequence[int], width: int,
              tap_streams: List[WordStream],
              use_scalers: bool) -> CapacitanceBreakdown:
    mask = (1 << width) - 1

    # --- execution units: per-tap coefficient units + adder tree ----
    exec_cap = 0.0
    unit_area = 0.0
    n_units = 0
    product_streams: List[List[int]] = []
    out_activity = 0.0
    for coeff, stream in zip(taps, tap_streams):
        if use_scalers:
            unit = constant_scaler(coeff & mask, width)
            cap, out_words = _activity_of(unit, {"a": stream})
            n_units += max(1, len(csd_digits(coeff & mask)))
        else:
            unit = array_multiplier(width)
            const_stream = WordStream([coeff & mask] * len(stream), width)
            cap, out_words = _activity_of(
                unit, {"a": stream, "b": const_stream})
            out_words = [w & mask for w in out_words]
            n_units += 1
        exec_cap += cap
        unit_area += unit.area()
        product_streams.append([w & mask for w in out_words])
        out_activity += sum(
            bit_activities(WordStream(product_streams[-1], width)))

    tree_cap, tree_area = _adder_tree_capacitance(product_streams, width)
    exec_cap += tree_cap
    unit_area += tree_area
    n_units += len(taps) - 1

    # --- registers/clock: tap delay line + output register ----------
    n_flops = (len(taps) + 1) * width
    clock = 2.0 * gatelib.DFF_CLOCK_CAP * n_flops
    # Data switching of the delay line: each tap's bits toggle with
    # the input stream's activity; flop D+Q caps plus a wire load that
    # scales with the implementation's area (bigger floorplan, longer
    # wires) -- the area coupling Table I attributes the register and
    # interconnect reductions to.
    area_factor = unit_area / 400.0
    flop_cap = (gatelib.DFF_INPUT_CAP + gatelib.DFF_OUTPUT_CAP
                + gatelib.wire_capacitance(2) * (0.5 + area_factor))
    data = sum(sum(bit_activities(s)) for s in tap_streams) * flop_cap
    registers = clock + data

    # --- control: sequencing + per-unit enables ---------------------
    control = (6.0 * gatelib.DFF_CLOCK_CAP
               + 0.8 * n_units
               + 0.15 * n_units * gatelib.wire_capacitance(2))

    # --- interconnect: unit-to-tree buses ----------------------------
    wire_per_bit = gatelib.wire_capacitance(2) * (0.5 + area_factor)
    interconnect = out_activity * wire_per_bit

    return CapacitanceBreakdown(
        execution_units=exec_cap,
        registers_clock=registers,
        control_logic=control,
        interconnect=interconnect,
    )


@dataclass
class Table1Result:
    before: CapacitanceBreakdown
    after: CapacitanceBreakdown

    @property
    def total_reduction(self) -> float:
        return self.before.total / max(1e-12, self.after.total)

    @property
    def execution_reduction(self) -> float:
        return self.before.execution_units \
            / max(1e-12, self.after.execution_units)

    def format(self) -> str:
        lines = [
            f"{'Component':18s} {'Before cap.':>12s} {'%':>7s}"
            f" {'After cap.':>12s} {'%':>7s}"
        ]
        for (name, b_cap, b_pct), (_n, a_cap, a_pct) in zip(
                self.before.rows(), self.after.rows()):
            lines.append(f"{name:18s} {b_cap:12.2f} {b_pct:7.2f}"
                         f" {a_cap:12.2f} {a_pct:7.2f}")
        lines.append(f"{'Total':18s} {self.before.total:12.2f} "
                     f"{100.0:7.2f} {self.after.total:12.2f} "
                     f"{100.0:7.2f}")
        return "\n".join(lines)


def table1_experiment(taps: Sequence[int] = (3, 5, 7, 9, 11, 7, 5, 3),
                      width: int = 8, seed: int = 0,
                      cycles: int = 64,
                      correlated_data: bool = True) -> Table1Result:
    """Run the full Table I flow on a direct-mapped FIR datapath."""
    from repro.rtl.streams import correlated_stream, random_stream

    if correlated_data:
        base = correlated_stream(width, cycles + len(taps), rho=0.9,
                                 seed=seed).words
    else:
        base = random_stream(width, cycles + len(taps), seed=seed).words
    tap_streams = [WordStream(base[i:i + cycles], width)
                   for i in range(len(taps))]

    return Table1Result(
        before=_datapath(taps, width, tap_streams, use_scalers=False),
        after=_datapath(taps, width, tap_streams, use_scalers=True),
    )
