"""The framework facade: level-by-level estimation and optimization.

- :mod:`repro.core.estimator` -- :class:`PowerEstimator`, one entry
  point to every estimation technique of Section II, dispatching on
  design abstraction level,
- :mod:`repro.core.flow`      -- :class:`DesignImprovementLoop`, the
  Fig. 1 loop: rank candidate optimizations with a level-appropriate
  estimator and apply the best.
"""

from repro.core.estimator import PowerEstimator, EstimateResult
from repro.core.flow import DesignImprovementLoop, OptimizationStep

__all__ = [
    "PowerEstimator",
    "EstimateResult",
    "DesignImprovementLoop",
    "OptimizationStep",
]
