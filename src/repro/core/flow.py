"""The design-improvement loop of Fig. 1.

At every abstraction level, candidate design/synthesis/optimization
options are ranked by a level-appropriate power estimate, the best one
is applied, and the flow moves down a level.  The loop's value is that
feedback arrives level-by-level instead of only after gate-level
implementation — exactly the argument of the paper's introduction.

:class:`DesignImprovementLoop` is deliberately generic: a *candidate*
is any callable returning a transformed design, and an *evaluator*
maps a design to an :class:`EstimateResult`.  The examples and
benches instantiate it for behavioral transforms (Figs. 4-5), bus
codes, and encoding choices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Generic, List, Optional, Sequence, \
    Tuple, TypeVar

from repro.core.estimator import EstimateResult

Design = TypeVar("Design")


@dataclass
class OptimizationStep:
    """Record of one loop iteration."""

    level: str
    chosen: str
    estimates: Dict[str, float]
    improvement: float     # fraction saved vs the unoptimized option


class DesignImprovementLoop(Generic[Design]):
    """Iteratively pick the lowest-power candidate at each level."""

    def __init__(self) -> None:
        self.history: List[OptimizationStep] = []

    def improve(self, level: str, design: Design,
                candidates: Dict[str, Callable[[Design], Design]],
                evaluator: Callable[[Design], EstimateResult],
                keep_original: bool = True) -> Design:
        """Apply each candidate, estimate, keep the best design.

        ``candidates`` maps option names to transformation callables;
        with ``keep_original`` the untransformed design competes too.
        """
        options: Dict[str, Design] = {}
        if keep_original:
            options["original"] = design
        for name, transform in candidates.items():
            options[name] = transform(design)

        estimates = {name: evaluator(d).power
                     for name, d in options.items()}
        chosen = min(estimates, key=lambda n: estimates[n])
        baseline = estimates.get("original",
                                 max(estimates.values()))
        improvement = 0.0
        if baseline > 0:
            improvement = 1.0 - estimates[chosen] / baseline
        self.history.append(OptimizationStep(
            level=level, chosen=chosen, estimates=estimates,
            improvement=improvement))
        return options[chosen]

    def total_improvement(self) -> float:
        """Compound fraction saved across all recorded steps."""
        remaining = 1.0
        for step in self.history:
            remaining *= (1.0 - step.improvement)
        return 1.0 - remaining

    def report(self) -> str:
        lines = ["Design improvement loop:"]
        for step in self.history:
            ranked = sorted(step.estimates.items(), key=lambda kv: kv[1])
            pretty = ", ".join(f"{n}={v:.4g}" for n, v in ranked)
            lines.append(
                f"  [{step.level}] chose {step.chosen!r} "
                f"({step.improvement:.1%} saved)  candidates: {pretty}")
        lines.append(f"  total: {self.total_improvement():.1%} saved")
        return "\n".join(lines)
