"""Complexity-based power and area models (Section II-B2).

- :func:`gate_equivalent_power` -- the Chip Estimation System model
  [14]:  P = f N (E_gate + 0.5 V^2 C_load) E_act,
- :class:`LinearMeasure` / :func:`nemani_najm_area_model` -- the
  Nemani-Najm area-complexity model [15]: the linear measure over
  essential prime implicant sizes, regressed (exponential form)
  against optimized-implementation area,
- :func:`landman_rabaey_fsm_power` / :func:`fit_landman_rabaey` -- the
  activity-sensitive controller model [17]:
  P = 0.5 V^2 f (N_I C_I E_I + N_O C_O E_O) N_M with empirically
  fitted capacitance coefficients.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.twolevel.quine_mccluskey import essential_primes, minimize


# ----------------------------------------------------------------------
# Chip estimation system (gate equivalents)
# ----------------------------------------------------------------------

def gate_equivalent_power(n_gate_equivalents: float,
                          energy_gate: float = 1.0,
                          c_load: float = 2.0,
                          activity: float = 0.5,
                          vdd: float = 1.0,
                          freq: float = 1.0) -> float:
    """CES model: Power = f N (Energy_gate + 0.5 V^2 C_load) E_gate."""
    return freq * n_gate_equivalents * (
        energy_gate + 0.5 * vdd * vdd * c_load) * activity


def circuit_gate_equivalents(circuit) -> float:
    """Gate-equivalent count of a netlist (area in NAND2 units)."""
    return circuit.area()


# ----------------------------------------------------------------------
# Nemani-Najm area complexity
# ----------------------------------------------------------------------

def linear_measure(n: int, onset: Sequence[int],
                   dc: Sequence[int] = ()) -> float:
    """C_1(f): sum of essential-prime sizes weighted by covered mass.

    ``c_i`` are the distinct essential prime sizes (in literals) and
    ``p_i`` the probability mass of on-set minterms covered by
    essential primes of size c_i but no larger prime (larger = fewer
    literals = more minterms).
    """
    if not onset:
        return 0.0
    essentials = essential_primes(n, onset, dc)
    if not essentials:
        # Fall back: no essential primes; use the minimized cover.
        essentials = list(minimize(n, list(onset), list(dc)))
    total_minterms = 1 << n
    # Group minterms by the *largest* covering essential prime (fewest
    # literals), then weight each size class.
    onset_set = set(onset)
    best_size: Dict[int, int] = {}
    for prime in essentials:
        literals = prime.literals()
        for minterm in prime.minterms():
            if minterm not in onset_set:
                continue
            if minterm not in best_size or literals < best_size[minterm]:
                best_size[minterm] = literals
    measure = 0.0
    by_size: Dict[int, int] = {}
    for literals in best_size.values():
        by_size[literals] = by_size.get(literals, 0) + 1
    for literals, count in by_size.items():
        p = count / total_minterms
        measure += literals * p
    return measure


def area_complexity(n: int, onset: Sequence[int],
                    dc: Sequence[int] = ()) -> float:
    """C(f) = (C_1(f) + C_0(f)) / 2: average of on-set and off-set."""
    allowed = set(onset) | set(dc)
    offset = [m for m in range(1 << n) if m not in allowed]
    return 0.5 * (linear_measure(n, onset, dc)
                  + linear_measure(n, offset, dc))


@dataclass
class AreaModel:
    """Exponential regression  area = a * exp(b * C(f))  [15]."""

    a: float
    b: float

    def predict(self, complexity: float) -> float:
        return self.a * math.exp(self.b * complexity)


def nemani_najm_area_model(samples: Sequence[Tuple[float, float]]
                           ) -> AreaModel:
    """Fit the exponential regression from (complexity, area) pairs."""
    xs = np.array([c for c, _a in samples], dtype=float)
    ys = np.array([max(a, 1e-9) for _c, a in samples], dtype=float)
    # Linear regression in log space.
    design = np.vstack([xs, np.ones(len(xs))]).T
    coeffs, *_ = np.linalg.lstsq(design, np.log(ys), rcond=None)
    return AreaModel(a=float(math.exp(coeffs[1])), b=float(coeffs[0]))


# ----------------------------------------------------------------------
# Landman-Rabaey controller model
# ----------------------------------------------------------------------

@dataclass
class LandmanRabaeyModel:
    """Fitted capacitance coefficients C_I, C_O of the FSM model [17]."""

    c_in: float
    c_out: float

    def predict(self, n_in: int, n_out: int, e_in: float, e_out: float,
                n_minterms: int, vdd: float = 1.0, freq: float = 1.0
                ) -> float:
        return 0.5 * vdd * vdd * freq * (
            n_in * self.c_in * e_in
            + n_out * self.c_out * e_out) * n_minterms


def landman_rabaey_features(stg, encoding, vectors_seed: int = 0,
                            cycles: int = 300) -> Dict[str, float]:
    """Measure the model's inputs for one synthesized controller.

    N_I / N_O count external-plus-state lines; E_I / E_O their average
    switching activities from simulation; N_M the minterm count of an
    optimized cover of the FSM's combinational logic.
    """
    import random as _random

    from repro.fsm.synthesis import synthesize_fsm
    from repro.logic.simulate import collect_activity

    circuit = synthesize_fsm(stg, encoding)
    rng = _random.Random(vectors_seed)
    vectors = [{f"in{i}": rng.randrange(2) for i in range(stg.n_inputs)}
               for _ in range(cycles)]
    report = collect_activity(circuit, vectors)

    state_nets = [l.output for l in circuit.latches]
    in_lines = [f"in{i}" for i in range(stg.n_inputs)] + state_nets
    out_lines = [f"out{i}" for i in range(stg.n_outputs)] \
        + [l.data for l in circuit.latches]
    e_in = report.average_activity(in_lines)
    e_out = report.average_activity(out_lines)

    n_minterms = _fsm_cover_size(stg, encoding)
    power = report.average_power()
    return {
        "n_in": len(in_lines),
        "n_out": len(out_lines),
        "e_in": e_in,
        "e_out": e_out,
        "n_minterms": n_minterms,
        "measured_power": power,
    }


def _fsm_cover_size(stg, encoding) -> int:
    """Cube count of minimized next-state + output covers."""
    from repro.fsm.synthesis import _cube_minterms

    complete = stg.completed()
    ni, nb = complete.n_inputs, encoding.n_bits
    n_vars = ni + nb
    used = {encoding.codes[s] for s in complete.states}
    dc = [m | (c << ni) for c in range(1 << nb) if c not in used
          for m in range(1 << ni)]
    total = 0
    onsets: List[List[int]] = [[] for _ in range(nb + complete.n_outputs)]
    for t in complete.transitions:
        src = encoding.codes[t.src]
        dst = encoding.codes[t.dst]
        for m in _cube_minterms(t.input_cube):
            full = m | (src << ni)
            for j in range(nb):
                if (dst >> j) & 1:
                    onsets[j].append(full)
            for j, ch in enumerate(t.output):
                if ch == "1":
                    onsets[nb + j].append(full)
    for onset in onsets:
        total += len(minimize(n_vars, onset, dc))
    return max(1, total)


def fit_landman_rabaey(samples: Sequence[Dict[str, float]]
                       ) -> LandmanRabaeyModel:
    """Least-squares fit of C_I and C_O over measured controllers."""
    a = np.array([[s["n_in"] * s["e_in"] * s["n_minterms"],
                   s["n_out"] * s["e_out"] * s["n_minterms"]]
                  for s in samples], dtype=float)
    y = np.array([s["measured_power"] / 0.5 for s in samples], dtype=float)
    coeffs, *_ = np.linalg.lstsq(a, y, rcond=None)
    return LandmanRabaeyModel(c_in=float(coeffs[0]), c_out=float(coeffs[1]))
