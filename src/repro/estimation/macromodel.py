"""Regression-based power macro-models (Section II-C1).

The module implements the paper's accuracy ladder:

- :class:`PfaModel`          -- power factor approximation [39]:
  one constant per module, blind to data,
- :class:`DualBitTypeModel`  -- Landman-Rabaey DBT [40]: separate
  capacitance coefficients for white-noise bits and for each sign
  transition type,
- :class:`BitwiseModel`      -- per-input-pin capacitance times pin
  activity,
- :class:`InputOutputModel`  -- average input and output activities
  (better for deeply nested modules like multipliers),
- :class:`Table3DModel`      -- Gupta-Najm 3D lookup on (P_in, D_in,
  D_out) [41],
- :class:`CycleAccurateModel`-- Wu/Qiu statistical cycle model
  [44], [45]: per-cycle regression with F-test forward variable
  selection over bit values, bit transitions, and spatial-correlation
  products.

All models share the protocol  ``fit(component, training_sets)`` /
``predict(streams)`` with power in energy-per-cycle units (vdd = 1,
f = 1); training sets are lists of operand :class:`WordStream` lists.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.rtl.components import RtlComponent, output_words
from repro.rtl.streams import (
    WordStream,
    average_activity,
    bit_activities,
    bit_probabilities,
    sign_transition_counts,
)

TrainingSet = Sequence[Sequence[WordStream]]


def _measured_power(component: RtlComponent,
                    streams: Sequence[WordStream]) -> float:
    return component.reference_power(streams)


class MacroModel:
    """Common fit/predict protocol."""

    name = "base"

    def fit(self, component: RtlComponent, training: TrainingSet) -> None:
        raise NotImplementedError

    def predict(self, streams: Sequence[WordStream]) -> float:
        raise NotImplementedError

    def error(self, component: RtlComponent,
              streams: Sequence[WordStream]) -> float:
        """Relative error vs gate-level reference on one stimulus."""
        truth = _measured_power(component, streams)
        if truth == 0:
            return 0.0
        return abs(self.predict(streams) - truth) / truth


#: Relative condition threshold beyond which plain least squares is
#: considered untrustworthy and the ridge fallback takes over.
_COND_LIMIT = 1e10


def ridge_lstsq(features: np.ndarray, targets: np.ndarray,
                l2: Optional[float] = None) -> np.ndarray:
    """Least squares with a ridge fallback for degenerate designs.

    Characterization data routinely produces singular or
    ill-conditioned feature matrices — constant streams (zero-activity
    columns), duplicated stimulus runs, single-sample training sets,
    width-1 components whose few features are collinear.  Plain
    ``np.linalg.lstsq`` then returns rank-deficient minimum-norm
    solutions (or, at extreme conditioning, numerically garbage
    coefficients).  This wrapper detects both cases and re-solves the
    Tikhonov-regularized normal equations instead; with ``l2`` given,
    the ridge solve is unconditional (the learned fitter's path).
    The result is always finite.
    """
    matrix = np.atleast_2d(np.asarray(features, dtype=float))
    y = np.asarray(targets, dtype=float).reshape(-1)
    if matrix.size == 0 or y.size == 0:
        return np.zeros(matrix.shape[1] if matrix.ndim == 2 else 0)
    if l2 is None:
        coeffs, _residual, rank, sv = np.linalg.lstsq(matrix, y,
                                                      rcond=None)
        well_conditioned = (
            rank == matrix.shape[1]
            and np.all(np.isfinite(coeffs))
            and len(sv) > 0 and sv[0] > 0
            and sv[0] / max(sv[-1], 1e-300) < _COND_LIMIT)
        if well_conditioned:
            return coeffs
    gram = matrix.T @ matrix
    scale = float(np.trace(gram)) / max(1, gram.shape[0])
    lam = l2 if l2 is not None else max(1e-12, 1e-8 * max(scale, 1.0))
    try:
        coeffs = np.linalg.solve(
            gram + lam * np.eye(gram.shape[0]), matrix.T @ y)
    except np.linalg.LinAlgError:
        coeffs = np.linalg.pinv(matrix) @ y
    if not np.all(np.isfinite(coeffs)):
        coeffs = np.zeros(matrix.shape[1])
    return coeffs


def _lstsq_nonneg_bias(features: np.ndarray, targets: np.ndarray
                       ) -> np.ndarray:
    return ridge_lstsq(features, targets)


class PfaModel(MacroModel):
    """Constant model: average power per activation [39]."""

    name = "pfa"

    def __init__(self) -> None:
        self.constant = 0.0

    def fit(self, component: RtlComponent, training: TrainingSet) -> None:
        values = [_measured_power(component, streams)
                  for streams in training]
        self.constant = float(np.mean(values)) if values else 0.0

    def predict(self, streams: Sequence[WordStream]) -> float:
        return self.constant


class DualBitTypeModel(MacroModel):
    """DBT model [40]: white-noise region + sign-transition terms."""

    name = "dbt"

    def __init__(self, breakpoint_threshold: float = 0.25) -> None:
        self.threshold = breakpoint_threshold
        self.coeffs = np.zeros(5)

    def _features(self, streams: Sequence[WordStream]) -> np.ndarray:
        from repro.rtl.streams import breakpoints

        f = np.zeros(5)
        for s in streams:
            bp = breakpoints(s, self.threshold)
            acts = bit_activities(s)
            n_u = bp
            n_s = s.width - bp
            if n_u:
                f[0] += n_u * float(np.mean(acts[:n_u]))
            if n_s and len(s) > 1:
                counts = sign_transition_counts(s)
                total = max(1, len(s) - 1)
                f[1] += n_s * counts["++"] / total
                f[2] += n_s * counts["+-"] / total
                f[3] += n_s * counts["-+"] / total
                f[4] += n_s * counts["--"] / total
        return f

    def fit(self, component: RtlComponent, training: TrainingSet) -> None:
        rows = np.array([self._features(streams) for streams in training])
        targets = np.array([_measured_power(component, streams)
                            for streams in training])
        self.coeffs = _lstsq_nonneg_bias(rows, targets)

    def predict(self, streams: Sequence[WordStream]) -> float:
        return float(max(0.0, self._features(streams) @ self.coeffs))


class BitwiseModel(MacroModel):
    """Per-input-pin capacitance regression: P = sum_i C_i E_i."""

    name = "bitwise"

    def __init__(self) -> None:
        self.coeffs = np.zeros(0)

    @staticmethod
    def _features(streams: Sequence[WordStream]) -> np.ndarray:
        feats: List[float] = []
        for s in streams:
            feats.extend(bit_activities(s))
        feats.append(1.0)   # intercept
        return np.array(feats)

    def fit(self, component: RtlComponent, training: TrainingSet) -> None:
        rows = np.array([self._features(streams) for streams in training])
        targets = np.array([_measured_power(component, streams)
                            for streams in training])
        self.coeffs = _lstsq_nonneg_bias(rows, targets)

    def predict(self, streams: Sequence[WordStream]) -> float:
        return float(max(0.0, self._features(streams) @ self.coeffs))


class InputOutputModel(MacroModel):
    """P = C_I E_I + C_O E_O with functional output activity."""

    name = "input-output"

    def __init__(self) -> None:
        self.coeffs = np.zeros(3)
        self._component: Optional[RtlComponent] = None

    def _features(self, component: RtlComponent,
                  streams: Sequence[WordStream]) -> np.ndarray:
        e_in = float(np.mean([average_activity(s) for s in streams]))
        out = output_words(component, streams)
        e_out = average_activity(out)
        return np.array([e_in, e_out, 1.0])

    def fit(self, component: RtlComponent, training: TrainingSet) -> None:
        self._component = component
        rows = np.array([self._features(component, streams)
                         for streams in training])
        targets = np.array([_measured_power(component, streams)
                            for streams in training])
        self.coeffs = _lstsq_nonneg_bias(rows, targets)

    def predict(self, streams: Sequence[WordStream]) -> float:
        if self._component is None:
            raise RuntimeError("model not fitted")
        feats = self._features(self._component, streams)
        return float(max(0.0, feats @ self.coeffs))


class Table3DModel(MacroModel):
    """Gupta-Najm 3D table on (P_in, D_in, D_out) with interpolation [41].

    The table is built by the automatic construction procedure the
    paper describes: stimuli sampled over the (probability, activity)
    plane, output activity from fast functional simulation, cell
    averaging, and nearest-cell fallback for empty cells.
    """

    name = "table3d"

    def __init__(self, bins: int = 5) -> None:
        self.bins = bins
        self._table: Dict[Tuple[int, int, int], float] = {}

    def _axes(self, component: RtlComponent,
              streams: Sequence[WordStream]) -> Tuple[float, float, float]:
        p_in = float(np.mean([np.mean(bit_probabilities(s))
                              for s in streams]))
        d_in = float(np.mean([average_activity(s) for s in streams]))
        out = output_words(component, streams)
        d_out = average_activity(out)
        return p_in, d_in, d_out

    def _cell(self, axes: Tuple[float, float, float]) -> Tuple[int, int, int]:
        return tuple(min(self.bins - 1, int(a * self.bins))
                     for a in axes)  # type: ignore[return-value]

    def fit(self, component: RtlComponent, training: TrainingSet) -> None:
        self._component = component
        cells: Dict[Tuple[int, int, int], List[float]] = {}
        for streams in training:
            axes = self._axes(component, streams)
            cells.setdefault(self._cell(axes), []).append(
                _measured_power(component, streams))
        self._table = {cell: float(np.mean(vals))
                       for cell, vals in cells.items()}

    def predict(self, streams: Sequence[WordStream]) -> float:
        axes = self._axes(self._component, streams)
        cell = self._cell(axes)
        if cell in self._table:
            return self._table[cell]
        # Nearest filled cell (Manhattan distance).
        best = min(self._table,
                   key=lambda c: sum(abs(a - b) for a, b in zip(c, cell)))
        return self._table[best]


# ----------------------------------------------------------------------
# Cycle-accurate macro-modeling (Wu [44], Qiu [45])
# ----------------------------------------------------------------------

@dataclass
class _Candidate:
    """One candidate regression variable over per-cycle data."""

    label: str
    column: np.ndarray


class CycleAccurateModel(MacroModel):
    """Per-cycle energy regression with F-test forward selection.

    Candidate variables per input bit b: the current value x_b(t), the
    transition indicator x_b(t-1) XOR x_b(t) (first-order temporal
    correlation), and pairwise transition products for adjacent bits
    (spatial correlation up to the paper's order-three spirit, kept
    quadratic for tractability).  Forward selection adds the variable
    with the largest partial F statistic until it drops below
    ``f_threshold`` or ``max_variables`` is reached — the paper finds
    ~8 variables suffice for 5-10% average error.
    """

    name = "cycle-accurate"

    def __init__(self, max_variables: int = 8, f_threshold: float = 4.0,
                 spatial_pairs: int = 8) -> None:
        self.max_variables = max_variables
        self.f_threshold = f_threshold
        self.spatial_pairs = spatial_pairs
        self.selected: List[str] = []
        self.coeffs = np.zeros(0)
        self._component: Optional[RtlComponent] = None

    # -- feature construction ------------------------------------------
    def _candidates(self, streams: Sequence[WordStream]
                    ) -> List[_Candidate]:
        length = min(len(s) for s in streams)
        cands: List[_Candidate] = []
        transitions: List[Tuple[str, np.ndarray]] = []
        for si, s in enumerate(streams):
            words = s.words[:length]
            for b in range(s.width):
                bits = np.array([(w >> b) & 1 for w in words], dtype=float)
                value_col = bits[1:]
                trans_col = np.abs(np.diff(bits))
                cands.append(_Candidate(f"v{si}_{b}", value_col))
                cands.append(_Candidate(f"t{si}_{b}", trans_col))
                transitions.append((f"t{si}_{b}", trans_col))
        # Spatial-correlation products between transition columns.
        for i in range(min(self.spatial_pairs, len(transitions) - 1)):
            la, ca = transitions[i]
            lb, cb = transitions[i + 1]
            cands.append(_Candidate(f"{la}*{lb}", ca * cb))
        return cands

    def fit(self, component: RtlComponent, training: TrainingSet) -> None:
        self._component = component
        # Concatenate per-cycle rows over all training runs.
        all_cols: Dict[str, List[np.ndarray]] = {}
        targets: List[np.ndarray] = []
        labels: Optional[List[str]] = None
        for streams in training:
            cands = self._candidates(streams)
            if labels is None:
                labels = [c.label for c in cands]
            energies = np.array(component.cycle_energies(streams))
            targets.append(energies)
            for c in cands:
                all_cols.setdefault(c.label, []).append(c.column)
        assert labels is not None
        y = np.concatenate(targets)
        matrix = {label: np.concatenate(all_cols[label])
                  for label in labels}
        self.selected, self.coeffs = self._forward_select(matrix, y)

    def _forward_select(self, columns: Dict[str, np.ndarray],
                        y: np.ndarray) -> Tuple[List[str], np.ndarray]:
        n = len(y)
        selected: List[str] = []
        design = np.ones((n, 1))
        residual_ss = float(((y - y.mean()) ** 2).sum())
        coeffs = np.array([y.mean()])
        while len(selected) < self.max_variables:
            best_label = None
            best_rss = residual_ss
            best_coeffs = coeffs
            for label, col in columns.items():
                if label in selected:
                    continue
                trial = np.column_stack([design, col])
                sol, *_ = np.linalg.lstsq(trial, y, rcond=None)
                rss = float(((y - trial @ sol) ** 2).sum())
                if rss < best_rss:
                    best_rss = rss
                    best_label = label
                    best_coeffs = sol
            if best_label is None:
                break
            dof = n - (len(selected) + 2)
            if dof <= 0 or best_rss <= 0:
                break
            f_stat = (residual_ss - best_rss) / (best_rss / dof)
            if f_stat < self.f_threshold:
                break
            selected.append(best_label)
            design = np.column_stack([design, columns[best_label]])
            residual_ss = best_rss
            coeffs = best_coeffs
        return selected, coeffs

    # -- prediction -----------------------------------------------------
    def predict_cycles(self, streams: Sequence[WordStream]) -> np.ndarray:
        """Per-cycle energy predictions (cycle power of [45])."""
        cands = {c.label: c.column for c in self._candidates(streams)}
        length = min(len(s) for s in streams) - 1
        design = np.ones((length, 1))
        for label in self.selected:
            design = np.column_stack([design, cands[label]])
        return design @ self.coeffs

    def predict(self, streams: Sequence[WordStream]) -> float:
        return float(np.mean(self.predict_cycles(streams)))

    def cycle_error(self, component: RtlComponent,
                    streams: Sequence[WordStream]) -> float:
        """RMS relative per-cycle error vs the gate-level reference."""
        truth = np.array(component.cycle_energies(streams))
        pred = self.predict_cycles(streams)
        scale = max(float(truth.mean()), 1e-12)
        return float(np.sqrt(np.mean((pred - truth) ** 2)) / scale)


# ----------------------------------------------------------------------
# Characterization helper (Section II-C1 step 1)
# ----------------------------------------------------------------------

def characterization_streams(component: RtlComponent, runs: int = 24,
                             length: int = 120, seed: int = 0
                             ) -> List[List[WordStream]]:
    """Pseudorandom + correlated + biased training stimulus mix."""
    from repro.rtl.streams import (
        constant_stream,
        correlated_stream,
        random_stream,
    )

    rng = random.Random(seed)
    training: List[List[WordStream]] = []
    for r in range(runs):
        streams: List[WordStream] = []
        for pi, (_prefix, width) in enumerate(component.input_ports):
            style = r % 4
            s = rng.randrange(1 << 30)
            if style == 0:
                streams.append(random_stream(width, length, seed=s))
            elif style == 1:
                streams.append(random_stream(
                    width, length, seed=s,
                    bit_prob=rng.choice([0.1, 0.3, 0.7, 0.9])))
            elif style == 2 and width > 1:
                streams.append(correlated_stream(
                    width, length, rho=rng.choice([0.7, 0.9, 0.98]),
                    seed=s))
            else:
                streams.append(
                    constant_stream(width, length, rng.randrange(1 << width))
                    if rng.random() < 0.3
                    else random_stream(width, length, seed=s))
        training.append(streams)
    return training


def fit_macromodel(model: MacroModel, component: RtlComponent,
                   training: Optional[TrainingSet] = None,
                   seed: int = 0) -> MacroModel:
    """Fit a macro-model, generating default characterization data."""
    if training is None:
        training = characterization_streams(component, seed=seed)
    model.fit(component, training)
    return model


#: Zero-argument factories for every fixed rung of the accuracy
#: ladder, keyed by model name.  The learned subsystem and the
#: benches use this to sweep "all fixed macromodels" without
#: hand-maintaining the list in each caller.
MACROMODELS: Dict[str, type] = {
    PfaModel.name: PfaModel,
    DualBitTypeModel.name: DualBitTypeModel,
    BitwiseModel.name: BitwiseModel,
    InputOutputModel.name: InputOutputModel,
    Table3DModel.name: Table3DModel,
    CycleAccurateModel.name: CycleAccurateModel,
}
