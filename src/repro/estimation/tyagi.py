"""Tyagi's entropic bounds on FSM switching (Section II-B1, [13]).

For an FSM with T states, steady-state transition probabilities p_ij,
and any state encoding, the expected Hamming switching per cycle

    sum_ij p_ij H(s_i, s_j)

is lower bounded by expressions involving only the transition-
probability entropy h(p_ij) and T.  The module implements the paper's
tightest bound for sparse machines,

    h(p) - 1.52 log T - 2.16 + 0.5 log log T,

its sparsity condition  t <= 2.23 T^1.72 / sqrt(log T), and the
measured quantity it bounds (encoding-independent verification is
bench C3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.fsm.encoding import Encoding
from repro.fsm.markov import transition_probabilities
from repro.fsm.stg import STG


def transition_probability_entropy(
        probs: Dict[Tuple[str, str], float]) -> float:
    """h(p_ij): entropy of the steady-state edge distribution (bits)."""
    h = 0.0
    total = sum(probs.values())
    for p in probs.values():
        q = p / total
        if q > 0:
            h -= q * math.log2(q)
    return h


def is_sparse(stg: STG,
              probs: Optional[Dict[Tuple[str, str], float]] = None) -> bool:
    """Paper's sparsity condition: t <= 2.23 T^1.72 / sqrt(log T)."""
    if probs is None:
        probs = transition_probabilities(stg)
    t = sum(1 for p in probs.values() if p > 0)
    big_t = stg.n_states
    if big_t < 2:
        return True
    return t <= 2.23 * big_t ** 1.72 / math.sqrt(math.log2(big_t))


def tyagi_lower_bound(stg: STG,
                      bit_probs: Optional[Sequence[float]] = None) -> float:
    """Tightest entropic lower bound on expected Hamming switching.

    The bound can be negative for small machines (it is asymptotic);
    callers should clamp at 0 when using it as a physical bound.
    """
    probs = transition_probabilities(stg, bit_probs)
    h = transition_probability_entropy(probs)
    big_t = max(2, stg.n_states)
    log_t = math.log2(big_t)
    return h - 1.52 * log_t - 2.16 + 0.5 * math.log2(max(log_t, 1e-12))


def expected_hamming_switching(stg: STG, encoding: Encoding,
                               bit_probs: Optional[Sequence[float]] = None
                               ) -> float:
    """The measured quantity: sum_ij p_ij H(E(i), E(j)).

    Unlike :func:`repro.fsm.encoding.encoding_switching_cost` this
    includes self-loops (which contribute 0), matching the bound's
    summation over all state pairs.
    """
    probs = transition_probabilities(stg, bit_probs)
    return sum(p * encoding.hamming(a, b) for (a, b), p in probs.items())
