"""``python -m repro learn`` — the learned-macromodel workbench.

Subcommands:

- ``characterize``  sweep the component population through the fast
  engines, write the labeled window datasets to a JSON file;
- ``fit``           fit ridge models from a dataset file (or
  characterize on the fly), persist them in the artifact store,
  print CV error;
- ``evaluate``      fit + score learned vs the fixed macromodels on
  held-out stimulus, per component;
- ``report``        one-screen summary of the models currently in
  the artifact store for the standard population.

Everything is seeded and store-backed: re-running a step with the
same arguments is a cache hit, not a re-simulation.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["main", "build_parser"]


def _population(names: Optional[Sequence[str]] = None):
    from repro.estimation.learned.characterize import POPULATION

    specs = list(POPULATION)
    if names:
        wanted = set(names)
        specs = [s for s in specs if s["name"] in wanted]
        missing = wanted - {s["name"] for s in specs}
        if missing:
            known = ", ".join(s["name"] for s in POPULATION)
            raise SystemExit(
                f"unknown component(s) {sorted(missing)}; "
                f"population: {known}")
    return specs


def _config(args) -> "Any":
    from repro.estimation.learned.features import FeatureConfig

    return FeatureConfig(window=args.window,
                         max_signals=args.max_signals)


def cmd_characterize(args) -> int:
    from repro.estimation.learned.characterize import (
        characterize_population,
    )

    config = _config(args)
    datasets = characterize_population(
        _population(args.component), config, cycles=args.cycles,
        seed=args.seed, runs=args.runs, workers=args.workers)
    payload = {"schema": "repro.learn.characterize/1",
               "seed": args.seed,
               "datasets": [d.to_dict() for d in datasets]}
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
    for d in datasets:
        print(f"  {d.name:12s} windows={len(d):4d} "
              f"signals={len(d.signals):2d} "
              f"features={len(d.feature_names):3d} "
              f"fingerprint={d.fingerprint[:12]}")
    if args.out:
        print(f"wrote {len(datasets)} dataset(s) to {args.out}")
    return 0


def cmd_fit(args) -> int:
    from repro.estimation.learned.characterize import (
        WindowDataset,
        characterize_population,
    )
    from repro.estimation.learned.model import fit_learned, save_model

    if args.dataset:
        with open(args.dataset) as fh:
            payload = json.load(fh)
        datasets = [WindowDataset.from_dict(d)
                    for d in payload["datasets"]]
    else:
        datasets = characterize_population(
            _population(args.component), _config(args),
            cycles=args.cycles, seed=args.seed, runs=args.runs,
            workers=args.workers)
    for dataset in datasets:
        model = fit_learned(dataset, folds=args.folds)
        save_model(model)
        rep = model.report
        print(f"  {model.name:12s} cv_mape={rep.cv_mape:7.4f} "
              f"train_mape={rep.train_mape:7.4f} "
              f"terms={model.n_terms:3d} "
              f"pruned={len(rep.pruned):3d} "
              f"-> store[{model.fingerprint[:12]}]")
    print(f"fitted and stored {len(datasets)} model(s)")
    return 0


def cmd_evaluate(args) -> int:
    from repro.estimation.learned.evaluate import evaluate_component
    from repro.rtl.components import make_component

    config = _config(args)
    rows: List[Dict[str, Any]] = []
    for spec in _population(args.component):
        component = make_component(spec["component"], spec["width"])
        rows.append(evaluate_component(component, config,
                                       seed=args.seed,
                                       train_cycles=args.cycles,
                                       train_runs=args.runs))
    wins = sum(1 for r in rows if r["learned_wins"])
    if args.json:
        print(json.dumps({"components": rows, "learned_wins": wins},
                         indent=2, sort_keys=True))
        return 0
    header = f"  {'component':12s} {'learned':>9s} {'best fixed':>11s}  winner"
    print(header)
    for r in rows:
        learned = r["techniques"]["learned"]["mape"]
        fixed = r["best_fixed_mape"]
        mark = "learned" if r["learned_wins"] else "fixed"
        print(f"  {r['component']:12s} {learned:9.4f} {fixed:11.4f}  "
              f"{mark}")
    print(f"learned wins on {wins}/{len(rows)} components "
          f"(per-window MAPE, held-out stimulus)")
    return 0


def cmd_report(args) -> int:
    from repro import store as artifact_store
    from repro.estimation.learned.model import load_model
    from repro.rtl.components import make_component

    config = _config(args)
    st = artifact_store.get_store()
    found = 0
    for spec in _population(args.component):
        component = make_component(spec["component"], spec["width"])
        model = load_model(component.circuit.fingerprint(), config,
                           store=st)
        if model is None:
            print(f"  {spec['name']:12s} (no stored model)")
            continue
        found += 1
        rep = model.report
        cv = f"{rep.cv_mape:7.4f}" if rep else "      ?"
        print(f"  {spec['name']:12s} cv_mape={cv} "
              f"signals={len(model.signals):2d} "
              f"terms={model.n_terms:3d} seed={model.seed}")
    stats = st.stats()
    print(f"{found} stored model(s); store: {stats['mem_hits']} mem "
          f"hits, {stats['disk_hits']} disk hits, "
          f"{stats['misses']} misses")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro learn",
        description="Characterize, fit, and evaluate learned power "
                    "macromodels over the component population.")
    sub = parser.add_subparsers(dest="subcommand")

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--component", action="append", metavar="NAME",
                       help="restrict to a population member "
                            "(repeatable; default: all)")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--cycles", type=int, default=1024)
        p.add_argument("--runs", type=int, default=8)
        p.add_argument("--window", type=int, default=64)
        p.add_argument("--max-signals", type=int, default=16)
        p.add_argument("--workers", type=int, default=None,
                       help="characterization worker processes")

    p = sub.add_parser("characterize",
                       help="generate labeled window datasets")
    common(p)
    p.add_argument("--out", metavar="FILE",
                   help="write datasets JSON here")
    p.set_defaults(fn=cmd_characterize)

    p = sub.add_parser("fit", help="fit + store ridge models")
    common(p)
    p.add_argument("--dataset", metavar="FILE",
                   help="characterize output to fit from (default: "
                        "characterize on the fly)")
    p.add_argument("--folds", type=int, default=4)
    p.set_defaults(fn=cmd_fit)

    p = sub.add_parser("evaluate",
                       help="learned vs fixed macromodels, held out")
    common(p)
    p.add_argument("--json", action="store_true")
    p.set_defaults(fn=cmd_evaluate)

    p = sub.add_parser("report", help="stored models summary")
    common(p)
    p.set_defaults(fn=cmd_report)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if not getattr(args, "fn", None):
        parser.print_help()
        return 2
    try:
        return args.fn(args)
    except BrokenPipeError:       # | head
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":     # pragma: no cover
    raise SystemExit(main())
