"""repro.estimation.learned — learned power macromodels.

The data-driven rung of the estimation ladder: instead of the fixed
feature sets of Section II-C (PFA constants, DBT bit types, bitwise
activities), this subsystem *learns* a per-design model from measured
activity — the Simmani / HL-Pow recipe transplanted onto the repo's
fast engines:

1. **features** — per-window toggle rates of a compact proxy-signal
   set (correlation-clustered via popcount kernels), their polynomial
   products, and netlist-structure scalars;
2. **characterize** — sweep the circuit/stimulus population through
   the bit-parallel simulator, label windows with gate-level switched
   energy, record every seed in the obs run manifest;
3. **model** — ridge-fitted windowed regression with k-fold CV and
   feature pruning, persisted as JSON in the content-addressed
   artifact store (fit once anywhere, predict bit-identically
   everywhere);
4. **integration** — ``estimate(technique="learned")`` on
   :class:`repro.core.PowerEstimator`, the ``learned`` job technique
   of :mod:`repro.serve`, and ``python -m repro learn``.
"""

from repro.estimation.learned.characterize import (
    POPULATION,
    StimulusRun,
    WindowDataset,
    characterize_circuit,
    characterize_component,
    characterize_population,
    stimulus_suite,
)
from repro.estimation.learned.evaluate import (
    evaluate_component,
    evaluate_model,
    holdout_streams,
    window_truth,
)
from repro.estimation.learned.features import (
    FeatureConfig,
    SignalClusters,
    cluster_signals,
    feature_names,
    input_lanes,
    structural_features,
    toggle_lanes,
    window_features,
    window_slices,
)
from repro.estimation.learned.model import (
    FitReport,
    LearnedMacroModel,
    LearnedModel,
    MODEL_KIND,
    fit_learned,
    load_model,
    model_for,
    save_model,
    windowed_mape,
)

__all__ = [
    # features
    "FeatureConfig", "SignalClusters", "cluster_signals",
    "feature_names", "input_lanes", "structural_features",
    "toggle_lanes", "window_features", "window_slices",
    # characterization
    "POPULATION", "StimulusRun", "WindowDataset",
    "characterize_circuit", "characterize_component",
    "characterize_population", "stimulus_suite",
    # model
    "FitReport", "LearnedMacroModel", "LearnedModel", "MODEL_KIND",
    "fit_learned", "load_model", "model_for", "save_model",
    "windowed_mape",
    # evaluation
    "evaluate_component", "evaluate_model", "holdout_streams",
    "window_truth",
]
