"""Feature extraction for learned power macromodels.

The learned subsystem replaces the hand-derived feature sets of the
Section II-C macromodels with features *discovered* from the design
and its measured activity, the HL-Pow / Simmani recipe:

- **signal selection**: every circuit input contributes a per-cycle
  toggle stream; streams are clustered by Pearson correlation of
  their toggle patterns (computed with popcount kernels on the packed
  bit planes, :func:`repro.rtl.faststreams.correlation_matrix`) and
  one representative *proxy signal* per cluster survives — a compact
  basis that still spans the design's activity modes;
- **windowed activity**: per ``window``-cycle window, each proxy
  signal yields its toggle rate; polynomial combinations (degree 2 by
  default) capture the interaction terms Simmani's windowed
  polynomial regression relies on;
- **structure**: operator/gate counts, widths, latch counts, and
  total switched capacitance from the netlist, so pooled multi-design
  fits can separate designs (within one design they are constants the
  ridge fitter absorbs).

Everything here is deterministic: same circuit + same stimulus +
same :class:`FeatureConfig` gives bit-identical features in any
process.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.util.bits import popcount

__all__ = [
    "FeatureConfig", "SignalClusters",
    "toggle_lanes", "cluster_signals", "window_slices",
    "window_features", "feature_names", "structural_features",
    "input_lanes",
]


@dataclass(frozen=True)
class FeatureConfig:
    """Knobs of the learned feature space (hashable, serializable).

    The :meth:`key` hash participates in the artifact-store key, so
    models fitted under different configurations never collide.
    """

    window: int = 64           # cycles per regression window
    degree: int = 2            # polynomial degree over toggle rates
    max_signals: int = 16      # proxy signals kept after clustering
    cluster_threshold: float = 0.8   # |corr| that merges two signals
    structural: bool = True    # include netlist-structure scalars

    def to_dict(self) -> Dict[str, Any]:
        return {
            "window": self.window,
            "degree": self.degree,
            "max_signals": self.max_signals,
            "cluster_threshold": self.cluster_threshold,
            "structural": self.structural,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FeatureConfig":
        return cls(window=int(data["window"]),
                   degree=int(data["degree"]),
                   max_signals=int(data["max_signals"]),
                   cluster_threshold=float(data["cluster_threshold"]),
                   structural=bool(data["structural"]))

    def key(self) -> str:
        """Short content hash used in artifact-store kinds."""
        canon = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(canon.encode()).hexdigest()[:12]


# ----------------------------------------------------------------------
# Stimulus plumbing
# ----------------------------------------------------------------------
def input_lanes(stimulus) -> Tuple[Dict[str, int], int]:
    """Per-input bit lanes (bit ``t`` = value in cycle ``t``).

    Accepts packed vectors (:class:`repro.logic.fastsim.
    PackedVectors`) or a list of per-cycle input dicts; both
    normalize to the same ``{net: lane}`` view.
    """
    words = getattr(stimulus, "words", None)
    if isinstance(words, dict):
        return dict(words), len(stimulus)
    lanes: Dict[str, int] = {}
    for t, vec in enumerate(stimulus):
        for name, value in vec.items():
            if value:
                lanes[name] = lanes.get(name, 0) | (1 << t)
            else:
                lanes.setdefault(name, 0)
    return lanes, len(stimulus)


def toggle_lanes(lanes: Dict[str, int], n: int) -> Dict[str, int]:
    """Per-input toggle streams: bit ``t`` set iff cycle ``t -> t+1``
    flips the input.  Length ``n - 1`` bits (transition slots), the
    same time base as :func:`repro.rtl.components.
    circuit_cycle_energies` labels."""
    if n < 2:
        return {name: 0 for name in lanes}
    mask = (1 << (n - 1)) - 1
    return {name: (lane ^ (lane >> 1)) & mask
            for name, lane in lanes.items()}


# ----------------------------------------------------------------------
# Simmani-style signal clustering
# ----------------------------------------------------------------------
@dataclass
class SignalClusters:
    """Outcome of proxy-signal selection."""

    signals: List[str]                      # representatives, ordered
    assignment: Dict[str, str] = field(default_factory=dict)
    dropped: List[str] = field(default_factory=list)  # constant inputs


def cluster_signals(toggles: Dict[str, int], n_slots: int,
                    config: FeatureConfig) -> SignalClusters:
    """Pick ≤ ``max_signals`` proxy inputs by toggle correlation.

    Greedy leader clustering over the Pearson correlation of the
    toggle streams (popcount Gram matrix on the packed lanes — no
    float matrix of shape ``n x width`` is ever built): signals are
    visited in decreasing toggle count; a signal joins the first
    existing representative correlated above ``cluster_threshold``,
    otherwise founds a new cluster while slots remain, otherwise
    joins its most-correlated representative.  Inputs that never
    toggle in the training stimulus carry no information and are
    dropped outright.
    """
    from repro.rtl.faststreams import BitPlanes, correlation_matrix

    names = sorted(toggles)
    active = [name for name in names if toggles[name]]
    dropped = [name for name in names if not toggles[name]]
    if not active or n_slots <= 0:
        return SignalClusters(signals=[], dropped=dropped)

    planes = BitPlanes([toggles[name] for name in active], n_slots,
                       len(active))
    corr = correlation_matrix(planes)
    index = {name: i for i, name in enumerate(active)}
    order = sorted(active,
                   key=lambda s: (-popcount(toggles[s]), s))

    reps: List[str] = []
    assignment: Dict[str, str] = {}
    for name in order:
        row = corr[index[name]]
        best_rep, best_corr = None, 0.0
        for rep in reps:
            c = abs(float(row[index[rep]]))
            if c > best_corr:
                best_rep, best_corr = rep, c
        if best_rep is not None and best_corr >= config.cluster_threshold:
            assignment[name] = best_rep
        elif len(reps) < config.max_signals:
            reps.append(name)
            assignment[name] = name
        elif best_rep is not None:
            assignment[name] = best_rep
        else:                      # zero correlation with every rep
            assignment[name] = reps[0]
    reps.sort()
    return SignalClusters(signals=reps, assignment=assignment,
                          dropped=dropped)


# ----------------------------------------------------------------------
# Windowing
# ----------------------------------------------------------------------
def window_slices(n_slots: int, window: int
                  ) -> List[Tuple[int, int]]:
    """(start, length) spans over ``n_slots`` transition slots.

    Full windows only; a trace shorter than one window becomes a
    single partial window (so two-cycle stimuli still produce one
    labeled sample).  Zero slots → no windows.
    """
    if n_slots <= 0:
        return []
    window = max(1, window)
    if n_slots < window:
        return [(0, n_slots)]
    return [(k * window, window) for k in range(n_slots // window)]


def feature_names(signals: Sequence[str], config: FeatureConfig,
                  structural: Optional[Dict[str, float]] = None
                  ) -> List[str]:
    """Column labels matching :func:`window_features` order."""
    names = [f"t:{s}" for s in signals]
    if config.degree >= 2:
        for i in range(len(signals)):
            for j in range(i, len(signals)):
                names.append(f"t:{signals[i]}*t:{signals[j]}")
    if config.structural and structural:
        names.extend(f"s:{k}" for k in sorted(structural))
    return names


def window_features(toggles: Dict[str, int], n_slots: int,
                    signals: Sequence[str], config: FeatureConfig,
                    structural: Optional[Dict[str, float]] = None
                    ) -> List[List[float]]:
    """One feature row per window: proxy toggle rates, their degree-2
    products, and (optionally) the structural scalars."""
    rows: List[List[float]] = []
    struct_cols: List[float] = []
    if config.structural and structural:
        struct_cols = [float(structural[k]) for k in sorted(structural)]
    for start, length in window_slices(n_slots, config.window):
        mask = (1 << length) - 1
        rates = [popcount((toggles.get(s, 0) >> start) & mask) / length
                 for s in signals]
        row = list(rates)
        if config.degree >= 2:
            for i in range(len(rates)):
                for j in range(i, len(rates)):
                    row.append(rates[i] * rates[j])
        row.extend(struct_cols)
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Structure
# ----------------------------------------------------------------------
def structural_features(circuit) -> Dict[str, float]:
    """Netlist-structure scalars: gate mix, widths, capacitance.

    Constant per design — they matter when a single model is pooled
    over several designs (the cross-design generalization mode) and
    collapse into the intercept otherwise.
    """
    kind_counts: Dict[str, int] = {}
    for gate in circuit.gates:
        kind_counts[gate.gate_type] = \
            kind_counts.get(gate.gate_type, 0) + 1
    caps = circuit.load_capacitances()
    feats: Dict[str, float] = {
        "gates": float(circuit.gate_count()),
        "latches": float(len(getattr(circuit, "latches", []))),
        "inputs": float(len(circuit.inputs)),
        "outputs": float(len(circuit.outputs)),
        "total_cap": float(sum(caps.values())),
    }
    for kind in ("AND", "OR", "XOR", "INV", "MUX2", "NAND", "NOR"):
        feats[f"n_{kind.lower()}"] = float(kind_counts.get(kind, 0))
    return feats
