"""Characterization: sweep stimuli, label windows with reference power.

Step 2 of the learn-a-macromodel loop.  A characterization run drives
a circuit (or RTL component) through a deterministic mix of stimulus
styles — white noise, biased probabilities, AR(1)-correlated words,
counters, near-constant — measures gate-level per-cycle switched
energy with the compiled engines, and emits a :class:`WindowDataset`:
one row of learned features plus one windowed mean-power label per
window.

Determinism is a contract, not an accident: every run's seed derives
from the base seed by a fixed recurrence, the seeds are stored in the
dataset *and* registered in the :mod:`repro.obs` run manifest
(:func:`repro.obs.add_run_record`) together with the circuit
fingerprint, so any exported telemetry names exactly the stimuli that
trained each model.

Population sweeps fan out over a process pool; workers inherit
``REPRO_STORE`` so compiled simulation plans rehydrate from the
content-addressed store instead of recompiling per worker — the
cheap-thousands-of-sims property the serving layer bought us.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.estimation.learned.features import (
    FeatureConfig,
    cluster_signals,
    feature_names,
    input_lanes,
    structural_features,
    toggle_lanes,
    window_features,
    window_slices,
)
from repro.util import seeding

__all__ = [
    "WindowDataset", "StimulusRun",
    "stimulus_suite", "characterize_circuit",
    "characterize_component", "characterize_population",
    "POPULATION",
]

#: Default circuit population for `python -m repro learn` and the
#: bench: generator-allowlist entries (shared with repro.serve) plus
#: RTL component kinds.
POPULATION: List[Dict[str, Any]] = [
    {"name": "add8", "component": "add", "width": 8},
    {"name": "sub8", "component": "sub", "width": 8},
    {"name": "mult4", "component": "mult", "width": 4},
    {"name": "mux8", "component": "mux", "width": 8},
    {"name": "cmp_gt8", "component": "cmp_gt", "width": 8},
    {"name": "cmp_eq8", "component": "cmp_eq", "width": 8},
]

#: Seed recurrence multiplier — kept as the canonical spawn-key
#: stride in :mod:`repro.util.seeding` (fixed forever so old datasets
#: stay reproducible; every derived-seed consumer now shares it).
_SEED_STRIDE = seeding.STRIDE

_STYLES = ("random", "biased", "ar1", "counter", "quiet")


@dataclass
class StimulusRun:
    """Provenance of one characterization stimulus."""

    style: str
    seed: int
    cycles: int
    windows: int

    def to_dict(self) -> Dict[str, Any]:
        return {"style": self.style, "seed": self.seed,
                "cycles": self.cycles, "windows": self.windows}


@dataclass
class WindowDataset:
    """Labeled windows of one circuit under the characterization mix.

    ``rows[i]`` are the features of window ``i`` (order matches
    ``feature_names``); ``targets[i]`` is its mean switched energy
    per cycle at vdd = 1, f = 1 — the same unit every macromodel in
    the repo fits."""

    name: str
    fingerprint: str
    config: FeatureConfig
    signals: List[str]
    feature_names: List[str]
    rows: List[List[float]]
    targets: List[float]
    runs: List[StimulusRun] = field(default_factory=list)
    seed: int = 0
    structural: Dict[str, float] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.rows)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": "repro.learned.dataset/1",
            "name": self.name,
            "fingerprint": self.fingerprint,
            "config": self.config.to_dict(),
            "signals": list(self.signals),
            "feature_names": list(self.feature_names),
            "rows": [list(r) for r in self.rows],
            "targets": list(self.targets),
            "runs": [r.to_dict() for r in self.runs],
            "seed": self.seed,
            "structural": dict(self.structural),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "WindowDataset":
        return cls(
            name=data["name"],
            fingerprint=data["fingerprint"],
            config=FeatureConfig.from_dict(data["config"]),
            signals=list(data["signals"]),
            feature_names=list(data["feature_names"]),
            rows=[list(map(float, r)) for r in data["rows"]],
            targets=[float(t) for t in data["targets"]],
            runs=[StimulusRun(**r) for r in data.get("runs", [])],
            seed=int(data.get("seed", 0)),
            structural={k: float(v)
                        for k, v in data.get("structural", {}).items()},
        )


def _run_seed(base: int, k: int) -> int:
    return seeding.child_seed(base, k)


# ----------------------------------------------------------------------
# Stimulus suite
# ----------------------------------------------------------------------
def stimulus_suite(inputs: Sequence[str], cycles: int, seed: int,
                   runs: int = 10) -> List[Tuple[str, int, Any]]:
    """Deterministic (style, seed, packed-vectors) mix for a circuit.

    Styles rotate through white noise, biased per-input probabilities,
    AR(1)-correlated words spread across the input bits, counting
    sequences, and near-quiet traffic — the correlation structures the
    surveyed models (and their learned successor) are supposed to
    tell apart.
    """
    import random as _random

    from repro.logic import fastsim
    from repro.rtl.streams import correlated_stream, counter_stream

    n_in = len(inputs)
    suite: List[Tuple[str, int, Any]] = []
    for k in range(runs):
        style = _STYLES[k % len(_STYLES)]
        rs = _run_seed(seed, k)
        rng = _random.Random(rs)
        if style == "random":
            packed = fastsim.random_packed_vectors(inputs, cycles,
                                                   seed=rs)
        elif style == "biased":
            probs = {name: rng.choice([0.1, 0.25, 0.75, 0.9])
                     for name in inputs}
            packed = fastsim.random_packed_vectors(inputs, cycles,
                                                   seed=rs, probs=probs)
        elif style == "ar1" and n_in:
            stream = correlated_stream(
                n_in, cycles, rho=rng.choice([0.9, 0.98]), seed=rs)
            lanes = stream.bit_planes().lanes
            packed = fastsim.PackedVectors(
                list(inputs), cycles,
                {name: lanes[i] for i, name in enumerate(inputs)})
        elif style == "counter" and n_in:
            stream = counter_stream(n_in, cycles,
                                    start=rng.randrange(1 << n_in),
                                    stride=rng.choice([1, 3]))
            lanes = stream.bit_planes().lanes
            packed = fastsim.PackedVectors(
                list(inputs), cycles,
                {name: lanes[i] for i, name in enumerate(inputs)})
        else:                       # quiet: rare flips
            packed = fastsim.random_packed_vectors(
                inputs, cycles, seed=rs,
                probs={name: 0.05 for name in inputs})
        suite.append((style, rs, packed))
    return suite


# ----------------------------------------------------------------------
# Single-circuit characterization
# ----------------------------------------------------------------------
def characterize_circuit(circuit, config: Optional[FeatureConfig] = None,
                         cycles: int = 1024, seed: int = 0,
                         runs: int = 10,
                         name: Optional[str] = None) -> WindowDataset:
    """Run the stimulus mix, label windows, extract features.

    Proxy signals are clustered once over the *pooled* toggle lanes of
    all runs (concatenated along time), so the selection sees every
    stimulus mode before committing to a basis.
    """
    from repro.rtl.components import circuit_cycle_energies

    config = config or FeatureConfig()
    suite = stimulus_suite(circuit.inputs, cycles, seed, runs=runs)

    with obs.span("learned.characterize",
                  circuit=getattr(circuit, "name", "?"),
                  runs=len(suite), cycles=cycles):
        pooled: Dict[str, int] = {name_: 0 for name_ in circuit.inputs}
        pooled_slots = 0
        per_run: List[Tuple[str, int, Dict[str, int], int,
                            List[float]]] = []
        for style, rs, packed in suite:
            lanes, n = input_lanes(packed)
            toggles = toggle_lanes(lanes, n)
            energies = circuit_cycle_energies(circuit, packed)
            for name_, lane in toggles.items():
                pooled[name_] |= lane << pooled_slots
            pooled_slots += max(0, n - 1)
            per_run.append((style, rs, toggles, max(0, n - 1), energies))

        clusters = cluster_signals(pooled, pooled_slots, config)
        structural = structural_features(circuit) \
            if config.structural else {}
        names = feature_names(clusters.signals, config,
                              structural or None)

        rows: List[List[float]] = []
        targets: List[float] = []
        run_meta: List[StimulusRun] = []
        for style, rs, toggles, n_slots, energies in per_run:
            feats = window_features(toggles, n_slots, clusters.signals,
                                    config, structural or None)
            spans = window_slices(n_slots, config.window)
            for (start, length), row in zip(spans, feats):
                rows.append(row)
                targets.append(
                    sum(energies[start:start + length]) / length)
            run_meta.append(StimulusRun(style, rs, n_slots + 1,
                                        len(spans)))

        dataset = WindowDataset(
            name=name or getattr(circuit, "name", "circuit"),
            fingerprint=circuit.fingerprint(),
            config=config,
            signals=clusters.signals,
            feature_names=names,
            rows=rows,
            targets=targets,
            runs=run_meta,
            seed=seed,
            structural=structural,
        )
    obs.add_run_record("learned.characterization", {
        "name": dataset.name,
        "fingerprint": dataset.fingerprint,
        "seed": seed,
        "run_seeds": [r.seed for r in run_meta],
        "windows": len(dataset),
        "config_key": config.key(),
    })
    obs.inc("learned.characterize.windows", len(dataset))
    return dataset


def characterize_component(component,
                           config: Optional[FeatureConfig] = None,
                           cycles: int = 1024, seed: int = 0,
                           runs: int = 10) -> WindowDataset:
    """Component flavor: word-level operand stimulus, same pipeline.

    Uses the macromodel characterization mix (random / biased /
    correlated / constant operand streams) packed onto the
    component's gate-level input ports, so the learned model trains
    on exactly the stimulus family the fixed macromodels are
    characterized with — an apples-to-apples accuracy ladder.
    """
    from repro.estimation.macromodel import characterization_streams
    from repro.logic import fastsim
    from repro.rtl.components import circuit_cycle_energies

    config = config or FeatureConfig()
    training = characterization_streams(component, runs=runs,
                                        length=cycles, seed=seed)
    circuit = component.circuit

    # The word-level macromix is all medium-to-high activity; a model
    # trained on it alone extrapolates badly into quiet program
    # phases (it never saw a near-zero-power window).  Blend in the
    # circuit-level suite — its "quiet" and "counter" styles anchor
    # the low-activity end of the feature space.
    extra = stimulus_suite(circuit.inputs, cycles,
                           _run_seed(seed, 9973),
                           runs=max(3, runs // 2))

    pooled: Dict[str, int] = {name_: 0 for name_ in circuit.inputs}
    pooled_slots = 0
    per_run = []
    batches = [(f"macromix{k % 4}", _run_seed(seed, k),
                fastsim.pack_streams(component.input_ports, streams))
               for k, streams in enumerate(training)]
    batches.extend(extra)
    for style, rs, packed in batches:
        lanes, n = input_lanes(packed)
        toggles = toggle_lanes(lanes, n)
        energies = circuit_cycle_energies(circuit, packed)
        for name_, lane in toggles.items():
            pooled[name_] |= lane << pooled_slots
        pooled_slots += max(0, n - 1)
        per_run.append((style, rs, toggles, max(0, n - 1), energies))

    clusters = cluster_signals(pooled, pooled_slots, config)
    structural = structural_features(circuit) if config.structural \
        else {}
    names = feature_names(clusters.signals, config, structural or None)

    rows: List[List[float]] = []
    targets: List[float] = []
    run_meta: List[StimulusRun] = []
    for style, rs, toggles, n_slots, energies in per_run:
        feats = window_features(toggles, n_slots, clusters.signals,
                                config, structural or None)
        spans = window_slices(n_slots, config.window)
        for (start, length), row in zip(spans, feats):
            rows.append(row)
            targets.append(sum(energies[start:start + length]) / length)
        run_meta.append(StimulusRun(style, rs, n_slots + 1, len(spans)))

    dataset = WindowDataset(
        name=component.name,
        fingerprint=circuit.fingerprint(),
        config=config,
        signals=clusters.signals,
        feature_names=names,
        rows=rows,
        targets=targets,
        runs=run_meta,
        seed=seed,
        structural=structural,
    )
    obs.add_run_record("learned.characterization", {
        "name": dataset.name,
        "fingerprint": dataset.fingerprint,
        "seed": seed,
        "run_seeds": [r.seed for r in run_meta],
        "windows": len(dataset),
        "config_key": config.key(),
    })
    return dataset


# ----------------------------------------------------------------------
# Population sweep
# ----------------------------------------------------------------------
def build_spec(spec: Dict[str, Any]):
    """Materialize one population entry into (name, circuit-or-component).

    ``{"component": kind, "width": w}`` builds an RTL library
    component; ``{"generator": g, "params": {...}}`` builds a raw
    circuit through the same allowlist the estimation service uses.
    """
    if "component" in spec:
        from repro.rtl.components import make_component

        component = make_component(spec["component"], int(spec["width"]))
        return spec.get("name", component.name), component
    if "generator" in spec:
        from repro.serve import GENERATORS
        from repro.logic import generators as genlib

        gen = spec["generator"]
        if gen not in GENERATORS:
            raise ValueError(f"unknown generator {gen!r}")
        circuit = getattr(genlib, gen)(**spec.get("params", {}))
        return spec.get("name", circuit.name), circuit
    raise ValueError("population spec needs 'component' or 'generator'")


def _characterize_spec(args: Tuple[Dict[str, Any], Dict[str, Any],
                                   int, int, int]) -> Dict[str, Any]:
    """Pool worker: characterize one spec, return the dataset dict."""
    spec, config_dict, cycles, seed, runs = args
    config = FeatureConfig.from_dict(config_dict)
    name, target = build_spec(spec)
    if hasattr(target, "circuit"):          # RtlComponent
        dataset = characterize_component(target, config, cycles=cycles,
                                         seed=seed, runs=runs)
    else:
        dataset = characterize_circuit(target, config, cycles=cycles,
                                       seed=seed, runs=runs, name=name)
    return dataset.to_dict()


def characterize_population(specs: Optional[Sequence[Dict[str, Any]]]
                            = None,
                            config: Optional[FeatureConfig] = None,
                            cycles: int = 1024, seed: int = 0,
                            runs: int = 10,
                            workers: Optional[int] = None
                            ) -> List[WindowDataset]:
    """Characterize a population of designs, optionally in parallel.

    Per-design seeds derive deterministically from ``seed`` and the
    spec's position, so the sweep is reproducible regardless of the
    worker count; each worker's plan compilations land in the shared
    ``REPRO_STORE`` when one is configured.
    """
    specs = list(POPULATION if specs is None else specs)
    config = config or FeatureConfig()
    jobs = [(spec, config.to_dict(), cycles, _run_seed(seed, i), runs)
            for i, spec in enumerate(specs)]
    if workers is None:
        workers = min(len(jobs), max(1, (os.cpu_count() or 2) - 1))
    if workers <= 1 or len(jobs) <= 1:
        dicts = [_characterize_spec(job) for job in jobs]
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            dicts = list(pool.map(_characterize_spec, jobs))
        # Workers recorded provenance in their own processes; mirror
        # it in the coordinating process's manifest too.
        for d in dicts:
            obs.add_run_record("learned.characterization", {
                "name": d["name"],
                "fingerprint": d["fingerprint"],
                "seed": d["seed"],
                "run_seeds": [r["seed"] for r in d["runs"]],
                "windows": len(d["rows"]),
                "config_key": config.key(),
            })
    return [WindowDataset.from_dict(d) for d in dicts]
