"""Fitting, persistence, and prediction of learned power models.

The regressor is windowed ridge polynomial regression (Simmani's
shape): per-window proxy-signal toggle rates and their degree-2
products against windowed mean switched energy.  Fitting adds an
intercept column, solves through :func:`repro.estimation.macromodel.
ridge_lstsq` (the shared singular-matrix-safe solver), prunes features
whose contribution is negligible, and cross-validates with
deterministic striped k-folds, reporting per-window MAPE.

Models are plain JSON: coefficients, proxy-signal names, the feature
configuration, and training provenance (seeds, window counts, CV
error).  They persist in the content-addressed
:class:`repro.store.ArtifactStore` keyed by the circuit's structural
fingerprint plus the feature-config hash — fit once in any process,
predict bit-identically in every other.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro import obs
from repro import store as artifact_store
from repro.estimation.learned.characterize import (
    WindowDataset,
    characterize_circuit,
)
from repro.estimation.learned.features import (
    FeatureConfig,
    input_lanes,
    toggle_lanes,
    window_features,
    window_slices,
)

__all__ = [
    "LearnedModel", "FitReport", "fit_learned", "windowed_mape",
    "save_model", "load_model", "model_for", "LearnedMacroModel",
    "MODEL_KIND",
]

#: Artifact-store kind prefix; the feature-config hash is appended so
#: models under different configurations coexist per fingerprint.
MODEL_KIND = "learned-model"

#: Windows with truth below this absolute floor are excluded from
#: relative-error denominators (zero-power windows would otherwise
#: divide by zero).
_POWER_FLOOR = 1e-12

#: Features whose |coefficient| * column-std contributes less than
#: this fraction of the largest contribution are pruned.
_PRUNE_FRACTION = 1e-4


def windowed_mape(predicted: Sequence[float],
                  truth: Sequence[float]) -> float:
    """Mean absolute relative error over non-zero-power windows.

    Zero-power windows (a held-constant component, a clock-gated
    region) carry no relative scale; they are skipped rather than
    poisoning the mean.  All-zero truth returns 0.0 when the
    prediction is also (near) zero and the mean absolute prediction
    otherwise — a degenerate-but-honest score.
    """
    num = 0.0
    count = 0
    for p, t in zip(predicted, truth):
        if t > _POWER_FLOOR:
            num += abs(p - t) / t
            count += 1
    if count:
        return num / count
    live = [abs(p) for p, t in zip(predicted, truth)]
    return sum(live) / len(live) if live else 0.0


@dataclass
class FitReport:
    """Cross-validation and pruning outcome of one fit."""

    cv_mape: float
    fold_mapes: List[float]
    train_mape: float
    n_windows: int
    n_features: int
    pruned: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "cv_mape": self.cv_mape,
            "fold_mapes": list(self.fold_mapes),
            "train_mape": self.train_mape,
            "n_windows": self.n_windows,
            "n_features": self.n_features,
            "pruned": list(self.pruned),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FitReport":
        return cls(cv_mape=float(data["cv_mape"]),
                   fold_mapes=[float(x) for x in data["fold_mapes"]],
                   train_mape=float(data["train_mape"]),
                   n_windows=int(data["n_windows"]),
                   n_features=int(data["n_features"]),
                   pruned=list(data.get("pruned", [])))


@dataclass
class LearnedModel:
    """A fitted windowed power model for one circuit structure."""

    fingerprint: str
    name: str
    config: FeatureConfig
    signals: List[str]
    feature_names: List[str]     # post-pruning, order of ``coeffs[1:]``
    coeffs: List[float]          # [intercept, *feature coefficients]
    structural: Dict[str, float] = field(default_factory=dict)
    report: Optional[FitReport] = None
    seed: int = 0

    # -- prediction ----------------------------------------------------
    def _keep_columns(self) -> List[int]:
        """Un-pruned-order indices of the kept feature columns
        (computed once per model instance — prediction is hot)."""
        keep = getattr(self, "_keep", None)
        if keep is None:
            from repro.estimation.learned.features import feature_names

            all_names = feature_names(self.signals, self.config,
                                      self.structural or None)
            position = {fname: i for i, fname in enumerate(all_names)}
            keep = [position[fname] for fname in self.feature_names]
            self._keep = keep
        return keep

    def _rows(self, stimulus) -> List[List[float]]:
        lanes, n = input_lanes(stimulus)
        toggles = toggle_lanes(lanes, n)
        full = window_features(toggles, max(0, n - 1), self.signals,
                               self.config,
                               self.structural or None)
        if not full:
            return []
        keep = self._keep_columns()
        return [[row[i] for i in keep] for row in full]

    def predict_windows(self, stimulus) -> List[float]:
        """Per-window power predictions (clipped at zero)."""
        rows = self._rows(stimulus)
        out: List[float] = []
        b0 = self.coeffs[0]
        bs = self.coeffs[1:]
        for row in rows:
            acc = b0
            for c, x in zip(bs, row):
                acc += c * x
            out.append(acc if acc > 0.0 else 0.0)
        return out

    def predict_power(self, stimulus) -> float:
        """Mean power over the stimulus (energy/cycle at vdd=1, f=1)."""
        windows = self.predict_windows(stimulus)
        if not windows:
            return 0.0
        # Weight by window length: the tail partial window (if the
        # trace is shorter than one window) is the only window.
        return sum(windows) / len(windows)

    @property
    def n_terms(self) -> int:
        return len(self.coeffs)

    # -- serialization -------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": "repro.learned.model/1",
            "fingerprint": self.fingerprint,
            "name": self.name,
            "config": self.config.to_dict(),
            "signals": list(self.signals),
            "feature_names": list(self.feature_names),
            "coeffs": [float(c) for c in self.coeffs],
            "structural": dict(self.structural),
            "report": self.report.to_dict() if self.report else None,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "LearnedModel":
        if data.get("schema") != "repro.learned.model/1":
            raise ValueError(
                f"not a learned model payload: {data.get('schema')!r}")
        report = data.get("report")
        return cls(
            fingerprint=data["fingerprint"],
            name=data["name"],
            config=FeatureConfig.from_dict(data["config"]),
            signals=list(data["signals"]),
            feature_names=list(data["feature_names"]),
            coeffs=[float(c) for c in data["coeffs"]],
            structural={k: float(v)
                        for k, v in data.get("structural", {}).items()},
            report=FitReport.from_dict(report) if report else None,
            seed=int(data.get("seed", 0)),
        )


# ----------------------------------------------------------------------
# Fitting
# ----------------------------------------------------------------------
def _design(rows: Sequence[Sequence[float]]) -> List[List[float]]:
    return [[1.0, *row] for row in rows]


def _solve(rows: Sequence[Sequence[float]],
           targets: Sequence[float]) -> List[float]:
    from repro.estimation.macromodel import ridge_lstsq

    if not rows:
        return [0.0]
    coeffs = ridge_lstsq(_design(rows), targets)
    return [float(c) for c in coeffs]


def _predict_rows(coeffs: Sequence[float],
                  rows: Sequence[Sequence[float]]) -> List[float]:
    out = []
    for row in rows:
        acc = coeffs[0]
        for c, x in zip(coeffs[1:], row):
            acc += c * x
        out.append(acc if acc > 0.0 else 0.0)
    return out


def _cross_validate(rows: List[List[float]], targets: List[float],
                    folds: int) -> List[float]:
    """Striped k-fold CV; deterministic, no shuffling randomness."""
    n = len(rows)
    folds = max(2, min(folds, n))
    mapes: List[float] = []
    for f in range(folds):
        train_idx = [i for i in range(n) if i % folds != f]
        test_idx = [i for i in range(n) if i % folds == f]
        if not train_idx or not test_idx:
            continue
        coeffs = _solve([rows[i] for i in train_idx],
                        [targets[i] for i in train_idx])
        pred = _predict_rows(coeffs, [rows[i] for i in test_idx])
        mapes.append(windowed_mape(pred,
                                   [targets[i] for i in test_idx]))
    return mapes


def fit_learned(dataset: WindowDataset, folds: int = 4,
                prune: bool = True) -> LearnedModel:
    """Fit (ridge + pruning + k-fold CV) a model from one dataset.

    Degenerate datasets are handled, not rejected: a single window
    fits an intercept-only model; constant features survive through
    the ridge fallback; an empty dataset yields the zero model.
    """
    with obs.span("learned.fit", windows=len(dataset),
                  features=len(dataset.feature_names)):
        rows = [list(r) for r in dataset.rows]
        targets = list(dataset.targets)
        names = list(dataset.feature_names)

        coeffs = _solve(rows, targets)
        pruned: List[str] = []
        if prune and rows and len(coeffs) > 1:
            import math

            n = len(rows)
            contributions = []
            for j in range(len(names)):
                col = [row[j] for row in rows]
                mean = sum(col) / n
                var = sum((x - mean) ** 2 for x in col) / n
                contributions.append(abs(coeffs[j + 1])
                                     * math.sqrt(var))
            top = max(contributions) if contributions else 0.0
            if top > 0.0:
                keep = [j for j, c in enumerate(contributions)
                        if c >= _PRUNE_FRACTION * top]
                if len(keep) < len(names):
                    pruned = [names[j] for j in range(len(names))
                              if j not in set(keep)]
                    names = [names[j] for j in keep]
                    rows = [[row[j] for j in keep] for row in rows]
                    coeffs = _solve(rows, targets)

        fold_mapes = _cross_validate(rows, targets, folds) \
            if len(rows) >= 2 else []
        train_mape = windowed_mape(_predict_rows(coeffs, rows), targets)
        cv = sum(fold_mapes) / len(fold_mapes) if fold_mapes \
            else train_mape
        report = FitReport(
            cv_mape=cv,
            fold_mapes=fold_mapes,
            train_mape=train_mape,
            n_windows=len(rows),
            n_features=len(names),
            pruned=pruned,
        )
    obs.inc("learned.fits")
    return LearnedModel(
        fingerprint=dataset.fingerprint,
        name=dataset.name,
        config=dataset.config,
        signals=list(dataset.signals),
        feature_names=names,
        coeffs=coeffs,
        structural=dict(dataset.structural),
        report=report,
        seed=dataset.seed,
    )


# ----------------------------------------------------------------------
# Persistence (ArtifactStore)
# ----------------------------------------------------------------------
def _store_kind(config: FeatureConfig) -> str:
    return f"{MODEL_KIND}-{config.key()}"


def save_model(model: LearnedModel,
               store: Optional[artifact_store.ArtifactStore] = None
               ) -> None:
    """Persist under (circuit fingerprint, config hash)."""
    st = store or artifact_store.get_store()
    st.put(model.fingerprint, _store_kind(model.config),
           model.to_dict())


def load_model(fingerprint: str,
               config: Optional[FeatureConfig] = None,
               store: Optional[artifact_store.ArtifactStore] = None
               ) -> Optional[LearnedModel]:
    """Rehydrate a fitted model, or ``None`` on a store miss."""
    st = store or artifact_store.get_store()
    payload = st.get(fingerprint, _store_kind(config or FeatureConfig()))
    if payload is None:
        return None
    try:
        return LearnedModel.from_dict(payload)
    except (KeyError, TypeError, ValueError):
        return None         # corrupt payload degrades to a refit


def model_for(circuit, config: Optional[FeatureConfig] = None,
              cycles: int = 1024, seed: int = 0, runs: int = 8,
              store: Optional[artifact_store.ArtifactStore] = None
              ) -> LearnedModel:
    """Load-or-learn: the serving entry point.

    A store hit (same structure, same feature config) returns the
    persisted model without touching a simulator; a miss runs the
    full characterize-and-fit loop and persists the result for every
    later process sharing the store.
    """
    config = config or FeatureConfig()
    cached = load_model(circuit.fingerprint(), config, store=store)
    if cached is not None:
        obs.inc("learned.model.hits")
        return cached
    obs.inc("learned.model.fits")
    dataset = characterize_circuit(circuit, config, cycles=cycles,
                                   seed=seed, runs=runs)
    model = fit_learned(dataset)
    save_model(model, store=store)
    return model


# ----------------------------------------------------------------------
# Macro-model ladder adapter
# ----------------------------------------------------------------------
class LearnedMacroModel:
    """Adapter slotting the learned model into the Section II-C ladder.

    Implements the ``fit(component, training)`` / ``predict(streams)``
    protocol of :class:`repro.estimation.macromodel.MacroModel`, so
    the learned model drops into every existing evaluation path
    (census/sampler/adaptive sampling, bench C5's comparisons) as one
    more rung — the rung that learns its features instead of
    inheriting them from the paper.
    """

    name = "learned"

    def __init__(self, config: Optional[FeatureConfig] = None,
                 seed: int = 0) -> None:
        self.config = config or FeatureConfig()
        self.seed = seed
        self.model: Optional[LearnedModel] = None
        self._component = None

    def fit(self, component, training) -> None:
        from repro.estimation.learned.characterize import \
            characterize_component
        from repro.logic import fastsim
        from repro.rtl.components import circuit_cycle_energies
        from repro.estimation.learned.features import (
            cluster_signals, feature_names, structural_features,
        )

        self._component = component
        if training is None:
            dataset = characterize_component(
                component, self.config, seed=self.seed)
            self.model = fit_learned(dataset)
            return
        # Fit from the supplied training sets (the shared-protocol
        # path): pool toggles, cluster, window, label, fit.
        circuit = component.circuit
        pooled = {name: 0 for name in circuit.inputs}
        pooled_slots = 0
        per_run = []
        for streams in training:
            packed = fastsim.pack_streams(component.input_ports,
                                          streams)
            lanes, n = input_lanes(packed)
            toggles = toggle_lanes(lanes, n)
            energies = circuit_cycle_energies(circuit, packed)
            for name, lane in toggles.items():
                pooled[name] |= lane << pooled_slots
            pooled_slots += max(0, n - 1)
            per_run.append((toggles, max(0, n - 1), energies))
        clusters = cluster_signals(pooled, pooled_slots, self.config)
        structural = structural_features(circuit) \
            if self.config.structural else {}
        names = feature_names(clusters.signals, self.config,
                              structural or None)
        rows: List[List[float]] = []
        targets: List[float] = []
        for toggles, n_slots, energies in per_run:
            feats = window_features(toggles, n_slots, clusters.signals,
                                    self.config, structural or None)
            spans = window_slices(n_slots, self.config.window)
            for (start, length), row in zip(spans, feats):
                rows.append(row)
                targets.append(
                    sum(energies[start:start + length]) / length)
        dataset = WindowDataset(
            name=component.name,
            fingerprint=circuit.fingerprint(),
            config=self.config,
            signals=clusters.signals,
            feature_names=names,
            rows=rows,
            targets=targets,
            seed=self.seed,
            structural=structural,
        )
        self.model = fit_learned(dataset)

    def predict(self, streams) -> float:
        from repro.logic import fastsim

        if self.model is None or self._component is None:
            raise RuntimeError("model not fitted")
        packed = fastsim.pack_streams(self._component.input_ports,
                                      streams)
        return self.model.predict_power(packed)

    def predict_windows(self, streams) -> List[float]:
        from repro.logic import fastsim

        if self.model is None or self._component is None:
            raise RuntimeError("model not fitted")
        packed = fastsim.pack_streams(self._component.input_ports,
                                      streams)
        return self.model.predict_windows(packed)

    def error(self, component, streams) -> float:
        truth = component.reference_power(streams)
        if truth == 0:
            return 0.0
        return abs(self.predict(streams) - truth) / truth
