"""Held-out evaluation of learned models against the fixed ladder.

Everything here compares *per-window* power — the quantity the
learned model regresses — on stimulus the fit never saw.  The fixed
Section II-C macromodels (DBT, bitwise, PFA) predict a single average
power per stream, so their windowed prediction is that constant
repeated per window: exactly the handicap the learned model is
supposed to beat on non-stationary workloads.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence

from repro.estimation.learned.characterize import _run_seed
from repro.estimation.learned.features import FeatureConfig, window_slices
from repro.estimation.learned.model import (
    LearnedModel,
    fit_learned,
    windowed_mape,
)
from repro.rtl.components import RtlComponent, circuit_cycle_energies

__all__ = [
    "window_truth", "evaluate_model", "evaluate_component",
    "holdout_streams",
]


def window_truth(circuit, stimulus,
                 config: Optional[FeatureConfig] = None) -> List[float]:
    """Gate-level per-window mean energy — the reference waveform."""
    config = config or FeatureConfig()
    energies = circuit_cycle_energies(circuit, stimulus)
    return [sum(energies[start:start + length]) / length
            for start, length in window_slices(len(energies),
                                               config.window)]


def holdout_streams(component: RtlComponent, runs: int = 6,
                    length: int = 512, seed: int = 7777,
                    segment: int = 128):
    """Held-out *phased* word streams (seed-disjoint from training).

    Each stream concatenates ``segment``-cycle phases of different
    statistics (uniform random, biased, correlated, held constant) —
    the workload shape windowed models exist for: power varies within
    a trace, and a single per-stream average cannot track it.  The
    base seed is mapped through :func:`repro.estimation.learned.
    characterize._run_seed`, keeping test stimulus disjoint from the
    characterization runs.
    """
    import random as _random

    from repro.rtl.streams import (
        WordStream,
        constant_stream,
        correlated_stream,
        random_stream,
    )

    rng = _random.Random(_run_seed(seed, 1))
    suites = []
    for _r in range(runs):
        streams = []
        for prefix, width in component.input_ports:
            words: List[int] = []
            t = 0
            while t < length:
                seg = min(segment, length - t)
                style = rng.randrange(4)
                s = rng.randrange(1 << 30)
                if style == 0:
                    part = random_stream(width, seg, seed=s)
                elif style == 1:
                    part = random_stream(
                        width, seg, seed=s,
                        bit_prob=rng.choice([0.1, 0.25, 0.75, 0.9]))
                elif style == 2 and width > 1:
                    part = correlated_stream(
                        width, seg, rho=rng.choice([0.8, 0.95]),
                        seed=s)
                else:
                    part = constant_stream(width, seg,
                                           rng.randrange(1 << width))
                words.extend(part.words)
                t += seg
            streams.append(WordStream(words, width, prefix))
        suites.append(streams)
    return suites


def evaluate_model(model: LearnedModel, circuit, stimuli,
                   config: Optional[FeatureConfig] = None
                   ) -> Dict[str, Any]:
    """Per-window MAPE of ``model`` over held-out packed stimuli."""
    config = config or model.config
    predicted: List[float] = []
    truth: List[float] = []
    t0 = time.perf_counter()
    for stimulus in stimuli:
        predicted.extend(model.predict_windows(stimulus))
    predict_s = time.perf_counter() - t0
    for stimulus in stimuli:
        truth.extend(window_truth(circuit, stimulus, config))
    return {
        "mape": windowed_mape(predicted, truth),
        "windows": len(truth),
        "predict_s": predict_s,
    }


def _fixed_window_predictions(macromodel, streams_list,
                              component: RtlComponent,
                              config: FeatureConfig) -> List[float]:
    """A fixed macromodel's per-window view: its constant per-stream
    average, repeated once per window of that stream."""
    out: List[float] = []
    for streams in streams_list:
        avg = macromodel.predict(streams)
        n_slots = min(len(s) for s in streams) - 1
        out.extend(avg for _ in window_slices(n_slots, config.window))
    return out


def evaluate_component(component: RtlComponent,
                       config: Optional[FeatureConfig] = None,
                       fixed: Sequence[str] = ("dbt", "bitwise", "pfa"),
                       runs: int = 6, length: int = 512,
                       seed: int = 0,
                       holdout_seed: int = 7777,
                       train_cycles: int = 1024,
                       train_runs: int = 10) -> Dict[str, Any]:
    """Fit learned + fixed models on shared training stimulus and
    score all of them, per-window, on shared held-out stimulus.

    Returns per-technique MAPE plus fit/predict wall times, the raw
    material of the accuracy-vs-speed Pareto in
    ``benchmarks/bench_perf_learned.py``.
    """
    from repro.estimation.learned.characterize import (
        characterize_component,
    )
    from repro.estimation.macromodel import (
        MACROMODELS,
        fit_macromodel,
    )
    from repro.logic import fastsim

    config = config or FeatureConfig()
    result: Dict[str, Any] = {"component": component.name,
                              "techniques": {}}

    t0 = time.perf_counter()
    dataset = characterize_component(component, config, seed=seed,
                                     cycles=train_cycles,
                                     runs=train_runs)
    model = fit_learned(dataset)
    fit_s = time.perf_counter() - t0

    held = holdout_streams(component, runs=runs, length=length,
                           seed=holdout_seed)
    packed = [fastsim.pack_streams(component.input_ports, streams)
              for streams in held]
    truth: List[float] = []
    for stim in packed:
        truth.extend(window_truth(component.circuit, stim, config))

    t0 = time.perf_counter()
    predicted: List[float] = []
    for stim in packed:
        predicted.extend(model.predict_windows(stim))
    predict_s = time.perf_counter() - t0
    result["techniques"]["learned"] = {
        "mape": windowed_mape(predicted, truth),
        "fit_s": fit_s,
        "predict_s": predict_s,
        "terms": model.n_terms,
        "cv_mape": model.report.cv_mape if model.report else None,
    }

    for name in fixed:
        factory = MACROMODELS[name]
        t0 = time.perf_counter()
        mm = fit_macromodel(factory(), component, seed=seed)
        f_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        pred = _fixed_window_predictions(mm, held, component, config)
        p_s = time.perf_counter() - t0
        result["techniques"][name] = {
            "mape": windowed_mape(pred, truth),
            "fit_s": f_s,
            "predict_s": p_s,
        }

    result["windows"] = len(truth)
    fixed_mapes = [result["techniques"][n]["mape"] for n in fixed]
    result["best_fixed_mape"] = min(fixed_mapes) if fixed_mapes else None
    result["learned_wins"] = (
        result["best_fixed_mape"] is not None
        and result["techniques"]["learned"]["mape"]
        < result["best_fixed_mape"])
    return result
