"""Cluster-based cycle-power estimation (Mehta et al. [43]).

Pattern-accurate estimation by table lookup: input transitions are
mapped to a small number of clusters (by Hamming-distance proximity of
the concatenated previous/current vectors), and each cluster stores
the average power of its training patterns.  The paper points out the
approach's weakness — few clusters coarsen the estimate, and "mode
changing bits" break the closeness assumption — which bench C5's
comparison against the regression-based cycle model exposes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.estimation.macromodel import MacroModel, TrainingSet
from repro.rtl.components import RtlComponent
from repro.rtl.streams import WordStream


def _pattern_bits(streams: Sequence[WordStream], t: int) -> np.ndarray:
    """Concatenated (previous, current) input bits for cycle t."""
    bits: List[float] = []
    for s in streams:
        for w in (s.words[t - 1], s.words[t]):
            bits.extend(float((w >> i) & 1) for i in range(s.width))
    return np.array(bits)


class ClusterModel(MacroModel):
    """K-medoid-style clustering of input transitions [43]."""

    name = "cluster"

    def __init__(self, n_clusters: int = 8, seed: int = 0) -> None:
        self.n_clusters = n_clusters
        self.seed = seed
        self.centroids: Optional[np.ndarray] = None
        self.cluster_power: List[float] = []

    # -- training -----------------------------------------------------
    def fit(self, component: RtlComponent, training: TrainingSet) -> None:
        patterns: List[np.ndarray] = []
        energies: List[float] = []
        for streams in training:
            length = min(len(s) for s in streams)
            cycle_energy = component.cycle_energies(streams)
            for t in range(1, length):
                patterns.append(_pattern_bits(streams, t))
                energies.append(cycle_energy[t - 1])
        data = np.array(patterns)
        target = np.array(energies)

        rng = random.Random(self.seed)
        k = min(self.n_clusters, len(data))
        centroid_idx = rng.sample(range(len(data)), k)
        centroids = data[centroid_idx].astype(float)
        assignment = np.zeros(len(data), dtype=int)
        for _iteration in range(12):
            distances = np.array([
                np.abs(data - c).sum(axis=1) for c in centroids])
            new_assignment = distances.argmin(axis=0)
            if np.array_equal(new_assignment, assignment) \
                    and _iteration > 0:
                break
            assignment = new_assignment
            for c in range(k):
                members = data[assignment == c]
                if len(members):
                    centroids[c] = members.mean(axis=0)
        self.centroids = centroids
        self.cluster_power = [
            float(target[assignment == c].mean())
            if np.any(assignment == c) else float(target.mean())
            for c in range(k)
        ]

    # -- prediction ----------------------------------------------------
    def _lookup(self, pattern: np.ndarray) -> float:
        assert self.centroids is not None, "model not fitted"
        distances = np.abs(self.centroids - pattern).sum(axis=1)
        return self.cluster_power[int(distances.argmin())]

    def predict_cycles(self, streams: Sequence[WordStream]) -> np.ndarray:
        length = min(len(s) for s in streams)
        return np.array([
            self._lookup(_pattern_bits(streams, t))
            for t in range(1, length)
        ])

    def predict(self, streams: Sequence[WordStream]) -> float:
        cycles = self.predict_cycles(streams)
        return float(cycles.mean()) if len(cycles) else 0.0

    def cycle_error(self, component: RtlComponent,
                    streams: Sequence[WordStream]) -> float:
        truth = np.array(component.cycle_energies(streams))
        prediction = self.predict_cycles(streams)
        scale = max(float(truth.mean()), 1e-12)
        return float(np.sqrt(np.mean((prediction - truth) ** 2)) / scale)
