"""Software-level power estimation (Section II-A).

Two techniques:

- :class:`TiwariModel` -- the instruction-level model of [7]:
  Energy = sum BC_i N_i + sum SC_ij N_ij + sum OC_k, with base and
  circuit-state costs measured by running characterization loops on
  the machine (the "actual current measurements" of the paper), and
  other-effect costs per stall and cache miss,
- :func:`synthesize_profile_program` -- profile-driven program
  synthesis [8]: extract the characteristic profile of a long trace
  (instruction mix, miss rate, stall rate) and heuristically grow a
  much shorter program whose profile matches, so that energy per
  instruction agrees while simulation cost drops by orders of
  magnitude (bench C1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.software.isa import Instruction, OPCODES
from repro.software.machine import Machine, RunStats

I = Instruction


@dataclass
class TiwariModel:
    """Instruction-level energy model with measured coefficients."""

    base_costs: Dict[str, float] = field(default_factory=dict)
    pair_costs: Dict[Tuple[str, str], float] = field(default_factory=dict)
    stall_cost: float = 0.0
    miss_cost: float = 0.0

    # -- characterization ------------------------------------------------
    @classmethod
    def characterize(cls, opcodes: Optional[Sequence[str]] = None,
                     loop_length: int = 400) -> "TiwariModel":
        """Measure BC_i and SC_ij by running synthetic loops.

        BC_i: energy/instruction of a long homogeneous block of i.
        SC_ij: extra energy of an alternating i,j block beyond the
        average of the base costs.  Stall and miss costs are measured
        from targeted microbenchmarks.
        """
        opcodes = list(opcodes or
                       [op for op in OPCODES if op != "HALT"])
        model = cls()
        for op in opcodes:
            block = [_neutral(op, k) for k in range(loop_length)]
            block.append(I("HALT"))
            stats = Machine().run(block)
            model.base_costs[op] = (stats.energy
                                    / max(1, stats.instructions - 1))
        for a in opcodes:
            for b in opcodes:
                if a >= b:
                    continue
                block: List[Instruction] = []
                for k in range(loop_length // 2):
                    block.append(_neutral(a, k))
                    block.append(_neutral(b, k))
                block.append(I("HALT"))
                stats = Machine().run(block)
                per_instr = stats.energy / max(1, stats.instructions - 1)
                base_avg = 0.5 * (model.base_costs[a]
                                  + model.base_costs[b])
                model.pair_costs[(a, b)] = max(0.0, per_instr - base_avg)
                model.pair_costs[(b, a)] = model.pair_costs[(a, b)]
        # Other effects: measured microbenchmarks.
        model.stall_cost = _measure_stall_cost()
        model.miss_cost = _measure_miss_cost()
        return model

    # -- estimation --------------------------------------------------
    def estimate(self, stats: RunStats) -> float:
        """Energy from execution counts only (no re-simulation)."""
        energy = 0.0
        for op, count in stats.opcode_counts.items():
            energy += self.base_costs.get(op, 0.0) * count
        for (a, b), count in stats.pair_counts.items():
            if a != b:
                energy += self.pair_costs.get((a, b), 0.0) * count
        energy += self.stall_cost * stats.stalls
        energy += self.miss_cost * stats.cache_misses
        return energy

    def relative_error(self, stats: RunStats) -> float:
        if stats.energy == 0:
            return 0.0
        return abs(self.estimate(stats) - stats.energy) / stats.energy


def _neutral(op: str, k: int) -> Instruction:
    """An instance of ``op`` safe to run in a straight-line loop."""
    if op in ("LD", "ST"):
        return I(op, rd=1, rs=0, imm=(k * 7) % 64)
    if op == "ADDI":
        return I(op, rd=2, rs=2, imm=1)
    if op == "SLL":
        return I(op, rd=2, rs=3, imm=1)
    if op in ("BEQ", "BNE"):
        # Never-taken branch (r1 vs r1 for BNE; r1 vs r2!=r1 for BEQ).
        if op == "BNE":
            return I(op, rd=1, rs=1, imm=0)
        return I(op, rd=1, rs=4, imm=0)
    if op == "JMP":
        # Encoded as fall-through jump to the next address is not
        # expressible; model JMP's base cost with NOP-class energy.
        return I("NOP")
    if op in ("ADD", "SUB", "AND", "OR", "XOR", "MUL"):
        return I(op, rd=3, rs=5, rt=6)
    return I(op)


def _measure_stall_cost() -> float:
    """Energy delta of a load-use stall (paired microbenchmarks)."""
    stalled = Machine().run([
        I("LD", rd=1, rs=0, imm=0),
        I("ADD", rd=2, rs=1, rt=1),
        I("HALT"),
    ])
    padded = Machine().run([
        I("LD", rd=1, rs=0, imm=0),
        I("ADD", rd=2, rs=3, rt=3),
        I("HALT"),
    ])
    return max(0.0, stalled.energy - padded.energy)


def _measure_miss_cost() -> float:
    """Energy delta between a missing and a hitting load."""
    missing = Machine().run([
        I("LD", rd=1, rs=0, imm=0),
        I("LD", rd=1, rs=0, imm=512),   # distinct line: miss
        I("HALT"),
    ])
    hitting = Machine().run([
        I("LD", rd=1, rs=0, imm=0),
        I("LD", rd=1, rs=0, imm=1),     # same line: hit
        I("HALT"),
    ])
    return max(0.0, missing.energy - hitting.energy)


# ----------------------------------------------------------------------
# Profile-driven program synthesis (Hsieh et al. [8])
# ----------------------------------------------------------------------

@dataclass
class CharacteristicProfile:
    """The profile extracted from an architectural simulation."""

    instruction_mix: Dict[str, float]
    miss_rate: float
    stall_rate: float
    instructions: int

    @classmethod
    def from_stats(cls, stats: RunStats) -> "CharacteristicProfile":
        return cls(stats.instruction_mix(), stats.miss_rate,
                   stats.stall_rate, stats.instructions)


def extract_profile(program: Sequence[Instruction],
                    machine: Optional[Machine] = None
                    ) -> CharacteristicProfile:
    machine = machine or Machine()
    return CharacteristicProfile.from_stats(machine.run(list(program)))


def synthesize_profile_program(profile: CharacteristicProfile,
                               length: int = 400,
                               seed: int = 0) -> List[Instruction]:
    """Grow a short program matching a characteristic profile.

    Heuristic stand-in for the paper's MILP + rules: draw instruction
    classes from the target mix, then steer memory addresses so the
    synthesized miss rate approaches the target (sequential addresses
    hit; strided addresses past the cache size miss), and insert
    load-use pairs to match the stall rate.
    """
    rng = random.Random(seed)
    mix = dict(profile.instruction_mix)
    mix.pop("branch", None)   # straight-line synthesis
    total = sum(mix.values()) or 1.0
    classes = list(mix)
    weights = [mix[c] / total for c in classes]

    ops_by_class = {
        "alu": ["ADD", "SUB", "AND", "OR", "XOR"],
        "alui": ["ADDI"],
        "mul": ["MUL"],
        "mem": ["LD", "ST"],
        "nop": ["NOP"],
    }
    program: List[Instruction] = []
    mem_seen = 0
    target_misses = profile.miss_rate
    miss_stride = 512     # far apart -> always a fresh line
    hit_base = 0
    stalls_wanted = profile.stall_rate * length
    stalls_made = 0
    misses_made = 0
    for k in range(length):
        klass = rng.choices(classes, weights)[0]
        op = rng.choice(ops_by_class.get(klass, ["NOP"]))
        if op in ("LD", "ST"):
            mem_seen += 1
            want_miss = misses_made < target_misses * mem_seen
            if want_miss:
                address = (misses_made * miss_stride + 64) % 4000
                misses_made += 1
            else:
                address = hit_base
            program.append(I(op, rd=1, rs=0, imm=address))
            if op == "LD" and stalls_made < stalls_wanted:
                program.append(I("ADD", rd=2, rs=1, rt=1))
                stalls_made += 1
        elif op == "ADDI":
            program.append(I(op, rd=2, rs=2, imm=1))
        elif op == "NOP":
            program.append(I("NOP"))
        else:
            program.append(I(op, rd=3, rs=5, rt=6))
    program.append(I("HALT"))
    return program


@dataclass
class ProfileSynthesisReport:
    """Outcome of the C1 experiment for one workload."""

    original_instructions: int
    synthesized_instructions: int
    original_epi: float           # energy per instruction
    synthesized_epi: float

    @property
    def compaction(self) -> float:
        return self.original_instructions / max(
            1, self.synthesized_instructions)

    @property
    def epi_error(self) -> float:
        if self.original_epi == 0:
            return 0.0
        return abs(self.synthesized_epi - self.original_epi) \
            / self.original_epi


def profile_synthesis_experiment(program: Sequence[Instruction],
                                 synthesized_length: int = 400,
                                 seed: int = 0) -> ProfileSynthesisReport:
    """Run the full C1 flow for one application program."""
    original = Machine().run(list(program))
    profile = CharacteristicProfile.from_stats(original)
    short = synthesize_profile_program(profile, synthesized_length, seed)
    synth = Machine().run(short)
    return ProfileSynthesisReport(
        original_instructions=original.instructions,
        synthesized_instructions=synth.instructions,
        original_epi=original.energy_per_instruction(),
        synthesized_epi=synth.energy_per_instruction(),
    )
