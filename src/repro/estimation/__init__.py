"""High-level power estimation (Section II of the paper).

One module per surveyed model family:

- :mod:`repro.estimation.entropy`        -- information-theoretic
  models (II-B1): Marculescu/Nemani-Najm average line entropy,
  Cheng-Agrawal and Ferrandi total-capacitance estimates,
- :mod:`repro.estimation.tyagi`          -- entropic FSM switching
  bounds (II-B1, [13]),
- :mod:`repro.estimation.complexity`     -- complexity-based models
  (II-B2): gate equivalents, Nemani-Najm area complexity,
  Landman-Rabaey controller model,
- :mod:`repro.estimation.quicksynth`     -- synthesis-based behavioral
  estimation (II-B3),
- :mod:`repro.estimation.macromodel`     -- regression macro-models
  (II-C1): PFA, dual-bit-type, bitwise, input-output, 3D table,
  cycle-accurate models with F-test variable selection,
- :mod:`repro.estimation.sampling`       -- census / sampler /
  adaptive cosimulation (II-C2),
- :mod:`repro.estimation.probabilistic`  -- gate-level probabilistic
  reference methods (Monte Carlo, transition density),
- :mod:`repro.estimation.software_power` -- instruction-level model
  and profile-driven program synthesis (II-A).
"""

from repro.estimation.entropy import (
    entropy_of_probability,
    marculescu_havg,
    nemani_najm_havg,
    cheng_agrawal_ctot,
    ferrandi_ctot,
    FerrandiModel,
    entropy_power_estimate,
    measured_io_entropies,
)
from repro.estimation.macromodel import (
    PfaModel,
    DualBitTypeModel,
    BitwiseModel,
    InputOutputModel,
    Table3DModel,
    CycleAccurateModel,
    fit_macromodel,
)
from repro.estimation.sampling import (
    census_power,
    sampler_power,
    adaptive_power,
)

__all__ = [
    "entropy_of_probability",
    "marculescu_havg",
    "nemani_najm_havg",
    "cheng_agrawal_ctot",
    "ferrandi_ctot",
    "FerrandiModel",
    "entropy_power_estimate",
    "measured_io_entropies",
    "PfaModel",
    "DualBitTypeModel",
    "BitwiseModel",
    "InputOutputModel",
    "Table3DModel",
    "CycleAccurateModel",
    "fit_macromodel",
    "census_power",
    "sampler_power",
    "adaptive_power",
]
