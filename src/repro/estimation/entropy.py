"""Information-theoretic power models (Section II-B1).

Implements, with the paper's exact formulas:

- the bit-level entropy upper bound ``h`` of a vector sequence and the
  activity bound  E <= h / 2  (temporal independence, [9]),
- Marculescu et al.'s closed-form average line entropy for a linear
  gate distribution [9],
- Nemani-Najm's average line entropy from sectional I/O entropies [10],
- the entropy power estimate  P = 0.5 V^2 f C_tot E_avg,
- Cheng-Agrawal's total-capacitance estimate  C_tot = (m/n) 2^n h_out
  [11],
- Ferrandi et al.'s BDD-node-based estimate
  C_tot = alpha (m/n) N h_out + beta  [12], with the empirical linear
  regression over a circuit population the paper describes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.logic.netlist import Circuit
from repro.logic.simulate import Vector, output_trace
from repro.rtl.streams import WordStream


def entropy_of_probability(p: float) -> float:
    """Binary entropy function h(p) in bits."""
    if p <= 0.0 or p >= 1.0:
        return 0.0
    return -p * math.log2(p) - (1.0 - p) * math.log2(1.0 - p)


def sequence_bit_entropy(vectors: Sequence[Vector],
                         names: Sequence[str]) -> float:
    """Average bit-level entropy of a vector sequence (upper bound h)."""
    if not vectors or not names:
        return 0.0
    total = 0.0
    for name in names:
        p = sum(v[name] for v in vectors) / len(vectors)
        total += entropy_of_probability(p)
    return total / len(names)


def activity_upper_bound(h: float) -> float:
    """E <= h/2 under temporal independence ([9], Section II-B1)."""
    return 0.5 * h


def marculescu_havg(n: int, m: int, h_in: float, h_out: float) -> float:
    """Average line entropy for a linear gate distribution [9].

    ``n``/``m`` are input/output counts, ``h_in``/``h_out`` average
    bit-level I/O entropies.  Falls back to the arithmetic mean when
    h_in == h_out (the formula's removable singularity).
    """
    if h_in <= 0 or h_out <= 0:
        return 0.5 * (max(h_in, 0.0) + max(h_out, 0.0))
    ratio = h_in / h_out
    if abs(math.log(ratio)) < 1e-9:
        return h_in
    ln = math.log(ratio)
    mn = m / n
    inner = (1.0
             - mn * (h_out / h_in)
             - ((1.0 - mn) * (1.0 - h_out / h_in)) / ln)
    return (2.0 * n * h_in) / ((n + m) * ln) * inner


def nemani_najm_havg(n: int, m: int, big_h_in: float,
                     big_h_out: float) -> float:
    """h_avg = 2/(3(n+m)) (H_in + H_out), sectional entropies [10]."""
    return 2.0 / (3.0 * (n + m)) * (big_h_in + big_h_out)


def cheng_agrawal_ctot(n: int, m: int, h_out: float) -> float:
    """C_tot = (m/n) 2^n h_out [11]; pessimistic for large n."""
    return (m / n) * (1 << n) * h_out


@dataclass
class FerrandiModel:
    """C_tot = alpha (m/n) N h_out + beta, fitted over a population [12]."""

    alpha: float
    beta: float

    def predict(self, n: int, m: int, bdd_nodes: int, h_out: float) -> float:
        return self.alpha * (m / n) * bdd_nodes * h_out + self.beta


def ferrandi_ctot(circuits: Sequence[Circuit],
                  training_vectors: int = 200,
                  seed: int = 0) -> FerrandiModel:
    """Fit the Ferrandi capacitance model on a circuit population.

    For each circuit the regressor is (m/n) N h_out with N the shared
    BDD node count and h_out measured by functional simulation under
    pseudorandom inputs; the response is the true total capacitance of
    the netlist.
    """
    import numpy as np

    from repro.logic.bdd_bridge import total_bdd_nodes
    from repro.logic.simulate import random_vectors

    xs: List[float] = []
    ys: List[float] = []
    for circuit in circuits:
        n = len(circuit.inputs)
        m = len(circuit.outputs)
        vectors = random_vectors(circuit.inputs, training_vectors, seed=seed)
        outs = output_trace(circuit, vectors)
        h_out = sequence_bit_entropy(outs, circuit.outputs)
        nodes = total_bdd_nodes(circuit)
        xs.append((m / n) * nodes * h_out)
        ys.append(circuit.total_capacitance())
    a = np.vstack([xs, np.ones(len(xs))]).T
    coeffs, *_ = np.linalg.lstsq(a, np.array(ys), rcond=None)
    return FerrandiModel(alpha=float(coeffs[0]), beta=float(coeffs[1]))


def entropy_power_estimate(c_tot: float, h_avg: float,
                           vdd: float = 1.0, freq: float = 1.0) -> float:
    """Power = 0.5 V^2 f C_tot E_avg with E_avg = h_avg / 2."""
    return 0.5 * vdd * vdd * freq * c_tot * activity_upper_bound(h_avg)


def measured_io_entropies(circuit: Circuit,
                          vectors: Sequence[Vector]
                          ) -> Tuple[float, float]:
    """(h_in, h_out): average bit entropies from functional simulation."""
    h_in = sequence_bit_entropy(vectors, circuit.inputs)
    outs = output_trace(circuit, vectors)
    h_out = sequence_bit_entropy(outs, circuit.outputs)
    return h_in, h_out


def estimate_circuit_power_entropic(circuit: Circuit,
                                    vectors: Sequence[Vector],
                                    model: str = "marculescu",
                                    vdd: float = 1.0,
                                    freq: float = 1.0) -> float:
    """End-to-end entropic estimate for a structural circuit.

    C_tot comes from the netlist (structure given); h_avg from the
    selected entropy propagation model; no gate-level power simulation
    is involved.
    """
    n = len(circuit.inputs)
    m = len(circuit.outputs)
    h_in, h_out = measured_io_entropies(circuit, vectors)
    if model == "marculescu":
        h_avg = marculescu_havg(n, m, h_in, h_out)
    elif model == "nemani-najm":
        # Sectional entropies approximated by summed bit entropies,
        # as the paper notes is done in practice.
        h_avg = nemani_najm_havg(n, m, n * h_in, m * h_out)
    else:
        raise ValueError(f"unknown entropy model {model!r}")
    return entropy_power_estimate(circuit.total_capacitance(), h_avg,
                                  vdd=vdd, freq=freq)
