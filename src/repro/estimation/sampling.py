"""Sampling-based RT-level power cosimulation (Section II-C2, [46]).

Three estimators over a module's operand streams, all driven by a
fitted macro-model:

- :func:`census_power`  -- evaluate the macro-model equation on every
  cycle (the census survey; accurate w.r.t. the model but expensive),
- :func:`sampler_power` -- simple random sampling of marked cycles;
  several samples of >= 30 units are averaged so the sample-mean
  distribution is near normal, exactly as the paper argues,
- :func:`adaptive_power`-- the regression (ratio) estimator: a handful
  of gate-level-simulated cycles de-bias the macro-model through the
  approximately linear relation between model and gate-level power.

Each result records how many macro-model evaluations and gate-level
cycles were spent, so efficiency claims (the 50x of bench C6) are
measurable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.estimation.macromodel import MacroModel
from repro.rtl.components import RtlComponent
from repro.rtl.streams import WordStream


@dataclass
class SamplingResult:
    """Estimate plus the cost that produced it."""

    estimate: float
    model_evaluations: int
    gate_cycles: int

    @property
    def cost(self) -> float:
        """Aggregate cost; gate-level cycles are far more expensive
        than macro-model evaluations (3 orders of magnitude in the
        paper's terms; 100x here, conservatively)."""
        return self.model_evaluations + 100.0 * self.gate_cycles


def _cycle_window(streams: Sequence[WordStream], t: int
                  ) -> List[WordStream]:
    """Two-vector window (t-1, t) as short streams."""
    return [WordStream([s.words[t - 1], s.words[t]], s.width)
            for s in streams]


def cycle_model_energy(model: MacroModel,
                       streams: Sequence[WordStream], t: int) -> float:
    """Macro-model equation evaluated for a single cycle."""
    return model.predict(_cycle_window(streams, t))


def census_power(model: MacroModel,
                 streams: Sequence[WordStream]) -> SamplingResult:
    """Evaluate the macro-model on every simulation cycle."""
    length = min(len(s) for s in streams)
    if length < 2:
        return SamplingResult(0.0, 0, 0)
    total = 0.0
    for t in range(1, length):
        total += cycle_model_energy(model, streams, t)
    return SamplingResult(total / (length - 1), length - 1, 0)


def sampler_power(model: MacroModel, streams: Sequence[WordStream],
                  n_samples: int = 4, sample_size: int = 30,
                  seed: int = 0) -> SamplingResult:
    """Simple-random-sampling estimator over marked cycles.

    ``n_samples`` independent samples of ``sample_size`` cycles are
    drawn; the estimate is the mean of the sample means.  The paper's
    guidance (samples of at least 30 units) is enforced.
    """
    if sample_size < 30:
        raise ValueError("samples must have at least 30 units "
                         "(normality of the sample mean)")
    length = min(len(s) for s in streams)
    population = list(range(1, length))
    if len(population) <= n_samples * sample_size:
        return census_power(model, streams)
    rng = random.Random(seed)
    sample_means: List[float] = []
    evaluations = 0
    for _ in range(n_samples):
        marked = rng.sample(population, sample_size)
        total = sum(cycle_model_energy(model, streams, t) for t in marked)
        evaluations += sample_size
        sample_means.append(total / sample_size)
    estimate = sum(sample_means) / len(sample_means)
    return SamplingResult(estimate, evaluations, 0)


def adaptive_power(model: MacroModel, component: RtlComponent,
                   streams: Sequence[WordStream],
                   gate_sample_size: int = 30,
                   n_samples: int = 4, sample_size: int = 30,
                   seed: int = 0) -> SamplingResult:
    """Ratio-regression estimator [46].

    The macro-model acts as the predictor variable; a small random
    sample of cycles is simulated at gate level to estimate the mean
    ratio  R = E[gate] / E[model],  and the final estimate is
    R x (sampled macro-model power).  This removes the bias a
    macro-model trained on one data class shows on another.
    """
    length = min(len(s) for s in streams)
    population = list(range(1, length))
    rng = random.Random(seed)
    gate_sample = rng.sample(population,
                             min(gate_sample_size, len(population)))

    gate_total = 0.0
    model_total = 0.0
    evaluations = 0
    for t in gate_sample:
        window = _cycle_window(streams, t)
        energies = component.cycle_energies(window)
        gate_total += energies[0]
        model_total += model.predict(window)
        evaluations += 1
    ratio = gate_total / model_total if model_total > 0 else 1.0

    base = sampler_power(model, streams, n_samples=n_samples,
                         sample_size=sample_size, seed=seed + 1)
    return SamplingResult(ratio * base.estimate,
                          base.model_evaluations + evaluations,
                          len(gate_sample))


def gate_reference_power(component: RtlComponent,
                         streams: Sequence[WordStream]) -> SamplingResult:
    """Full gate-level simulation (the expensive ground truth)."""
    length = min(len(s) for s in streams)
    power = component.reference_power(streams)
    return SamplingResult(power, 0, length)
