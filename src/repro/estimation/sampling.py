"""Sampling-based RT-level power cosimulation (Section II-C2, [46]).

Three estimators over a module's operand streams, all driven by a
fitted macro-model:

- :func:`census_power`  -- evaluate the macro-model equation on every
  cycle (the census survey; accurate w.r.t. the model but expensive),
- :func:`sampler_power` -- simple random sampling of marked cycles;
  several samples of >= 30 units are averaged so the sample-mean
  distribution is near normal, exactly as the paper argues,
- :func:`adaptive_power`-- the regression (ratio) estimator: a handful
  of gate-level-simulated cycles de-bias the macro-model through the
  approximately linear relation between model and gate-level power.

Each result records how many macro-model evaluations and gate-level
cycles were spent, so efficiency claims (the 50x of bench C6) are
measurable.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.estimation.macromodel import MacroModel
from repro.rtl.components import RtlComponent
from repro.rtl.streams import WordStream


@dataclass
class SamplingResult:
    """Estimate plus the cost that produced it."""

    estimate: float
    model_evaluations: int
    gate_cycles: int
    #: Standard error of the mean-of-sample-means (None when fewer
    #: than two samples were drawn, e.g. census evaluation) — makes
    #: the paper's >= 30-units-per-sample normality argument checkable
    #: against the spread actually observed.
    std_error: Optional[float] = None

    @property
    def cost(self) -> float:
        """Aggregate cost; gate-level cycles are far more expensive
        than macro-model evaluations (3 orders of magnitude in the
        paper's terms; 100x here, conservatively)."""
        return self.model_evaluations + 100.0 * self.gate_cycles


def _cycle_window(streams: Sequence[WordStream], t: int
                  ) -> List[WordStream]:
    """Two-vector window (t-1, t) as short streams."""
    return [WordStream([s.words[t - 1], s.words[t]], s.width)
            for s in streams]


def cycle_model_energy(model: MacroModel,
                       streams: Sequence[WordStream], t: int) -> float:
    """Macro-model equation evaluated for a single cycle."""
    return model.predict(_cycle_window(streams, t))


def census_power(model: MacroModel,
                 streams: Sequence[WordStream]) -> SamplingResult:
    """Evaluate the macro-model on every simulation cycle."""
    length = min(len(s) for s in streams)
    if length < 2:
        return SamplingResult(0.0, 0, 0)
    total = 0.0
    for t in range(1, length):
        total += cycle_model_energy(model, streams, t)
    return SamplingResult(total / (length - 1), length - 1, 0)


def sampler_power(model: MacroModel, streams: Sequence[WordStream],
                  n_samples: int = 4, sample_size: int = 30,
                  seed: int = 0) -> SamplingResult:
    """Simple-random-sampling estimator over marked cycles.

    ``n_samples`` samples of ``sample_size`` cycles are drawn *without
    replacement across samples* — one ``rng.sample`` of
    ``n_samples * sample_size`` marked cycles, chunked — so no cycle
    is evaluated twice and the samples stay disjoint; the estimate is
    the mean of the sample means.  The paper's guidance (samples of at
    least 30 units) is enforced, and the standard error of the mean of
    sample means is reported so the normality argument is checkable.
    For a fixed ``seed`` the marked set, the estimate and the error
    are fully deterministic.
    """
    if sample_size < 30:
        raise ValueError("samples must have at least 30 units "
                         "(normality of the sample mean)")
    length = min(len(s) for s in streams)
    population = list(range(1, length))
    if len(population) <= n_samples * sample_size:
        return census_power(model, streams)
    rng = random.Random(seed)
    marked = rng.sample(population, n_samples * sample_size)
    sample_means: List[float] = []
    for k in range(n_samples):
        chunk = marked[k * sample_size:(k + 1) * sample_size]
        total = sum(cycle_model_energy(model, streams, t) for t in chunk)
        sample_means.append(total / sample_size)
    estimate = sum(sample_means) / len(sample_means)
    std_error = None
    if n_samples > 1:
        var = sum((m - estimate) ** 2 for m in sample_means) \
            / (n_samples - 1)
        std_error = math.sqrt(var / n_samples)
    return SamplingResult(estimate, len(marked), 0, std_error=std_error)


def adaptive_power(model: MacroModel, component: RtlComponent,
                   streams: Sequence[WordStream],
                   gate_sample_size: int = 30,
                   n_samples: int = 4, sample_size: int = 30,
                   seed: int = 0) -> SamplingResult:
    """Ratio-regression estimator [46].

    The macro-model acts as the predictor variable; a small random
    sample of cycles is simulated at gate level to estimate the mean
    ratio  R = E[gate] / E[model],  and the final estimate is
    R x (sampled macro-model power).  This removes the bias a
    macro-model trained on one data class shows on another.
    """
    length = min(len(s) for s in streams)
    population = list(range(1, length))
    rng = random.Random(seed)
    gate_sample = rng.sample(population,
                             min(gate_sample_size, len(population)))

    gate_total = 0.0
    model_total = 0.0
    evaluations = 0
    for t in gate_sample:
        window = _cycle_window(streams, t)
        energies = component.cycle_energies(window)
        gate_total += energies[0]
        model_total += model.predict(window)
        evaluations += 1
    ratio = gate_total / model_total if model_total > 0 else 1.0

    base = sampler_power(model, streams, n_samples=n_samples,
                         sample_size=sample_size, seed=seed + 1)
    std_error = ratio * base.std_error \
        if base.std_error is not None else None
    return SamplingResult(ratio * base.estimate,
                          base.model_evaluations + evaluations,
                          len(gate_sample), std_error=std_error)


def gate_reference_power(component: RtlComponent,
                         streams: Sequence[WordStream],
                         timed: bool = False,
                         workers: Optional[int] = None) -> SamplingResult:
    """Full gate-level simulation (the expensive ground truth).

    ``timed=True`` uses the glitch-aware tick-wheel engine; ``workers``
    then shards long streams across processes (the merged report is
    bit-identical to a serial run).
    """
    length = min(len(s) for s in streams)
    power = component.reference_power(streams, timed=timed,
                                      workers=workers)
    return SamplingResult(power, 0, length)
