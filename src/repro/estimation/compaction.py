"""Automata-based input-sequence compaction ([36]-[38], cited in the
RT-level flow of Section II-C1 step 4).

Long stimulus sequences dominate simulation cost; the Marculescu
compaction line of work builds a stochastic model of the stream and
generates a much shorter sequence with the same statistics, so the
power simulator sees equivalent activity at a fraction of the cycles.

Implemented here as a first-order Markov compactor over words (with
state lumping for wide streams): transition probabilities are
estimated from the original sequence and a shorter sequence is
generated from the fitted chain.  Preserved statistics — word
distribution, per-bit signal probabilities and activities — are what
switched-capacitance power depends on to first order, which the tests
verify on gate-level power.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.rtl.streams import WordStream, bit_activities, \
    bit_probabilities


@dataclass
class MarkovModel:
    """First-order Markov chain over (possibly lumped) words."""

    transitions: Dict[int, List[Tuple[int, float]]]
    initial: int
    lump_mask: int

    def generate(self, length: int, width: int,
                 seed: int = 0) -> WordStream:
        rng = random.Random(seed)
        words: List[int] = []
        state = self.initial
        for _ in range(length):
            words.append(state)
            choices = self.transitions.get(state)
            if not choices:
                state = self.initial
                continue
            r = rng.random()
            cum = 0.0
            for nxt, p in choices:
                cum += p
                if r <= cum:
                    state = nxt
                    break
            else:       # numerical tail
                state = choices[-1][0]
        return WordStream(words, width, "compacted")


def fit_markov(stream: WordStream, max_states: int = 256) -> MarkovModel:
    """Estimate a first-order chain from a word stream.

    If the stream has more distinct words than ``max_states``, low
    bits are lumped (masked) until the state count fits — the
    "stochastic sequential machine" abstraction of [36].
    """
    lump_mask = (1 << stream.width) - 1
    words = stream.words
    while len({w & lump_mask for w in words}) > max_states \
            and lump_mask != 0:
        lump_mask &= lump_mask << 1 & ((1 << stream.width) - 1)
    lumped = [w & lump_mask for w in words]

    counts: Dict[int, Dict[int, int]] = {}
    for a, b in zip(lumped, lumped[1:]):
        counts.setdefault(a, {}).setdefault(b, 0)
        counts[a][b] += 1
    transitions = {
        state: [(nxt, c / sum(outs.values()))
                for nxt, c in sorted(outs.items())]
        for state, outs in counts.items()
    }
    return MarkovModel(transitions, lumped[0] if lumped else 0, lump_mask)


@dataclass
class CompactionReport:
    original_length: int
    compacted_length: int
    probability_error: float     # max |p_i - p_i'| over bits
    activity_error: float        # max |E_i - E_i'| over bits

    @property
    def compaction(self) -> float:
        return self.original_length / max(1, self.compacted_length)


def compact_stream(stream: WordStream, target_length: int,
                   seed: int = 0, max_states: int = 256
                   ) -> Tuple[WordStream, CompactionReport]:
    """Generate a statistics-preserving shorter stream."""
    model = fit_markov(stream, max_states=max_states)
    short = model.generate(target_length, stream.width, seed=seed)

    p0 = bit_probabilities(stream)
    p1 = bit_probabilities(short)
    a0 = bit_activities(stream)
    a1 = bit_activities(short)
    report = CompactionReport(
        original_length=len(stream),
        compacted_length=len(short),
        probability_error=max((abs(x - y) for x, y in zip(p0, p1)),
                              default=0.0),
        activity_error=max((abs(x - y) for x, y in zip(a0, a1)),
                           default=0.0),
    )
    return short, report


def compaction_power_experiment(component, streams: Sequence[WordStream],
                                target_length: int, seed: int = 0
                                ) -> Dict[str, float]:
    """Gate-level power on the original vs the compacted stimulus.

    The claim ([36]-[38]): simulating the compacted sequence gives
    nearly the same average power at a fraction of the cycles.
    """
    shorts = []
    for i, s in enumerate(streams):
        short, _rep = compact_stream(s, target_length, seed=seed + i)
        shorts.append(short)
    original = component.reference_power(streams)
    compacted = component.reference_power(shorts)
    error = abs(compacted - original) / original if original else 0.0
    return {
        "original_power": original,
        "compacted_power": compacted,
        "relative_error": error,
        "speedup": min(len(s) for s in streams) / target_length,
    }
