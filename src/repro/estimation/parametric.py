"""Parametric architectural power models (Section II-C1, Liu-Svensson
[42]).

Power of a processor's major structures expressed as closed-form
functions of implementation parameters — no simulation, just the
architecture's dimensions.  Implemented components, following the
paper's description:

- on-chip SRAM: cell array (the paper's quoted formula
  ``P_memcell = 0.5 V V_swing 2^k (C_int + 2^{n-k} C_tr)``), row
  decoder, word-line driver, column select, sense amplifiers,
- busses and global interconnect (length-scaled wire capacitance),
- H-tree clock network,
- off-chip drivers,
- random logic (gate-equivalent based) and datapath.

All capacitances are in the framework's C0 units so parametric
estimates are comparable with simulated netlists.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

# Technology constants (normalized units, CMOS-trend ratios).
CELL_WIRE_CAP = 0.08        # C_int: bit-line wire cap per cell
CELL_DRAIN_CAP = 0.04       # C_tr: drain cap per cell on the bit line
WORDLINE_CAP_PER_CELL = 0.12
DECODER_GATE_CAP = 1.2
SENSE_AMP_CAP = 3.0
READOUT_INV_CAP = 1.0
BUS_WIRE_CAP_PER_MM = 8.0
OFFCHIP_PAD_CAP = 200.0
CLOCK_WIRE_CAP_PER_MM = 6.0
LOGIC_GATE_CAP = 2.0        # switched cap per gate equivalent per toggle


@dataclass
class MemoryArray:
    """2^n words of ``word_bits`` bits in 2^(n-k) rows x 2^k columns."""

    n: int                   # log2(total words)
    k: int                   # log2(columns); 2^k cells per row per bit
    word_bits: int = 1
    vdd: float = 1.0
    v_swing: float = 0.2     # reduced bit-line swing (read)

    def __post_init__(self) -> None:
        if self.k > self.n:
            raise ValueError("more column bits than address bits")

    @property
    def rows(self) -> int:
        return 1 << (self.n - self.k)

    @property
    def columns(self) -> int:
        return 1 << self.k

    # -- the five parts of the paper's memory model -------------------
    def cell_array_energy(self) -> float:
        """Paper's quoted formula: every cell on the selected row
        drives bit or bit-bar during a read:
        0.5 V V_swing 2^k (C_int + 2^{n-k} C_tr)."""
        bitline_cap = CELL_WIRE_CAP * self.rows \
            + CELL_DRAIN_CAP * self.rows
        return 0.5 * self.vdd * self.v_swing * self.columns \
            * self.word_bits * bitline_cap

    def row_decoder_energy(self) -> float:
        """(n-k)-input decode: ~2 gates toggle per decode level."""
        levels = max(1, self.n - self.k)
        return 0.5 * self.vdd * self.vdd \
            * (2.0 * levels * DECODER_GATE_CAP)

    def wordline_energy(self) -> float:
        """Driving the selected row: one word line of 2^k cells/bit."""
        cap = WORDLINE_CAP_PER_CELL * self.columns * self.word_bits
        return 0.5 * self.vdd * self.vdd * cap

    def column_select_energy(self) -> float:
        """Column mux: k select levels per output bit."""
        cap = DECODER_GATE_CAP * max(1, self.k) * self.word_bits
        return 0.5 * self.vdd * self.vdd * cap

    def sense_amplifier_energy(self) -> float:
        """Sense amp plus readout inverter per output bit."""
        return 0.5 * self.vdd * self.vdd \
            * (SENSE_AMP_CAP + READOUT_INV_CAP) * self.word_bits

    def read_energy(self) -> float:
        """Total energy of one read access."""
        return (self.cell_array_energy() + self.row_decoder_energy()
                + self.wordline_energy() + self.column_select_energy()
                + self.sense_amplifier_energy())

    def write_energy(self) -> float:
        """Writes drive full swing on the bit lines."""
        full_swing = self.cell_array_energy() * (self.vdd / self.v_swing)
        return (full_swing + self.row_decoder_energy()
                + self.wordline_energy() + self.column_select_energy())

    def optimal_aspect(self) -> int:
        """k minimizing read energy for this capacity (organization
        parameter the paper's model exists to explore)."""
        best_k = 0
        best = float("inf")
        for k in range(self.n + 1):
            candidate = MemoryArray(self.n, k, self.word_bits,
                                    self.vdd, self.v_swing)
            energy = candidate.read_energy()
            if energy < best:
                best = energy
                best_k = k
        return best_k


@dataclass
class Bus:
    """On-chip bus of ``width`` lines and ``length_mm`` millimetres."""

    width: int
    length_mm: float
    vdd: float = 1.0

    def energy_per_transfer(self, activity: float = 0.5) -> float:
        cap = BUS_WIRE_CAP_PER_MM * self.length_mm
        return 0.5 * self.vdd * self.vdd * cap * self.width * activity


@dataclass
class OffChipDriver:
    width: int
    vdd: float = 1.0

    def energy_per_transfer(self, activity: float = 0.5) -> float:
        return 0.5 * self.vdd * self.vdd * OFFCHIP_PAD_CAP \
            * self.width * activity


@dataclass
class ClockTree:
    """H-tree clock distribution to ``n_leaves`` clocked elements."""

    n_leaves: int
    die_mm: float = 10.0
    leaf_cap: float = 1.0
    vdd: float = 1.0

    def total_wire_mm(self) -> float:
        """H-tree wire length: each level halves the span, doubles the
        branch count; total ~ 1.5 x die span x sqrt(leaves)."""
        levels = max(1, math.ceil(math.log2(max(2, self.n_leaves))))
        total = 0.0
        span = self.die_mm
        branches = 1
        for _ in range(levels):
            total += span * branches
            branches *= 2
            span /= 2.0
        return total

    def energy_per_cycle(self) -> float:
        cap = CLOCK_WIRE_CAP_PER_MM * self.total_wire_mm() \
            + self.leaf_cap * self.n_leaves
        # The clock makes two transitions per cycle.
        return self.vdd * self.vdd * cap


@dataclass
class RandomLogicBlock:
    gate_equivalents: float
    activity: float = 0.15
    vdd: float = 1.0

    def energy_per_cycle(self) -> float:
        return 0.5 * self.vdd * self.vdd * LOGIC_GATE_CAP \
            * self.gate_equivalents * self.activity


@dataclass
class ProcessorModel:
    """A typical processor assembled from the parametric components."""

    memory: MemoryArray
    data_bus: Bus
    address_bus: Bus
    clock: ClockTree
    logic: RandomLogicBlock
    offchip: Optional[OffChipDriver] = None
    memory_reads_per_cycle: float = 0.3
    memory_writes_per_cycle: float = 0.1
    bus_transfers_per_cycle: float = 0.4
    offchip_transfers_per_cycle: float = 0.02

    def power_breakdown(self, freq: float = 1.0) -> Dict[str, float]:
        parts = {
            "memory": freq * (
                self.memory_reads_per_cycle * self.memory.read_energy()
                + self.memory_writes_per_cycle
                * self.memory.write_energy()),
            "busses": freq * self.bus_transfers_per_cycle * (
                self.data_bus.energy_per_transfer()
                + self.address_bus.energy_per_transfer()),
            "clock": freq * self.clock.energy_per_cycle(),
            "logic": freq * self.logic.energy_per_cycle(),
        }
        if self.offchip is not None:
            parts["offchip"] = freq * self.offchip_transfers_per_cycle \
                * self.offchip.energy_per_transfer()
        return parts

    def total_power(self, freq: float = 1.0) -> float:
        return sum(self.power_breakdown(freq).values())


def typical_processor(memory_kwords_log2: int = 12,
                      word_bits: int = 32,
                      vdd: float = 1.0) -> ProcessorModel:
    """A representative configuration for exploration studies."""
    n = memory_kwords_log2
    memory = MemoryArray(n=n, k=MemoryArray(n, 0, word_bits,
                                            vdd).optimal_aspect(),
                         word_bits=word_bits, vdd=vdd)
    return ProcessorModel(
        memory=memory,
        data_bus=Bus(width=word_bits, length_mm=6.0, vdd=vdd),
        address_bus=Bus(width=n, length_mm=6.0, vdd=vdd),
        clock=ClockTree(n_leaves=2000, die_mm=10.0, vdd=vdd),
        logic=RandomLogicBlock(gate_equivalents=20000, vdd=vdd),
        offchip=OffChipDriver(width=word_bits, vdd=vdd),
    )
