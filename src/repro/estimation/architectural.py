"""Architectural-level CPU power estimation (Section II-A, [5], [6]).

Sato et al. [5] characterize "the average capacitance that would
switch when the given CPU module is activated"; Su et al. [6] add the
switching activity on the address/instruction/data busses.  This
module implements that style of estimate on top of the framework's
machine: each architectural module (fetch/decode, register file, ALU,
multiplier, load/store unit, cache) carries an effective switched
capacitance per activation; a program's :class:`RunStats` supplies the
activation counts and the measured instruction-bus toggles.

It is deliberately coarser than the Tiwari instruction-level model
(no inter-instruction terms), which the tests quantify — the paper's
point that finer models buy accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.software.machine import RunStats

#: Effective switched capacitance per activation, by module.  The
#: values are calibrated once against the machine's energy model on a
#: reference workload (see :func:`calibrate`), the counterpart of
#: Sato's characterization measurements.
DEFAULT_MODULE_CAPS: Dict[str, float] = {
    "fetch_decode": 1.0,     # every instruction
    "register_file": 0.6,    # every instruction with register traffic
    "alu": 0.8,              # alu/alui class
    "multiplier": 4.6,       # mul class
    "lsu": 1.4,              # mem class (address datapath)
    "cache_miss": 12.0,      # per miss (line fill)
    "bus_bit": 0.04,         # per instruction-bus bit toggle
}


@dataclass
class ArchitecturalModel:
    """Per-module capacitance model of a processor."""

    module_caps: Dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_MODULE_CAPS))
    vdd: float = 1.0

    def activations(self, stats: RunStats) -> Dict[str, float]:
        mix = stats.class_counts
        reg_traffic = stats.instructions - mix.get("nop", 0)
        return {
            "fetch_decode": float(stats.instructions),
            "register_file": float(reg_traffic),
            "alu": float(mix.get("alu", 0) + mix.get("alui", 0)),
            "multiplier": float(mix.get("mul", 0)),
            "lsu": float(mix.get("mem", 0)),
            "cache_miss": float(stats.cache_misses),
            "bus_bit": float(stats.bus_toggles),
        }

    def estimate(self, stats: RunStats) -> float:
        """Program energy: sum over modules of C_module x activations."""
        counts = self.activations(stats)
        return 0.5 * self.vdd * self.vdd * sum(
            self.module_caps[m] * counts[m] for m in counts)

    def breakdown(self, stats: RunStats) -> Dict[str, float]:
        counts = self.activations(stats)
        return {m: 0.5 * self.vdd * self.vdd
                * self.module_caps[m] * counts[m] for m in counts}

    def relative_error(self, stats: RunStats) -> float:
        if stats.energy == 0:
            return 0.0
        return abs(self.estimate(stats) - stats.energy) / stats.energy


def calibrate(reference_stats: RunStats,
              base: Optional[Dict[str, float]] = None
              ) -> ArchitecturalModel:
    """Scale the module capacitances so the model matches one
    reference workload's measured energy (single-point calibration, as
    architectural models are calibrated against one die measurement).
    """
    model = ArchitecturalModel(dict(base or DEFAULT_MODULE_CAPS))
    predicted = model.estimate(reference_stats)
    if predicted > 0:
        scale = reference_stats.energy / predicted
        model.module_caps = {m: c * scale
                             for m, c in model.module_caps.items()}
    return model
