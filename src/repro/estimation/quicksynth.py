"""Synthesis-based behavioral estimation (Section II-B3).

Quick synthesis: assume an RT-level template for a behavioral
description (CDFG), make the standard behavioral choices (resource
sharing level, register insertion), and estimate power with RT-level
macro-models plus profiling statistics from a high-level simulation
of the behaviour (dynamic profiling, [20], [21]).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.backend.core import default_engine, resolve_engine
from repro.cdfg.graph import Cdfg
from repro.cdfg.library import ModuleLibrary
from repro.cdfg.schedule import Schedule, list_schedule
from repro.rtl import faststreams
from repro.util.bits import hamming


@dataclass
class QuickSynthesisEstimate:
    """Breakdown of a synthesis-based power estimate."""

    total: float
    functional_units: float
    registers: float
    interconnect: float
    control: float
    resources: Dict[str, int]
    latency: int


def dynamic_profile(cdfg: Cdfg, input_streams: Dict[str, Sequence[int]],
                    engine: Optional[str] = None) -> Dict[str, float]:
    """Average word-level activity per operation kind from simulation.

    This is "dynamic profiling based on direct simulation of the
    behavior under a typical input stream".
    """
    traces = cdfg.simulate(input_streams)
    activity_by_kind: Dict[str, List[float]] = {}
    for node in cdfg.operations():
        values = traces[node.uid]
        if len(values) < 2:
            continue
        resolved = resolve_engine(engine, default_engine(),
                                  cycles=len(values))
        if resolved != "reference":
            toggles = faststreams.transition_count(
                values, cdfg.width,
                backend="numpy" if resolved == "numpy" else None)
        else:
            toggles = sum(hamming(a, b)
                          for a, b in zip(values, values[1:]))
        per_cycle = toggles / ((len(values) - 1) * cdfg.width)
        activity_by_kind.setdefault(node.kind, []).append(per_cycle)
    return {kind: sum(v) / len(v) for kind, v in activity_by_kind.items()}


def quick_synthesis_estimate(cdfg: Cdfg,
                             library: Optional[ModuleLibrary] = None,
                             resources: Optional[Dict[str, int]] = None,
                             input_streams: Optional[
                                 Dict[str, Sequence[int]]] = None,
                             seed: int = 0) -> QuickSynthesisEstimate:
    """Estimate behavioral power by assuming an RT-level template.

    Template choices (the "behavioral choices" of II-B3): one FU per
    kind unless ``resources`` says otherwise, registers on every
    multi-cycle value, mux-based interconnect sized by the binding
    fan-in, and a one-hot controller with one state per control step.
    """
    library = library or ModuleLibrary(width=min(8, cdfg.width))
    resources = resources or {kind: 1
                              for kind in cdfg.operation_counts()}
    schedule = list_schedule(cdfg, resources)

    if input_streams is None:
        rng = random.Random(seed)
        names = [n.name for n in cdfg.nodes if n.kind == "input"]
        input_streams = {name: [rng.randrange(1 << cdfg.width)
                                for _ in range(64)] for name in names}
    activities = dynamic_profile(cdfg, input_streams)

    counts = cdfg.operation_counts()
    latency = schedule.latency

    # Functional units: each op kind executes counts[kind] times per
    # iteration, scaled by measured data activity relative to the
    # random-data characterization point (activity 0.5).
    fu_power = 0.0
    for kind, count in counts.items():
        act = activities.get(kind, 0.5)
        per_op = library.energy(kind) * (act / 0.5)
        fu_power += count * per_op / max(1, latency)

    # Registers: every value crossing a control-step boundary is
    # registered; estimate via the reg energy of the library.
    crossings = 0
    for node in cdfg.operations():
        for op in node.operands:
            operand = cdfg.node(op)
            if operand.is_operation() and \
                    schedule.steps[node.uid] > schedule.finish(op) + 0:
                crossings += 1
    reg_power = crossings * library.energy("lshift") / max(1, latency)

    # Interconnect: mux trees in front of shared FUs; one mux level
    # per extra op bound to the same unit.
    mux_power = 0.0
    usage = schedule.resource_usage()
    for kind, count in counts.items():
        shared = max(0, count - usage.get(kind, count))
        mux_power += shared * library.energy("mux") / max(1, latency)

    # Controller: one-hot FSM with `latency` states; two flops toggle
    # per cycle plus decode fanout.
    control_power = 0.1 * latency * library.energy("lshift") \
        / max(1, latency)

    total = fu_power + reg_power + mux_power + control_power
    return QuickSynthesisEstimate(
        total=total,
        functional_units=fu_power,
        registers=reg_power,
        interconnect=mux_power,
        control=control_power,
        resources=dict(schedule.resource_usage()),
        latency=latency,
    )
