"""Gate-level probabilistic and statistical estimation references.

The paper's step 4 of the RT-level flow falls back to gate-level
techniques for random logic; this module implements the cited
families:

- :func:`monte_carlo_power` -- the Burch et al. Monte Carlo approach
  [32]: simulate random vector batches until the confidence interval
  of the mean power is tight enough,
- :func:`stratified_monte_carlo` -- stratified random sampling [33]:
  input transitions are stratified by Hamming weight (a cheap proxy
  correlated with per-cycle power), sampled proportionally, and the
  per-stratum means combined — lower variance than simple random
  sampling at equal budget,
- :func:`transition_density`-- Najm's transition density propagation
  [29]:  D(y) = sum_i P(dy/dx_i) D(x_i)  with Boolean differences
  evaluated exactly on BDDs,
- exact BDD-based switching estimates live in
  :mod:`repro.logic.bdd_bridge`.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bdd import BddManager
from repro.logic import fastsim
from repro.logic.bdd_bridge import build_bdds
from repro.logic.netlist import Circuit
from repro.logic.simulate import collect_activity, random_vectors


@dataclass
class MonteCarloResult:
    power: float
    half_interval: float
    batches: int
    vectors_used: int


def monte_carlo_power(circuit: Circuit, batch_size: int = 64,
                      relative_precision: float = 0.05,
                      confidence_z: float = 1.96,
                      max_batches: int = 200, seed: int = 0
                      ) -> MonteCarloResult:
    """Batched Monte Carlo average-power estimation with a stopping
    criterion:  stop when  z * s / (sqrt(k) * mean) < precision.

    Stimulus is generated directly as packed bignum lanes
    (:func:`repro.logic.fastsim.random_packed_vectors`), skipping the
    per-vector dict construction the scalar flow pays for.
    """
    rng = random.Random(seed)
    means: List[float] = []
    used = 0
    for k in range(1, max_batches + 1):
        vectors = fastsim.random_packed_vectors(
            circuit.inputs, batch_size, seed=rng.randrange(1 << 30))
        report = collect_activity(circuit, vectors)
        means.append(report.average_power())
        used += batch_size
        if k >= 4:
            mean = sum(means) / k
            var = sum((m - mean) ** 2 for m in means) / (k - 1)
            half = confidence_z * math.sqrt(var / k)
            if mean > 0 and half / mean < relative_precision:
                return MonteCarloResult(mean, half, k, used)
    mean = sum(means) / len(means)
    var = sum((m - mean) ** 2 for m in means) / max(1, len(means) - 1)
    half = confidence_z * math.sqrt(var / len(means))
    return MonteCarloResult(mean, half, len(means), used)


def transition_density(circuit: Circuit,
                       input_densities: Optional[Dict[str, float]] = None,
                       input_probs: Optional[Dict[str, float]] = None
                       ) -> Dict[str, float]:
    """Najm's transition densities for every net [29].

    ``input_densities`` default to 0.5 transitions/cycle;
    ``input_probs`` to 0.5.  The Boolean difference probability
    P(dy/dx_i) is computed exactly on the net's BDD.
    """
    densities: Dict[str, float] = {}
    probs = input_probs or {}
    in_densities = input_densities or {}
    # DFS-fanin static order: densities and Boolean-difference
    # probabilities are order-invariant, but the per-net BDDs the
    # propagation walks are much smaller under a sane order.
    bdds = build_bdds(circuit, order="dfs")

    sources = list(circuit.inputs) + [l.output for l in circuit.latches]
    for s in sources:
        densities[s] = in_densities.get(s, 0.5)

    for gate in circuit.topological_gates():
        y = bdds[gate.output]
        total = 0.0
        support = set(y.support())
        for x in support:
            high = y.restrict({x: True})
            low = y.restrict({x: False})
            boolean_diff = high ^ low
            sensitivity = boolean_diff.probability(probs)
            total += sensitivity * densities.get(x, 0.5)
        densities[gate.output] = total
    return densities


def density_power_estimate(circuit: Circuit,
                           input_densities: Optional[Dict[str, float]]
                           = None,
                           vdd: float = 1.0, freq: float = 1.0) -> float:
    """Power from transition densities and per-net load capacitance."""
    densities = transition_density(circuit, input_densities)
    fanout = circuit.fanout_map()
    switched = sum(densities[net] * circuit.load_capacitance(net, fanout)
                   for net in circuit.nets)
    return 0.5 * vdd * vdd * freq * switched


@dataclass
class StratifiedResult:
    power: float
    strata_means: List[float]
    strata_weights: List[float]
    vectors_used: int


def stratified_monte_carlo(circuit: Circuit, budget: int = 512,
                           n_strata: int = 4, seed: int = 0
                           ) -> StratifiedResult:
    """Stratified sampling of per-transition power [33].

    The population is the space of input *transitions* (pairs of
    vectors); strata are bands of the pair's Hamming distance, whose
    probabilities under uniform inputs follow the binomial law.  Each
    stratum gets a share of the budget proportional to its weight and
    contributes its sample mean of the per-cycle switched energy.
    """
    import math as _math

    rng = random.Random(seed)
    n = len(circuit.inputs)
    caps = circuit.load_capacitances()

    # Strata: Hamming-distance bands with binomial weights.
    bounds = [round(k * n / n_strata) for k in range(n_strata + 1)]
    weights = []
    for lo, hi in zip(bounds, bounds[1:]):
        w = sum(_math.comb(n, d) for d in range(lo, hi)) / (1 << n)
        weights.append(w)
    if bounds[-1] <= n:      # include distance == n in the last band
        weights[-1] += _math.comb(n, n) / (1 << n) \
            if bounds[-1] == n else 0.0

    def draw_pair(distance_band: int) -> Tuple[int, int]:
        lo, hi = bounds[distance_band], bounds[distance_band + 1]
        hi_inclusive = n if distance_band == n_strata - 1 else hi - 1
        hi_inclusive = max(lo, hi_inclusive)
        # Within a band, distances follow the conditional binomial law.
        ds = list(range(lo, hi_inclusive + 1))
        d = rng.choices(ds, [_math.comb(n, x) for x in ds])[0]
        first = rng.randrange(1 << n)
        flip_positions = rng.sample(range(n), min(d, n))
        second = first
        for pos in flip_positions:
            second ^= 1 << pos
        return first, second

    def stratum_energies(pairs: Sequence[Tuple[int, int]]) -> List[float]:
        """Per-pair switched energy, all pairs evaluated bit-parallel.

        Lane j of the packed batch carries pair j; the two endpoint
        batches need one compiled pass each instead of 2*len(pairs)
        scalar evaluations.
        """
        lanes = len(pairs)
        words_a = {name: 0 for name in circuit.inputs}
        words_b = {name: 0 for name in circuit.inputs}
        for j, (first, second) in enumerate(pairs):
            bit = 1 << j
            for i, name in enumerate(circuit.inputs):
                if (first >> i) & 1:
                    words_a[name] |= bit
                if (second >> i) & 1:
                    words_b[name] |= bit
        a = fastsim.evaluate_packed(
            circuit, fastsim.PackedVectors(list(circuit.inputs), lanes,
                                           words_a))
        b = fastsim.evaluate_packed(
            circuit, fastsim.PackedVectors(list(circuit.inputs), lanes,
                                           words_b))
        raw = [0.0] * lanes
        for net in caps:
            diff = a[net] ^ b[net]
            cap = caps[net]
            while diff:
                lsb = diff & -diff
                raw[lsb.bit_length() - 1] += cap
                diff ^= lsb
        return [0.5 * e for e in raw]

    strata_means: List[float] = []
    used = 0
    for k, weight in enumerate(weights):
        share = max(4, int(budget * weight))
        total = sum(stratum_energies([draw_pair(k) for _ in range(share)]))
        strata_means.append(total / share)
        used += share
    power = sum(w * m for w, m in zip(weights, strata_means)) \
        / max(1e-12, sum(weights))
    return StratifiedResult(power, strata_means, weights, used)
