"""Characterized module library with energy-delay-voltage curves.

Implements the "preliminary characterization procedure" of Section
III-F ([73]): every module kind is simulated at gate level under
pseudorandom data to obtain its average switched capacitance; energy
and delay are then derived per supply voltage with the standard CMOS
scaling laws

    energy(V) = 0.5 * C_sw * V^2
    delay(V)  = d0 * V / (V - Vt)^alpha

so the multiple-voltage scheduler can trade speed for energy.  Level
shifters add fixed energy/delay per crossing, as the paper requires.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.rtl.components import make_component
from repro.rtl.streams import random_stream

#: CDFG op kind -> (RTL component kind used for characterization)
_CHARACTERIZE_AS: Dict[str, str] = {
    "add": "add",
    "sub": "sub",
    "mult": "mult",
    "mux": "mux",
    "cmp_gt": "cmp_gt",
    "cmp_eq": "cmp_eq",
    "lshift": "reg",   # constant shift: wiring only; register-level cost
}


@dataclass(frozen=True)
class EnergyDelayPoint:
    """One voltage alternative of a module."""

    voltage: float
    energy: float     # per operation
    delay: float      # in normalized time units


class ModuleLibrary:
    """Per-kind characterized energy/delay across supply voltages."""

    def __init__(self, width: int = 8,
                 voltages: Sequence[float] = (5.0, 3.3, 2.4),
                 vt: float = 0.8, alpha: float = 2.0,
                 characterization_cycles: int = 300,
                 level_shifter_energy: float = 0.05,
                 level_shifter_delay: float = 0.2) -> None:
        self.width = width
        self.voltages = tuple(sorted(voltages, reverse=True))
        self.vt = vt
        self.alpha = alpha
        self.level_shifter_energy = level_shifter_energy
        self.level_shifter_delay = level_shifter_delay
        self._cycles = characterization_cycles
        self._cap_cache: Dict[str, float] = {}
        self._delay_cache: Dict[str, float] = {}

    # ------------------------------------------------------------------
    def _characterize(self, kind: str) -> Tuple[float, float]:
        """(avg switched capacitance per op, base gate-level delay)."""
        if kind in self._cap_cache:
            return self._cap_cache[kind], self._delay_cache[kind]
        component = make_component(_CHARACTERIZE_AS[kind], self.width)
        streams = [random_stream(w, self._cycles, seed=17 + i)
                   for i, (_p, w) in enumerate(component.input_ports)]
        report = component.reference_activity(streams)
        per_cycle = (report.switched_capacitance
                     + report.clock_capacitance) / max(1, report.cycles - 1)
        depth = max(1, component.circuit.depth())
        self._cap_cache[kind] = per_cycle
        self._delay_cache[kind] = float(depth)
        return per_cycle, float(depth)

    def switched_capacitance(self, kind: str) -> float:
        return self._characterize(kind)[0]

    def base_delay(self, kind: str) -> float:
        return self._characterize(kind)[1]

    def _delay_factor(self, voltage: float) -> float:
        """Normalized CMOS delay scaling, 1.0 at the highest voltage."""
        def raw(v: float) -> float:
            return v / ((v - self.vt) ** self.alpha)

        return raw(voltage) / raw(self.voltages[0])

    def curve(self, kind: str) -> List[EnergyDelayPoint]:
        """Energy-delay alternatives, fastest (highest V) first."""
        cap, d0 = self._characterize(kind)
        return [
            EnergyDelayPoint(v, 0.5 * cap * v * v,
                             d0 * self._delay_factor(v))
            for v in self.voltages
        ]

    def point(self, kind: str, voltage: float) -> EnergyDelayPoint:
        for p in self.curve(kind):
            if math.isclose(p.voltage, voltage):
                return p
        raise KeyError(f"voltage {voltage} not in library {self.voltages}")

    def energy(self, kind: str, voltage: Optional[float] = None) -> float:
        v = voltage if voltage is not None else self.voltages[0]
        return self.point(kind, v).energy

    def delay(self, kind: str, voltage: Optional[float] = None) -> float:
        v = voltage if voltage is not None else self.voltages[0]
        return self.point(kind, v).delay

    def shifter_cost(self, v_from: float, v_to: float
                     ) -> Tuple[float, float]:
        """(energy, delay) of a level shifter between two domains."""
        if math.isclose(v_from, v_to):
            return 0.0, 0.0
        return self.level_shifter_energy, self.level_shifter_delay
