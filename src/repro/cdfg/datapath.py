"""Datapath + controller synthesis: scheduled CDFG to a gate netlist.

The missing middle of the paper's Fig. 1 flow: after scheduling
(Section III-D) and allocation/binding (Section III-E), "the output of
the high-level synthesis phase is an RT-level description consisting
of a (possibly partitioned) control unit and some computing units".
This module builds that description as a *real sequential gate
netlist* so the whole flow can be closed against the framework's
gate-level reference power:

- one functional unit per (kind, binding index), instantiated from the
  characterized gate-level component library,
- word-level steering muxes at each FU port selecting the operand for
  the current control step,
- registers from the register allocation, implemented as load-enable
  flop banks (clock-gated when not written — the RT-level power
  management of Section III-I falls out of the architecture),
- a one-hot ring-counter controller issuing the step lines.

Execution protocol: primary input words are held stable for one
iteration (``latency`` clock cycles); each output is read from its
register during the iteration's final cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cdfg.graph import Cdfg, CdfgNode
from repro.cdfg.schedule import Schedule
from repro.logic.netlist import Circuit
from repro.logic.synthesis import reduce_tree
from repro.rtl.components import make_component


@dataclass
class DatapathDesign:
    """The synthesized implementation and its interface."""

    circuit: Circuit
    cdfg: Cdfg
    latency: int
    width: int
    input_buses: Dict[str, List[str]]      # cdfg input name -> nets
    output_registers: Dict[str, List[str]]  # cdfg output name -> Q nets

    def run(self, input_words: Dict[str, int],
            state: Optional[Dict[str, int]] = None
            ) -> Tuple[Dict[str, int], Dict[str, int], float]:
        """Execute one iteration; returns (outputs, state, energy).

        Inputs are held for ``latency`` cycles; outputs are sampled in
        the final cycle.  Energy is the switched capacitance (x 0.5)
        accumulated over the iteration, including gated clocks.
        """
        from repro.logic.simulate import collect_activity

        mask = (1 << self.width) - 1
        vec: Dict[str, int] = {}
        for name, nets in self.input_buses.items():
            word = input_words[name] & mask
            for i, net in enumerate(nets):
                vec[net] = (word >> i) & 1
        vectors = [dict(vec) for _ in range(self.latency)]
        report = collect_activity(self.circuit, vectors,
                                  initial_state=state)
        from repro.logic.simulate import next_state, simulate

        trace = simulate(self.circuit, vectors, initial_state=state)
        final = trace[-1]
        new_state = next_state(self.circuit, final)
        # A value finishing in the very last step commits on the edge
        # that ends the iteration, so register-backed outputs are read
        # post-edge (new_state); pass-through outputs from the settled
        # final cycle.
        outputs: Dict[str, int] = {}
        for name, nets in self.output_registers.items():
            source = new_state if nets[0] in new_state else final
            outputs[name] = sum(source[q] << i
                                for i, q in enumerate(nets))
        energy = 0.5 * (report.switched_capacitance
                        + report.clock_capacitance)
        return outputs, new_state, energy

    def evaluate_stream(self, input_streams: Dict[str, Sequence[int]]
                        ) -> Tuple[List[Dict[str, int]], float]:
        """Run many iterations back to back; returns (outputs, energy)."""
        lengths = {len(s) for s in input_streams.values()}
        assert len(lengths) == 1
        cycles = lengths.pop()
        state: Optional[Dict[str, int]] = None
        results: List[Dict[str, int]] = []
        total_energy = 0.0
        for t in range(cycles):
            words = {name: s[t] for name, s in input_streams.items()}
            outputs, state, energy = self.run(words, state)
            results.append(outputs)
            total_energy += energy
        return results, total_energy


def _word(circuit: Circuit, prefix: str, width: int) -> List[str]:
    return [f"{prefix}{i}" for i in range(width)]


def _mux_word(circuit: Circuit, d0: Sequence[str], d1: Sequence[str],
              sel: str) -> List[str]:
    return [circuit.add_gate("MUX2", [d0[i], d1[i], sel])
            for i in range(len(d0))]


def synthesize_datapath(cdfg: Cdfg, schedule: Schedule,
                        binding: Dict[int, Tuple[str, int]],
                        register_of: Dict[int, int],
                        width: Optional[int] = None,
                        name: Optional[str] = None) -> DatapathDesign:
    """Build the sequential implementation of a scheduled, bound CDFG.

    ``binding`` maps op uid -> (kind, unit index) (from
    :func:`repro.optimization.lp_scheduling.greedy_binding`);
    ``register_of`` maps op uid -> register index (from
    :func:`repro.optimization.allocation.allocate_registers`); ops
    missing from it (dead values) are not stored.
    """
    w = width or min(cdfg.width, 8)
    mask = (1 << w) - 1
    latency = schedule.latency
    circuit = Circuit(name or f"{cdfg.name}_datapath")

    # ---- primary input buses and constants ---------------------------
    input_buses: Dict[str, List[str]] = {}
    source_nets: Dict[int, List[str]] = {}
    const0 = circuit.add_gate("CONST0", [])
    const1 = circuit.add_gate("CONST1", [])
    for node in cdfg.nodes:
        if node.kind == "input":
            nets = circuit.add_inputs(_word(circuit, f"{node.name}_", w))
            input_buses[node.name] = nets
            source_nets[node.uid] = nets
        elif node.kind == "const":
            value = (node.value or 0) & mask
            source_nets[node.uid] = [
                const1 if (value >> i) & 1 else const0 for i in range(w)]

    # ---- one-hot ring controller -------------------------------------
    step_lines: List[str] = []
    for t in range(1, latency + 1):
        prev = f"step{latency}" if t == 1 else f"step{t - 1}"
        q = circuit.add_latch(prev, output=f"step{t}",
                              init=1 if t == 1 else 0)
        step_lines.append(q)

    def step_line(t: int) -> str:
        return f"step{t}"

    # ---- registers (declared up front; D muxes filled in later) ------
    reg_ids = sorted(set(register_of.values()))
    reg_q: Dict[int, List[str]] = {}
    for r in reg_ids:
        reg_q[r] = [f"r{r}_q{i}" for i in range(w)]

    def operand_word(uid: int) -> List[str]:
        node = cdfg.node(uid)
        if not node.is_operation():
            return source_nets[uid]
        return reg_q[register_of[uid]]

    # ---- functional units with steering muxes -------------------------
    per_unit: Dict[Tuple[str, int], List[CdfgNode]] = {}
    for node in cdfg.operations():
        per_unit.setdefault(binding[node.uid], []).append(node)
    for nodes in per_unit.values():
        nodes.sort(key=lambda n: schedule.steps[n.uid])

    op_output_word: Dict[int, List[str]] = {}
    for (kind, index), nodes in sorted(per_unit.items()):
        if kind == "lshift":
            # Pure wiring per operation: no shared unit needed.
            for node in nodes:
                src = operand_word(node.operands[0])
                shift = node.value or 0
                op_output_word[node.uid] = \
                    [const0] * min(shift, w) + src[:max(0, w - shift)]
            continue

        comp_kind = kind if kind in ("add", "sub", "mult", "mux",
                                     "cmp_gt", "cmp_eq") else None
        if comp_kind is None:
            raise ValueError(f"unsupported operation kind {kind!r}")
        component = make_component(comp_kind, w)
        prefix = f"u_{kind}{index}_"

        # Steering mux chain per port: operand of the op active at
        # each step, later steps overriding earlier in the chain.
        n_ports = len(component.input_ports)
        port_words: List[List[str]] = []
        for port in range(n_ports):
            current: Optional[List[str]] = None
            for node in nodes:
                operand = node.operands[port] \
                    if port < len(node.operands) else node.operands[-1]
                word = operand_word(operand)
                port_width = component.input_ports[port][1]
                word = (word + [const0] * port_width)[:port_width]
                if current is None:
                    current = word
                else:
                    sel = step_line(schedule.steps[node.uid])
                    current = _mux_word(circuit, current, word, sel)
            assert current is not None
            port_words.append(current)

        # Embed the component's gates with renamed nets.
        rename: Dict[str, str] = {}
        for port, (bus_prefix, port_width) in enumerate(
                component.input_ports):
            for i in range(port_width):
                rename[f"{bus_prefix}{i}"] = port_words[port][i]
        for gate in component.circuit.topological_gates():
            ins = [rename[n] for n in gate.inputs]
            rename[gate.output] = circuit.add_gate(
                gate.gate_type, ins, output=f"{prefix}{gate.output}")
        out_word = [rename[n] for n in component.output_nets[:w]]
        out_word += [const0] * (w - len(out_word))
        for node in nodes:
            op_output_word[node.uid] = out_word

    # ---- register D muxes and write enables ---------------------------
    writers: Dict[int, List[CdfgNode]] = {}
    for uid, reg in register_of.items():
        writers.setdefault(reg, []).append(cdfg.node(uid))
    for reg, nodes in writers.items():
        nodes.sort(key=lambda n: schedule.finish(n.uid))
        current = reg_q[reg]
        enables: List[str] = []
        for node in nodes:
            sel = step_line(schedule.finish(node.uid))
            current = _mux_word(circuit, current,
                                op_output_word[node.uid], sel)
            enables.append(sel)
        enable = enables[0] if len(enables) == 1 else \
            reduce_tree(circuit, "OR", enables)
        for i in range(w):
            circuit.add_latch(current[i], output=reg_q[reg][i],
                              enable=enable)

    # ---- outputs -------------------------------------------------------
    output_registers: Dict[str, List[str]] = {}
    for out_name, uid in cdfg.outputs.items():
        node = cdfg.node(uid)
        if node.is_operation():
            output_registers[out_name] = reg_q[register_of[uid]]
        else:
            output_registers[out_name] = source_nets[uid]
    for nets in output_registers.values():
        for net in nets:
            if net not in circuit.outputs:
                circuit.add_output(net)

    return DatapathDesign(
        circuit=circuit,
        cdfg=cdfg,
        latency=latency,
        width=w,
        input_buses=input_buses,
        output_registers=output_registers,
    )


def synthesize_from_cdfg(cdfg: Cdfg, resources: Dict[str, int],
                         input_streams: Optional[Dict[str, Sequence[int]]]
                         = None,
                         activity_aware: bool = True,
                         width: Optional[int] = None,
                         seed: int = 0) -> DatapathDesign:
    """One-call flow: schedule, bind, allocate, and build the netlist."""
    import random as _random

    from repro.cdfg.schedule import list_schedule
    from repro.optimization.allocation import allocate_registers
    from repro.optimization.lp_scheduling import (
        activity_aware_schedule,
        greedy_binding,
    )

    if activity_aware:
        schedule = activity_aware_schedule(cdfg, resources)
    else:
        schedule = list_schedule(cdfg, resources)
    binding = greedy_binding(cdfg, schedule, resources)

    if input_streams is None:
        rng = _random.Random(seed)
        names = [n.name for n in cdfg.nodes if n.kind == "input"]
        input_streams = {name: [rng.randrange(1 << cdfg.width)
                                for _ in range(48)] for name in names}
    allocation = allocate_registers(cdfg, schedule, input_streams,
                                    activity_aware=activity_aware)
    return synthesize_datapath(cdfg, schedule, binding,
                               allocation.assignment, width=width)
