"""Operation scheduling: ASAP, ALAP, and list scheduling.

The baseline algorithms of Section III-D, on which the low-power
schedulers in :mod:`repro.optimization.lp_scheduling` build.  A
schedule assigns each operation node a control step (1-based start
time); correctness means every operation starts after all its operand
operations finish.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro import obs
from repro.cdfg.graph import Cdfg, CdfgNode, UNIT_DELAYS


@dataclass
class Schedule:
    """Mapping of operation uid -> control step (1-based)."""

    cdfg: Cdfg
    steps: Dict[int, int]
    delays: Dict[str, int] = field(default_factory=lambda: dict(UNIT_DELAYS))

    @property
    def latency(self) -> int:
        if not self.steps:
            return 0
        return max(self.finish(uid) for uid in self.steps)

    def start(self, uid: int) -> int:
        return self.steps[uid]

    def finish(self, uid: int) -> int:
        node = self.cdfg.node(uid)
        return self.steps[uid] + self.delays.get(node.kind, 1) - 1

    def is_valid(self) -> bool:
        for node in self.cdfg.operations():
            for op in node.operands:
                operand = self.cdfg.node(op)
                if operand.is_operation():
                    if self.steps[node.uid] <= self.finish(op):
                        return False
        return True

    def resource_usage(self) -> Dict[str, int]:
        """Max simultaneous operations per kind (FUs needed)."""
        usage: Dict[str, int] = {}
        by_step: Dict[tuple, int] = {}
        for node in self.cdfg.operations():
            for t in range(self.steps[node.uid], self.finish(node.uid) + 1):
                key = (node.kind, t)
                by_step[key] = by_step.get(key, 0) + 1
        for (kind, _t), count in by_step.items():
            usage[kind] = max(usage.get(kind, 0), count)
        return usage

    def operations_in_step(self, step: int) -> List[CdfgNode]:
        return [n for n in self.cdfg.operations()
                if self.steps[n.uid] <= step <= self.finish(n.uid)]


def asap(cdfg: Cdfg, delays: Optional[Dict[str, int]] = None) -> Schedule:
    """As-soon-as-possible schedule."""
    delays = dict(delays or UNIT_DELAYS)
    steps: Dict[int, int] = {}
    finish: Dict[int, int] = {}
    for node in cdfg.nodes:  # uids are topologically ordered
        ready = 1 + max((finish.get(op, 0) for op in node.operands),
                        default=0)
        if node.is_operation():
            steps[node.uid] = ready
            finish[node.uid] = ready + delays.get(node.kind, 1) - 1
        else:
            finish[node.uid] = 0
    return Schedule(cdfg, steps, delays)


def alap(cdfg: Cdfg, latency: Optional[int] = None,
         delays: Optional[Dict[str, int]] = None) -> Schedule:
    """As-late-as-possible schedule within ``latency`` steps.

    Defaults to the ASAP latency (critical-path length).
    """
    delays = dict(delays or UNIT_DELAYS)
    if latency is None:
        latency = asap(cdfg, delays).latency
    succ = cdfg.successors()
    steps: Dict[int, int] = {}
    # Process in reverse topological (reverse uid) order.
    latest_start: Dict[int, int] = {}
    for node in reversed(cdfg.nodes):
        if not node.is_operation():
            continue
        d = delays.get(node.kind, 1)
        bound = latency - d + 1
        for s in succ[node.uid]:
            s_node = cdfg.node(s)
            if s_node.is_operation():
                bound = min(bound, latest_start[s] - d)
        if bound < 1:
            raise ValueError(
                f"latency {latency} below the critical path")
        latest_start[node.uid] = bound
        steps[node.uid] = bound
    return Schedule(cdfg, steps, delays)


def mobility(cdfg: Cdfg, latency: Optional[int] = None,
             delays: Optional[Dict[str, int]] = None) -> Dict[int, int]:
    """ALAP minus ASAP start per operation (slack in control steps)."""
    s_asap = asap(cdfg, delays)
    s_alap = alap(cdfg, latency, delays)
    return {uid: s_alap.steps[uid] - s_asap.steps[uid]
            for uid in s_asap.steps}


def list_schedule(cdfg: Cdfg, resources: Dict[str, int],
                  delays: Optional[Dict[str, int]] = None,
                  priority: Optional[Dict[int, float]] = None) -> Schedule:
    """Resource-constrained list scheduling.

    ``resources[kind]`` bounds the number of kind-FUs active in any
    step.  Default priority is criticality (longest path to a sink);
    a custom priority map lets low-power variants reorder ties
    (higher value schedules first).
    """
    with obs.span("schedule.list") as sp:
        schedule = _list_schedule_impl(cdfg, resources, delays, priority)
        sp.add("operations", len(schedule.steps))
        sp.set("latency", schedule.latency)
    return schedule


def _list_schedule_impl(cdfg: Cdfg, resources: Dict[str, int],
                        delays: Optional[Dict[str, int]],
                        priority: Optional[Dict[int, float]]) -> Schedule:
    delays = dict(delays or UNIT_DELAYS)
    ops = cdfg.operations()
    if priority is None:
        priority = _criticality(cdfg, delays)

    pending = {n.uid for n in ops}
    finish: Dict[int, int] = {}
    steps: Dict[int, int] = {}
    running: List[tuple] = []   # (finish_step, kind, uid)
    step = 0
    busy: Dict[str, int] = {}
    while pending:
        step += 1
        # Retire completed operations.
        for f, kind, uid in list(running):
            if f < step:
                busy[kind] -= 1
                running.remove((f, kind, uid))
        ready = []
        for uid in pending:
            node = cdfg.node(uid)
            ok = True
            for op in node.operands:
                operand = cdfg.node(op)
                if operand.is_operation() and \
                        (op in pending or finish[op] >= step):
                    ok = False
                    break
            if ok:
                ready.append(uid)
        ready.sort(key=lambda uid: -priority.get(uid, 0.0))
        for uid in ready:
            kind = cdfg.node(uid).kind
            limit = resources.get(kind)
            if limit is not None and busy.get(kind, 0) >= limit:
                continue
            steps[uid] = step
            f = step + delays.get(kind, 1) - 1
            finish[uid] = f
            busy[kind] = busy.get(kind, 0) + 1
            running.append((f, kind, uid))
            pending.discard(uid)
        if step > 10 * (len(ops) + 1) * max(delays.values()):
            raise RuntimeError("list scheduling failed to converge")
    return Schedule(cdfg, steps, delays)


def _criticality(cdfg: Cdfg, delays: Dict[str, int]) -> Dict[int, float]:
    succ = cdfg.successors()
    longest: Dict[int, int] = {}
    for node in reversed(cdfg.nodes):
        if not node.is_operation():
            continue
        d = delays.get(node.kind, 1)
        below = max((longest[s] for s in succ[node.uid]
                     if cdfg.node(s).is_operation()), default=0)
        longest[node.uid] = d + below
    return {uid: float(v) for uid, v in longest.items()}


def force_directed_schedule(cdfg: Cdfg, latency: Optional[int] = None,
                            delays: Optional[Dict[str, int]] = None
                            ) -> Schedule:
    """Force-directed scheduling (Paulin-Knight), latency-constrained.

    Balances each kind's expected resource usage across control steps:
    operations are placed one at a time at the step of minimum "force",
    where force is the increase in the kind's summed squared
    distribution caused by committing the op there (self force plus
    the implied narrowing of successors/predecessors is approximated
    by recomputing time frames after each commitment -- sufficient for
    the graph sizes used here).
    """
    with obs.span("schedule.force_directed") as sp:
        schedule = _force_directed_impl(cdfg, latency, delays)
        sp.add("operations", len(schedule.steps))
        sp.set("latency", schedule.latency)
    return schedule


def _force_directed_impl(cdfg: Cdfg, latency: Optional[int],
                         delays: Optional[Dict[str, int]]) -> Schedule:
    delays = dict(delays or UNIT_DELAYS)
    if latency is None:
        latency = asap(cdfg, delays).latency
    committed: Dict[int, int] = {}

    def frames() -> Dict[int, tuple]:
        s_asap = _constrained_asap(cdfg, delays, committed)
        s_alap = _constrained_alap(cdfg, delays, committed, latency)
        return {uid: (s_asap[uid], s_alap[uid]) for uid in s_asap}

    def distribution(time_frames: Dict[int, tuple]
                     ) -> Dict[str, List[float]]:
        dist: Dict[str, List[float]] = {}
        for node in cdfg.operations():
            lo, hi = time_frames[node.uid]
            width = hi - lo + 1
            row = dist.setdefault(node.kind, [0.0] * (latency + 2))
            d = delays.get(node.kind, 1)
            for start in range(lo, hi + 1):
                for t in range(start, start + d):
                    if t < len(row):
                        row[t] += 1.0 / width
        return dist

    ops = sorted(cdfg.operations(), key=lambda n: n.uid)
    for node in ops:
        time_frames = frames()
        lo, hi = time_frames[node.uid]
        if lo == hi:
            committed[node.uid] = lo
            continue
        best_step, best_force = lo, float("inf")
        for step in range(lo, hi + 1):
            committed[node.uid] = step
            try:
                trial = frames()
            except ValueError:
                del committed[node.uid]
                continue
            dist = distribution(trial)
            force = sum(v * v for row in dist.values() for v in row)
            if force < best_force:
                best_force = force
                best_step = step
            del committed[node.uid]
        committed[node.uid] = best_step
    return Schedule(cdfg, committed, delays)


def _constrained_asap(cdfg: Cdfg, delays: Dict[str, int],
                      committed: Dict[int, int]) -> Dict[int, int]:
    steps: Dict[int, int] = {}
    finish: Dict[int, int] = {}
    for node in cdfg.nodes:
        ready = 1 + max((finish.get(op, 0) for op in node.operands),
                        default=0)
        if node.is_operation():
            steps[node.uid] = committed.get(node.uid, ready)
            if steps[node.uid] < ready:
                raise ValueError("commitment violates precedence")
            finish[node.uid] = steps[node.uid] \
                + delays.get(node.kind, 1) - 1
        else:
            finish[node.uid] = 0
    return steps


def _constrained_alap(cdfg: Cdfg, delays: Dict[str, int],
                      committed: Dict[int, int],
                      latency: int) -> Dict[int, int]:
    succ = cdfg.successors()
    steps: Dict[int, int] = {}
    for node in reversed(cdfg.nodes):
        if not node.is_operation():
            continue
        d = delays.get(node.kind, 1)
        bound = latency - d + 1
        for s in succ[node.uid]:
            s_node = cdfg.node(s)
            if s_node.is_operation():
                bound = min(bound, steps[s] - d)
        if node.uid in committed:
            if committed[node.uid] > bound:
                raise ValueError("commitment violates deadline")
            bound = committed[node.uid]
        if bound < 1:
            raise ValueError("latency infeasible")
        steps[node.uid] = bound
    return steps
