"""Control-data-flow graph model.

A :class:`Cdfg` is a DAG of word-level operations.  Node kinds:

- ``input``  -- primary input word,
- ``const``  -- literal constant,
- ``add``, ``sub``, ``mult``, ``lshift``, ``cmp_gt``, ``cmp_eq`` --
  arithmetic operations (two operands; ``lshift`` shifts operand 0 by a
  constant count),
- ``mux``    -- (d0, d1, control): control selects the data operand.

Outputs are named references to nodes.  The graph supports functional
evaluation (for the high-level simulation that drives activity-aware
allocation), operation statistics, and critical-path queries — the
quantities Section III-C trades off (Figs. 4-5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

OP_KINDS = ("add", "sub", "mult", "lshift", "cmp_gt", "cmp_eq", "mux")

#: Default operation delays in control steps (multipliers are slower in
#: area-time product, but classic HLS examples count each op as one
#: cycle; both conventions are supported via the delays argument).
UNIT_DELAYS: Dict[str, int] = {kind: 1 for kind in OP_KINDS}


@dataclass
class CdfgNode:
    """One operation (or source) in the CDFG."""

    uid: int
    kind: str
    operands: List[int] = field(default_factory=list)
    value: Optional[int] = None      # for const nodes / shift counts
    name: Optional[str] = None       # for input nodes

    def is_operation(self) -> bool:
        return self.kind in OP_KINDS

    def __repr__(self) -> str:
        return f"CdfgNode({self.uid}, {self.kind})"


class Cdfg:
    """A DAG of word-level operations with named outputs."""

    def __init__(self, name: str = "cdfg", width: int = 16) -> None:
        self.name = name
        self.width = width
        self.nodes: List[CdfgNode] = []
        self.outputs: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def _add(self, node: CdfgNode) -> int:
        self.nodes.append(node)
        return node.uid

    def add_input(self, name: str) -> int:
        return self._add(CdfgNode(len(self.nodes), "input", name=name))

    def add_const(self, value: int) -> int:
        return self._add(CdfgNode(len(self.nodes), "const", value=value))

    def add_op(self, kind: str, *operands: int, value: Optional[int] = None
               ) -> int:
        if kind not in OP_KINDS:
            raise ValueError(f"unknown operation kind {kind!r}")
        expected = 3 if kind == "mux" else (1 if kind == "lshift" else 2)
        if len(operands) != expected:
            raise ValueError(
                f"{kind} takes {expected} operands, got {len(operands)}")
        for op in operands:
            if not (0 <= op < len(self.nodes)):
                raise ValueError(f"operand {op} out of range")
        return self._add(CdfgNode(len(self.nodes), kind, list(operands),
                                  value=value))

    def set_output(self, name: str, node: int) -> None:
        self.outputs[name] = node

    def node(self, uid: int) -> CdfgNode:
        return self.nodes[uid]

    # ------------------------------------------------------------------
    def operations(self) -> List[CdfgNode]:
        return [n for n in self.nodes if n.is_operation()]

    def operation_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for n in self.operations():
            counts[n.kind] = counts.get(n.kind, 0) + 1
        return counts

    def successors(self) -> Dict[int, List[int]]:
        succ: Dict[int, List[int]] = {n.uid: [] for n in self.nodes}
        for n in self.nodes:
            for op in n.operands:
                succ[op].append(n.uid)
        return succ

    def critical_path(self, delays: Optional[Dict[str, int]] = None) -> int:
        """Longest operation chain from any source to any output."""
        delays = delays or UNIT_DELAYS
        finish: Dict[int, int] = {}
        for n in self.nodes:  # nodes are in topological order by uid
            start = max((finish[op] for op in n.operands), default=0)
            finish[n.uid] = start + (delays.get(n.kind, 0)
                                     if n.is_operation() else 0)
        if not self.outputs:
            return max(finish.values(), default=0)
        return max(finish[uid] for uid in self.outputs.values())

    # ------------------------------------------------------------------
    def evaluate(self, inputs: Dict[str, int]) -> Dict[str, int]:
        """Functional word-level evaluation of the graph."""
        values = self.evaluate_all(inputs)
        return {name: values[uid] for name, uid in self.outputs.items()}

    def evaluate_all(self, inputs: Dict[str, int]) -> Dict[int, int]:
        mask = (1 << self.width) - 1
        values: Dict[int, int] = {}
        for n in self.nodes:
            if n.kind == "input":
                if n.name not in inputs:
                    raise ValueError(f"missing input {n.name!r}")
                values[n.uid] = inputs[n.name] & mask
            elif n.kind == "const":
                values[n.uid] = (n.value or 0) & mask
            elif n.kind == "add":
                values[n.uid] = (values[n.operands[0]]
                                 + values[n.operands[1]]) & mask
            elif n.kind == "sub":
                values[n.uid] = (values[n.operands[0]]
                                 - values[n.operands[1]]) & mask
            elif n.kind == "mult":
                values[n.uid] = (values[n.operands[0]]
                                 * values[n.operands[1]]) & mask
            elif n.kind == "lshift":
                values[n.uid] = (values[n.operands[0]]
                                 << (n.value or 0)) & mask
            elif n.kind == "cmp_gt":
                values[n.uid] = int(values[n.operands[0]]
                                    > values[n.operands[1]])
            elif n.kind == "cmp_eq":
                values[n.uid] = int(values[n.operands[0]]
                                    == values[n.operands[1]])
            elif n.kind == "mux":
                d0, d1, ctrl = n.operands
                values[n.uid] = values[d1] if values[ctrl] & 1 \
                    else values[d0]
            else:  # pragma: no cover - defensive
                raise ValueError(f"cannot evaluate node kind {n.kind!r}")
        return values

    def simulate(self, input_streams: Dict[str, Sequence[int]]
                 ) -> Dict[int, List[int]]:
        """Per-node value traces under word-level stimulus.

        This is the 'high-level simulation of the CDFG' that produces
        the switching-activity weights W_s of Section III-E.
        """
        lengths = {len(s) for s in input_streams.values()}
        if len(lengths) != 1:
            raise ValueError("input streams must share a length")
        cycles = lengths.pop()
        traces: Dict[int, List[int]] = {n.uid: [] for n in self.nodes}
        for t in range(cycles):
            values = self.evaluate_all(
                {name: s[t] for name, s in input_streams.items()})
            for uid, v in values.items():
                traces[uid].append(v)
        return traces

    def __repr__(self) -> str:
        return (f"Cdfg({self.name!r}, nodes={len(self.nodes)}, "
                f"ops={len(self.operations())})")
