"""Control-data-flow graphs and high-level synthesis machinery.

- :mod:`repro.cdfg.graph`      -- the CDFG model (operation DAG with
  inputs, constants, muxes, and named outputs),
- :mod:`repro.cdfg.transforms` -- behavioral transformations of
  Section III-C (Horner restructuring, strength reduction, constant
  multiplication to shift/add),
- :mod:`repro.cdfg.schedule`   -- ASAP / ALAP / resource-constrained
  list scheduling (Section III-D's baseline algorithms),
- :mod:`repro.cdfg.library`    -- characterized module library with
  per-voltage energy/delay curves (the RTL library of Section III-F).
"""

from repro.cdfg.graph import Cdfg, CdfgNode
from repro.cdfg.schedule import Schedule, asap, alap, list_schedule
from repro.cdfg.library import ModuleLibrary, EnergyDelayPoint

__all__ = [
    "Cdfg",
    "CdfgNode",
    "Schedule",
    "asap",
    "alap",
    "list_schedule",
    "ModuleLibrary",
    "EnergyDelayPoint",
]
