"""Behavioral transformations (Section III-C).

Reproduces the paper's three flagship examples:

- polynomial evaluation restructured by Horner's rule (Figs. 4-5):
  fewer multipliers, possibly longer critical path,
- strength reduction: multiplication by a constant decomposed into
  shift-and-add using the canonical signed digit (CSD) form,
- whole-graph constant-multiplication elimination (the transformation
  behind Table I).

All transforms preserve input/output behaviour, which the test suite
checks exhaustively on small widths.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.cdfg.graph import Cdfg, CdfgNode


def _balanced_add(cdfg: Cdfg, terms: Sequence[int]) -> int:
    """Balanced binary adder tree over the term nodes."""
    nodes = list(terms)
    if not nodes:
        raise ValueError("cannot add zero terms")
    while len(nodes) > 1:
        nxt = []
        for i in range(0, len(nodes) - 1, 2):
            nxt.append(cdfg.add_op("add", nodes[i], nodes[i + 1]))
        if len(nodes) % 2:
            nxt.append(nodes[-1])
        nodes = nxt
    return nodes[0]


def direct_polynomial(coeffs: Sequence[int], width: int = 16,
                      name: str = "poly_direct") -> Cdfg:
    """Power-form evaluation of the monic polynomial
    ``x^n + coeffs[n-1] x^{n-1} + ... + coeffs[1] x + coeffs[0]``
    with ``n = len(coeffs)``.

    Powers come from a multiplication chain (x^2 = x*x, ...), each
    lower-degree term is scaled by its coefficient, and the terms are
    summed with a balanced adder tree — the left-hand structures of
    Figs. 4 and 5.  For the second order that is 2 multipliers and
    2 adders at critical path 3; for the third order, 4 multipliers
    and 3 adders at critical path 4, exactly the paper's counts.
    """
    if len(coeffs) < 2:
        raise ValueError("need a polynomial of degree >= 2")
    degree = len(coeffs)
    cdfg = Cdfg(name, width)
    x = cdfg.add_input("x")
    powers: List[Optional[int]] = [None, x]
    for _d in range(2, degree + 1):
        powers.append(cdfg.add_op("mult", powers[-1], x))
    terms = [cdfg.add_const(coeffs[0])]
    for d in range(1, degree):
        c = cdfg.add_const(coeffs[d])
        terms.append(cdfg.add_op("mult", c, powers[d]))
    terms.append(powers[degree])          # monic leading term
    cdfg.set_output("y", _balanced_add(cdfg, terms))
    return cdfg


def horner_polynomial(coeffs: Sequence[int], width: int = 16,
                      name: str = "poly_horner") -> Cdfg:
    """Horner form of the same monic polynomial:
    ``(...((x + c_{n-1}) x + c_{n-2}) x ... ) x + c_0``.

    The right-hand structures of Figs. 4 and 5: n-1 multipliers and n
    adders in a fully serial chain (second order: 1 multiplier, 2
    adders, critical path 3; third order: 2 multipliers, 3 adders,
    critical path 5 — the paper's speed/operation-count tradeoff).
    """
    if len(coeffs) < 2:
        raise ValueError("need a polynomial of degree >= 2")
    cdfg = Cdfg(name, width)
    x = cdfg.add_input("x")
    acc = cdfg.add_op("add", x, cdfg.add_const(coeffs[-1]))
    for c in reversed(coeffs[:-1]):
        prod = cdfg.add_op("mult", acc, x)
        acc = cdfg.add_op("add", prod, cdfg.add_const(c))
    cdfg.set_output("y", acc)
    return cdfg


def csd_digits(value: int) -> List[Tuple[int, int]]:
    """Canonical signed digit form: list of (shift, +1/-1) terms.

    CSD minimizes nonzero digits, hence the number of shift-add terms
    after strength reduction.
    """
    if value < 0:
        raise ValueError("CSD decomposition expects a non-negative constant")
    digits: List[Tuple[int, int]] = []
    shift = 0
    while value:
        if value & 1:
            # Two's-bit run detection: ...0111 -> +1000 -1.
            if (value & 3) == 3:
                digits.append((shift, -1))
                value += 1
            else:
                digits.append((shift, 1))
                value -= 1
        value >>= 1
        shift += 1
    return digits


def strength_reduce_constant_mult(cdfg: Cdfg, node_uid: int) -> Cdfg:
    """Rewrite one const*x multiplication into shift/add/sub nodes.

    Returns a new CDFG; the original is untouched.  Raises ValueError
    if the node is not a multiplication with a constant operand.
    """
    node = cdfg.node(node_uid)
    if node.kind != "mult":
        raise ValueError(f"node {node_uid} is not a multiplication")
    const_pos = None
    for i, op in enumerate(node.operands):
        if cdfg.node(op).kind == "const":
            const_pos = i
            break
    if const_pos is None:
        raise ValueError(f"node {node_uid} has no constant operand")
    return convert_constant_multiplications(cdfg, only={node_uid})


def convert_constant_multiplications(cdfg: Cdfg,
                                     only: Optional[set] = None) -> Cdfg:
    """Replace const*x mults by CSD shift-add networks (Table I's
    transformation).

    ``only`` restricts the rewrite to a subset of node uids.
    """
    new = Cdfg(f"{cdfg.name}_shiftadd", cdfg.width)
    mapping: Dict[int, int] = {}

    for node in cdfg.nodes:
        if node.kind == "input":
            mapping[node.uid] = new.add_input(node.name or f"in{node.uid}")
            continue
        if node.kind == "const":
            mapping[node.uid] = new.add_const(node.value or 0)
            continue
        operands = [mapping[op] for op in node.operands]
        if node.kind == "mult" and (only is None or node.uid in only):
            const_operand = None
            other = None
            for orig_op, new_op in zip(node.operands, operands):
                if cdfg.node(orig_op).kind == "const" \
                        and const_operand is None:
                    const_operand = cdfg.node(orig_op).value or 0
                else:
                    other = new_op
            if const_operand is not None and other is not None \
                    and const_operand >= 0:
                mapping[node.uid] = _emit_shift_add(
                    new, other, const_operand)
                continue
        mapping[node.uid] = new.add_op(node.kind, *operands,
                                       value=node.value)

    for name, uid in cdfg.outputs.items():
        new.set_output(name, mapping[uid])
    return new


def _emit_shift_add(cdfg: Cdfg, x: int, constant: int) -> int:
    if constant == 0:
        return cdfg.add_const(0)
    terms = csd_digits(constant)
    acc: Optional[int] = None
    acc_sign = 1
    for shift, sign in terms:
        term = x if shift == 0 else cdfg.add_op("lshift", x, value=shift)
        if acc is None:
            acc, acc_sign = term, sign
        elif sign > 0:
            acc = cdfg.add_op("add", acc, term) if acc_sign > 0 \
                else cdfg.add_op("sub", term, acc)
            acc_sign = 1
        else:
            if acc_sign > 0:
                acc = cdfg.add_op("sub", acc, term)
            else:
                # -(a) - term: negate by 0 - (a + term); rare for CSD.
                both = cdfg.add_op("add", acc, term)
                zero = cdfg.add_const(0)
                acc = cdfg.add_op("sub", zero, both)
            acc_sign = 1
    assert acc is not None
    if acc_sign < 0:
        zero = cdfg.add_const(0)
        acc = cdfg.add_op("sub", zero, acc)
    return acc


def fir_filter(coeffs: Sequence[int], width: int = 16,
               name: str = "fir") -> Cdfg:
    """N-tap FIR:  y = sum_i coeffs[i] * x[t-i].

    Tap inputs are modeled as separate inputs ``x0..x{n-1}`` (the
    delay line lives outside the dataflow graph), matching how HLS
    papers draw the FIR kernel.  This is the workload of Table I.
    """
    cdfg = Cdfg(name, width)
    taps = [cdfg.add_input(f"x{i}") for i in range(len(coeffs))]
    acc: Optional[int] = None
    for i, c in enumerate(coeffs):
        const = cdfg.add_const(c)
        prod = cdfg.add_op("mult", const, taps[i])
        acc = prod if acc is None else cdfg.add_op("add", acc, prod)
    cdfg.set_output("y", acc)  # type: ignore[arg-type]
    return cdfg
