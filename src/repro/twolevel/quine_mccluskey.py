"""Quine-McCluskey prime generation and covering.

Exact prime-implicant generation with don't cares, essential prime
extraction (the quantity the Nemani-Najm linear measure is built on),
and minimization by essential extraction followed by greedy set cover.

Complexity is exponential in the variable count; the intended domain is
the n <= ~14 single-output functions used by the high-level complexity
models and FSM synthesis, matching the scale of the paper's own
experiments.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.twolevel.cubes import Cube, Cover
from repro.util.bits import popcount


def prime_implicants(n: int, onset: Sequence[int],
                     dc: Sequence[int] = ()) -> List[Cube]:
    """All prime implicants of the function with the given on/dc sets."""
    onset_set = set(onset)
    dc_set = set(dc) - onset_set
    current: Set[Cube] = {Cube.minterm(n, m) for m in onset_set | dc_set}
    primes: List[Cube] = []

    while current:
        merged_from: Set[Cube] = set()
        next_level: Set[Cube] = set()
        # Group by care mask and popcount of value for fast adjacency.
        groups: Dict[Tuple[int, int], List[Cube]] = {}
        for cube in current:
            key = (cube.care, popcount(cube.value))
            groups.setdefault(key, []).append(cube)
        for (care, ones), cubes in groups.items():
            partners = groups.get((care, ones + 1), [])
            for a in cubes:
                for b in partners:
                    combined = a.merge(b)
                    if combined is not None:
                        next_level.add(combined)
                        merged_from.add(a)
                        merged_from.add(b)
        primes.extend(cube for cube in current if cube not in merged_from)
        current = next_level

    return primes


def essential_primes(n: int, onset: Sequence[int],
                     dc: Sequence[int] = ()) -> List[Cube]:
    """Prime implicants that are the sole cover of some on-set minterm."""
    primes = prime_implicants(n, onset, dc)
    essentials: List[Cube] = []
    seen: Set[Cube] = set()
    for m in onset:
        covering = [p for p in primes if p.covers_minterm(m)]
        if len(covering) == 1 and covering[0] not in seen:
            seen.add(covering[0])
            essentials.append(covering[0])
    return essentials


def minimize(n: int, onset: Sequence[int], dc: Sequence[int] = ()) -> Cover:
    """Near-minimal SOP cover: essential primes + greedy covering.

    The greedy phase picks, at each step, the prime covering the most
    still-uncovered on-set minterms (ties broken toward fewer literals),
    which matches the classical QM covering heuristic.
    """
    onset = sorted(set(onset))
    if not onset:
        return Cover(n)
    full = (1 << n) - 1
    if len(set(onset) | set(dc)) == (1 << n):
        # Tautology: single universal cube.
        cover = Cover(n)
        cover.add(Cube(n, 0, 0))
        return cover
    primes = prime_implicants(n, onset, dc)
    uncovered = set(onset)
    chosen: List[Cube] = []

    for m in onset:
        covering = [p for p in primes if p.covers_minterm(m)]
        if len(covering) == 1 and covering[0] not in chosen:
            chosen.append(covering[0])
    for cube in chosen:
        uncovered -= set(x for x in uncovered if cube.covers_minterm(x))

    remaining = [p for p in primes if p not in chosen]
    while uncovered:
        best = max(
            remaining,
            key=lambda p: (sum(1 for m in uncovered if p.covers_minterm(m)),
                           -p.literals()))
        gained = {m for m in uncovered if best.covers_minterm(m)}
        if not gained:  # pragma: no cover - defensive; primes always cover
            raise RuntimeError("greedy covering stalled")
        chosen.append(best)
        remaining.remove(best)
        uncovered -= gained

    assert all(any(c.covers_minterm(m) for c in chosen) for m in onset)
    del full
    return Cover(n, chosen)


def minimize_cover(cover: Cover, dc: Iterable[int] = ()) -> Cover:
    """Minimize an existing cover by re-extracting its minterms."""
    return minimize(cover.n, cover.minterms(), list(dc))


def cover_area_literals(cover: Cover) -> int:
    """Literal count, the usual two-level area proxy."""
    return cover.literal_count()
