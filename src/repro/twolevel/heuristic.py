"""Heuristic two-level minimization (espresso-style EXPAND/IRREDUNDANT).

Quine-McCluskey (:mod:`repro.twolevel.quine_mccluskey`) is exact but
exponential in the variable count; the heuristic loop here scales to
wider functions, mirroring how espresso replaces exact minimization in
real flows (the paper's synthesis steps all assume such a minimizer):

- EXPAND: greedily drop literals from each cube while it stays inside
  onset + dc (checked against an explicit off-set, or by cofactor
  containment when the off-set is given implicitly),
- IRREDUNDANT: remove cubes covered by the rest of the cover,
- REDUCE: shrink cubes to the smallest cube containing their
  still-uniquely-covered minterms, enabling further expansion,

iterated until the literal count stops improving.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set

from repro.twolevel.cubes import Cover, Cube


def _blocked(cube: Cube, offset: Sequence[Cube]) -> bool:
    """Does the cube intersect the off-set?"""
    return any(cube.intersects(off) for off in offset)


def expand_cube(cube: Cube, offset: Sequence[Cube]) -> Cube:
    """Greedily remove literals while avoiding the off-set.

    Literal order: try dropping the literal whose removal is blocked
    by the fewest off-set cubes first (a cheap column-count heuristic).
    """
    current = cube
    improved = True
    while improved:
        improved = False
        candidates = []
        for i in range(current.n):
            if not (current.care >> i) & 1:
                continue
            bigger = Cube(current.n, current.care & ~(1 << i),
                          current.value & ~(1 << i))
            if not _blocked(bigger, offset):
                candidates.append((bigger.literals(), i, bigger))
        if candidates:
            _lits, _i, current = min(candidates)
            improved = True
    return current


def irredundant(cover: Cover, dc: Sequence[Cube] = ()) -> Cover:
    """Drop cubes whose minterms are covered by the rest (+ dc)."""
    cubes = list(cover.cubes)
    keep: List[Cube] = []
    for i, cube in enumerate(cubes):
        others = keep + cubes[i + 1:]
        if not _covered_by(cube, others, dc):
            keep.append(cube)
    return Cover(cover.n, keep)


def _covered_by(cube: Cube, others: Sequence[Cube],
                dc: Sequence[Cube]) -> bool:
    covers = list(others) + list(dc)
    return all(any(o.covers_minterm(m) for o in covers)
               for m in cube.minterms())


def reduce_cube(cube: Cube, others: Sequence[Cube],
                dc: Sequence[Cube]) -> Cube:
    """Smallest cube containing the minterms only this cube covers."""
    unique = [m for m in cube.minterms()
              if not any(o.covers_minterm(m) for o in others)
              and not any(d.covers_minterm(m) for d in dc)]
    if not unique:
        return cube
    care = (1 << cube.n) - 1
    value = unique[0]
    for m in unique[1:]:
        care &= ~(value ^ m)
        value &= care
    return Cube(cube.n, care, value)


def minimize_heuristic(n: int, onset: Sequence[int],
                       dc: Sequence[int] = (),
                       max_passes: int = 5) -> Cover:
    """Espresso-style minimization from minterm lists.

    The off-set is materialized as maximal cubes via complementation
    of (onset + dc) by recursive Shannon cofactoring; for the widths
    this library targets (n <= ~20 with sparse on-sets) that stays
    cheap because the recursion stops at constant cofactors.
    """
    onset = sorted(set(onset))
    if not onset:
        return Cover(n)
    allowed = set(onset) | set(dc)
    if len(allowed) == 1 << n:
        cover = Cover(n)
        cover.add(Cube(n, 0, 0))
        return cover

    offset = complement_cubes(n, sorted(allowed))
    cover = Cover(n, (Cube.minterm(n, m) for m in onset))

    best_literals = cover.literal_count()
    dc_cubes = [Cube.minterm(n, m) for m in dc]
    for _pass in range(max_passes):
        expanded = Cover(n, (expand_cube(c, offset) for c in cover))
        pruned = irredundant(expanded, dc_cubes)
        reduced = Cover(n, (
            reduce_cube(c, [o for o in pruned.cubes if o is not c],
                        dc_cubes)
            for c in pruned.cubes))
        cover = irredundant(
            Cover(n, (expand_cube(c, offset) for c in reduced.cubes)),
            dc_cubes)
        literals = cover.literal_count()
        if literals >= best_literals:
            break
        best_literals = literals
    return cover


def complement_cubes(n: int, onset: Sequence[int]) -> List[Cube]:
    """Cover of the complement of a minterm set, via Shannon recursion.

    Returns a (not necessarily minimal) cube cover of every minterm
    not in ``onset``.
    """
    onset_set: Set[int] = set(onset)

    def walk(level: int, care: int, value: int) -> List[Cube]:
        # Minterms under this partial assignment.
        free = n - level
        base = value
        covered = _count_in(onset_set, n, care, value)
        total = 1 << free
        if covered == 0:
            return [Cube(n, care, value)]
        if covered == total:
            return []
        bit = 1 << level
        return (walk(level + 1, care | bit, value)
                + walk(level + 1, care | bit, value | bit))

    return walk(0, 0, 0)


def _count_in(onset: Set[int], n: int, care: int, value: int) -> int:
    # Count onset minterms matching the partial assignment.  The
    # recursion in complement_cubes keeps partial spaces small enough
    # that filtering the on-set directly is fine (on-set sizes are the
    # bottleneck, not 2^n).
    return sum(1 for m in onset if (m & care) == value)


def minimize_with_offset(n: int, onset: Sequence[int],
                         offset_cubes: Sequence[Cube]) -> Cover:
    """Cover the on-set avoiding an explicitly given off-set.

    Everything outside onset and offset is don't care.  This form
    avoids materializing huge don't-care spaces (e.g. the unused-code
    space of a one-hot-encoded controller): each on-set minterm is
    expanded greedily against the off-set cubes, then a greedy cover
    over the on-set keeps the useful expansions.
    """
    onset = sorted(set(onset))
    if not onset:
        return Cover(n)
    if not offset_cubes:
        cover = Cover(n)
        cover.add(Cube(n, 0, 0))
        return cover

    expanded = [expand_cube(Cube.minterm(n, m), offset_cubes)
                for m in onset]
    # Greedy cover of the on-set minterms.
    uncovered = set(onset)
    chosen: List[Cube] = []
    candidates = list({c for c in expanded})
    while uncovered:
        best = max(candidates,
                   key=lambda c: (sum(1 for m in uncovered
                                      if c.covers_minterm(m)),
                                  -c.literals()))
        gained = {m for m in uncovered if best.covers_minterm(m)}
        if not gained:        # pragma: no cover - expansions cover seeds
            raise RuntimeError("offset covering stalled")
        chosen.append(best)
        candidates.remove(best)
        uncovered -= gained
    return Cover(n, chosen)
