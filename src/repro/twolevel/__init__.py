"""Two-level (sum-of-products) logic representation and minimization.

Provides cubes, covers, Quine-McCluskey prime generation, essential
prime extraction, and a greedy covering minimizer.  This substrate
plays the role SIS/espresso play in the paper: it produces optimized
two-level covers whose sizes feed

- the Nemani-Najm area-complexity model (Section II-B2, [15], [16]),
- the Landman-Rabaey controller power model (its minterm count N_M),
- FSM-to-netlist synthesis (Section III-H).
"""

from repro.twolevel.cubes import Cube, Cover
from repro.twolevel.quine_mccluskey import (
    prime_implicants,
    essential_primes,
    minimize,
    minimize_cover,
)

__all__ = [
    "Cube",
    "Cover",
    "prime_implicants",
    "essential_primes",
    "minimize",
    "minimize_cover",
]
