"""Cube and cover datatypes for two-level logic.

A cube over n variables is stored as a pair of bit masks:

- ``care``: bit i set if variable i is specified in the cube,
- ``value``: bit i gives the required value of variable i (only
  meaningful where ``care`` is set).

A minterm is a cube with all n care bits set.  Covers are plain lists
of cubes with a shared width.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence

from repro.util.bits import popcount


class Cube:
    """Product term over ``n`` Boolean variables."""

    __slots__ = ("n", "care", "value")

    def __init__(self, n: int, care: int, value: int) -> None:
        if value & ~care:
            raise ValueError("value bits set outside the care mask")
        self.n = n
        self.care = care
        self.value = value

    @classmethod
    def from_string(cls, text: str) -> "Cube":
        """Parse a PLA-style cube string, e.g. ``'1-0'``.

        Character 0 of the string is variable 0 (bit 0).
        """
        care = 0
        value = 0
        for i, ch in enumerate(text):
            if ch == "1":
                care |= 1 << i
                value |= 1 << i
            elif ch == "0":
                care |= 1 << i
            elif ch != "-":
                raise ValueError(f"bad cube character {ch!r}")
        return cls(len(text), care, value)

    @classmethod
    def minterm(cls, n: int, m: int) -> "Cube":
        return cls(n, (1 << n) - 1, m)

    def to_string(self) -> str:
        chars = []
        for i in range(self.n):
            if not (self.care >> i) & 1:
                chars.append("-")
            elif (self.value >> i) & 1:
                chars.append("1")
            else:
                chars.append("0")
        return "".join(chars)

    def literals(self) -> int:
        """Number of literals (specified variables) in the cube."""
        return popcount(self.care)

    def size(self) -> int:
        """Number of minterms covered: 2**(n - literals)."""
        return 1 << (self.n - self.literals())

    def contains(self, other: "Cube") -> bool:
        """True if this cube covers every minterm of ``other``."""
        if self.care & ~other.care:
            return False
        return (other.value & self.care) == self.value

    def covers_minterm(self, m: int) -> bool:
        return (m & self.care) == self.value

    def intersects(self, other: "Cube") -> bool:
        common = self.care & other.care
        return (self.value & common) == (other.value & common)

    def intersection(self, other: "Cube") -> Optional["Cube"]:
        if not self.intersects(other):
            return None
        return Cube(self.n, self.care | other.care, self.value | other.value)

    def merge(self, other: "Cube") -> Optional["Cube"]:
        """Combine two cubes differing in exactly one care bit's value.

        This is the pairing step of Quine-McCluskey.  Returns None if
        the cubes are not adjacent.
        """
        if self.care != other.care:
            return None
        diff = self.value ^ other.value
        if diff == 0 or diff & (diff - 1):
            return None
        return Cube(self.n, self.care & ~diff, self.value & ~diff)

    def minterms(self) -> Iterator[int]:
        """Enumerate the minterms covered by the cube."""
        free = [i for i in range(self.n) if not (self.care >> i) & 1]
        base = self.value
        for combo in range(1 << len(free)):
            m = base
            for j, bit_pos in enumerate(free):
                if (combo >> j) & 1:
                    m |= 1 << bit_pos
            yield m

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Cube)
            and self.n == other.n
            and self.care == other.care
            and self.value == other.value
        )

    def __hash__(self) -> int:
        return hash((self.n, self.care, self.value))

    def __repr__(self) -> str:
        return f"Cube({self.to_string()!r})"


class Cover:
    """A sum of product terms (cubes) of common width."""

    def __init__(self, n: int, cubes: Iterable[Cube] = ()) -> None:
        self.n = n
        self.cubes: List[Cube] = []
        for cube in cubes:
            self.add(cube)

    def add(self, cube: Cube) -> None:
        if cube.n != self.n:
            raise ValueError("cube width does not match cover width")
        self.cubes.append(cube)

    def __len__(self) -> int:
        return len(self.cubes)

    def __iter__(self) -> Iterator[Cube]:
        return iter(self.cubes)

    def literal_count(self) -> int:
        return sum(cube.literals() for cube in self.cubes)

    def evaluate(self, m: int) -> bool:
        return any(cube.covers_minterm(m) for cube in self.cubes)

    def minterms(self) -> List[int]:
        found = set()
        for cube in self.cubes:
            found.update(cube.minterms())
        return sorted(found)

    def covers(self, minterm: int) -> bool:
        return self.evaluate(minterm)

    def to_strings(self) -> List[str]:
        return [cube.to_string() for cube in self.cubes]

    @classmethod
    def from_minterms(cls, n: int, minterms: Sequence[int]) -> "Cover":
        return cls(n, (Cube.minterm(n, m) for m in minterms))

    def __repr__(self) -> str:
        return f"Cover(n={self.n}, cubes={len(self.cubes)})"
