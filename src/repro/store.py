"""repro.store — content-addressed compiled-artifact cache.

Every compiled artifact in the framework — fastsim's bit-parallel
plans, fasttimer's tick-wheel kernels, eventsim's tick grids, the
word-stream bit-plane packings — used to live only on the Python
object that produced it.  The caches died at every process boundary:
``Circuit.__getstate__`` drops compiled plans (they hold ``exec``-made
functions), so fasttimer's sharded workers, every bench subprocess,
and every estimation-server worker recompiled identical plans from
scratch.  This module is the fix: a content-addressed store keyed by
a *structural fingerprint* (:meth:`repro.logic.netlist.Circuit.
fingerprint`), so any process that sees the same structure pays the
compile cost once and every later consumer rehydrates.

Two layers, consulted in order:

- an **in-process LRU** (dict of payload dicts, bounded entry count)
  that makes repeated rehydration of the same fingerprint free within
  one process,
- an optional **disk cache** rooted at the ``REPRO_STORE`` directory:
  one versioned JSON envelope per artifact, published atomically
  (temp file + ``os.replace``) so concurrent writers never corrupt a
  reader, LRU-evicted by file mtime against a byte budget
  (``REPRO_STORE_MAX_BYTES``).  Reads touch the file's mtime, so hot
  artifacts survive eviction.

Compiled code travels as *both* the generated source text and a
``marshal`` dump of the compiled code object tagged with the
interpreter's bytecode magic: a matching interpreter skips the
(expensive) ``compile`` step entirely, any other interpreter falls
back to recompiling the source, and an unknown schema version is a
plain miss — cross-version poisoning is structurally impossible.

The store is *advisory everywhere*: a miss, a corrupt file, or an
unwritable directory degrades to recompilation, never to an error.
"""

from __future__ import annotations

import base64
import hashlib
import importlib.util
import json
import marshal
import os
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Any, Callable, Dict, Optional

__all__ = [
    "SCHEMA", "ArtifactStore", "get_store", "set_store", "configure",
    "code_blob", "load_function",
    "ACTIVITY_SCHEMA", "ACTIVITY_KIND", "activity_key",
    "pack_activity", "unpack_activity",
    "ENV_DIR", "ENV_MAX_BYTES", "ENV_MEM_ENTRIES",
]

#: Version tag of the artifact envelope.  Bump on any incompatible
#: payload change: files carrying another schema are treated as
#: misses and reclaimed.
SCHEMA = "repro.store/1"

#: Environment knobs.
ENV_DIR = "REPRO_STORE"
ENV_MAX_BYTES = "REPRO_STORE_MAX_BYTES"
ENV_MEM_ENTRIES = "REPRO_STORE_MEM"

DEFAULT_MAX_BYTES = 256 * 1024 * 1024
DEFAULT_MEM_ENTRIES = 128

#: This interpreter's bytecode tag; marshal blobs are only loaded
#: when it matches.
_PY_MAGIC = importlib.util.MAGIC_NUMBER.hex()


# ----------------------------------------------------------------------
# Compiled-code payloads
# ----------------------------------------------------------------------
def code_blob(source: str, filename: str,
              code: Optional[Any] = None) -> Dict[str, str]:
    """Package generated source (plus its code object) for the store.

    ``code`` is the already-compiled module code object when the
    caller has one (avoids compiling twice); the marshal dump is
    tagged with the interpreter magic so :func:`load_function` knows
    when it is trustworthy.
    """
    if code is None:
        code = compile(source, filename, "exec")
    return {
        "source": source,
        "filename": filename,
        "magic": _PY_MAGIC,
        "marshal": base64.b64encode(marshal.dumps(code)).decode("ascii"),
    }


def load_function(blob: Dict[str, str], name: str) -> Callable:
    """Rebuild the named function from a :func:`code_blob` payload.

    Prefers the marshal fast path (same interpreter magic: no
    ``compile`` call, microseconds instead of milliseconds on big
    kernels); falls back to compiling the stored source.  Raises on
    malformed payloads — callers treat any exception as a cache miss.
    """
    code = None
    if blob.get("magic") == _PY_MAGIC and blob.get("marshal"):
        try:
            code = marshal.loads(base64.b64decode(blob["marshal"]))
        except (ValueError, EOFError, TypeError):
            code = None
    if code is None:
        code = compile(blob["source"], blob.get("filename", "<store>"),
                       "exec")
    namespace: Dict[str, Any] = {}
    exec(code, namespace)
    fn = namespace[name]
    if not callable(fn):
        raise TypeError(f"store blob did not define callable {name!r}")
    return fn


# ----------------------------------------------------------------------
# Activity payloads (incremental re-estimation)
# ----------------------------------------------------------------------
#: Version tag of cached activity results (per-net toggle/ones counts
#: and whole-run reports).  Bump on any layout change: payloads
#: carrying another schema unpack to ``None`` — a plain miss — so a
#: stale or corrupt entry degrades to resimulation, exactly like a
#: corrupt plan degrades to recompilation.
ACTIVITY_SCHEMA = "repro.activity/1"

#: Store kind for activity results.  Two flavours share it: per-cone
#: records keyed by :func:`repro.logic.incremental.cone_key` (counts
#: plus optionally the packed lane for boundary replay) and whole-run
#: reports keyed by :func:`activity_key`.
ACTIVITY_KIND = "activity"


def activity_key(circuit_fp: str, stimulus_fp: str, engine: str,
                 cycles: int) -> str:
    """Key for a whole-run activity result.

    One sha256 over circuit structure, packed stimulus, engine name,
    and batch length — everything an :class:`ActivityReport` depends
    on.  Used for cross-process rerun hits (`estimate_delta` bases,
    fasttimer's memoized timed runs).
    """
    h = hashlib.sha256(b"activity-run/1\x00")
    for part in (circuit_fp, stimulus_fp, engine, str(cycles)):
        h.update(part.encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()


def pack_activity(cycles: int, nets: list, toggles: Dict[str, int],
                  ones: Dict[str, int], switched: float, clock: float,
                  events: Optional[int] = None,
                  glitches: Optional[int] = None,
                  lanes: Optional[Dict[str, int]] = None
                  ) -> Dict[str, Any]:
    """JSON-able envelope of an activity result (``repro.activity/1``).

    Counts are stored as parallel lists in ``nets`` order; lanes (for
    boundary replay) as lowercase hex.  Floats round-trip exactly
    through JSON (``repr`` round-trip), so an unpacked report stays
    bit-identical to the one packed.
    """
    payload: Dict[str, Any] = {
        "schema": ACTIVITY_SCHEMA,
        "cycles": int(cycles),
        "nets": list(nets),
        "toggles": [int(toggles.get(n, 0)) for n in nets],
        "ones": [int(ones.get(n, 0)) for n in nets],
        "switched": float(switched),
        "clock": float(clock),
    }
    if events is not None:
        payload["events"] = int(events)
    if glitches is not None:
        payload["glitches"] = int(glitches)
    if lanes is not None:
        payload["lanes"] = {n: format(w, "x") for n, w in lanes.items()}
    return payload


def unpack_activity(payload: Optional[Dict[str, Any]]
                    ) -> Optional[Dict[str, Any]]:
    """Validate and decode a :func:`pack_activity` envelope.

    Returns ``None`` — a miss — for anything malformed: wrong schema,
    missing fields, length mismatches, undecodable lanes.  Callers
    resimulate on a miss, so corruption degrades to recomputation and
    never to a wrong report.
    """
    if not isinstance(payload, dict):
        return None
    if payload.get("schema") != ACTIVITY_SCHEMA:
        return None
    try:
        cycles = int(payload["cycles"])
        nets = list(payload["nets"])
        toggles = [int(t) for t in payload["toggles"]]
        ones = [int(o) for o in payload["ones"]]
        if len(toggles) != len(nets) or len(ones) != len(nets):
            return None
        result: Dict[str, Any] = {
            "cycles": cycles,
            "nets": nets,
            "toggles": dict(zip(nets, toggles)),
            "ones": dict(zip(nets, ones)),
            "switched": float(payload["switched"]),
            "clock": float(payload["clock"]),
            "events": (int(payload["events"])
                       if payload.get("events") is not None else None),
            "glitches": (int(payload["glitches"])
                         if payload.get("glitches") is not None else None),
        }
        if "lanes" in payload:
            result["lanes"] = {str(n): int(w, 16)
                               for n, w in payload["lanes"].items()}
        return result
    except (KeyError, TypeError, ValueError):
        return None


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------
class ArtifactStore:
    """Two-layer content-addressed cache of compiled artifacts.

    Keys are ``(fingerprint, kind)`` pairs; payloads are JSON-able
    dicts.  With ``root=None`` only the in-process LRU runs (the
    default outside servers/benches); with a root directory the
    artifacts additionally persist across process boundaries.
    """

    def __init__(self, root: Optional[os.PathLike] = None,
                 max_bytes: int = DEFAULT_MAX_BYTES,
                 mem_entries: int = DEFAULT_MEM_ENTRIES) -> None:
        self.root = Path(root) if root else None
        self.max_bytes = int(max_bytes)
        self.mem_entries = int(mem_entries)
        self._mem: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._lock = threading.Lock()
        # Bytes written since the last eviction scan; scanning the
        # whole directory per put is O(N^2) across a population of
        # per-net cone records, so the trim is amortized: the disk
        # layer may overshoot max_bytes by one scan interval.
        self._unscanned_bytes = 0
        self._counters = {
            "mem_hits": 0, "disk_hits": 0, "misses": 0,
            "puts": 0, "disk_evictions": 0, "corrupt": 0,
            "io_errors": 0,
        }

    # -- key / path layout --------------------------------------------
    @staticmethod
    def key(fingerprint: str, kind: str) -> str:
        return f"{kind}-{fingerprint}"

    def _path(self, key: str) -> Path:
        assert self.root is not None
        return self.root / f"{key}.json"

    def _count(self, name: str, by: int = 1) -> None:
        with self._lock:
            self._counters[name] += by

    # -- public API ----------------------------------------------------
    def get(self, fingerprint: str, kind: str
            ) -> Optional[Dict[str, Any]]:
        """The stored payload, or ``None`` on a miss.

        Misses include corrupt, truncated, or wrong-schema files —
        those are additionally reclaimed so the next put starts
        clean.
        """
        key = self.key(fingerprint, kind)
        with self._lock:
            payload = self._mem.get(key)
            if payload is not None:
                self._mem.move_to_end(key)
                self._counters["mem_hits"] += 1
                return payload
        if self.root is not None:
            payload = self._disk_get(key, fingerprint, kind)
            if payload is not None:
                self._mem_put(key, payload)
                self._count("disk_hits")
                return payload
        self._count("misses")
        return None

    def put(self, fingerprint: str, kind: str,
            payload: Dict[str, Any]) -> None:
        """Store ``payload`` under ``(fingerprint, kind)``.

        Never raises: disk trouble (read-only cache directory, a full
        disk) is counted and swallowed — the artifact still lands in
        the memory layer.
        """
        key = self.key(fingerprint, kind)
        self._mem_put(key, payload)
        self._count("puts")
        if self.root is None:
            return
        envelope = {
            "schema": SCHEMA,
            "kind": kind,
            "fingerprint": fingerprint,
            "created": time.time(),
            "payload": payload,
        }
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            path = self._path(key)
            tmp = path.with_name(
                f"{path.name}.tmp.{os.getpid()}.{threading.get_ident()}")
            text = json.dumps(envelope, sort_keys=True)
            tmp.write_text(text)
            os.replace(tmp, path)
            with self._lock:
                self._unscanned_bytes += len(text)
                due = self._unscanned_bytes >= self._scan_interval()
                if due:
                    self._unscanned_bytes = 0
            if due:
                self._evict_disk()
        except OSError:
            self._count("io_errors")

    def stats(self) -> Dict[str, Any]:
        """Counter snapshot plus the derived hit rate."""
        with self._lock:
            snap: Dict[str, Any] = dict(self._counters)
            snap["mem_entries"] = len(self._mem)
        hits = snap["mem_hits"] + snap["disk_hits"]
        total = hits + snap["misses"]
        snap["hit_rate"] = round(hits / total, 4) if total else 0.0
        snap["root"] = str(self.root) if self.root else None
        return snap

    def clear(self) -> None:
        """Drop the memory layer and every disk artifact."""
        with self._lock:
            self._mem.clear()
        if self.root is not None and self.root.is_dir():
            for path in self.root.glob("*.json"):
                try:
                    path.unlink()
                except OSError:
                    pass

    def disk_bytes(self) -> int:
        """Total size of the on-disk artifacts (0 without a root)."""
        if self.root is None or not self.root.is_dir():
            return 0
        return sum(p.stat().st_size for p in self.root.glob("*.json"))

    # -- internals -----------------------------------------------------
    def _mem_put(self, key: str, payload: Dict[str, Any]) -> None:
        with self._lock:
            self._mem[key] = payload
            self._mem.move_to_end(key)
            while len(self._mem) > self.mem_entries:
                self._mem.popitem(last=False)

    def _disk_get(self, key: str, fingerprint: str, kind: str
                  ) -> Optional[Dict[str, Any]]:
        path = self._path(key)
        try:
            text = path.read_text()
        except OSError:
            return None
        try:
            envelope = json.loads(text)
            if not isinstance(envelope, dict):
                raise ValueError("not an object")
            if envelope.get("schema") != SCHEMA \
                    or envelope.get("fingerprint") != fingerprint \
                    or envelope.get("kind") != kind:
                raise ValueError("schema/identity mismatch")
            payload = envelope["payload"]
            if not isinstance(payload, dict):
                raise ValueError("payload is not an object")
        except (ValueError, KeyError):
            # Corrupt, truncated, or written by another version:
            # reclaim the slot and report a miss.
            self._count("corrupt")
            try:
                path.unlink()
            except OSError:
                pass
            return None
        try:
            os.utime(path)            # LRU: reads keep artifacts warm
        except OSError:
            pass
        return payload

    def _scan_interval(self) -> int:
        """Bytes of fresh writes between eviction scans (also the
        worst-case transient overshoot past ``max_bytes``)."""
        return max(1, min(1 << 20, self.max_bytes // 8))

    def _evict_disk(self) -> None:
        """Trim the disk layer to ``max_bytes`` (oldest mtime first)."""
        assert self.root is not None
        try:
            entries = []
            total = 0
            for p in self.root.glob("*.json"):
                try:
                    st = p.stat()
                except OSError:
                    continue
                entries.append((st.st_mtime, st.st_size, p))
                total += st.st_size
            if total <= self.max_bytes:
                return
            entries.sort()
            for _, size, p in entries:
                if total <= self.max_bytes:
                    break
                try:
                    p.unlink()
                    total -= size
                    self._count("disk_evictions")
                except OSError:
                    pass
        except OSError:
            self._count("io_errors")


# ----------------------------------------------------------------------
# Process-wide store
# ----------------------------------------------------------------------
_store: Optional[ArtifactStore] = None
_store_lock = threading.Lock()


def _from_env() -> ArtifactStore:
    def _int_env(name: str, default: int) -> int:
        try:
            return int(os.environ.get(name, default))
        except ValueError:
            return default

    return ArtifactStore(
        root=os.environ.get(ENV_DIR) or None,
        max_bytes=_int_env(ENV_MAX_BYTES, DEFAULT_MAX_BYTES),
        mem_entries=_int_env(ENV_MEM_ENTRIES, DEFAULT_MEM_ENTRIES))


def get_store() -> ArtifactStore:
    """The process-wide store (built from the environment on first use)."""
    global _store
    if _store is None:
        with _store_lock:
            if _store is None:
                _store = _from_env()
    return _store


def set_store(store: Optional[ArtifactStore]) -> Optional[ArtifactStore]:
    """Swap the process-wide store; returns the previous one.

    ``None`` resets to lazy environment-driven construction (tests
    use this to restore isolation).
    """
    global _store
    with _store_lock:
        previous = _store
        _store = store
    return previous


def configure(root: Optional[os.PathLike] = None,
              max_bytes: Optional[int] = None,
              mem_entries: Optional[int] = None) -> ArtifactStore:
    """Install a fresh process-wide store rooted at ``root``.

    Also exports ``REPRO_STORE`` so worker processes spawned after
    this call (fasttimer shards, server workers) share the disk
    layer.
    """
    store = ArtifactStore(
        root=root,
        max_bytes=max_bytes if max_bytes is not None
        else DEFAULT_MAX_BYTES,
        mem_entries=mem_entries if mem_entries is not None
        else DEFAULT_MEM_ENTRIES)
    if root is not None:
        os.environ[ENV_DIR] = str(root)
    else:
        os.environ.pop(ENV_DIR, None)
    set_store(store)
    return store
