"""Instruction set definition and energy parameters.

A 16-register load/store machine with a 32-bit instruction encoding.
Energy parameters follow the structure of the Tiwari instruction-level
model [7]: each opcode has a base cost (datapath + control activity of
executing that instruction in steady state), inter-instruction cost is
dominated by instruction-bus and decoder toggling (modeled from the
Hamming distance of consecutive encodings), and "other" costs cover
cache misses and pipeline stalls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.util.bits import popcount

#: opcode -> (numeric code, class)
OPCODES: Dict[str, Tuple[int, str]] = {
    "NOP": (0x00, "nop"),
    "ADD": (0x11, "alu"),
    "SUB": (0x12, "alu"),
    "AND": (0x13, "alu"),
    "OR": (0x14, "alu"),
    "XOR": (0x15, "alu"),
    "SLL": (0x16, "alu"),
    "ADDI": (0x19, "alui"),
    "MUL": (0x22, "mul"),
    "LD": (0x31, "mem"),
    "ST": (0x32, "mem"),
    "BEQ": (0x41, "branch"),
    "BNE": (0x42, "branch"),
    "JMP": (0x43, "branch"),
    "HALT": (0x7F, "nop"),
}

#: Base energy per instruction class (normalized units), the BC_i of
#: the Tiwari model.  Multiplies burn the most; memory ops pay for the
#: address datapath; the cache/memory energy itself is in OTHER_COSTS.
BASE_COSTS: Dict[str, float] = {
    "nop": 0.3,
    "alu": 1.0,
    "alui": 0.9,
    "mul": 2.8,
    "mem": 1.6,
    "branch": 1.1,
}

#: Energy per toggled instruction-bus bit between consecutive
#: instructions (source of the circuit-state cost SC_ij).
BUS_TOGGLE_COST = 0.02

#: Energy per toggled operand bit entering the ALU/multiplier.
OPERAND_TOGGLE_COST = 0.005

#: "Other" costs OC_k.
OTHER_COSTS: Dict[str, float] = {
    "cache_miss": 6.0,
    "stall": 0.4,
    "branch_mispredict": 1.2,
}


@dataclass(frozen=True)
class Instruction:
    """One assembly instruction.

    Fields are used positionally per opcode:

    - ALU ops: ``rd, rs, rt``
    - ``ADDI``/``SLL``: ``rd, rs, imm``
    - ``LD``/``ST``: ``rd, rs, imm`` (address = R[rs] + imm; LD writes
      rd, ST reads rd)
    - branches: ``rd, rs`` compared, ``imm`` = absolute target
    - ``JMP``: ``imm`` = absolute target
    """

    op: str
    rd: int = 0
    rs: int = 0
    rt: int = 0
    imm: int = 0

    def __post_init__(self) -> None:
        if self.op not in OPCODES:
            raise ValueError(f"unknown opcode {self.op!r}")
        for r in (self.rd, self.rs, self.rt):
            if not 0 <= r < 16:
                raise ValueError("register index out of range")

    @property
    def klass(self) -> str:
        return OPCODES[self.op][1]


def encode(instr: Instruction) -> int:
    """32-bit binary encoding: opcode(7) | rd(4) | rs(4) | rt(4) |
    imm13 (signed)."""
    code, _klass = OPCODES[instr.op]
    imm = instr.imm & 0x1FFF
    return (code << 25) | (instr.rd << 21) | (instr.rs << 17) \
        | (instr.rt << 13) | imm


def hamming32(a: int, b: int) -> int:
    return popcount((a ^ b) & 0xFFFFFFFF)


def energy_params() -> Dict[str, object]:
    """Snapshot of the machine's energy parameters (for reports)."""
    return {
        "base_costs": dict(BASE_COSTS),
        "bus_toggle_cost": BUS_TOGGLE_COST,
        "operand_toggle_cost": OPERAND_TOGGLE_COST,
        "other_costs": dict(OTHER_COSTS),
    }
