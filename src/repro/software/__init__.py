"""Software substrate: a small load/store ISA with energy accounting.

Stands in for the instrumented processors of Section II-A / III-A:

- :mod:`repro.software.isa`      -- instruction set, binary encodings,
  and microarchitectural energy parameters,
- :mod:`repro.software.machine`  -- instruction-set simulator with a
  direct-mapped data cache, load-use stalls, and per-cycle energy
  built from instruction base activity, instruction-bus toggles
  (circuit state), operand-dependent datapath activity, and miss/stall
  overheads,
- :mod:`repro.software.programs` -- assembly kernels (dot product,
  FIR, memory traversal in the two forms of Fig. 2) used by the
  software power and optimization experiments.
"""

from repro.software.isa import Instruction, OPCODES, encode, energy_params
from repro.software.machine import Machine, RunStats
from repro.software.programs import (
    dot_product,
    fir_program,
    memory_unoptimized,
    memory_optimized,
    random_program,
)

__all__ = [
    "Instruction",
    "OPCODES",
    "encode",
    "energy_params",
    "Machine",
    "RunStats",
    "dot_product",
    "fir_program",
    "memory_unoptimized",
    "memory_optimized",
    "random_program",
]
