"""Instruction-set simulator with microarchitectural energy accounting.

The machine executes a program (list of :class:`Instruction`) and
accumulates energy the way the instrumented processors of [7] and [8]
dissipate it:

- per-instruction base activity (by opcode class),
- instruction-bus/decoder toggling between consecutive instructions,
- operand-dependent datapath toggling,
- data-cache misses (direct-mapped cache model) and load-use stalls.

It also records the characteristic profile of the run (instruction
mix, miss rate, stall rate) -- the inputs to profile-driven program
synthesis (Section II-A, bench C1) -- and the raw instruction-bus
trace used by cold scheduling (Section III-A, bench C13).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.software.isa import (
    BASE_COSTS,
    BUS_TOGGLE_COST,
    OPERAND_TOGGLE_COST,
    OTHER_COSTS,
    Instruction,
    encode,
    hamming32,
)


@dataclass
class RunStats:
    """Outcome of one program execution."""

    cycles: int
    instructions: int
    energy: float
    class_counts: Dict[str, int]
    opcode_counts: Dict[str, int]
    pair_counts: Dict[Tuple[str, str], int]
    cache_misses: int
    cache_accesses: int
    stalls: int
    bus_toggles: int
    halted: bool

    @property
    def miss_rate(self) -> float:
        if self.cache_accesses == 0:
            return 0.0
        return self.cache_misses / self.cache_accesses

    @property
    def stall_rate(self) -> float:
        if self.instructions == 0:
            return 0.0
        return self.stalls / self.instructions

    def instruction_mix(self) -> Dict[str, float]:
        total = max(1, self.instructions)
        return {k: v / total for k, v in self.class_counts.items()}

    def energy_per_instruction(self) -> float:
        return self.energy / max(1, self.instructions)


class _DirectMappedCache:
    def __init__(self, lines: int, line_words: int) -> None:
        self.lines = lines
        self.line_words = line_words
        self.tags: List[Optional[int]] = [None] * lines

    def access(self, address: int) -> bool:
        """True on hit; installs the line on miss."""
        block = address // self.line_words
        index = block % self.lines
        hit = self.tags[index] == block
        self.tags[index] = block
        return hit


class Machine:
    """Simple in-order machine: 16 registers, word-addressed memory."""

    def __init__(self, memory_words: int = 4096, cache_lines: int = 16,
                 cache_line_words: int = 4) -> None:
        self.memory_words = memory_words
        self.cache_lines = cache_lines
        self.cache_line_words = cache_line_words
        self.registers = [0] * 16
        self.memory = [0] * memory_words

    def load_memory(self, base: int, values: List[int]) -> None:
        for i, v in enumerate(values):
            self.memory[base + i] = v & 0xFFFFFFFF

    def run(self, program: List[Instruction],
            max_instructions: int = 200_000) -> RunStats:
        cache = _DirectMappedCache(self.cache_lines, self.cache_line_words)
        pc = 0
        cycles = 0
        energy = 0.0
        executed = 0
        stalls = 0
        misses = 0
        accesses = 0
        bus_toggles = 0
        class_counts: Dict[str, int] = {}
        opcode_counts: Dict[str, int] = {}
        pair_counts: Dict[Tuple[str, str], int] = {}
        prev_encoding: Optional[int] = None
        prev_op: Optional[str] = None
        prev_load_rd: Optional[int] = None
        prev_operands = (0, 0)
        halted = False
        mask = 0xFFFFFFFF

        while 0 <= pc < len(program) and executed < max_instructions:
            instr = program[pc]
            executed += 1
            cycles += 1
            klass = instr.klass
            class_counts[klass] = class_counts.get(klass, 0) + 1
            opcode_counts[instr.op] = opcode_counts.get(instr.op, 0) + 1
            if prev_op is not None:
                key = (prev_op, instr.op)
                pair_counts[key] = pair_counts.get(key, 0) + 1

            # Base + circuit-state energy.
            energy += BASE_COSTS[klass]
            word = encode(instr)
            if prev_encoding is not None:
                toggles = hamming32(prev_encoding, word)
                bus_toggles += toggles
                energy += BUS_TOGGLE_COST * toggles
            prev_encoding = word

            regs = self.registers
            a, b = regs[instr.rs], regs[instr.rt]

            # Load-use stall: previous LD's destination consumed now.
            if prev_load_rd is not None and \
                    prev_load_rd in (instr.rs, instr.rt):
                stalls += 1
                cycles += 1
                energy += OTHER_COSTS["stall"]
            prev_load_rd = None

            next_pc = pc + 1
            if instr.op in ("ADD", "SUB", "AND", "OR", "XOR", "MUL"):
                energy += OPERAND_TOGGLE_COST * (
                    hamming32(prev_operands[0], a)
                    + hamming32(prev_operands[1], b))
                prev_operands = (a, b)
                if instr.op == "ADD":
                    value = a + b
                elif instr.op == "SUB":
                    value = a - b
                elif instr.op == "AND":
                    value = a & b
                elif instr.op == "OR":
                    value = a | b
                elif instr.op == "XOR":
                    value = a ^ b
                else:
                    value = a * b
                    cycles += 1   # multiplier takes an extra cycle
                if instr.rd:
                    regs[instr.rd] = value & mask
            elif instr.op == "ADDI":
                if instr.rd:
                    regs[instr.rd] = (regs[instr.rs] + _sext(instr.imm)) \
                        & mask
            elif instr.op == "SLL":
                if instr.rd:
                    regs[instr.rd] = (regs[instr.rs] << (instr.imm & 31)) \
                        & mask
            elif instr.op in ("LD", "ST"):
                address = (regs[instr.rs] + _sext(instr.imm)) \
                    % self.memory_words
                accesses += 1
                if not cache.access(address):
                    misses += 1
                    cycles += 4
                    energy += OTHER_COSTS["cache_miss"]
                if instr.op == "LD":
                    if instr.rd:
                        regs[instr.rd] = self.memory[address]
                    prev_load_rd = instr.rd
                else:
                    self.memory[address] = regs[instr.rd]
            elif instr.op in ("BEQ", "BNE"):
                lhs, rhs = regs[instr.rd], regs[instr.rs]
                taken = (lhs == rhs) if instr.op == "BEQ" else (lhs != rhs)
                if taken:
                    next_pc = instr.imm
                    # Static predict-not-taken: taken branches flush.
                    energy += OTHER_COSTS["branch_mispredict"]
                    cycles += 1
            elif instr.op == "JMP":
                next_pc = instr.imm
            elif instr.op == "HALT":
                halted = True
                break
            # NOP: nothing.
            regs[0] = 0
            pc = next_pc
            prev_op = instr.op

        return RunStats(
            cycles=cycles,
            instructions=executed,
            energy=energy,
            class_counts=class_counts,
            opcode_counts=opcode_counts,
            pair_counts=pair_counts,
            cache_misses=misses,
            cache_accesses=accesses,
            stalls=stalls,
            bus_toggles=bus_toggles,
            halted=halted,
        )


def _sext(imm13: int) -> int:
    imm13 &= 0x1FFF
    return imm13 - 0x2000 if imm13 & 0x1000 else imm13
