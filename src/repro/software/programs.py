"""Assembly kernels for the software power experiments.

Includes the two code shapes of Fig. 2 (array round trip through
memory vs. scalarized into a register), classic DSP kernels, and a
random-program generator with a controllable instruction mix (the raw
material of profile-driven program synthesis, bench C1).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.software.isa import Instruction

I = Instruction


def dot_product(n: int, a_base: int = 0, b_base: int = 1024
                ) -> List[Instruction]:
    """r1 = sum a[i]*b[i]; loop over ``n`` elements."""
    # r2 = i, r3 = n, r4/r5 = operands, r6 = product, r1 = acc
    return [
        I("ADDI", rd=1, rs=0, imm=0),
        I("ADDI", rd=2, rs=0, imm=0),
        I("ADDI", rd=3, rs=0, imm=n),
        # loop:  (pc = 3)
        I("LD", rd=4, rs=2, imm=a_base),
        I("LD", rd=5, rs=2, imm=b_base),
        I("MUL", rd=6, rs=4, rt=5),
        I("ADD", rd=1, rs=1, rt=6),
        I("ADDI", rd=2, rs=2, imm=1),
        I("BNE", rd=2, rs=3, imm=3),
        I("HALT"),
    ]


def fir_program(taps: Sequence[int], n: int, x_base: int = 0,
                y_base: int = 2048, c_base: int = 3000
                ) -> List[Instruction]:
    """y[i] = sum_k c[k] * x[i+k] for i in range(n)."""
    k = len(taps)
    program: List[Instruction] = [
        I("ADDI", rd=2, rs=0, imm=0),       # i
        I("ADDI", rd=3, rs=0, imm=n),
    ]
    loop_start = len(program)
    program.append(I("ADDI", rd=1, rs=0, imm=0))   # acc = 0
    for j in range(k):
        program.extend([
            I("LD", rd=4, rs=2, imm=x_base + j),
            I("LD", rd=5, rs=0, imm=c_base + j),
            I("MUL", rd=6, rs=4, rt=5),
            I("ADD", rd=1, rs=1, rt=6),
        ])
    program.extend([
        I("ST", rd=1, rs=2, imm=y_base),
        I("ADDI", rd=2, rs=2, imm=1),
        I("BNE", rd=2, rs=3, imm=loop_start),
        I("HALT"),
    ])
    return program


def memory_unoptimized(n: int, a_base: int = 0, b_base: int = 1024,
                       c_base: int = 2048) -> List[Instruction]:
    """Fig. 2 left: b[i] = a[i] + 1 then c[i] = b[i] * 2.

    The intermediate array ``b`` makes a full round trip through
    memory: 2n extra accesses.
    """
    return [
        # first loop: b[i] = a[i] + 1
        I("ADDI", rd=2, rs=0, imm=0),
        I("ADDI", rd=3, rs=0, imm=n),
        I("LD", rd=4, rs=2, imm=a_base),            # pc=2
        I("ADDI", rd=4, rs=4, imm=1),
        I("ST", rd=4, rs=2, imm=b_base),
        I("ADDI", rd=2, rs=2, imm=1),
        I("BNE", rd=2, rs=3, imm=2),
        # second loop: c[i] = b[i] * 2
        I("ADDI", rd=2, rs=0, imm=0),
        I("LD", rd=4, rs=2, imm=b_base),            # pc=8
        I("ADD", rd=4, rs=4, rt=4),
        I("ST", rd=4, rs=2, imm=c_base),
        I("ADDI", rd=2, rs=2, imm=1),
        I("BNE", rd=2, rs=3, imm=8),
        I("HALT"),
    ]


def memory_optimized(n: int, a_base: int = 0,
                     c_base: int = 2048) -> List[Instruction]:
    """Fig. 2 right: fused loop keeps b[i] in a register."""
    return [
        I("ADDI", rd=2, rs=0, imm=0),
        I("ADDI", rd=3, rs=0, imm=n),
        I("LD", rd=4, rs=2, imm=a_base),            # pc=2
        I("ADDI", rd=4, rs=4, imm=1),               # b kept in r4
        I("ADD", rd=4, rs=4, rt=4),
        I("ST", rd=4, rs=2, imm=c_base),
        I("ADDI", rd=2, rs=2, imm=1),
        I("BNE", rd=2, rs=3, imm=2),
        I("HALT"),
    ]


_MIX_OPS: Dict[str, List[str]] = {
    "alu": ["ADD", "SUB", "AND", "OR", "XOR"],
    "alui": ["ADDI"],
    "mul": ["MUL"],
    "mem": ["LD", "ST"],
    "nop": ["NOP"],
}


def random_program(length: int, mix: Optional[Dict[str, float]] = None,
                   seed: int = 0, data_span: int = 512
                   ) -> List[Instruction]:
    """Straight-line program with a prescribed instruction-class mix.

    Branch-free by construction (profile synthesis handles control
    behaviour separately); ends with HALT.
    """
    rng = random.Random(seed)
    mix = mix or {"alu": 0.45, "alui": 0.15, "mul": 0.1, "mem": 0.25,
                  "nop": 0.05}
    classes = list(mix)
    weights = [mix[c] for c in classes]
    program: List[Instruction] = []
    for _ in range(length):
        klass = rng.choices(classes, weights)[0]
        op = rng.choice(_MIX_OPS[klass])
        rd = rng.randrange(1, 16)
        rs = rng.randrange(16)
        rt = rng.randrange(16)
        imm = rng.randrange(data_span)
        if op in ("LD", "ST"):
            program.append(I(op, rd=rd, rs=0, imm=imm))
        elif op == "ADDI":
            program.append(I(op, rd=rd, rs=rs, imm=rng.randrange(64)))
        elif op == "NOP":
            program.append(I("NOP"))
        else:
            program.append(I(op, rd=rd, rs=rs, rt=rt))
    program.append(I("HALT"))
    return program
