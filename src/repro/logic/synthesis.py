"""Sum-of-products to gate-netlist synthesis.

This is the framework's stand-in for the logic-synthesis back end the
paper assumes (SIS): two-level covers produced by
:mod:`repro.twolevel` are mapped onto the generic cell library as
balanced AND/OR trees with shared input inverters.  The resulting
netlists feed gate-level reference simulation, the complexity-model
regressions (Section II-B2), and FSM synthesis (Section III-H).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.twolevel.cubes import Cover, Cube
from repro.twolevel.quine_mccluskey import minimize
from repro.logic.netlist import Circuit


def _gate_for(kind: str, width: int) -> str:
    if width < 2 or width > 4:
        raise ValueError("tree arity out of range")
    return f"{kind}{width}"


def reduce_tree(circuit: Circuit, kind: str, nets: Sequence[str],
                output: Optional[str] = None) -> str:
    """Combine nets with a balanced tree of 2..4-input ``kind`` gates.

    ``kind`` is 'AND' or 'OR'.  Returns the root net.
    """
    nets = list(nets)
    if not nets:
        raise ValueError("cannot reduce an empty net list")
    if len(nets) == 1:
        if output is not None:
            return circuit.add_gate("BUF", nets, output=output)
        return nets[0]
    while len(nets) > 4:
        grouped: List[str] = []
        for i in range(0, len(nets), 4):
            chunk = nets[i:i + 4]
            if len(chunk) == 1:
                grouped.append(chunk[0])
            else:
                grouped.append(
                    circuit.add_gate(_gate_for(kind, len(chunk)), chunk))
        nets = grouped
    return circuit.add_gate(_gate_for(kind, len(nets)), nets, output=output)


class InverterCache:
    """Shares inverters so each net is complemented at most once."""

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        self._inv: Dict[str, str] = {}

    def complement(self, net: str) -> str:
        out = self._inv.get(net)
        if out is None:
            out = self.circuit.add_gate("INV", [net])
            self._inv[net] = out
        return out


def synthesize_cover(cover: Cover, input_nets: Sequence[str],
                     output_net: str,
                     circuit: Optional[Circuit] = None,
                     inverters: Optional[InverterCache] = None) -> Circuit:
    """Map a cover onto gates inside ``circuit`` (created if omitted).

    ``input_nets[i]`` corresponds to cube variable i.  The cover's
    output is driven onto ``output_net``.
    """
    if len(input_nets) != cover.n:
        raise ValueError("input net count must match cover width")
    if circuit is None:
        circuit = Circuit("sop")
        circuit.add_inputs(input_nets)
        circuit.add_output(output_net)
    if inverters is None:
        inverters = InverterCache(circuit)

    if len(cover) == 0:
        circuit.add_gate("CONST0", [], output=output_net)
        return circuit
    if any(cube.care == 0 for cube in cover):
        circuit.add_gate("CONST1", [], output=output_net)
        return circuit

    product_nets: List[str] = []
    for cube in cover:
        literal_nets: List[str] = []
        for i in range(cover.n):
            if not (cube.care >> i) & 1:
                continue
            net = input_nets[i]
            if (cube.value >> i) & 1:
                literal_nets.append(net)
            else:
                literal_nets.append(inverters.complement(net))
        if len(literal_nets) == 1:
            product_nets.append(literal_nets[0])
        else:
            product_nets.append(reduce_tree(circuit, "AND", literal_nets))

    if len(product_nets) == 1 and product_nets[0] != output_net:
        circuit.add_gate("BUF", product_nets, output=output_net)
    else:
        reduce_tree(circuit, "OR", product_nets, output=output_net)
    return circuit


def synthesize_function(n: int, onset: Sequence[int],
                        dc: Sequence[int] = (),
                        input_names: Optional[Sequence[str]] = None,
                        output_name: str = "f",
                        name: str = "func") -> Circuit:
    """Minimize a single-output function and map it to gates."""
    cover = minimize(n, onset, dc)
    inputs = list(input_names) if input_names else [f"x{i}" for i in range(n)]
    circuit = Circuit(name)
    circuit.add_inputs(inputs)
    circuit.add_output(output_name)
    synthesize_cover(cover, inputs, output_name, circuit=circuit)
    return circuit


def synthesize_multi(n: int, onsets: Dict[str, Sequence[int]],
                     input_names: Optional[Sequence[str]] = None,
                     name: str = "func") -> Circuit:
    """Synthesize several single-output functions over shared inputs.

    Input inverters are shared across outputs, mirroring how a
    multi-output PLA or mapped netlist shares input buffering.
    """
    inputs = list(input_names) if input_names else [f"x{i}" for i in range(n)]
    circuit = Circuit(name)
    circuit.add_inputs(inputs)
    inverters = InverterCache(circuit)
    for output_name, onset in onsets.items():
        circuit.add_output(output_name)
        cover = minimize(n, list(onset))
        synthesize_cover(cover, inputs, output_name, circuit=circuit,
                         inverters=inverters)
    return circuit
