"""Zero-delay functional simulation and activity collection.

The zero-delay simulator computes steady-state net values once per
clock cycle; toggles counted here exclude glitches (use
:mod:`repro.logic.eventsim` for glitch-aware power).  It is the "fast
functional simulation" repeatedly invoked by the paper's high-level
models (e.g. to obtain output entropies in Section II-B1 or output
activities for the 3D-table macro-model of [41]).

Three engines back the public entry points:

- the *reference* engine in this module: scalar, one vector at a
  time, per-gate dict lookups — simple and obviously correct,
- the *fast* engine in :mod:`repro.logic.fastsim`: a compiled,
  bit-parallel evaluator that packs the whole batch into one bignum
  word per net and is exactly equivalent (bit-identical
  :class:`ActivityReport`),
- the *numpy* engine: the same compiled plans lowered onto
  ``uint64`` lane arrays (:mod:`repro.backend.lanes`), fastest on
  long narrow batches.

:func:`collect_activity` and :func:`output_trace` take
``engine="fast"|"numpy"|"reference"|"auto"`` and default to
:data:`DEFAULT_ENGINE` (the fast engine unless overridden via the
``REPRO_ENGINE`` environment variable).  The fallback is a chain:
numpy degrades to fast when numpy is unavailable, and both compiled
engines degrade to the scalar reference for circuits the compiler
cannot lower.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.backend.core import BackendUnavailable, default_engine, \
    resolve_engine
from repro.logic import gates as gatelib
from repro.logic.netlist import Circuit


Vector = Dict[str, int]

#: Engine used when callers do not pass ``engine=...`` explicitly
#: ("fast", or the value of ``REPRO_ENGINE`` when set and valid).
DEFAULT_ENGINE = default_engine()


def random_vectors(inputs: Sequence[str], n: int,
                   seed: Optional[int] = None,
                   probs: Optional[Dict[str, float]] = None) -> List[Vector]:
    """Generate ``n`` random input vectors.

    ``probs`` optionally gives a per-input probability of 1 (default
    0.5, i.e. pseudorandom data as used for characterization in
    Section II-C1 step 1).
    """
    rng = random.Random(seed)
    probs = probs or {}
    return [
        {name: int(rng.random() < probs.get(name, 0.5)) for name in inputs}
        for _ in range(n)
    ]


def evaluate(circuit: Circuit, inputs: Vector,
             state: Optional[Dict[str, int]] = None) -> Dict[str, int]:
    """Steady-state value of every net for one cycle.

    ``state`` supplies current latch output values; latch initial
    values are used when omitted.
    """
    values: Dict[str, int] = dict(inputs)
    if state is None:
        state = {l.output: l.init for l in circuit.latches}
    values.update(state)
    for gate in circuit.topological_gates():
        values[gate.output] = gate.spec.evaluate(
            [values[n] for n in gate.inputs])
    return values


def next_state(circuit: Circuit, values: Dict[str, int]) -> Dict[str, int]:
    """Latch outputs after the clock edge, given settled net values.

    Load-enable latches hold their value when the enable net is 0.
    """
    state: Dict[str, int] = {}
    for l in circuit.latches:
        if l.enable is not None and not values[l.enable]:
            state[l.output] = values[l.output]
        else:
            state[l.output] = values[l.data]
    return state


@dataclass
class ActivityReport:
    """Per-net switching statistics from a simulation run.

    ``toggles[n]``     -- number of 0->1 / 1->0 transitions of net n,
    ``ones[n]``        -- cycles in which net n was 1,
    ``cycles``         -- number of simulated cycles,
    ``switched_capacitance`` -- sum over transitions of the toggling
    net's load capacitance (units of C0); with clock tree included for
    sequential circuits.

    Normalization convention (deliberate, engine-independent): a run
    of ``cycles`` settled states has ``cycles - 1`` *boundaries*
    between consecutive states.  Transition statistics — ``toggles``,
    ``switched_capacitance``, ``clock_capacitance`` — accumulate over
    boundaries, so :meth:`activity` and :meth:`average_power` divide
    by ``cycles - 1`` (and are 0.0 when ``cycles <= 1``: a single
    vector cannot toggle anything).  Value statistics — ``ones`` —
    accumulate over all ``cycles`` states, so :meth:`probability`
    divides by ``cycles``.  Both engines implement exactly this
    convention and agree bit-for-bit, including the 1- and 2-cycle
    edge cases.
    """

    cycles: int
    toggles: Dict[str, int]
    ones: Dict[str, int]
    switched_capacitance: float
    clock_capacitance: float = 0.0
    #: Timed-engine extras (None for zero-delay runs): total applied
    #: value-change events including settling, and transitions beyond
    #: each net's settled change per cycle (the glitch tally).
    events: Optional[int] = None
    glitches: Optional[int] = None

    def activity(self, net: str) -> float:
        """Average toggles per cycle of a net (E in the paper's models)."""
        if self.cycles <= 1:
            return 0.0
        return self.toggles.get(net, 0) / (self.cycles - 1)

    def probability(self, net: str) -> float:
        if self.cycles == 0:
            return 0.0
        return self.ones.get(net, 0) / self.cycles

    def average_activity(self, nets: Optional[Iterable[str]] = None) -> float:
        names = list(nets) if nets is not None else list(self.toggles)
        if not names:
            return 0.0
        return sum(self.activity(n) for n in names) / len(names)

    def average_power(self, vdd: float = 1.0, freq: float = 1.0) -> float:
        """0.5 V^2 f C_sw/cycle, the switched-capacitance power metric."""
        if self.cycles <= 1:
            return 0.0
        per_cycle = (self.switched_capacitance + self.clock_capacitance) \
            / (self.cycles - 1)
        return 0.5 * vdd * vdd * freq * per_cycle

    def energy_per_cycle(self, vdd: float = 1.0) -> float:
        return self.average_power(vdd=vdd, freq=1.0)


def simulate(circuit: Circuit, vectors: Sequence[Vector],
             initial_state: Optional[Dict[str, int]] = None
             ) -> List[Dict[str, int]]:
    """Simulate a vector sequence; returns settled net values per cycle."""
    state = initial_state
    if state is None:
        state = {l.output: l.init for l in circuit.latches}
    trace: List[Dict[str, int]] = []
    for vec in vectors:
        values = evaluate(circuit, vec, state)
        trace.append(values)
        state = next_state(circuit, values)
    return trace


def collect_activity(circuit: Circuit, vectors: Sequence[Vector],
                     initial_state: Optional[Dict[str, int]] = None,
                     engine: Optional[str] = None) -> ActivityReport:
    """Run a zero-delay simulation and accumulate switching statistics.

    ``vectors`` is a sequence of per-cycle input dicts or a
    :class:`repro.logic.fastsim.PackedVectors` batch.  ``engine``
    selects the implementation: ``"fast"`` (bit-parallel compiled on
    bignum words, the default), ``"numpy"`` (the same plans on
    ``uint64`` lane arrays), ``"reference"`` (scalar), or ``"auto"``
    (picks per workload shape).  All produce bit-identical reports;
    the compiled engines fall down the chain — numpy to fast when
    numpy is unavailable, fast to the reference when the circuit
    cannot be compiled.
    """
    from repro.logic import fastsim

    engine = resolve_engine(engine, DEFAULT_ENGINE, cycles=len(vectors),
                            sequential=bool(circuit.latches))
    if engine == "numpy":
        try:
            return fastsim.collect_activity_backend(
                circuit, vectors, initial_state, backend="numpy")
        except (fastsim.CompileError, BackendUnavailable):
            engine = "fast"
    if engine == "fast":
        try:
            return fastsim.collect_activity(circuit, vectors, initial_state)
        except fastsim.CompileError:
            pass
    if isinstance(vectors, fastsim.PackedVectors):
        vectors = vectors.to_vectors()
    return _collect_activity_reference(circuit, vectors, initial_state)


def _collect_activity_reference(circuit: Circuit,
                                vectors: Sequence[Vector],
                                initial_state: Optional[Dict[str, int]]
                                = None) -> ActivityReport:
    """Scalar reference implementation (one vector at a time)."""
    caps = circuit.load_capacitances()
    toggles: Dict[str, int] = {net: 0 for net in caps}
    ones: Dict[str, int] = {net: 0 for net in caps}
    previous: Optional[Dict[str, int]] = None

    trace = simulate(circuit, vectors, initial_state)
    for values in trace:
        for net in caps:
            value = values[net]
            if value:
                ones[net] += 1
            if previous is not None and previous[net] != value:
                toggles[net] += 1
        previous = values

    switched = 0.0
    for net in caps:
        count = toggles[net]
        if count:
            switched += caps[net] * count

    cycles = len(vectors)
    clock_cap = 0.0
    if circuit.latches and cycles > 1:
        # The clock toggles twice per counted cycle; load-enable
        # latches sit behind a clock gate and only see the clock when
        # enabled.
        enabled_latch_cycles = 0
        for values in trace[:-1]:
            for latch in circuit.latches:
                if latch.clocked and (latch.enable is None
                                      or values[latch.enable]):
                    enabled_latch_cycles += 1
        clock_cap = 2.0 * gatelib.DFF_CLOCK_CAP * enabled_latch_cycles
    return ActivityReport(
        cycles=cycles,
        toggles=toggles,
        ones=ones,
        switched_capacitance=switched,
        clock_capacitance=clock_cap,
    )


def output_trace(circuit: Circuit, vectors: Sequence[Vector],
                 initial_state: Optional[Dict[str, int]] = None,
                 engine: Optional[str] = None) -> List[Vector]:
    """Primary-output values per cycle (convenience wrapper).

    Same engine dispatch and fallback chain as
    :func:`collect_activity`.
    """
    from repro.logic import fastsim

    engine = resolve_engine(engine, DEFAULT_ENGINE, cycles=len(vectors),
                            sequential=bool(circuit.latches))
    if engine == "numpy":
        try:
            return fastsim.output_trace_backend(circuit, vectors,
                                                initial_state,
                                                backend="numpy")
        except (fastsim.CompileError, BackendUnavailable):
            engine = "fast"
    if engine == "fast":
        try:
            return fastsim.output_trace(circuit, vectors, initial_state)
        except fastsim.CompileError:
            pass
    if isinstance(vectors, fastsim.PackedVectors):
        vectors = vectors.to_vectors()
    trace = simulate(circuit, vectors, initial_state)
    return [{o: values[o] for o in circuit.outputs} for values in trace]
