"""Gate-level circuit representation.

A :class:`Circuit` is a named collection of nets driven by primary
inputs, gates, or latches (edge-triggered D flip-flops).  The class
maintains fanout maps and provides topological ordering, capacitance
accounting, and structural statistics used by every estimator in the
framework.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.logic import gates as gatelib
from repro.logic.gates import GateSpec, gate_spec


@dataclass
class Gate:
    """Instance of a library cell driving net ``output``."""

    name: str
    gate_type: str
    inputs: List[str]
    output: str

    @property
    def spec(self) -> GateSpec:
        return gate_spec(self.gate_type)


@dataclass
class Latch:
    """Edge-triggered D flip-flop: samples ``data`` into ``output``.

    An optional ``enable`` net turns the flop into a load-enable
    register: when the enable net settles to 0, the flop holds its
    value *and its local clock is gated off* (an integrated
    clock-gating cell is assumed; the enable pin presents
    ``gates.DFF_ENABLE_CAP`` of load).
    """

    name: str
    data: str
    output: str
    init: int = 0
    enable: Optional[str] = None
    #: False models a level-sensitive transparent latch controlled by
    #: ``enable`` alone: it presents no clock-tree load at all (used by
    #: guarded evaluation's guard latches).
    clocked: bool = True


class Circuit:
    """A combinational or sequential gate-level netlist."""

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self.inputs: List[str] = []
        self.outputs: List[str] = []
        self.gates: List[Gate] = []
        self.latches: List[Latch] = []
        self._driver: Dict[str, object] = {}
        self._reserved: Set[str] = set()
        self._topo_cache: Optional[List[Gate]] = None
        self._fanout_cache: Optional[
            Dict[str, List[Tuple[object, int]]]] = None
        self._caps_cache: Optional[Dict[str, float]] = None
        self._fastsim_plan: Optional[object] = None
        self._fasttimer_plan: Optional[object] = None
        self._tick_grid: Optional[object] = None
        self._fingerprint_cache: Optional[Tuple[int, str]] = None
        self._cone_fp_cache: Optional[Tuple[int, Dict[str, str]]] = None
        self._cone_support_cache: Optional[Tuple[int, Dict[str, int]]] = None
        self._version: int = 0

    def invalidate(self) -> None:
        """Drop all derived caches after a structural mutation.

        The construction methods call this automatically; code that
        mutates gates or latches in place (rewiring ``gate.inputs``,
        setting ``latch.enable``, ...) must call it explicitly so the
        cached topological order, fanout map, load capacitances, and
        compiled simulation plan are rebuilt.
        """
        self._topo_cache = None
        self._fanout_cache = None
        self._caps_cache = None
        self._fastsim_plan = None
        self._fasttimer_plan = None
        self._tick_grid = None
        self._version += 1

    def __getstate__(self) -> Dict[str, object]:
        """Drop derived caches for pickling.

        The compiled simulation plans hold ``exec``-generated
        functions that cannot cross process boundaries; worker
        processes (fasttimer's sharded evaluation) rehydrate them
        from the content-addressed plan store (:mod:`repro.store`) or
        rebuild them from the structural state.  The structural
        fingerprint *does* survive pickling — it is a plain string,
        and carrying it saves every worker one canonicalization pass.
        """
        state = self.__dict__.copy()
        state["_topo_cache"] = None
        state["_fanout_cache"] = None
        state["_caps_cache"] = None
        state["_fastsim_plan"] = None
        state["_fasttimer_plan"] = None
        state["_tick_grid"] = None
        return state

    # ------------------------------------------------------------------
    # Structural identity
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Content hash of the circuit's structure (hex, stable).

        Covers exactly what the compiled artifacts depend on: the net
        names and their drivers (gates with their cell types and input
        order, latches with data/enable/init/clocking), the primary
        input/output sets, and the library parameters (delays,
        capacitances) of every cell type used.  Deliberately
        *excluded*: the circuit and instance names, the order in which
        gates/latches/inputs were added (the description is
        canonicalized by sorting on driven nets), and every derived
        cache — so the fingerprint is identical across construction
        orders, pickle round-trips, and process boundaries.  It keys
        the content-addressed plan store (:mod:`repro.store`).
        """
        cached = getattr(self, "_fingerprint_cache", None)
        if cached is not None and cached[0] == self._version:
            return cached[1]
        h = hashlib.sha256()
        for part in self._structural_parts():
            h.update(part.encode("utf-8"))
            h.update(b"\x00")
        digest = h.hexdigest()
        self._fingerprint_cache = (self._version, digest)
        return digest

    def _structural_parts(self) -> Iterable[str]:
        """Canonical structural description, one string per element."""
        yield "circuit/1"
        yield "in:" + ",".join(sorted(self.inputs))
        yield "out:" + ",".join(sorted(self.outputs))
        for g in sorted(self.gates, key=lambda g: g.output):
            yield f"g:{g.gate_type}:{','.join(g.inputs)}>{g.output}"
        for l in sorted(self.latches, key=lambda l: l.output):
            yield (f"l:{l.data}>{l.output}:{l.init}:"
                   f"{l.enable or ''}:{int(l.clocked)}")
        # Library parameters the compiled plans bake in: per-cell
        # delay/caps/area for every cell type used, the flop pin
        # loads, and the statistical wire-load model.
        for gate_type in sorted({g.gate_type for g in self.gates}):
            spec = gate_spec(gate_type)
            yield (f"spec:{gate_type}:{spec.n_inputs}:{spec.delay!r}:"
                   f"{spec.input_cap!r}:{spec.output_cap!r}:"
                   f"{spec.area!r}")
        if self.latches:
            yield ("dff:"
                   f"{gatelib.DFF_INPUT_CAP!r}:{gatelib.DFF_OUTPUT_CAP!r}:"
                   f"{gatelib.DFF_CLOCK_CAP!r}:{gatelib.DFF_ENABLE_CAP!r}:"
                   f"{gatelib.DFF_AREA!r}")
        yield ("wire:"
               + ":".join(repr(gatelib.wire_capacitance(k))
                          for k in (0, 1, 2, 4, 8)))

    # ------------------------------------------------------------------
    # Cone identity (incremental re-estimation)
    # ------------------------------------------------------------------
    def _cone_graph(self) -> Tuple[Dict[str, Tuple[str, ...]],
                                   Dict[str, str]]:
        """Net dependency graph plus a canonical line per driver.

        Edges point from a net to the nets its driver reads (a latch
        reads its data and, when present, its enable).  Nets that are
        referenced but never driven are registered as free inputs so
        malformed circuits still hash instead of raising here.
        """
        deps: Dict[str, Tuple[str, ...]] = {}
        lines: Dict[str, str] = {}
        for net in self.inputs:
            deps[net] = ()
            lines[net] = f"i:{net}"
        for g in self.gates:
            deps[g.output] = tuple(g.inputs)
            lines[g.output] = f"g:{g.gate_type}:{','.join(g.inputs)}" \
                f">{g.output}"
        for l in self.latches:
            read = (l.data,) if l.enable is None else (l.data, l.enable)
            deps[l.output] = read
            lines[l.output] = (f"l:{l.data}>{l.output}:{l.init}:"
                               f"{l.enable or ''}:{int(l.clocked)}")
        for net, read in list(deps.items()):
            for d in read:
                if d not in deps:
                    deps[d] = ()
                    lines[d] = f"i:{d}"
        return deps, lines

    def cone_fingerprints(self) -> Dict[str, str]:
        """Per-net structural hash of the net's transitive fanin cone.

        Two nets (in the same or different circuits) get equal cone
        fingerprints exactly when the logic driving them is identical:
        same driver cell/latch, same *net names* on every pin, and
        recursively the same cones on every fanin — closed over latch
        feedback (a feedback strongly-connected component is hashed as
        a unit, so editing anywhere inside a loop dirties the whole
        loop).  Unlike :meth:`fingerprint`, net names *matter* here:
        the incremental engine matches cones between a base circuit
        and an edited clone by name, so a renamed net is a different
        cone.  Library capacitances are deliberately excluded — cached
        lane values depend only on the logic function; switched
        capacitance is recomputed against the variant's own loads.
        Cached until the next structural mutation.
        """
        cached = getattr(self, "_cone_fp_cache", None)
        if cached is not None and cached[0] == self._version:
            return cached[1]
        deps, lines = self._cone_graph()
        fps: Dict[str, str] = {}
        for scc in _tarjan_sccs(deps):
            if len(scc) == 1 and scc[0] not in deps[scc[0]]:
                net = scc[0]
                h = hashlib.sha256(b"cone/1\x00")
                h.update(lines[net].encode("utf-8"))
                for d in deps[net]:
                    h.update(b"\x00")
                    h.update(fps[d].encode("ascii"))
                fps[net] = h.hexdigest()
            else:
                members = set(scc)
                h = hashlib.sha256(b"cone-scc/1\x00")
                for m in sorted(scc):
                    h.update(lines[m].encode("utf-8"))
                    for d in deps[m]:
                        h.update(b"\x00")
                        # Internal edges are covered by the member
                        # lines (names included); external fanin by
                        # its cone fingerprint.
                        if d not in members:
                            h.update(fps[d].encode("ascii"))
                    h.update(b"\x01")
                scc_hash = h.hexdigest()
                for m in scc:
                    fps[m] = hashlib.sha256(
                        f"{scc_hash}|{m}".encode("utf-8")).hexdigest()
        self._cone_fp_cache = (self._version, fps)
        return fps

    def cone_supports(self) -> Dict[str, int]:
        """Per-net primary-input support, as a bitmask over ``inputs``.

        Bit ``i`` of the mask for a net is set when ``self.inputs[i]``
        is in the net's transitive fanin (closed over latch feedback).
        The incremental engine combines this with per-input stimulus
        lane hashes so a cone's cache key only depends on the inputs
        it can actually observe.  Cached until the next mutation.
        """
        cached = getattr(self, "_cone_support_cache", None)
        if cached is not None and cached[0] == self._version:
            return cached[1]
        deps, _ = self._cone_graph()
        input_bit = {net: 1 << i for i, net in enumerate(self.inputs)}
        masks: Dict[str, int] = {}
        for scc in _tarjan_sccs(deps):
            members = set(scc)
            mask = 0
            for m in scc:
                mask |= input_bit.get(m, 0)
                for d in deps[m]:
                    if d not in members:
                        mask |= masks[d]
            for m in scc:
                masks[m] = mask
        self._cone_support_cache = (self._version, masks)
        return masks

    def diff_nets(self, other: "Circuit") -> Set[str]:
        """Nets whose driving cones differ between ``self`` and ``other``.

        Matches nets by name across the union of both net sets (a net
        present on only one side always differs).  Because cone
        fingerprints close over transitive fanin and latch feedback,
        the result already contains the full fanin-side closure of
        every edit; apply :meth:`transitive_fanout` to get the dirty
        region for resimulation.
        """
        a = self.cone_fingerprints()
        b = other.cone_fingerprints()
        return {net for net in set(a) | set(b)
                if a.get(net) != b.get(net)}

    def transitive_fanout(self, nets: Iterable[str]) -> Set[str]:
        """Seed nets plus everything reachable through consuming cells.

        Follows gate inputs and latch data/enable pins, so the closure
        crosses register boundaries (an edit feeding a flop dirties
        the flop output and everything it feeds, around feedback
        loops until a fixed point).  Primary-output membership adds
        nothing — pads consume, they don't drive.
        """
        fanout = self.fanout_map()
        seen: Set[str] = set()
        stack = [n for n in nets]
        while stack:
            net = stack.pop()
            if net in seen:
                continue
            seen.add(net)
            for consumer, _pin in fanout.get(net, ()):
                if isinstance(consumer, (Gate, Latch)):
                    out = consumer.output
                    if out not in seen:
                        stack.append(out)
        return seen

    def extract_cone(self, nets: Iterable[str],
                     name: Optional[str] = None
                     ) -> Tuple["Circuit", List[str]]:
        """Sub-circuit re-driving ``nets``; returns ``(sub, boundary)``.

        Every gate/latch whose output is in ``nets`` is replicated
        verbatim (same instance and net names, same relative order, so
        compiled-plan iteration order and latch init values are
        preserved).  Nets the region reads but does not drive become
        primary inputs of the sub-circuit — the returned ``boundary``
        list (deterministic first-use order) — to be replayed from
        cached traces.  Primary inputs of ``self`` that are in
        ``nets`` stay primary inputs.  The caller is responsible for
        passing a fanout-closed region (see :meth:`transitive_fanout`);
        otherwise the replicated drivers would read stale boundary
        values that full simulation would have recomputed.
        """
        region = set(nets)
        sub = Circuit(name or f"{self.name}_cone")
        ext: List[str] = []
        ext_seen = set(region)
        for g in self.gates:
            if g.output in region:
                for n in g.inputs:
                    if n not in ext_seen:
                        ext_seen.add(n)
                        ext.append(n)
        for l in self.latches:
            if l.output in region:
                for n in ((l.data,) if l.enable is None
                          else (l.data, l.enable)):
                    if n not in ext_seen:
                        ext_seen.add(n)
                        ext.append(n)
        for n in self.inputs:
            if n in region:
                sub.add_input(n)
        for n in ext:
            sub.add_input(n)
        for g in self.gates:
            if g.output in region:
                sub.add_gate(g.gate_type, list(g.inputs),
                             output=g.output, name=g.name)
        for l in self.latches:
            if l.output in region:
                sub.add_latch(l.data, output=l.output, init=l.init,
                              name=l.name, enable=l.enable,
                              clocked=l.clocked)
        return sub, ext

    # ------------------------------------------------------------------
    # Portable serialization (job transport, store tooling)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-able structural description (see :meth:`from_dict`)."""
        return {
            "name": self.name,
            "inputs": list(self.inputs),
            "outputs": list(self.outputs),
            "gates": [[g.name, g.gate_type, list(g.inputs), g.output]
                      for g in self.gates],
            "latches": [[l.name, l.data, l.output, l.init, l.enable,
                         int(l.clocked)]
                        for l in self.latches],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Circuit":
        """Rebuild a circuit from :meth:`to_dict` output.

        Round-trips the structure exactly (same fingerprint): net
        names, instance names, and declaration order all survive.
        """
        circuit = cls(str(data.get("name", "circuit")))
        for net in data["inputs"]:                # type: ignore[index]
            circuit.add_input(net)
        for name, gate_type, ins, output in data["gates"]:  # type: ignore[index]
            circuit.add_gate(gate_type, list(ins), output=output,
                             name=name)
        for name, d, q, init, enable, clocked in data["latches"]:  # type: ignore[index]
            circuit.add_latch(d, output=q, init=init, name=name,
                              enable=enable, clocked=bool(clocked))
        for net in data["outputs"]:               # type: ignore[index]
            circuit.add_output(net)
        return circuit

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_input(self, net: str) -> str:
        if net in self._driver:
            raise ValueError(f"net {net!r} already driven")
        self.inputs.append(net)
        self._driver[net] = "input"
        self.invalidate()
        return net

    def add_inputs(self, nets: Iterable[str]) -> List[str]:
        return [self.add_input(n) for n in nets]

    def reserve_nets(self, nets: Iterable[str]) -> None:
        """Keep auto-generated net names away from the given names.

        Used by netlist readers: declared signal names must not clash
        with the fresh names synthesis helpers invent.
        """
        self._reserved.update(nets)

    def add_output(self, net: str) -> str:
        self.outputs.append(net)
        self.invalidate()     # the output pad adds fanout load
        return net

    def add_gate(self, gate_type: str, inputs: Sequence[str],
                 output: Optional[str] = None,
                 name: Optional[str] = None) -> str:
        """Instantiate a gate; returns the output net name.

        If ``output`` is omitted a fresh net name is generated.
        """
        spec = gate_spec(gate_type)
        if len(inputs) != spec.n_inputs:
            raise ValueError(
                f"{gate_type} takes {spec.n_inputs} inputs, got {len(inputs)}")
        if output is None:
            output = f"n{len(self.gates) + len(self.latches)}_{gate_type.lower()}"
            while output in self._driver or output in self._reserved:
                output = "_" + output
        if output in self._driver:
            raise ValueError(f"net {output!r} already driven")
        if name is None:
            name = f"g{len(self.gates)}"
        gate = Gate(name, gate_type, list(inputs), output)
        self.gates.append(gate)
        self._driver[output] = gate
        self.invalidate()
        return output

    def add_latch(self, data: str, output: Optional[str] = None,
                  init: int = 0, name: Optional[str] = None,
                  enable: Optional[str] = None,
                  clocked: bool = True) -> str:
        if output is None:
            output = f"q{len(self.latches)}"
            while output in self._driver or output in self._reserved:
                output = "_" + output
        if output in self._driver:
            raise ValueError(f"net {output!r} already driven")
        if name is None:
            name = f"l{len(self.latches)}"
        latch = Latch(name, data, output, init, enable, clocked)
        self.latches.append(latch)
        self._driver[output] = latch
        self.invalidate()
        return output

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    @property
    def nets(self) -> List[str]:
        seen: List[str] = list(self.inputs)
        seen.extend(l.output for l in self.latches)
        seen.extend(g.output for g in self.gates)
        return seen

    def driver_of(self, net: str):
        """'input', a Gate, or a Latch; KeyError for undriven nets."""
        return self._driver[net]

    def is_sequential(self) -> bool:
        return bool(self.latches)

    def fanout_map(self) -> Dict[str, List[Tuple[object, int]]]:
        """net -> list of (consumer, pin index) pairs.

        Consumers are Gate instances, Latch instances (pin 0 = D), or
        the string 'output' for primary outputs.  The map is cached
        until the next structural mutation (see :meth:`invalidate`);
        treat the returned dict as read-only.
        """
        if self._fanout_cache is not None:
            return self._fanout_cache
        fanout: Dict[str, List[Tuple[object, int]]] = {n: [] for n in self.nets}
        for gate in self.gates:
            for pin, net in enumerate(gate.inputs):
                fanout.setdefault(net, []).append((gate, pin))
        for latch in self.latches:
            fanout.setdefault(latch.data, []).append((latch, 0))
            if latch.enable is not None:
                fanout.setdefault(latch.enable, []).append((latch, 1))
        for net in self.outputs:
            fanout.setdefault(net, []).append(("output", 0))
        self._fanout_cache = fanout
        return fanout

    def topological_gates(self) -> List[Gate]:
        """Gates in topological order (inputs and latch outputs are roots)."""
        if self._topo_cache is not None:
            return self._topo_cache
        order: List[Gate] = []
        ready: Set[str] = set(self.inputs)
        ready.update(l.output for l in self.latches)
        remaining = list(self.gates)
        # Kahn's algorithm on nets.
        waiting: Dict[str, List[Gate]] = {}
        missing: Dict[str, int] = {}
        for gate in remaining:
            count = 0
            for net in gate.inputs:
                if net not in ready:
                    count += 1
                    waiting.setdefault(net, []).append(gate)
            missing[gate.name] = count
        queue = [g for g in remaining if missing[g.name] == 0]
        scheduled = set()
        while queue:
            gate = queue.pop()
            if gate.name in scheduled:
                continue
            scheduled.add(gate.name)
            order.append(gate)
            ready.add(gate.output)
            for dependent in waiting.get(gate.output, []):
                missing[dependent.name] -= 1
                if missing[dependent.name] == 0:
                    queue.append(dependent)
        if len(order) != len(self.gates):
            raise ValueError(
                "combinational cycle or undriven net in circuit "
                f"{self.name!r} ({len(order)}/{len(self.gates)} ordered)")
        self._topo_cache = order
        return order

    # ------------------------------------------------------------------
    # Electrical accounting
    # ------------------------------------------------------------------
    def load_capacitance(self, net: str,
                         fanout: Optional[Dict[str, List[Tuple[object, int]]]]
                         = None) -> float:
        """Capacitance switched when ``net`` toggles.

        Sum of the fanin pins' input capacitances, the driver's
        intrinsic output capacitance, and a statistical wire load.
        """
        if fanout is None:
            fanout = self.fanout_map()
        consumers = fanout.get(net, [])
        cap = gatelib.wire_capacitance(len(consumers))
        for consumer, pin in consumers:
            if isinstance(consumer, Gate):
                cap += consumer.spec.input_cap
            elif isinstance(consumer, Latch):
                cap += gatelib.DFF_ENABLE_CAP if pin == 1 \
                    else gatelib.DFF_INPUT_CAP
            else:  # primary output pad
                cap += 2.0
        driver = self._driver.get(net)
        if isinstance(driver, Gate):
            cap += driver.spec.output_cap
        elif isinstance(driver, Latch):
            cap += gatelib.DFF_OUTPUT_CAP
        return cap

    def load_capacitances(self) -> Dict[str, float]:
        """Per-net load capacitance for every net, in ``nets`` order.

        Cached until the next structural mutation — both simulation
        engines and the event simulator share this map instead of
        rebuilding it per call.  Treat the returned dict as read-only.
        """
        if self._caps_cache is None:
            fanout = self.fanout_map()
            self._caps_cache = {net: self.load_capacitance(net, fanout)
                                for net in self.nets}
        return self._caps_cache

    def total_capacitance(self) -> float:
        """Sum of load capacitances over all nets (the C_tot of II-B1)."""
        return sum(self.load_capacitances().values())

    def clock_capacitance(self) -> float:
        return gatelib.DFF_CLOCK_CAP * sum(1 for l in self.latches
                                           if l.clocked)

    def area(self) -> float:
        """Area in NAND2 gate equivalents."""
        total = sum(g.spec.area for g in self.gates)
        total += gatelib.DFF_AREA * len(self.latches)
        return total

    def gate_count(self) -> int:
        return len(self.gates)

    def depth(self) -> int:
        """Longest combinational path, in gate levels."""
        level: Dict[str, int] = {n: 0 for n in self.inputs}
        level.update({l.output: 0 for l in self.latches})
        best = 0
        for gate in self.topological_gates():
            lvl = 1 + max((level.get(n, 0) for n in gate.inputs), default=0)
            level[gate.output] = lvl
            best = max(best, lvl)
        return best

    def stats(self) -> Dict[str, float]:
        return {
            "inputs": len(self.inputs),
            "outputs": len(self.outputs),
            "gates": len(self.gates),
            "latches": len(self.latches),
            "area": self.area(),
            "depth": self.depth() if self.gates else 0,
            "total_capacitance": self.total_capacitance(),
        }

    def clone(self, name: Optional[str] = None) -> "Circuit":
        copy = Circuit(name or self.name)
        copy.inputs = list(self.inputs)
        copy.outputs = list(self.outputs)
        for g in self.gates:
            copy.gates.append(Gate(g.name, g.gate_type, list(g.inputs),
                                   g.output))
            copy._driver[g.output] = copy.gates[-1]
        for l in self.latches:
            copy.latches.append(Latch(l.name, l.data, l.output, l.init,
                                      l.enable, l.clocked))
            copy._driver[l.output] = copy.latches[-1]
        for n in self.inputs:
            copy._driver[n] = "input"
        return copy

    def __repr__(self) -> str:
        return (f"Circuit({self.name!r}, in={len(self.inputs)}, "
                f"out={len(self.outputs)}, gates={len(self.gates)}, "
                f"latches={len(self.latches)})")


def _tarjan_sccs(deps: Dict[str, Tuple[str, ...]]) -> List[List[str]]:
    """Strongly connected components of a dependency graph, iterative.

    Emits components in reverse topological order — every component
    appears after all components it depends on — which is exactly the
    evaluation order the cone hash and support computations need.
    Iterative so deep combinational chains don't hit the recursion
    limit (the same reason every BDD traversal in this repo is
    iterative).
    """
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = 0
    for root in deps:
        if root in index:
            continue
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, pin = work.pop()
            if pin == 0:
                index[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            descend = False
            read = deps[node]
            for i in range(pin, len(read)):
                d = read[i]
                if d not in index:
                    work.append((node, i + 1))
                    work.append((d, 0))
                    descend = True
                    break
                if d in on_stack:
                    low[node] = min(low[node], index[d])
            if descend:
                continue
            if low[node] == index[node]:
                scc: List[str] = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc.append(w)
                    if w == node:
                        break
                sccs.append(scc)
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
        # root finished; its component was emitted above.
    return sccs
