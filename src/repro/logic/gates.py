"""Generic characterized cell library.

Each gate type carries the data a switched-capacitance power model
needs: per-pin input capacitance, intrinsic output capacitance, an
inertial delay, and an area in gate equivalents.  Values follow the
usual static-CMOS trends (cap and delay grow with fan-in; XOR costs
about twice a NAND) in normalized units:

- capacitance in units of a minimum inverter input cap (``C0``),
- delay in units of a fanout-4 inverter delay,
- area in NAND2 gate equivalents.

Energy per output transition is ``0.5 * Vdd**2 * C_switched`` with
``C_switched`` the sum of the driven net's load and the gate's
intrinsic output capacitance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Sequence, Tuple


@dataclass(frozen=True)
class GateSpec:
    """Static description of a combinational cell."""

    name: str
    n_inputs: int
    fn: Callable[[Tuple[int, ...]], int]
    input_cap: float       # per input pin, units of C0
    output_cap: float      # intrinsic drain cap at the output, units of C0
    delay: float           # inertial propagation delay
    area: float            # NAND2 gate equivalents

    def evaluate(self, inputs: Sequence[int]) -> int:
        if len(inputs) != self.n_inputs:
            raise ValueError(
                f"{self.name} expects {self.n_inputs} inputs, "
                f"got {len(inputs)}")
        return self.fn(tuple(inputs))


def _and(v: Tuple[int, ...]) -> int:
    return int(all(v))


def _or(v: Tuple[int, ...]) -> int:
    return int(any(v))


def _nand(v: Tuple[int, ...]) -> int:
    return int(not all(v))


def _nor(v: Tuple[int, ...]) -> int:
    return int(not any(v))


def _xor(v: Tuple[int, ...]) -> int:
    return sum(v) & 1


def _xnor(v: Tuple[int, ...]) -> int:
    return (sum(v) + 1) & 1


def _inv(v: Tuple[int, ...]) -> int:
    return 1 - v[0]


def _buf(v: Tuple[int, ...]) -> int:
    return v[0]


def _mux2(v: Tuple[int, ...]) -> int:
    # inputs: (d0, d1, select)
    return v[1] if v[2] else v[0]


def _aoi21(v: Tuple[int, ...]) -> int:
    # inputs: (a, b, c) -> not(a*b + c)
    return int(not ((v[0] and v[1]) or v[2]))


def _const0(v: Tuple[int, ...]) -> int:
    return 0


def _const1(v: Tuple[int, ...]) -> int:
    return 1


LIBRARY: Dict[str, GateSpec] = {}


def _register(spec: GateSpec) -> None:
    LIBRARY[spec.name] = spec


_register(GateSpec("INV", 1, _inv, 1.0, 0.5, 1.0, 0.5))
_register(GateSpec("BUF", 1, _buf, 1.0, 0.5, 2.0, 0.7))
_register(GateSpec("AND2", 2, _and, 1.2, 0.7, 2.0, 1.2))
_register(GateSpec("AND3", 3, _and, 1.3, 0.8, 2.4, 1.6))
_register(GateSpec("AND4", 4, _and, 1.4, 0.9, 2.8, 2.0))
_register(GateSpec("OR2", 2, _or, 1.2, 0.7, 2.0, 1.2))
_register(GateSpec("OR3", 3, _or, 1.3, 0.8, 2.4, 1.6))
_register(GateSpec("OR4", 4, _or, 1.4, 0.9, 2.8, 2.0))
_register(GateSpec("NAND2", 2, _nand, 1.1, 0.6, 1.0, 1.0))
_register(GateSpec("NAND3", 3, _nand, 1.2, 0.7, 1.4, 1.4))
_register(GateSpec("NAND4", 4, _nand, 1.3, 0.8, 1.8, 1.8))
_register(GateSpec("NOR2", 2, _nor, 1.1, 0.6, 1.2, 1.0))
_register(GateSpec("NOR3", 3, _nor, 1.2, 0.7, 1.6, 1.4))
_register(GateSpec("NOR4", 4, _nor, 1.3, 0.8, 2.0, 1.8))
_register(GateSpec("XOR2", 2, _xor, 1.8, 1.0, 2.6, 2.2))
_register(GateSpec("XNOR2", 2, _xnor, 1.8, 1.0, 2.6, 2.2))
_register(GateSpec("XOR3", 3, _xor, 2.0, 1.2, 3.6, 3.4))
_register(GateSpec("MUX2", 3, _mux2, 1.4, 0.9, 2.2, 1.8))
# Data path of a level-sensitive transparent latch: (d, held, gate).
# Small cell -- guarded evaluation inserts one per guarded input.
_register(GateSpec("TLATCH", 3, _mux2, 0.8, 0.5, 1.2, 1.5))
_register(GateSpec("AOI21", 3, _aoi21, 1.2, 0.7, 1.6, 1.4))
_register(GateSpec("CONST0", 0, _const0, 0.0, 0.2, 0.0, 0.1))
_register(GateSpec("CONST1", 0, _const1, 0.0, 0.2, 0.0, 0.1))

# Sequential elements are handled structurally by the netlist (Latch
# records), but their electrical parameters live here so power models
# can account for clock and data pin loading.
DFF_INPUT_CAP = 1.5      # D pin load, units of C0
DFF_CLOCK_CAP = 1.0      # clock pin load per flop
DFF_OUTPUT_CAP = 0.6     # Q intrinsic cap
DFF_ENABLE_CAP = 1.0     # enable pin of the integrated clock-gating cell
DFF_AREA = 4.0           # gate equivalents
DFF_DELAY = 1.5          # clock-to-Q

# Statistical wire-load model: every net adds WIRE_CAP_PER_FANOUT * k
# of interconnect capacitance when it drives k pins (Section II-B1's
# "statistical wire-load models").
WIRE_CAP_BASE = 0.3
WIRE_CAP_PER_FANOUT = 0.4


def gate_spec(name: str) -> GateSpec:
    """Look up a gate type; raises KeyError with a helpful message."""
    try:
        return LIBRARY[name]
    except KeyError:
        raise KeyError(
            f"unknown gate type {name!r}; known: {sorted(LIBRARY)}"
        ) from None


def wire_capacitance(fanout: int) -> float:
    """Statistical wire-load estimate for a net driving ``fanout`` pins."""
    if fanout <= 0:
        return 0.0
    return WIRE_CAP_BASE + WIRE_CAP_PER_FANOUT * fanout
