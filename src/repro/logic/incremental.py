"""Incremental cone-of-influence re-estimation for optimization loops.

Every Section-III optimization pass evaluates candidate circuits by
resimulating the whole netlist, even though a candidate typically
shares almost all structure with the base design.  This module makes
repeated estimation of *nearby* circuits cheap — the delta-evaluation
lever the paper's estimate/transform/re-estimate loop hinges on:

- :meth:`Circuit.cone_fingerprints` hashes every net's transitive
  fanin cone (closed over latch feedback, net names significant), so
  two circuits agree on a net's cone fingerprint exactly when the
  logic driving it is identical,
- a **cone key** extends that with the engine name, the batch length,
  and the stimulus lane hashes of the primary inputs in the cone's
  support (:meth:`Circuit.cone_supports`): equal keys imply identical
  settled lane values, hence identical toggle/ones counts,
- :func:`delta_activity` looks every net up in a process-wide
  byte-budgeted :class:`ConeCache` (optionally backed by
  ``repro.store`` entries of kind ``"activity"``), resimulates *only*
  the dirty region — cache-missing nets, which by key construction
  are already closed under transitive fanout — via
  :meth:`Circuit.extract_cone`, replaying clean boundary nets from
  cached lanes as pseudo-inputs, and splices the per-net counts into
  an :class:`ActivityReport` **bit-identical** to full resimulation
  (same float summation order, same clock-capacitance accounting),
- :func:`estimate_delta` wraps the base-prime + variant-delta pair;
  :func:`cached_activity` is the zero-overhead probe the
  :class:`~repro.core.estimator.PowerEstimator` uses to engage the
  cache transparently inside ``technique="simulation"``.

Correctness is content-addressed: a cache hit is valid *because its
key covers everything the cached counts depend on* — eviction can
only cause extra misses, never stale hits.  The one contract carried
over from the plan store: in-place structural mutation must be
followed by ``circuit.invalidate()`` (the construction methods do it
automatically), otherwise the cone fingerprints themselves are stale.

Engine note: only zero-delay (settled-value) activity can be spliced
from cached lanes; timed/glitch simulation needs full waveforms on
boundary nets, so :mod:`repro.logic.fasttimer` instead memoizes whole
timed runs (:func:`~repro.logic.fasttimer.timed_activity_cached`)
under the same ``"activity"`` store kind.
"""

from __future__ import annotations

import hashlib
import os
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro import store as artifact_store
from repro.backend.core import resolve_engine
from repro.logic import gates as gatelib
from repro.logic.fastsim import PackedVectors, input_lane_hashes, \
    lane_counts, net_words_engine
from repro.logic.netlist import Circuit
from repro.logic.simulate import ActivityReport, Vector, collect_activity

__all__ = [
    "ConeCache", "ConeRecord", "DeltaStats",
    "get_cone_cache", "set_cone_cache", "clear_cone_cache",
    "cone_keys", "store_key", "delta_activity", "collect_activity_incremental",
    "prime", "estimate_delta", "cached_activity", "reports_equal",
]

Stimulus = Union[PackedVectors, Sequence[Vector]]

#: In-process cone-cache key: (cone fingerprint hex, stimulus tail
#: bytes).  Cheap to hash/compare; ``store_key`` folds it to a stable
#: hex digest for the cross-process artifact store.
ConeKey = Tuple[str, bytes]

#: Dirty fraction (of non-input nets) above which a plain full
#: resimulation is cheaper than cone extraction + splicing.
DELTA_MAX_FRACTION = 0.7

#: Runs shorter than this are not mirrored to the disk store — the
#: envelope overhead would exceed the resimulation cost.
STORE_MIN_CYCLES = 256

#: Lanes longer than this (bits) stay in process; counts alone are
#: still mirrored, but such entries cannot serve as replay boundaries.
STORE_MAX_LANE_CYCLES = 1 << 20

ENV_CACHE_BYTES = "REPRO_CONE_CACHE_BYTES"
DEFAULT_CACHE_BYTES = 128 * 1024 * 1024


# ----------------------------------------------------------------------
# Cache records
# ----------------------------------------------------------------------
@dataclass
class ConeRecord:
    """Cached activity of one net under one (cone, stimulus, engine).

    ``ones``/``toggles``/``last`` follow the pinned normalization
    (ones over all ``n`` cycles, toggles over the ``n - 1``
    boundaries, ``last`` = final-cycle value); ``lane`` is the packed
    settled-value word, kept so the net can be replayed as a
    pseudo-input on the dirty-region boundary (``None`` when the
    record came from a counts-only store entry).
    """

    n: int
    ones: int
    toggles: int
    last: int
    lane: Optional[int] = None

    def nbytes(self) -> int:
        return 96 + (0 if self.lane is None else (self.n >> 3))


@dataclass
class DeltaStats:
    """How one incremental evaluation was satisfied."""

    source: str            # "cached" | "delta" | "full" | "fallback"
    total_nets: int = 0
    reused_nets: int = 0   # non-input nets served from cache
    dirty_nets: int = 0    # non-input nets resimulated
    boundary_nets: int = 0
    store_hits: int = 0


class ConeCache:
    """Process-wide LRU of :class:`ConeRecord` by cone key, byte-budgeted.

    The budget (``REPRO_CONE_CACHE_BYTES``, default 128 MiB) counts
    lane payloads — one record for an ``n``-cycle run costs about
    ``n/8`` bytes — so long traces over large circuit populations
    evict gracefully instead of growing without bound.
    """

    def __init__(self, max_bytes: Optional[int] = None) -> None:
        if max_bytes is None:
            try:
                max_bytes = int(os.environ.get(ENV_CACHE_BYTES, ""))
            except ValueError:
                max_bytes = DEFAULT_CACHE_BYTES
        self.max_bytes = int(max_bytes)
        self._entries: "OrderedDict[str, ConeRecord]" = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: ConeKey) -> Optional[ConeRecord]:
        rec = self._entries.get(key)
        if rec is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return rec

    def put(self, key: ConeKey, rec: ConeRecord) -> None:
        old = self._entries.pop(key, None)
        if old is not None:
            self._bytes -= old.nbytes()
        self._entries[key] = rec
        self._bytes += rec.nbytes()
        while self._bytes > self.max_bytes and len(self._entries) > 1:
            _, evicted = self._entries.popitem(last=False)
            self._bytes -= evicted.nbytes()

    def clear(self) -> None:
        self._entries.clear()
        self._bytes = 0

    def stats(self) -> Dict[str, int]:
        return {"entries": len(self._entries), "bytes": self._bytes,
                "hits": self.hits, "misses": self.misses,
                "max_bytes": self.max_bytes}


_cone_cache: Optional[ConeCache] = None


def get_cone_cache() -> ConeCache:
    """The process-wide cone cache (created lazily)."""
    global _cone_cache
    if _cone_cache is None:
        _cone_cache = ConeCache()
    return _cone_cache


def set_cone_cache(cache: Optional[ConeCache]) -> Optional[ConeCache]:
    """Swap the process-wide cache (tests, isolation); returns the old."""
    global _cone_cache
    old = _cone_cache
    _cone_cache = cache
    return old


def clear_cone_cache() -> None:
    if _cone_cache is not None:
        _cone_cache.clear()


# ----------------------------------------------------------------------
# Cone keys
# ----------------------------------------------------------------------
def cone_keys(circuit: Circuit, packed: PackedVectors, engine: str,
              ) -> Dict[str, "ConeKey"]:
    """Per-net cache key: cone fingerprint x stimulus support x engine.

    Mixes each net's structural cone fingerprint with the batch
    length, the (resolved) engine name, and the stimulus lane hash of
    every primary input in the net's support — nothing else the
    cached counts depend on exists.  Editing one input stream (or one
    gate) therefore re-keys exactly the cones that can observe it.
    When the stimulus came from :class:`~repro.rtl.streams.WordStream`
    packing, the lane hashes change exactly when the originating
    streams' ``fingerprint()`` changes.
    """
    fps = circuit.cone_fingerprints()
    masks = circuit.cone_supports()
    lane_hashes = input_lane_hashes(packed)
    digests: List[bytes] = []
    for net in circuit.inputs:
        digests.append(lane_hashes.get(net, b"\xffmissing"))
    suffix = f"|{engine}|{packed.n}".encode("ascii")
    # In-process keys are plain (fingerprint, stimulus-tail) tuples:
    # tuple equality/hash is what dict probes pay for, and hashing a
    # cryptographic digest again for a process-local dict would buy
    # nothing.  ``store_key`` derives the stable hex form on the rare
    # store-mirroring paths.  Tails depend only on (stimulus, engine,
    # batch length, input order), so the mask->tail memo rides the
    # packed-stimulus object: a candidate sweep over one stimulus
    # pays each distinct support mask's bit-walk once, and identical
    # tails across candidates stay one shared bytes object.
    memo_key = (engine, packed.n, tuple(circuit.inputs))
    memos = getattr(packed, "_tail_memo", None)
    if memos is None:
        memos = {}
        try:
            packed._tail_memo = memos
        except AttributeError:
            pass
    mask_bytes = memos.setdefault(memo_key, {})
    keys: Dict[str, ConeKey] = {}
    fps_get = fps.__getitem__
    masks_get = masks.__getitem__
    for net in circuit.nets:
        m = masks_get(net)
        tail = mask_bytes.get(m)
        if tail is None:
            parts = []
            mm = m
            while mm:
                low = mm & -mm
                parts.append(digests[low.bit_length() - 1])
                mm ^= low
            tail = suffix + b"".join(parts)
            mask_bytes[m] = tail
        keys[net] = (fps_get(net), tail)
    return keys


def store_key(key: "ConeKey") -> str:
    """Stable hex form of a cone key for the shared artifact store."""
    fp, tail = key
    return hashlib.sha256(
        b"cone-key/1\x00" + fp.encode("ascii") + tail).hexdigest()


def _record_from_lane(lane: int, n: int) -> ConeRecord:
    ones, toggles, last = lane_counts(lane, n)
    return ConeRecord(n=n, ones=ones, toggles=toggles, last=last,
                      lane=lane & ((1 << n) - 1))


def _ensure_packed(circuit: Circuit,
                   vectors: Stimulus) -> Optional[PackedVectors]:
    """Pack dict-vector stimulus; ``None`` when inputs are missing."""
    if isinstance(vectors, PackedVectors):
        if all(net in vectors.words for net in circuit.inputs):
            return vectors
        return None
    try:
        return PackedVectors.from_vectors(circuit.inputs, list(vectors))
    except KeyError:
        return None


# ----------------------------------------------------------------------
# Store mirroring (kind "activity", schema repro.activity/1)
# ----------------------------------------------------------------------
def _cone_payload(rec: ConeRecord) -> Dict[str, object]:
    payload: Dict[str, object] = {
        "schema": artifact_store.ACTIVITY_SCHEMA, "flavour": "cone",
        "n": rec.n, "ones": rec.ones, "toggles": rec.toggles,
        "last": rec.last,
    }
    if rec.lane is not None and rec.n <= STORE_MAX_LANE_CYCLES:
        payload["lane"] = format(rec.lane, "x")
    return payload


def _cone_from_payload(payload: Optional[Dict[str, object]],
                       n: int) -> Optional[ConeRecord]:
    """Decode a per-cone store entry; anything malformed is a miss."""
    if not isinstance(payload, dict):
        return None
    if payload.get("schema") != artifact_store.ACTIVITY_SCHEMA:
        return None
    if payload.get("flavour") != "cone":
        return None
    try:
        if int(payload["n"]) != n:
            return None
        lane = payload.get("lane")
        return ConeRecord(
            n=n, ones=int(payload["ones"]),
            toggles=int(payload["toggles"]), last=int(payload["last"]),
            lane=int(lane, 16) if isinstance(lane, str) else None)
    except (KeyError, TypeError, ValueError):
        return None


# ----------------------------------------------------------------------
# The delta engine
# ----------------------------------------------------------------------
def delta_activity(circuit: Circuit, vectors: Stimulus, *,
                   engine: Optional[str] = None,
                   initial_state: Optional[Dict[str, int]] = None,
                   cache: Optional[ConeCache] = None,
                   populate: bool = True,
                   _keys: Optional[Dict[str, ConeKey]] = None,
                   ) -> Tuple[ActivityReport, DeltaStats]:
    """Activity via the cone cache; bit-identical to full resim.

    Looks every net up by cone key, resimulates only the dirty region
    (with clean boundary nets replayed from cached lanes), and
    assembles the report from per-net records.  Falls back to a plain
    :func:`~repro.logic.simulate.collect_activity` when the stimulus
    cannot be packed, an explicit ``initial_state`` is given (cached
    lanes assume latch init values), or the batch is empty; falls
    back to a full (but cache-populating) lane run when the dirty
    region exceeds :data:`DELTA_MAX_FRACTION` of the nets or a
    boundary lane is unavailable.
    """
    cache = cache if cache is not None else get_cone_cache()
    from repro.logic.simulate import DEFAULT_ENGINE

    packed = _ensure_packed(circuit, vectors)
    if packed is None or packed.n == 0 or initial_state is not None:
        report = collect_activity(circuit, vectors,
                                  initial_state=initial_state,
                                  engine=engine)
        return report, DeltaStats(source="fallback",
                                  total_nets=len(circuit.nets))
    n = packed.n
    resolved = resolve_engine(engine, DEFAULT_ENGINE, cycles=n,
                              sequential=bool(circuit.latches))
    keys = _keys if _keys is not None else cone_keys(circuit, packed,
                                                     resolved)
    nets = circuit.nets
    inputs = set(circuit.inputs)
    records: Dict[str, ConeRecord] = {}
    missing: List[str] = []
    # Bulk cache probe: one dict.get per net against the raw entry
    # table (the per-net ``cache.get`` call overhead is measurable at
    # a few thousand nets); counters and LRU recency are settled in
    # aggregate afterwards.
    entries = cache._entries
    entry_get = entries.get
    move = entries.move_to_end
    hits = 0
    for net in nets:
        if net in inputs:
            # Input lanes are the stimulus itself — no cache needed.
            records[net] = _record_from_lane(packed.words[net], n)
            continue
        key = keys[net]
        rec = entry_get(key)
        if rec is not None and rec.n == n:
            records[net] = rec
            move(key)
            hits += 1
        else:
            missing.append(net)
    cache.hits += hits
    cache.misses += len(missing)
    stats = DeltaStats(source="cached", total_nets=len(nets))

    # Second chance: the shared artifact store (cross-process reuse).
    st = artifact_store.get_store()
    mirror = st.root is not None and n >= STORE_MIN_CYCLES
    if missing and mirror:
        still: List[str] = []
        for net in missing:
            rec = _cone_from_payload(
                st.get(store_key(keys[net]),
                       artifact_store.ACTIVITY_KIND), n)
            if rec is not None:
                records[net] = rec
                cache.put(keys[net], rec)
                stats.store_hits += 1
            else:
                still.append(net)
        missing = still

    non_input = len(nets) - len(inputs)
    stats.reused_nets = non_input - len(missing)
    stats.dirty_nets = len(missing)

    if missing:
        fresh: Dict[str, int] = {}
        if len(missing) > DELTA_MAX_FRACTION * max(1, non_input):
            lanes, _ = net_words_engine(circuit, packed,
                                        initial_state=None,
                                        engine=resolved)
            fresh = {net: lanes[net] for net in missing}
            stats.source = "full"
        else:
            # By key construction the miss set is closed under
            # transitive fanout (a consumer's key hashes its fanin
            # cones), so extracting exactly the missing nets yields a
            # well-formed sub-circuit whose boundary is clean.
            sub, boundary = circuit.extract_cone(missing)
            stats.boundary_nets = len(boundary)
            boundary_lanes: Dict[str, int] = {}
            for b in boundary:
                rec = records.get(b)
                if rec is None or rec.lane is None:
                    break
                boundary_lanes[b] = rec.lane
            if len(boundary_lanes) != len(boundary):
                lanes, _ = net_words_engine(circuit, packed,
                                            initial_state=None,
                                            engine=resolved)
                fresh = {net: lanes[net] for net in missing}
                stats.source = "full"
            else:
                words = {net: packed.words[net]
                         for net in sub.inputs if net in packed.words}
                words.update(boundary_lanes)
                sub_packed = PackedVectors(list(sub.inputs), n, words)
                lanes, _ = net_words_engine(sub, sub_packed,
                                            initial_state=None,
                                            engine=resolved)
                fresh = {net: lanes[net] for net in missing}
                stats.source = "delta"
        for net, lane in fresh.items():
            rec = _record_from_lane(lane, n)
            records[net] = rec
            if populate:
                cache.put(keys[net], rec)
                if mirror:
                    st.put(store_key(keys[net]),
                           artifact_store.ACTIVITY_KIND,
                           _cone_payload(rec))

    if obs.enabled():
        obs.inc(f"incremental.source.{stats.source}")
        obs.inc("incremental.reused_nets", stats.reused_nets)
        obs.inc("incremental.dirty_nets", stats.dirty_nets)
    return _assemble(circuit, records, n, nets), stats


def _assemble(circuit: Circuit, records: Dict[str, ConeRecord],
              n: int, nets: Optional[List[str]] = None
              ) -> ActivityReport:
    """Splice per-net records into a report, bit-identically.

    Switched capacitance is summed in ``circuit.nets`` order skipping
    zero-toggle nets — the exact float summation both engines use —
    against the *variant's own* load capacitances (cached lanes are
    load-independent).  Clock capacitance counts enable assertions
    over cycles ``0..n-2`` per clocked load-enable latch and ``n - 1``
    per plain clocked flop, matching the chunked accumulation.
    """
    caps = circuit.load_capacitances()
    if nets is None:
        nets = circuit.nets
    toggles: Dict[str, int] = {}
    ones: Dict[str, int] = {}
    for net in nets:
        rec = records[net]
        toggles[net] = rec.toggles
        ones[net] = rec.ones
    switched = 0.0
    for net in nets:
        t = toggles[net]
        if t:
            switched += caps[net] * t
    clock_cap = 0.0
    if circuit.latches and n > 1:
        edges = 0
        for latch in circuit.latches:
            if not latch.clocked:
                continue
            if latch.enable is None:
                edges += n - 1
            else:
                rec = records[latch.enable]
                edges += rec.ones - rec.last
        clock_cap = 2.0 * gatelib.DFF_CLOCK_CAP * edges
    return ActivityReport(cycles=n, toggles=toggles, ones=ones,
                          switched_capacitance=switched,
                          clock_capacitance=clock_cap)


def collect_activity_incremental(circuit: Circuit, vectors: Stimulus,
                                 engine: Optional[str] = None,
                                 initial_state: Optional[Dict[str, int]]
                                 = None,
                                 cache: Optional[ConeCache] = None,
                                 ) -> ActivityReport:
    """Drop-in :func:`~repro.logic.simulate.collect_activity` via the
    cone cache (same report, bit for bit)."""
    report, _ = delta_activity(circuit, vectors, engine=engine,
                               initial_state=initial_state, cache=cache)
    return report


def prime(circuit: Circuit, vectors: Stimulus,
          engine: Optional[str] = None,
          cache: Optional[ConeCache] = None) -> ActivityReport:
    """Populate the cone cache for a base circuit (returns its report)."""
    return collect_activity_incremental(circuit, vectors, engine=engine,
                                        cache=cache)


def estimate_delta(base: Circuit, variant: Circuit, vectors: Stimulus,
                   engine: Optional[str] = None,
                   cache: Optional[ConeCache] = None,
                   ) -> Tuple[ActivityReport, DeltaStats]:
    """Re-estimate an edited ``variant`` against a cached ``base``.

    Primes the cache with the base circuit (free when already
    resident), then evaluates the variant through the cone cache:
    only the dirty cone — edited nets plus transitive fanout, closed
    over latch feedback — is resimulated.  Returns the variant's
    report (bit-identical to full resimulation) plus the
    :class:`DeltaStats` describing the reuse.
    """
    prime(base, vectors, engine=engine, cache=cache)
    return delta_activity(variant, vectors, engine=engine, cache=cache)


def cached_activity(circuit: Circuit, vectors: Stimulus,
                    engine: Optional[str] = None,
                    min_hit_fraction: float = 0.25,
                    ) -> Optional[ActivityReport]:
    """Opportunistic cache probe for the estimator facade.

    Returns a (bit-identical) report when the process cone cache can
    serve at least ``min_hit_fraction`` of the circuit's non-input
    nets, ``None`` otherwise — the caller then runs the plain path.
    With an empty cache this is a single ``len()`` check, so one-shot
    estimates pay nothing.
    """
    cache = get_cone_cache()
    if not len(cache):
        return None
    packed = _ensure_packed(circuit, vectors)
    if packed is None or packed.n == 0:
        return None
    from repro.logic.simulate import DEFAULT_ENGINE

    resolved = resolve_engine(engine, DEFAULT_ENGINE,
                              cycles=packed.n,
                              sequential=bool(circuit.latches))
    keys = cone_keys(circuit, packed, resolved)
    inputs = set(circuit.inputs)
    non_input = [net for net in circuit.nets if net not in inputs]
    if not non_input:
        return None
    hits = 0
    entries = cache._entries
    for net in non_input:
        rec = entries.get(keys[net])
        if rec is not None and rec.n == packed.n:
            hits += 1
    if hits < min_hit_fraction * len(non_input):
        return None
    report, _ = delta_activity(circuit, packed, engine=resolved,
                               cache=cache, _keys=keys)
    return report


def reports_equal(a: ActivityReport, b: ActivityReport) -> bool:
    """Exact (bitwise, including floats) report comparison."""
    return (a.cycles == b.cycles
            and a.toggles == b.toggles
            and a.ones == b.ones
            and a.switched_capacitance == b.switched_capacitance
            and a.clock_capacitance == b.clock_capacitance
            and a.events == b.events
            and a.glitches == b.glitches)
