"""BDD-to-circuit synthesis: Shannon (multiplexor) networks.

Section III-H discusses translating a BDD-represented transition
structure into gates.  The naive mapping — one multiplexor per BDD
node ("networks that are large, deep, and slow") — is implemented here
together with the obvious sharing (one mux per *shared* node), which
is what timed-Shannon-style approaches start from [97].

Besides controller synthesis, the mapping gives an alternative
datapath style whose size is the BDD node count, letting experiments
relate BDD size to circuit cost (the premise of Ferrandi's capacitance
model [12]).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.bdd import Bdd, BddManager
from repro.logic.netlist import Circuit


def synthesize_bdd(functions: Dict[str, Bdd],
                   input_names: Optional[Sequence[str]] = None,
                   name: str = "shannon") -> Circuit:
    """Map BDDs onto a shared multiplexor network.

    ``functions`` maps output net names to BDDs from one manager.
    Every internal BDD node becomes one MUX2 (shared across outputs);
    terminals become constants.  Inputs default to the manager's
    variable list.
    """
    if not functions:
        raise ValueError("need at least one function")
    managers = {f.manager for f in functions.values()}
    if len(managers) != 1:
        raise ValueError("functions must share a BDD manager")
    mgr = managers.pop()

    circuit = Circuit(name)
    names = list(input_names) if input_names is not None \
        else mgr.variables
    for var in names:
        circuit.add_input(var)

    const0 = circuit.add_gate("CONST0", [])
    const1 = circuit.add_gate("CONST1", [])
    net_of: Dict[int, str] = {0: const0, 1: const1}
    level_names = mgr.variables

    def build(root: int) -> str:
        # Explicit post-order stack: one MUX2 per node, children first.
        # (Deep BDDs — one level per chained variable — would overflow
        # Python's recursion limit with the naive recursive walk.)
        stack = [root]
        while stack:
            node_id = stack[-1]
            if node_id in net_of:
                stack.pop()
                continue
            node = mgr._node(node_id)
            if node.low in net_of and node.high in net_of:
                select = level_names[node.level]
                net_of[node_id] = circuit.add_gate(
                    "MUX2", [net_of[node.low], net_of[node.high], select])
                stack.pop()
            else:
                if node.high not in net_of:
                    stack.append(node.high)
                if node.low not in net_of:
                    stack.append(node.low)
        return net_of[root]

    for out_name, f in functions.items():
        root = build(f.root)
        circuit.add_gate("BUF", [root], output=out_name)
        circuit.add_output(out_name)
    return circuit


def synthesize_function_shannon(n: int, onset: Sequence[int],
                                input_names: Optional[Sequence[str]]
                                = None,
                                output_name: str = "f",
                                name: str = "shannon") -> Circuit:
    """Single-output helper: minterm list -> BDD -> mux network."""
    mgr = BddManager()
    names = list(input_names) if input_names \
        else [f"x{i}" for i in range(n)]
    for var in names:
        mgr.var(var)
    f = mgr.from_truth_table(names, onset)
    return synthesize_bdd({output_name: f}, input_names=names, name=name)


def mux_network_cost(functions: Dict[str, Bdd]) -> int:
    """Shared-node count = MUX2 count of the Shannon network."""
    seen = set()
    count = 0
    for f in functions.values():
        stack = [f.root]
        while stack:
            node_id = stack.pop()
            if node_id <= 1 or node_id in seen:
                continue
            seen.add(node_id)
            count += 1
            node = f.manager._node(node_id)
            stack.append(node.low)
            stack.append(node.high)
    return count
