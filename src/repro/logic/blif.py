"""Minimal BLIF reader/writer.

Supports the subset of Berkeley Logic Interchange Format the framework
needs to exchange netlists: ``.model``, ``.inputs``, ``.outputs``,
``.names`` (SOP tables), ``.latch`` (rising-edge D flops), ``.end``.
``.names`` bodies are synthesized to library gates on read; on write,
every gate is emitted as a ``.names`` truth table so round-trips are
functionally exact (structure is re-synthesized).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, TextIO, Tuple

from repro.twolevel.cubes import Cover, Cube
from repro.logic.netlist import Circuit, Gate, Latch
from repro.logic.synthesis import InverterCache, synthesize_cover


def write_blif(circuit: Circuit, stream: TextIO) -> None:
    stream.write(f".model {circuit.name}\n")
    stream.write(".inputs " + " ".join(circuit.inputs) + "\n")
    stream.write(".outputs " + " ".join(circuit.outputs) + "\n")
    for latch in circuit.latches:
        stream.write(f".latch {latch.data} {latch.output} re clk "
                     f"{latch.init}\n")
    for gate in circuit.gates:
        stream.write(".names " + " ".join(gate.inputs)
                     + f" {gate.output}\n")
        spec = gate.spec
        n = spec.n_inputs
        if n == 0:
            if spec.fn(()) == 1:
                stream.write("1\n")
            continue
        for m in range(1 << n):
            bits = tuple((m >> i) & 1 for i in range(n))
            if spec.fn(bits):
                stream.write("".join(str(b) for b in bits) + " 1\n")
    stream.write(".end\n")


def _parse_names_body(n_inputs: int, rows: Sequence[str]) -> Cover:
    """SOP rows (input-plane + output bit) to a Cover of the on-set."""
    cover = Cover(max(n_inputs, 0))
    for row in rows:
        parts = row.split()
        if n_inputs == 0:
            # Constant: row is just '1' (on) — absence means constant 0.
            continue
        plane, out = parts[0], parts[1]
        if out != "1":
            raise ValueError("only on-set (.names ... 1) rows are supported")
        cover.add(Cube.from_string(plane))
    return cover


def read_blif(stream: TextIO) -> Circuit:
    lines: List[str] = []
    for raw in stream:
        line = raw.split("#", 1)[0].rstrip()
        if not line:
            continue
        while line.endswith("\\"):
            line = line[:-1] + next(stream).split("#", 1)[0].rstrip()
        lines.append(line)

    circuit = Circuit()
    inverters: Optional[InverterCache] = None
    names_blocks: List[Tuple[List[str], str, List[str]]] = []
    i = 0
    while i < len(lines):
        line = lines[i]
        tokens = line.split()
        keyword = tokens[0]
        if keyword == ".model":
            circuit.name = tokens[1] if len(tokens) > 1 else "model"
        elif keyword == ".inputs":
            circuit.add_inputs(tokens[1:])
        elif keyword == ".outputs":
            for net in tokens[1:]:
                circuit.add_output(net)
        elif keyword == ".latch":
            data, output = tokens[1], tokens[2]
            init = int(tokens[-1]) if tokens[-1] in ("0", "1") else 0
            circuit.add_latch(data, output=output, init=init)
        elif keyword == ".names":
            signals = tokens[1:]
            body: List[str] = []
            j = i + 1
            while j < len(lines) and not lines[j].startswith("."):
                body.append(lines[j])
                j += 1
            names_blocks.append((signals[:-1], signals[-1], body))
            i = j - 1
        elif keyword == ".end":
            break
        i += 1

    # Declared signal names must not collide with synthesized ones.
    reserved = set(circuit.inputs)
    for input_nets, output_net, _body in names_blocks:
        reserved.add(output_net)
        reserved.update(input_nets)
    for latch in circuit.latches:
        reserved.add(latch.data)
        reserved.add(latch.output)
    circuit.reserve_nets(reserved)

    inverters = InverterCache(circuit)
    for input_nets, output_net, body in names_blocks:
        if not input_nets:
            is_one = any(row.strip() == "1" for row in body)
            circuit.add_gate("CONST1" if is_one else "CONST0", [],
                             output=output_net)
            continue
        cover = _parse_names_body(len(input_nets), body)
        synthesize_cover(cover, input_nets, output_net, circuit=circuit,
                         inverters=inverters)
    return circuit


def save_blif(circuit: Circuit, path: str) -> None:
    with open(path, "w") as stream:
        write_blif(circuit, stream)


def load_blif(path: str) -> Circuit:
    with open(path) as stream:
        return read_blif(stream)
