"""Circuit-to-BDD conversion and exact probabilistic analysis.

Builds ROBDDs for every net of a combinational circuit (latch outputs
are treated as free pseudo-inputs), enabling

- exact signal probabilities under independent inputs ([27]-[31]),
- exact zero-delay transition probabilities (temporal independence),
- the BDD node counts used by the Ferrandi capacitance model [12],
- the don't-care computations behind precomputation and guarded
  evaluation (Section III-I).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.bdd import Bdd, BddManager
from repro.logic.netlist import Circuit


def _apply_gate(mgr: BddManager, gate_type: str,
                operands: Sequence[Bdd]) -> Bdd:
    if gate_type == "CONST0":
        return mgr.false
    if gate_type == "CONST1":
        return mgr.true
    if gate_type in ("BUF",):
        return operands[0]
    if gate_type == "INV":
        return ~operands[0]
    if gate_type in ("MUX2", "TLATCH"):
        d0, d1, sel = operands
        return sel.ite(d1, d0)
    if gate_type == "AOI21":
        a, b, c = operands
        return ~((a & b) | c)
    base = gate_type.rstrip("0123456789")
    result = operands[0]
    if base == "AND":
        for op in operands[1:]:
            result = result & op
    elif base == "OR":
        for op in operands[1:]:
            result = result | op
    elif base == "NAND":
        for op in operands[1:]:
            result = result & op
        result = ~result
    elif base == "NOR":
        for op in operands[1:]:
            result = result | op
        result = ~result
    elif base == "XOR":
        for op in operands[1:]:
            result = result ^ op
    elif base == "XNOR":
        for op in operands[1:]:
            result = result ^ op
        result = ~result
    else:
        raise ValueError(f"no BDD semantics for gate type {gate_type!r}")
    return result


def static_order(circuit: Circuit) -> List[str]:
    """DFS-fanin variable order for the circuit's BDD variables.

    Depth-first from each primary output through the transitive fanin,
    recording primary inputs / latch outputs in first-visit order
    (Malik's classic heuristic): variables that interact through a
    common cone land next to each other, which keeps structures like
    adder and comparator chains linear where declaration order would
    separate the interacting bits.  Sources never reached from an
    output are appended in declaration order.
    """
    from repro.logic.netlist import Gate

    sources = set(circuit.inputs) | {l.output for l in circuit.latches}
    order: List[str] = []
    seen: set = set()
    for out in circuit.outputs:
        stack = [out]
        while stack:
            net = stack.pop()
            if net in seen:
                continue
            seen.add(net)
            if net in sources:
                order.append(net)
                continue
            driver = circuit._driver.get(net)
            if isinstance(driver, Gate):
                # Reverse so the gate's first input is visited first.
                stack.extend(reversed(driver.inputs))
    for name in list(circuit.inputs) + [l.output for l in circuit.latches]:
        if name not in seen:
            order.append(name)
            seen.add(name)
    return order


def build_bdds(circuit: Circuit,
               manager: Optional[BddManager] = None,
               nets: Optional[Iterable[str]] = None,
               order: str = "dfs") -> Dict[str, Bdd]:
    """BDD for every net (or the requested subset) of the circuit.

    ``order`` chooses the static variable order when the manager has no
    variables registered yet: ``"dfs"`` (default) uses
    :func:`static_order`; ``"declare"`` registers inputs and latch
    outputs in circuit order.  Managers that already carry variables
    keep their order untouched, so callers can pin one explicitly.
    """
    mgr = manager if manager is not None else BddManager()
    if order not in ("dfs", "declare"):
        raise ValueError(f"unknown static order {order!r}")
    if order == "dfs" and not mgr.variables:
        for name in static_order(circuit):
            mgr.var(name)
    values: Dict[str, Bdd] = {}
    for name in circuit.inputs:
        values[name] = mgr.var(name)
    for latch in circuit.latches:
        values[latch.output] = mgr.var(latch.output)
    for gate in circuit.topological_gates():
        operands = [values[n] for n in gate.inputs]
        values[gate.output] = _apply_gate(mgr, gate.gate_type, operands)
    if nets is not None:
        return {n: values[n] for n in nets}
    return values


def net_bdds(circuit: Circuit,
             manager: Optional[BddManager] = None,
             nets: Optional[Iterable[str]] = None) -> Dict[str, Bdd]:
    """BDD for every net, variables registered in circuit declaration
    order (the historical default — node counts recorded by older
    experiments depend on it; new code should prefer
    :func:`build_bdds`, whose DFS-fanin order is usually far smaller).
    """
    return build_bdds(circuit, manager, nets, order="declare")


def output_bdds(circuit: Circuit,
                manager: Optional[BddManager] = None) -> Dict[str, Bdd]:
    return net_bdds(circuit, manager, nets=circuit.outputs)


def signal_probabilities(circuit: Circuit,
                         input_probs: Optional[Dict[str, float]] = None
                         ) -> Dict[str, float]:
    """Exact P(net = 1) for every net under independent inputs."""
    bdds = net_bdds(circuit)
    return {net: f.probability(input_probs) for net, f in bdds.items()}


def switching_activities(circuit: Circuit,
                         input_probs: Optional[Dict[str, float]] = None,
                         input_activities: Optional[Dict[str, float]] = None
                         ) -> Dict[str, float]:
    """Zero-delay switching activity per net under temporal independence.

    With temporally independent inputs the transition probability of a
    net with signal probability p is 2 p (1-p); if per-input switching
    activities are supplied, inputs use those values directly and
    internal nets still use the temporal-independence approximation.
    """
    probs = signal_probabilities(circuit, input_probs)
    acts: Dict[str, float] = {}
    for net, p in probs.items():
        if input_activities and net in input_activities:
            acts[net] = input_activities[net]
        else:
            acts[net] = 2.0 * p * (1.0 - p)
    return acts


def expected_switched_capacitance(circuit: Circuit,
                                  input_probs: Optional[Dict[str, float]]
                                  = None) -> float:
    """Expected switched capacitance per cycle (probabilistic estimate)."""
    acts = switching_activities(circuit, input_probs)
    fanout = circuit.fanout_map()
    return sum(acts[net] * circuit.load_capacitance(net, fanout)
               for net in circuit.nets)


def total_bdd_nodes(circuit: Circuit) -> int:
    """Shared BDD node count over all primary outputs (Ferrandi's N [12])."""
    mgr = BddManager()
    outputs = output_bdds(circuit, mgr)
    seen = set()
    count = 0
    stack = [f.root for f in outputs.values()]
    while stack:
        node_id = stack.pop()
        if node_id <= 1 or node_id in seen:
            continue
        seen.add(node_id)
        count += 1
        node = mgr._node(node_id)
        stack.append(node.low)
        stack.append(node.high)
    return count
