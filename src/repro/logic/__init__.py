"""Gate-level logic: netlists, simulation, synthesis, generators.

This package is the framework's ground-truth substrate.  The paper's
high-level models are all validated against gate-level switched
capacitance; here that reference is provided by

- :mod:`repro.logic.netlist`   -- gate-level circuit representation,
- :mod:`repro.logic.gates`     -- a generic characterized cell library,
- :mod:`repro.logic.simulate`  -- zero-delay functional simulation and
  activity collection (scalar reference engine + engine dispatch),
- :mod:`repro.logic.fastsim`   -- compiled bit-parallel zero-delay
  engine, exactly equivalent to the reference and 20-50x faster on
  vector batches,
- :mod:`repro.logic.eventsim`  -- event-driven timing simulation that
  captures glitching (needed by the retiming study, Section III-J),
- :mod:`repro.logic.fasttimer` -- compiled tick-wheel timed engine,
  bit-parallel waveforms per (net, tick), exactly equivalent to the
  event-driven reference,
- :mod:`repro.logic.synthesis` -- SOP covers to gate netlists,
- :mod:`repro.logic.generators`-- parametric adders, multipliers,
  comparators, parity trees, and random logic used as benchmark
  populations,
- :mod:`repro.logic.bdd_bridge`-- circuit-to-BDD conversion for exact
  probabilistic analysis.
"""

from repro.logic.gates import GateSpec, LIBRARY, gate_spec
from repro.logic.netlist import Circuit, Gate, Latch
from repro.logic.simulate import (
    simulate,
    collect_activity,
    ActivityReport,
    random_vectors,
)
from repro.logic.fastsim import (
    CompiledCircuit,
    PackedVectors,
    compile_circuit,
    random_packed_vectors,
)
from repro.logic.eventsim import EventSimulator, TickGrid, tick_grid
from repro.logic.fasttimer import TimedPlan, compile_timed, timed_activity

__all__ = [
    "GateSpec",
    "LIBRARY",
    "gate_spec",
    "Circuit",
    "Gate",
    "Latch",
    "simulate",
    "collect_activity",
    "ActivityReport",
    "random_vectors",
    "CompiledCircuit",
    "PackedVectors",
    "compile_circuit",
    "random_packed_vectors",
    "EventSimulator",
    "TickGrid",
    "tick_grid",
    "TimedPlan",
    "compile_timed",
    "timed_activity",
]
